//! Minimal serde-free JSON: a value tree with a writer and a
//! recursive-descent parser. Enough for run reports, JSON-lines stats
//! and the Chrome trace exporter — not a general-purpose library.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects use a `BTreeMap` so output key order is
/// deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

/// Escapes `s` for embedding inside a JSON string literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Json {
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    // -- accessors ----------------------------------------------------

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    // -- writing ------------------------------------------------------

    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x}"));
                    // `{}` prints integral floats without a dot; keep
                    // the value a float on re-parse.
                    if !out.ends_with(|c: char| c == '.' || c.is_ascii_alphabetic())
                        && !x.fract().is_normal()
                        && !format!("{x}").contains(['.', 'e', 'E'])
                    {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&esc(s));
                out.push('"');
            }
            Json::Arr(v) => {
                out.push('[');
                for (i, item) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&esc(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    // -- parsing ------------------------------------------------------

    pub fn parse(s: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing input"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Int(n as i64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(n as i64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub pos: usize,
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected byte"))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("bad \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs unsupported; report
                            // losslessly as the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let ch_len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >> 5 == 0b110 => 2,
                        b if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    s.push_str(std::str::from_utf8(&rest[..ch_len]).unwrap());
                    self.pos += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if float {
            text.parse()
                .map(Json::Float)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse()
                .map(Json::Int)
                .map_err(|_| self.err("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::obj([
            (
                "metrics",
                Json::obj([("guest_retired", Json::from(12345u64))]),
            ),
            (
                "rules",
                Json::arr([Json::obj([
                    ("label", Json::str("add reg reg imm /00")),
                    ("covered", Json::from(99u64)),
                ])]),
            ),
            ("ratio", Json::from(0.875)),
            ("ok", Json::from(true)),
            ("none", Json::Null),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, doc);
        assert_eq!(
            back.get("metrics")
                .and_then(|m| m.get("guest_retired"))
                .and_then(|v| v.as_u64()),
            Some(12345)
        );
    }

    #[test]
    fn strings_escape_and_unescape() {
        let doc = Json::str("a\"b\\c\nd\te\u{1}");
        let text = doc.to_string();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn numbers_parse_with_sign_and_exponent() {
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("3.5").unwrap(), Json::Float(3.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("2.0").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn integral_floats_stay_floats_on_roundtrip() {
        let text = Json::Float(2.0).to_string();
        assert_eq!(Json::parse(&text).unwrap(), Json::Float(2.0));
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\"}", "01x", "tru", "{}extra"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(|a| a.len()),
            Some(2)
        );
    }
}
