//! Fixed-bucket histograms for latency and size distributions.
//!
//! Buckets are defined by a static slice of inclusive upper bounds; the
//! final bucket is an implicit catch-all. Recording is two array
//! lookups and three adds — cheap enough to live on warm paths — and
//! merging is element-wise, so per-shard histograms can be folded into
//! a run-level one.

use crate::json::Json;
use std::fmt;

/// Upper bounds (ns, inclusive) for translate-latency style
/// distributions: 1us .. 16ms in powers of four.
pub const LATENCY_NS_BOUNDS: &[u64] = &[
    1_000, 4_000, 16_000, 64_000, 256_000, 1_024_000, 4_096_000, 16_384_000,
];

/// Upper bounds (ns, inclusive) for end-to-end request latency:
/// 16us .. ~4s in powers of four. Requests cover accept through reply,
/// so the range sits well above the per-block translate buckets.
pub const REQUEST_NS_BOUNDS: &[u64] = &[
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_194_304_000,
];

/// Upper bounds (ns, inclusive) for queue-wait time: 1us .. ~1s in
/// powers of four. An idle worker dequeues within microseconds; a
/// saturated queue pushes waits toward the top buckets.
pub const QUEUE_WAIT_NS_BOUNDS: &[u64] = &[
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
];

/// Upper bounds (bytes, inclusive) for reply payload sizes: 256 B ..
/// 4 MiB in powers of four (the frame codec caps payloads at 16 MiB,
/// the catch-all).
pub const REPLY_BYTES_BOUNDS: &[u64] = &[
    256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304,
];

/// Upper bounds for block-length style distributions (instruction
/// counts; the translator caps blocks at 32 guest instructions).
pub const BLOCK_LEN_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32];

/// Upper bounds for flag-delegation window depth: 0, 1, 2, 3; the
/// catch-all bucket counts memory/environment fallbacks recorded as
/// [`Histogram::FALLBACK`].
pub const DELEG_DEPTH_BOUNDS: &[u64] = &[0, 1, 2, 3];

/// A fixed-bucket histogram with min/max/sum tracking.
#[derive(Clone, Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Sentinel value routed to the catch-all bucket; used by the
    /// delegation-depth histogram for environment fallbacks.
    pub const FALLBACK: u64 = u64::MAX;

    pub fn new(bounds: &'static [u64]) -> Self {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub fn latency_ns() -> Self {
        Self::new(LATENCY_NS_BOUNDS)
    }

    pub fn block_len() -> Self {
        Self::new(BLOCK_LEN_BOUNDS)
    }

    pub fn deleg_depth() -> Self {
        Self::new(DELEG_DEPTH_BOUNDS)
    }

    pub fn request_ns() -> Self {
        Self::new(REQUEST_NS_BOUNDS)
    }

    pub fn queue_wait_ns() -> Self {
        Self::new(QUEUE_WAIT_NS_BOUNDS)
    }

    pub fn reply_bytes() -> Self {
        Self::new(REPLY_BYTES_BOUNDS)
    }

    /// Index of the bucket `v` falls into.
    fn bucket_of(&self, v: u64) -> usize {
        self.bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len())
    }

    pub fn record(&mut self, v: u64) {
        let b = self.bucket_of(v);
        self.counts[b] += 1;
        self.count += 1;
        self.sum = self
            .sum
            .saturating_add(if v == Self::FALLBACK { 0 } else { v });
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Both sides must share bucket bounds.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bound mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Estimate of the `p`-th percentile (0.0..=1.0): linear
    /// interpolation within the bucket whose cumulative count reaches
    /// the rank, clamped to the observed `[min, max]` so a sparse
    /// bucket can't report a value outside the recorded range. The
    /// catch-all bucket interpolates toward the observed max.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            if cum + c >= target {
                let lo = if i == 0 { 0 } else { self.bounds[i - 1] };
                let hi = self.bounds.get(i).copied().unwrap_or(self.max).max(lo);
                let frac = (target - cum) as f64 / *c as f64;
                let v = lo as f64 + frac * (hi - lo) as f64;
                return (v.round() as u64).clamp(self.min, self.max);
            }
            cum += c;
        }
        self.max
    }

    /// Median request estimate; see [`Histogram::percentile`].
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// The report-ready JSON object: bucket shape, totals, and the
    /// interpolated p50/p95/p99 quantiles.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "bounds",
                Json::Arr(self.bounds.iter().map(|&b| Json::from(b)).collect()),
            ),
            (
                "counts",
                Json::Arr(self.counts.iter().map(|&c| Json::from(c)).collect()),
            ),
            ("count", Json::from(self.count)),
            ("sum", Json::from(self.sum)),
            ("min", Json::from(self.min())),
            ("max", Json::from(self.max)),
            ("mean", Json::from(self.mean())),
            ("p50", Json::from(self.p50())),
            ("p95", Json::from(self.p95())),
            ("p99", Json::from(self.p99())),
        ])
    }

    /// Bucket rows as `(label, count)`, catch-all last.
    pub fn buckets(&self) -> Vec<(String, u64)> {
        let mut rows = Vec::with_capacity(self.counts.len());
        let mut lo = 0u64;
        for (i, &b) in self.bounds.iter().enumerate() {
            rows.push((format!("{lo}..={b}"), self.counts[i]));
            lo = b + 1;
        }
        rows.push((
            format!(">{}", self.bounds.last().copied().unwrap_or(0)),
            *self.counts.last().unwrap(),
        ));
        rows
    }

    /// Raw bucket counts (length `bounds.len() + 1`).
    pub fn raw_counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }
}

impl fmt::Display for Histogram {
    /// A compact ASCII bar chart, one bucket per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for (label, n) in self.buckets() {
            let bar = "#".repeat(((n as f64 / peak as f64) * 40.0).round() as usize);
            writeln!(f, "  {label:>16}  {n:>8}  {bar}")?;
        }
        write!(
            f,
            "  n={} mean={:.1} min={} max={}",
            self.count,
            self.mean(),
            self.min(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_respects_inclusive_bounds() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [0, 10, 11, 100, 101, 5000] {
            h.record(v);
        }
        assert_eq!(h.raw_counts(), &[2, 2, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 5000);
    }

    #[test]
    fn fallback_sentinel_lands_in_catch_all_without_poisoning_sum() {
        let mut h = Histogram::deleg_depth();
        h.record(0);
        h.record(3);
        h.record(Histogram::FALLBACK);
        assert_eq!(h.raw_counts(), &[1, 0, 0, 1, 1]);
        assert_eq!(h.sum(), 3);
    }

    #[test]
    fn merge_is_element_wise_and_tracks_extrema() {
        let mut a = Histogram::new(&[10, 100]);
        a.record(5);
        a.record(50);
        let mut b = Histogram::new(&[10, 100]);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.raw_counts(), &[1, 1, 1]);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 500);
        assert_eq!(a.sum(), 555);
    }

    #[test]
    fn percentile_interpolates_within_buckets() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for _ in 0..90 {
            h.record(7);
        }
        for _ in 0..10 {
            h.record(700);
        }
        // Rank 50 of 100 lands 50/90 into bucket 0..=10 → ~5.6, clamped
        // up to the observed min of 7.
        assert_eq!(h.percentile(0.5), 7);
        // Rank 99 lands 9/10 into bucket 101..=1000 → 910, clamped down
        // to the observed max of 700.
        assert_eq!(h.percentile(0.99), 700);
        assert_eq!(h.p50(), 7);
        assert_eq!(h.p99(), 700);
    }

    #[test]
    fn percentile_is_monotone_in_p_and_bounded_by_extrema() {
        let mut h = Histogram::request_ns();
        for v in [20_000u64, 70_000, 70_000, 300_000, 5_000_000] {
            h.record(v);
        }
        let mut prev = 0;
        for i in 0..=20 {
            let p = i as f64 / 20.0;
            let q = h.percentile(p);
            assert!(q >= prev, "percentile must be monotone in p");
            assert!((h.min()..=h.max()).contains(&q));
            prev = q;
        }
    }

    #[test]
    fn to_json_carries_quantiles() {
        let mut h = Histogram::new(&[10, 100]);
        h.record(5);
        h.record(50);
        let doc = h.to_json();
        assert_eq!(doc.get("count").and_then(Json::as_u64), Some(2));
        assert!(doc.get("p50").is_some());
        assert!(doc.get("p95").is_some());
        assert!(doc.get("p99").is_some());
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Histogram::latency_ns();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.percentile(0.99), 0);
        let _ = h.to_string();
    }
}
