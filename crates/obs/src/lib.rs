//! Observability layer for the parameterized DBT: structured span
//! tracing, per-rule attribution counters, fixed-bucket timing
//! histograms, and machine-readable exporters (JSON report lines and
//! Chrome `trace_event` files).
//!
//! The crate has no dependencies and two build personalities:
//!
//! * With the `enabled` feature (the workspace default, forwarded as the
//!   `obs` feature of `pdbt-core`/`pdbt-runtime`/`pdbt`), spans read a
//!   monotonic clock and land in a thread-local ring buffer, and
//!   [`now_ns`] returns real timestamps.
//! * Without it, [`ENABLED`] is `false`, [`now_ns`] is a `const 0`, and
//!   [`span`] returns an inert guard — every instrumentation site
//!   reduces to straight-line dead code the optimizer removes.
//!
//! Data carriers ([`Histogram`], [`RuleCounters`], [`json::Json`]) are
//! always compiled: they hold the *results* of a run and are needed by
//! the reporting path regardless of whether timing capture is on.

pub mod counters;
pub mod hist;
pub mod json;
pub mod telemetry;
pub mod trace;

pub use counters::{
    ArtifactCounters, ArtifactSnapshot, DispatchCounters, FleetCounters, FleetSnapshot,
    PoolCounters, RuleCounters, RuleId, RuleRow, ServerCounters, ServerSnapshot, ShardCounters,
};
pub use hist::Histogram;
pub use telemetry::{
    FlightRecorder, LatencyHists, LatencyRecorder, PhaseNs, RequestSummary, Telemetry,
    TelemetrySnapshot,
};
pub use trace::{drain_events, scoped, span, Event, ScopeGuard, SpanGuard};

/// Whether timing/tracing capture is compiled in.
pub const ENABLED: bool = cfg!(feature = "enabled");

/// Nanoseconds since the process-wide trace epoch, or 0 when the
/// `enabled` feature is off.
#[inline(always)]
pub fn now_ns() -> u64 {
    trace::now_ns()
}

/// Opens a span with a lazily-built detail string: the closure only
/// runs when recording is compiled in, so callers can format rule keys
/// or addresses without paying for it in disabled builds.
#[inline(always)]
pub fn span_with(name: &'static str, detail: impl FnOnce() -> String) -> SpanGuard {
    if ENABLED {
        span(name).detail(detail())
    } else {
        span(name)
    }
}
