//! Serving-plane telemetry: request-lifecycle latency histograms and a
//! flight recorder of recent request summaries.
//!
//! The serving daemon stamps every request with phase timestamps
//! (queue wait, translate, execute, reply) and folds them into
//! [`LatencyRecorder`] — a vector of per-worker-slot histogram sets.
//! Workers record into *their own* slot, so the hot path contends only
//! with a snapshot in progress, never with another worker; snapshots
//! merge the slots in index order, the same discipline `pdbt-par` uses
//! for per-worker counters, so a snapshot taken after quiescence is a
//! deterministic function of the requests served, independent of
//! worker interleaving.
//!
//! [`FlightRecorder`] keeps the last [`FlightRecorder::CAPACITY`]
//! request summaries in a fixed ring so a postmortem (panic, drain,
//! or a live `STATS` poll) can show *what the daemon just did* without
//! rerunning anything.

use crate::hist::Histogram;
use crate::json::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-request phase durations in nanoseconds. All zero when the `obs`
/// clock is compiled out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseNs {
    /// Accept to dequeue: time spent waiting for a session worker.
    pub queue: u64,
    /// Time inside the translator (sum over blocks).
    pub translate: u64,
    /// Dequeue to run completion, minus translate.
    pub execute: u64,
    /// Serializing and writing the response frame.
    pub reply: u64,
}

impl PhaseNs {
    /// End-to-end latency: the sum of every phase.
    pub fn total(&self) -> u64 {
        self.queue
            .saturating_add(self.translate)
            .saturating_add(self.execute)
            .saturating_add(self.reply)
    }

    pub fn to_json(&self) -> Json {
        Json::obj([
            ("queue_ns", Json::from(self.queue)),
            ("translate_ns", Json::from(self.translate)),
            ("execute_ns", Json::from(self.execute)),
            ("reply_ns", Json::from(self.reply)),
            ("total_ns", Json::from(self.total())),
        ])
    }
}

/// One completed request, as remembered by the flight recorder.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RequestSummary {
    /// Server-assigned monotone request sequence number.
    pub seq: u64,
    /// Client-supplied request id.
    pub id: u64,
    /// Guest-image partition fingerprint the request ran against.
    pub partition: u64,
    /// Outcome label (`completed`, `deadline`, `error`, ...).
    pub outcome: String,
    /// Phase latencies.
    pub phases: PhaseNs,
    /// Response payload size in bytes.
    pub reply_bytes: u64,
    /// Total faults injected during the run (0 without the `faults`
    /// feature or an armed plan).
    pub injected: u64,
    /// Comma-separated fault sites armed for the run, empty when none.
    pub fault_sites: String,
}

impl RequestSummary {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::from(self.seq)),
            ("id", Json::from(self.id)),
            ("partition", Json::str(format!("{:016x}", self.partition))),
            ("outcome", Json::str(&self.outcome)),
            ("phases", self.phases.to_json()),
            ("reply_bytes", Json::from(self.reply_bytes)),
            ("injected", Json::from(self.injected)),
            ("fault_sites", Json::str(&self.fault_sites)),
        ])
    }
}

/// The latency histogram set kept per worker slot (and produced,
/// merged, by snapshots): end-to-end request latency, queue wait, and
/// reply payload size.
#[derive(Clone, Debug)]
pub struct LatencyHists {
    pub request_ns: Histogram,
    pub queue_ns: Histogram,
    pub reply_bytes: Histogram,
}

impl Default for LatencyHists {
    fn default() -> Self {
        LatencyHists {
            request_ns: Histogram::request_ns(),
            queue_ns: Histogram::queue_wait_ns(),
            reply_bytes: Histogram::reply_bytes(),
        }
    }
}

impl LatencyHists {
    pub fn record(&mut self, summary: &RequestSummary) {
        self.request_ns.record(summary.phases.total());
        self.queue_ns.record(summary.phases.queue);
        self.reply_bytes.record(summary.reply_bytes);
    }

    pub fn merge(&mut self, other: &LatencyHists) {
        self.request_ns.merge(&other.request_ns);
        self.queue_ns.merge(&other.queue_ns);
        self.reply_bytes.merge(&other.reply_bytes);
    }

    pub fn to_json(&self) -> Json {
        Json::obj([
            ("request_ns", self.request_ns.to_json()),
            ("queue_ns", self.queue_ns.to_json()),
            ("reply_bytes", self.reply_bytes.to_json()),
        ])
    }
}

/// Per-worker-slot latency histograms, merged in slot order on
/// snapshot.
#[derive(Debug)]
pub struct LatencyRecorder {
    slots: Vec<Mutex<LatencyHists>>,
}

impl LatencyRecorder {
    pub fn new(slots: usize) -> Self {
        LatencyRecorder {
            slots: (0..slots.max(1))
                .map(|_| Mutex::new(LatencyHists::default()))
                .collect(),
        }
    }

    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Records into `slot`'s histogram set (wrapped modulo the slot
    /// count, so callers can pass a worker index directly).
    pub fn record(&self, slot: usize, summary: &RequestSummary) {
        let mut h = self.slots[slot % self.slots.len()].lock().unwrap();
        h.record(summary);
    }

    /// Merges every slot in index order into one histogram set. After
    /// quiescence the result is independent of which worker served
    /// which request, because histogram merge is commutative over
    /// bucket counts and the iteration order is fixed.
    pub fn snapshot(&self) -> LatencyHists {
        let mut out = LatencyHists::default();
        for slot in &self.slots {
            out.merge(&slot.lock().unwrap());
        }
        out
    }
}

/// A fixed-size ring of the most recent [`RequestSummary`] values.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<RequestSummary>>,
}

impl FlightRecorder {
    /// Summaries retained; old entries fall off the front.
    pub const CAPACITY: usize = 32;

    pub fn record(&self, summary: RequestSummary) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == Self::CAPACITY {
            ring.pop_front();
        }
        ring.push_back(summary);
    }

    /// The retained summaries ordered by request sequence number, so
    /// the tail reads chronologically even when workers finished out
    /// of submission order.
    pub fn tail(&self) -> Vec<RequestSummary> {
        let mut out: Vec<_> = self.ring.lock().unwrap().iter().cloned().collect();
        out.sort_by_key(|s| s.seq);
        out
    }
}

/// The telemetry plane attached to one shared translation state:
/// latency recording, the flight recorder, and the request sequence
/// counter.
#[derive(Debug)]
pub struct Telemetry {
    latency: LatencyRecorder,
    flight: FlightRecorder,
    seq: AtomicU64,
    partition: u64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new(1)
    }
}

impl Telemetry {
    pub fn new(slots: usize) -> Self {
        Telemetry::with_partition(slots, 0)
    }

    /// A telemetry plane stamped with the guest-image partition
    /// fingerprint it serves (0 for a standalone, partitionless run).
    pub fn with_partition(slots: usize, partition: u64) -> Self {
        Telemetry {
            latency: LatencyRecorder::new(slots),
            flight: FlightRecorder::default(),
            seq: AtomicU64::new(0),
            partition,
        }
    }

    /// The guest-image partition fingerprint, 0 when standalone.
    pub fn partition(&self) -> u64 {
        self.partition
    }

    /// Claims the next request sequence number (monotone from 1).
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Folds a completed request into the slot's histograms and the
    /// flight ring.
    pub fn record(&self, slot: usize, summary: RequestSummary) {
        self.latency.record(slot, &summary);
        self.flight.record(summary);
    }

    pub fn latency(&self) -> &LatencyRecorder {
        &self.latency
    }

    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            partition: self.partition,
            latency: self.latency.snapshot(),
            flight: self.flight.tail(),
        }
    }
}

/// A point-in-time copy of one telemetry plane.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    pub partition: u64,
    pub latency: LatencyHists,
    pub flight: Vec<RequestSummary>,
}

impl TelemetrySnapshot {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("latency", self.latency.to_json()),
            (
                "flight",
                Json::Arr(self.flight.iter().map(|s| s.to_json()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(seq: u64, total: u64) -> RequestSummary {
        RequestSummary {
            seq,
            id: seq,
            outcome: "completed".into(),
            phases: PhaseNs {
                queue: total / 4,
                translate: total / 4,
                execute: total / 2,
                reply: 0,
            },
            reply_bytes: 512,
            ..RequestSummary::default()
        }
    }

    #[test]
    fn slot_merge_is_independent_of_assignment() {
        // The same 8 requests recorded under two different
        // worker-to-request assignments must snapshot identically.
        let a = LatencyRecorder::new(4);
        let b = LatencyRecorder::new(4);
        for i in 0..8u64 {
            let s = summary(i, 40_000 * (i + 1));
            a.record(i as usize % 4, &s);
            b.record((7 - i) as usize % 4, &s);
        }
        assert_eq!(
            a.snapshot().to_json().to_string(),
            b.snapshot().to_json().to_string()
        );
    }

    #[test]
    fn flight_ring_keeps_the_most_recent_in_seq_order() {
        let f = FlightRecorder::default();
        for seq in 1..=(FlightRecorder::CAPACITY as u64 + 5) {
            // Record mildly out of order in pairs to exercise sorting.
            f.record(summary(seq ^ 1, 1_000));
        }
        let tail = f.tail();
        assert_eq!(tail.len(), FlightRecorder::CAPACITY);
        assert!(tail.windows(2).all(|w| w[0].seq <= w[1].seq));
    }

    #[test]
    fn telemetry_seq_is_monotone_and_snapshot_carries_both_planes() {
        let t = Telemetry::new(2);
        assert_eq!(t.next_seq(), 1);
        assert_eq!(t.next_seq(), 2);
        t.record(0, summary(1, 100_000));
        t.record(1, summary(2, 200_000));
        let snap = t.snapshot();
        assert_eq!(snap.latency.request_ns.count(), 2);
        assert_eq!(snap.flight.len(), 2);
        let doc = snap.to_json();
        assert!(doc
            .get("latency")
            .and_then(|l| l.get("request_ns"))
            .is_some());
        assert_eq!(
            doc.get("flight").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
    }
}
