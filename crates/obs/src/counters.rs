//! Per-rule attribution counters.
//!
//! Rule labels (the `Display` form of a `ComboKey`, or a synthetic name
//! like `seq:...`) are interned once into a dense [`RuleId`] so the hot
//! path touches only `Vec` indexing. Two counts are kept per rule:
//!
//! * `static_hits` — how many times translation selected the rule
//!   (once per translated site), plus `static_misses` for lookups that
//!   found no rule;
//! * `dyn_covered` — how many *executed* guest instructions the rule
//!   supplied, i.e. static coverage weighted by block execution counts.
//!   Summed over all rules this equals the engine's `rule_covered`
//!   metric, so coverage decomposes exactly into per-rule shares.

use std::collections::HashMap;
use std::fmt;

/// Dense handle for an interned rule label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RuleId(pub u32);

/// One rule's attribution row.
#[derive(Clone, Debug, Default)]
pub struct RuleRow {
    /// Display label (`add reg reg imm /00`, `seq:...`, `qemu:...`).
    pub label: String,
    /// Instruction-class subgroup the rule's root op belongs to
    /// (`Int/Dp/Alu` style), empty when not applicable.
    pub subgroup: String,
    /// Times translation instantiated this rule.
    pub static_hits: u64,
    /// Executed guest instructions this rule covered.
    pub dyn_covered: u64,
}

/// Interned per-rule hit/coverage counters plus a miss table.
#[derive(Clone, Debug, Default)]
pub struct RuleCounters {
    index: HashMap<String, RuleId>,
    rows: Vec<RuleRow>,
    /// Lookup misses keyed by the un-matched opcode/key label.
    misses: HashMap<String, u64>,
}

impl RuleCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `label`, recording `subgroup` on first sight.
    pub fn intern(&mut self, label: &str, subgroup: &str) -> RuleId {
        if let Some(&id) = self.index.get(label) {
            return id;
        }
        let id = RuleId(self.rows.len() as u32);
        self.index.insert(label.to_string(), id);
        self.rows.push(RuleRow {
            label: label.to_string(),
            subgroup: subgroup.to_string(),
            ..RuleRow::default()
        });
        id
    }

    #[inline]
    pub fn hit(&mut self, id: RuleId, n: u64) {
        self.rows[id.0 as usize].static_hits += n;
    }

    #[inline]
    pub fn covered(&mut self, id: RuleId, n: u64) {
        self.rows[id.0 as usize].dyn_covered += n;
    }

    /// Records a translate-time lookup that matched no rule.
    pub fn miss(&mut self, label: &str) {
        *self.misses.entry(label.to_string()).or_insert(0) += 1;
    }

    pub fn rows(&self) -> &[RuleRow] {
        &self.rows
    }

    /// Rows sorted by dynamic coverage, heaviest first.
    pub fn rows_by_coverage(&self) -> Vec<&RuleRow> {
        let mut v: Vec<_> = self.rows.iter().collect();
        v.sort_by(|a, b| {
            b.dyn_covered
                .cmp(&a.dyn_covered)
                .then(b.static_hits.cmp(&a.static_hits))
                .then(a.label.cmp(&b.label))
        });
        v
    }

    /// `(label, count)` miss rows, heaviest first.
    pub fn misses(&self) -> Vec<(&str, u64)> {
        let mut v: Vec<_> = self.misses.iter().map(|(k, &n)| (k.as_str(), n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    pub fn total_static_hits(&self) -> u64 {
        self.rows.iter().map(|r| r.static_hits).sum()
    }

    pub fn total_covered(&self) -> u64 {
        self.rows.iter().map(|r| r.dyn_covered).sum()
    }

    pub fn total_misses(&self) -> u64 {
        self.misses.values().sum()
    }

    /// Per-subgroup `(subgroup, dyn_covered)` totals, heaviest first.
    pub fn coverage_by_subgroup(&self) -> Vec<(String, u64)> {
        let mut map: HashMap<&str, u64> = HashMap::new();
        for r in &self.rows {
            if !r.subgroup.is_empty() {
                *map.entry(r.subgroup.as_str()).or_insert(0) += r.dyn_covered;
            }
        }
        let mut v: Vec<_> = map.into_iter().map(|(k, n)| (k.to_string(), n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Folds `other` into `self`, re-interning by label.
    pub fn merge(&mut self, other: &RuleCounters) {
        for row in &other.rows {
            let id = self.intern(&row.label, &row.subgroup);
            self.rows[id.0 as usize].static_hits += row.static_hits;
            self.rows[id.0 as usize].dyn_covered += row.dyn_covered;
        }
        for (label, n) in &other.misses {
            *self.misses.entry(label.clone()).or_insert(0) += n;
        }
    }
}

/// Per-shard hit/miss counters for a sharded cache (the engine's code
/// cache). Indexed by shard; recording grows the vectors on demand so a
/// default-constructed instance can absorb any shard count, and
/// [`ShardCounters::merge`] aligns lengths, so per-run counters fold
/// into suite aggregates like the histograms do.
#[derive(Clone, Debug, Default)]
pub struct ShardCounters {
    hits: Vec<u64>,
    misses: Vec<u64>,
}

impl ShardCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// A counter pre-sized to `n` shards, so exported per-shard rows
    /// have a deterministic length even for shards never touched.
    #[must_use]
    pub fn with_shards(n: usize) -> Self {
        ShardCounters {
            hits: vec![0; n],
            misses: vec![0; n],
        }
    }

    fn ensure(&mut self, shard: usize) {
        if shard >= self.hits.len() {
            self.hits.resize(shard + 1, 0);
            self.misses.resize(shard + 1, 0);
        }
    }

    #[inline]
    pub fn record_hit(&mut self, shard: usize) {
        self.ensure(shard);
        self.hits[shard] += 1;
    }

    #[inline]
    pub fn record_miss(&mut self, shard: usize) {
        self.ensure(shard);
        self.misses[shard] += 1;
    }

    /// Number of shards observed (or pre-sized).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.hits.len()
    }

    pub fn hits(&self) -> &[u64] {
        &self.hits
    }

    pub fn misses(&self) -> &[u64] {
        &self.misses
    }

    pub fn total_hits(&self) -> u64 {
        self.hits.iter().sum()
    }

    pub fn total_misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// Hit fraction over all shards (0.0 when nothing was recorded).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.total_hits() + self.total_misses();
        if total == 0 {
            return 0.0;
        }
        self.total_hits() as f64 / total as f64
    }

    /// Folds `other` into `self`, aligning shard-vector lengths. An
    /// empty `other` is a no-op (it must not pad `self` to one shard).
    pub fn merge(&mut self, other: &ShardCounters) {
        if other.hits.is_empty() {
            return;
        }
        self.ensure(other.hits.len() - 1);
        for (a, b) in self.hits.iter_mut().zip(&other.hits) {
            *a += b;
        }
        for (a, b) in self.misses.iter_mut().zip(&other.misses) {
            *a += b;
        }
    }
}

/// Per-worker task counters for a worker pool (the parallel
/// pre-translation and derivation stages). Worker `i` of a pool maps to
/// slot `i`; merging is element-wise with length alignment.
#[derive(Clone, Debug, Default)]
pub struct PoolCounters {
    tasks: Vec<u64>,
}

impl PoolCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// A counter pre-sized to `n` worker slots, so `workers()` reports
    /// the *effective* pool width even before (or without) any pool
    /// invocation being recorded — a `jobs: 0` CLI request that clamps
    /// to one worker must surface as `workers: 1`, not `workers: 0`.
    #[must_use]
    pub fn with_workers(n: usize) -> Self {
        PoolCounters { tasks: vec![0; n] }
    }

    /// Adds one pool invocation's per-worker task counts.
    pub fn record(&mut self, per_worker: &[u64]) {
        if per_worker.len() > self.tasks.len() {
            self.tasks.resize(per_worker.len(), 0);
        }
        for (a, b) in self.tasks.iter_mut().zip(per_worker) {
            *a += b;
        }
    }

    /// Worker slots observed.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.tasks.len()
    }

    pub fn tasks(&self) -> &[u64] {
        &self.tasks
    }

    pub fn total(&self) -> u64 {
        self.tasks.iter().sum()
    }

    /// Folds `other` into `self`, aligning worker-vector lengths.
    pub fn merge(&mut self, other: &PoolCounters) {
        self.record(&other.tasks);
    }
}

/// Dispatch hot-path counters: how block transitions were resolved
/// (direct-mapped jump cache, inline chain links, or the full
/// dispatcher) and how many hot traces were promoted to superblocks.
#[derive(Clone, Debug, Default)]
pub struct DispatchCounters {
    /// Direct-mapped jump-cache probes that hit.
    pub jump_cache_hits: u64,
    /// Jump-cache probes that missed (fell through to the dispatcher).
    pub jump_cache_misses: u64,
    /// Block transitions followed through an inline chain link without
    /// re-entering the dispatcher.
    pub chain_followed: u64,
    /// Chain links lazily resolved (first follow, or re-resolved after
    /// an epoch bump).
    pub links_resolved: u64,
    /// Hot traces promoted to superblocks.
    pub traces_formed: u64,
    /// Superblock executions.
    pub trace_execs: u64,
    /// Chain/jump-cache invalidation epochs (trace formation or a
    /// member block degrading).
    pub invalidations: u64,
    /// Blocks compiled to threaded code by this session (first-execute
    /// lazy compiles; deterministic — one per distinct block executed).
    pub compiled_blocks: u64,
    /// Wall-clock nanoseconds spent compiling threaded code. Timing,
    /// so determinism comparisons strip it (like
    /// `histograms.translate_ns`).
    pub compile_ns: u64,
}

impl DispatchCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds `other` into `self` field-wise.
    pub fn merge(&mut self, other: &DispatchCounters) {
        self.jump_cache_hits += other.jump_cache_hits;
        self.jump_cache_misses += other.jump_cache_misses;
        self.chain_followed += other.chain_followed;
        self.links_resolved += other.links_resolved;
        self.traces_formed += other.traces_formed;
        self.trace_execs += other.trace_execs;
        self.invalidations += other.invalidations;
        self.compiled_blocks += other.compiled_blocks;
        self.compile_ns += other.compile_ns;
    }
}

/// Server-lifetime shared-translation counters, updated concurrently
/// by every session attached to one `SharedTranslationState` (atomics;
/// a session holds the state behind an `Arc`).
///
/// The invariant that keeps these *deterministic* under concurrency:
/// `probes` counts each session's first sight of a block address (one
/// probe per distinct pc per session), and `inserted` counts the
/// translations that actually entered the shared cache (the insert
/// dedups, so exactly one per distinct pc server-wide). `hits` is
/// *derived* as `probes - inserted`: a session that raced another to
/// translate the same block and lost counts as a hit — its duplicate
/// work shows up only in `translate_calls`, the one field that may
/// legitimately exceed `inserted` under concurrency.
#[derive(Debug, Default)]
pub struct ServerCounters {
    probes: std::sync::atomic::AtomicU64,
    inserted: std::sync::atomic::AtomicU64,
    translate_calls: std::sync::atomic::AtomicU64,
    sessions: std::sync::atomic::AtomicU64,
    compiled: std::sync::atomic::AtomicU64,
}

impl ServerCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one session-first-sight probe of the shared cache.
    #[inline]
    pub fn record_probe(&self) {
        self.probes
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Records a translation that won the insert race (a new block
    /// entered the shared cache).
    #[inline]
    pub fn record_insert(&self) {
        self.inserted
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Records one `translate_block` invocation (including race losers
    /// whose result was discarded).
    #[inline]
    pub fn record_translate(&self) {
        self.translate_calls
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Records a session attaching to the shared state.
    #[inline]
    pub fn record_session(&self) {
        self.sessions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Records a block compiled to threaded code (first execute of a
    /// block by any session sharing this state).
    #[inline]
    pub fn record_compiled(&self) {
        self.compiled
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> ServerSnapshot {
        use std::sync::atomic::Ordering::Relaxed;
        let probes = self.probes.load(Relaxed);
        let inserted = self.inserted.load(Relaxed);
        ServerSnapshot {
            probes,
            inserted,
            hits: probes.saturating_sub(inserted),
            translate_calls: self.translate_calls.load(Relaxed),
            sessions: self.sessions.load(Relaxed),
            compiled_blocks: self.compiled.load(Relaxed),
        }
    }
}

/// A point-in-time copy of [`ServerCounters`], embedded in run reports
/// as the `server` section.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerSnapshot {
    /// Session-first-sight probes of the shared cache.
    pub probes: u64,
    /// Distinct blocks translated into the shared cache.
    pub inserted: u64,
    /// Probes served without a new translation entering the cache
    /// (`probes - inserted`).
    pub hits: u64,
    /// Actual `translate_block` invocations (≥ `inserted`; the excess
    /// is duplicate work from insert races).
    pub translate_calls: u64,
    /// Sessions that attached to the shared state.
    pub sessions: u64,
    /// Blocks compiled to threaded code across all sessions (0 under
    /// the model backend).
    pub compiled_blocks: u64,
}

impl ServerSnapshot {
    /// Fraction of probes served from the warm cache (0.0 when nothing
    /// was probed).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.probes == 0 {
            return 0.0;
        }
        self.hits as f64 / self.probes as f64
    }
}

/// Translation-artifact counters of one shared state: what a sealed
/// `.pdba` artifact contributed at boot (fixed at load time) plus the
/// live superblock-library hits. A cold state carries the all-zero
/// default. Reported inside the `server` JSON section, so determinism
/// comparisons strip it alongside the other server-lifetime counters.
#[derive(Debug, Default)]
pub struct ArtifactCounters {
    /// Pre-translated blocks rehydrated into the shared cache at boot.
    loaded_blocks: u64,
    /// Superblock traces loaded into the trace library at boot.
    loaded_traces: u64,
    /// Rules carried by the artifact's embedded ruleset (0 when the
    /// artifact had no RULE section or it was quarantined).
    loaded_rules: u64,
    /// Artifact sections whose checksum or parse failed and were
    /// quarantined at load (the rest of the artifact still boots).
    quarantined_sections: u64,
    /// Trace formations served from the loaded library instead of a
    /// fresh `translate_trace` call.
    trace_hits: std::sync::atomic::AtomicU64,
}

impl ArtifactCounters {
    /// Cold counters: no artifact was loaded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters for a state booted from an artifact.
    #[must_use]
    pub fn loaded(
        loaded_blocks: u64,
        loaded_traces: u64,
        loaded_rules: u64,
        quarantined_sections: u64,
    ) -> Self {
        ArtifactCounters {
            loaded_blocks,
            loaded_traces,
            loaded_rules,
            quarantined_sections,
            trace_hits: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Records a trace formation served from the loaded library.
    #[inline]
    pub fn record_trace_hit(&self) {
        self.trace_hits
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> ArtifactSnapshot {
        ArtifactSnapshot {
            loaded_blocks: self.loaded_blocks,
            loaded_traces: self.loaded_traces,
            loaded_rules: self.loaded_rules,
            quarantined_sections: self.quarantined_sections,
            trace_hits: self.trace_hits.load(std::sync::atomic::Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`ArtifactCounters`], embedded in run
/// reports inside the `server` section as `artifact`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ArtifactSnapshot {
    /// Pre-translated blocks rehydrated at boot.
    pub loaded_blocks: u64,
    /// Superblock traces loaded at boot.
    pub loaded_traces: u64,
    /// Rules carried by the artifact's embedded ruleset.
    pub loaded_rules: u64,
    /// Sections quarantined at load.
    pub quarantined_sections: u64,
    /// Trace formations served from the loaded library.
    pub trace_hits: u64,
}

impl ArtifactSnapshot {
    /// Whether any artifact content reached this state.
    #[must_use]
    pub fn warm(&self) -> bool {
        self.loaded_blocks > 0 || self.loaded_traces > 0 || self.loaded_rules > 0
    }
}

/// Replication-plane counters of one serving daemon: what the fleet
/// protocol (`ART_LIST`/`ART_PULL`/`ART_PUSH`) moved in and out, and
/// what the drain write-back persisted. Server-global (not per
/// partition) and updated concurrently by the accept loop and the
/// replication tick, so everything is atomic. Surfaced as the `fleet`
/// section of the PING/STATS payloads.
#[derive(Debug, Default)]
pub struct FleetCounters {
    /// Artifacts fetched from peers (boot pull or refresh tick),
    /// whether or not they were subsequently adopted.
    pulled: std::sync::atomic::AtomicU64,
    /// Artifacts served out to peers (answering their `ART_PULL`).
    pushed: std::sync::atomic::AtomicU64,
    /// Incoming artifacts that replaced (or created) a partition.
    adopted: std::sync::atomic::AtomicU64,
    /// Incoming artifacts refused: validation failure, fingerprint
    /// mismatch, or a stale generation.
    rejected: std::sync::atomic::AtomicU64,
    /// Partitions re-sealed to the artifact dir on drain.
    written_back: std::sync::atomic::AtomicU64,
    /// Total artifact payload bytes moved (in + out + written back).
    bytes: std::sync::atomic::AtomicU64,
}

impl FleetCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an artifact fetched from a peer.
    #[inline]
    pub fn record_pulled(&self) {
        self.pulled
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Records an artifact served out to a peer.
    #[inline]
    pub fn record_pushed(&self) {
        self.pushed
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Records an incoming artifact adopted into a partition.
    #[inline]
    pub fn record_adopted(&self) {
        self.adopted
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Records an incoming artifact refused.
    #[inline]
    pub fn record_rejected(&self) {
        self.rejected
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Records a partition written back to the artifact dir on drain.
    #[inline]
    pub fn record_written_back(&self) {
        self.written_back
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Records artifact payload bytes moved.
    #[inline]
    pub fn record_bytes(&self, n: u64) {
        self.bytes
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> FleetSnapshot {
        use std::sync::atomic::Ordering::Relaxed;
        FleetSnapshot {
            pulled: self.pulled.load(Relaxed),
            pushed: self.pushed.load(Relaxed),
            adopted: self.adopted.load(Relaxed),
            rejected: self.rejected.load(Relaxed),
            written_back: self.written_back.load(Relaxed),
            bytes: self.bytes.load(Relaxed),
        }
    }
}

/// A point-in-time copy of [`FleetCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetSnapshot {
    /// Artifacts fetched from peers.
    pub pulled: u64,
    /// Artifacts served out to peers.
    pub pushed: u64,
    /// Incoming artifacts adopted into partitions.
    pub adopted: u64,
    /// Incoming artifacts refused.
    pub rejected: u64,
    /// Partitions written back on drain.
    pub written_back: u64,
    /// Artifact payload bytes moved.
    pub bytes: u64,
}

impl fmt::Display for RuleCounters {
    /// Human-readable table, heaviest coverage first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  {:<40} {:<24} {:>8} {:>10}",
            "rule", "subgroup", "hits", "covered"
        )?;
        for r in self.rows_by_coverage() {
            writeln!(
                f,
                "  {:<40} {:<24} {:>8} {:>10}",
                r.label, r.subgroup, r.static_hits, r.dyn_covered
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_counts_accumulate() {
        let mut c = RuleCounters::new();
        let a = c.intern("add reg reg imm /00", "Int/Dp/Alu");
        let b = c.intern("ldr reg mem /01", "Int/Mem/Load");
        let a2 = c.intern("add reg reg imm /00", "Int/Dp/Alu");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        c.hit(a, 1);
        c.hit(a, 1);
        c.covered(a, 10);
        c.hit(b, 1);
        c.covered(b, 4);
        assert_eq!(c.total_static_hits(), 3);
        assert_eq!(c.total_covered(), 14);
        assert_eq!(c.rows_by_coverage()[0].label, "add reg reg imm /00");
    }

    #[test]
    fn merge_reinterns_by_label() {
        let mut a = RuleCounters::new();
        let ra = a.intern("add", "Int/Dp/Alu");
        a.hit(ra, 2);
        a.covered(ra, 20);
        a.miss("vadd");

        let mut b = RuleCounters::new();
        // Different interning order on the other side.
        let rb_other = b.intern("sub", "Int/Dp/Alu");
        let rb = b.intern("add", "Int/Dp/Alu");
        b.hit(rb, 3);
        b.covered(rb, 30);
        b.hit(rb_other, 1);
        b.covered(rb_other, 5);
        b.miss("vadd");
        b.miss("svc");

        a.merge(&b);
        assert_eq!(a.total_static_hits(), 6);
        assert_eq!(a.total_covered(), 55);
        assert_eq!(a.total_misses(), 3);
        let add = a.rows().iter().find(|r| r.label == "add").unwrap();
        assert_eq!(add.static_hits, 5);
        assert_eq!(add.dyn_covered, 50);
        assert_eq!(a.misses()[0], ("vadd", 2));
    }

    #[test]
    fn shard_counters_grow_merge_and_rate() {
        let mut a = ShardCounters::with_shards(4);
        assert_eq!(a.shards(), 4);
        a.record_hit(0);
        a.record_hit(0);
        a.record_miss(3);
        assert_eq!(a.total_hits(), 2);
        assert_eq!(a.total_misses(), 1);
        assert!((a.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        // A default-constructed counter grows on demand and merges in.
        let mut b = ShardCounters::new();
        b.record_hit(7);
        a.merge(&b);
        assert_eq!(a.shards(), 8);
        assert_eq!(a.hits()[7], 1);
        assert_eq!(a.total_hits(), 3);
        assert_eq!(ShardCounters::new().hit_rate(), 0.0);
    }

    #[test]
    fn pool_counters_accumulate_per_worker() {
        let mut p = PoolCounters::new();
        p.record(&[3, 1]);
        p.record(&[2, 2, 4]);
        assert_eq!(p.workers(), 3);
        assert_eq!(p.tasks(), &[5, 3, 4]);
        assert_eq!(p.total(), 12);
        let mut q = PoolCounters::new();
        q.merge(&p);
        assert_eq!(q.tasks(), p.tasks());
    }

    #[test]
    fn pool_counters_presized_report_effective_workers() {
        let p = PoolCounters::with_workers(4);
        assert_eq!(p.workers(), 4);
        assert_eq!(p.total(), 0);
        let mut p = PoolCounters::with_workers(1);
        // Recording a wider invocation still grows the vector.
        p.record(&[1, 2]);
        assert_eq!(p.workers(), 2);
        assert_eq!(p.tasks(), &[1, 2]);
    }

    #[test]
    fn server_counters_derive_hits_from_probes_and_inserts() {
        let c = ServerCounters::new();
        for _ in 0..3 {
            c.record_session();
        }
        // 3 sessions × 4 blocks probed; only the first session's 4
        // translations entered the cache, but one race loser also
        // called the translator.
        for _ in 0..12 {
            c.record_probe();
        }
        for _ in 0..4 {
            c.record_insert();
        }
        for _ in 0..5 {
            c.record_translate();
        }
        let s = c.snapshot();
        assert_eq!(s.sessions, 3);
        assert_eq!(s.probes, 12);
        assert_eq!(s.inserted, 4);
        assert_eq!(s.hits, 8, "hits = probes - inserted");
        assert_eq!(s.translate_calls, 5);
        assert!((s.hit_rate() - 8.0 / 12.0).abs() < 1e-12);
        assert_eq!(ServerSnapshot::default().hit_rate(), 0.0);
        // Concurrent recording keeps the derived totals exact.
        std::thread::scope(|sc| {
            for _ in 0..4 {
                sc.spawn(|| {
                    for _ in 0..100 {
                        c.record_probe();
                    }
                });
            }
        });
        assert_eq!(c.snapshot().probes, 412);
    }

    #[test]
    fn subgroup_rollup_sums_dynamic_coverage() {
        let mut c = RuleCounters::new();
        let a = c.intern("add", "Int/Dp/Alu");
        let s = c.intern("sub", "Int/Dp/Alu");
        let l = c.intern("ldr", "Int/Mem/Load");
        c.covered(a, 7);
        c.covered(s, 3);
        c.covered(l, 5);
        assert_eq!(
            c.coverage_by_subgroup(),
            vec![
                ("Int/Dp/Alu".to_string(), 10),
                ("Int/Mem/Load".to_string(), 5)
            ]
        );
    }
}
