//! Ring-buffered structured span tracing.
//!
//! [`span`] opens a named span; the guard records a completed [`Event`]
//! into a thread-local ring buffer when dropped. The buffer holds the
//! most recent [`CAPACITY`] events and counts (rather than grows on)
//! overflow, so tracing a long run has a fixed memory bound.
//!
//! Without the `enabled` feature the guard is a zero-sized type, the
//! clock reads return 0, and the whole module folds away — the
//! instrumentation sites in `learn`, `parameterize`, `verify`,
//! `translate_block` and `exec_block` cost nothing.

/// A completed span.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Span name (`translate_block`, `verify`, ...).
    pub name: &'static str,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Optional free-form argument (e.g. the block address or rule key).
    pub detail: Option<Box<str>>,
    /// Session/request scope the span ran under (see [`scoped`]); 0
    /// when no scope was active.
    pub scope: u64,
}

/// Ring capacity in events.
pub const CAPACITY: usize = 1 << 16;

#[cfg(feature = "enabled")]
mod imp {
    use super::{Event, CAPACITY};
    use std::cell::RefCell;
    use std::sync::OnceLock;
    use std::time::Instant;

    static EPOCH: OnceLock<Instant> = OnceLock::new();

    pub fn now_ns() -> u64 {
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    struct Ring {
        events: Vec<Event>,
        head: usize,
        dropped: u64,
    }

    thread_local! {
        static RING: RefCell<Ring> = const { RefCell::new(Ring {
            events: Vec::new(),
            head: 0,
            dropped: 0,
        }) };
        static SCOPE: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }

    /// Tags every span opened on this thread until the guard drops with
    /// `id` (a session or request identifier). Nested scopes restore
    /// the outer id on drop.
    pub fn scoped(id: u64) -> ScopeGuard {
        let prev = SCOPE.with(|s| s.replace(id));
        ScopeGuard { prev }
    }

    pub struct ScopeGuard {
        prev: u64,
    }

    impl Drop for ScopeGuard {
        fn drop(&mut self) {
            SCOPE.with(|s| s.set(self.prev));
        }
    }

    fn current_scope() -> u64 {
        SCOPE.with(|s| s.get())
    }

    pub struct SpanGuard {
        name: &'static str,
        start_ns: u64,
        detail: Option<Box<str>>,
    }

    impl SpanGuard {
        /// Attaches a free-form detail string to the span.
        pub fn detail(mut self, d: impl Into<String>) -> Self {
            self.detail = Some(d.into().into_boxed_str());
            self
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let dur_ns = now_ns().saturating_sub(self.start_ns);
            let ev = Event {
                name: self.name,
                start_ns: self.start_ns,
                dur_ns,
                detail: self.detail.take(),
                scope: current_scope(),
            };
            RING.with(|r| {
                let mut r = r.borrow_mut();
                if r.events.len() < CAPACITY {
                    r.events.push(ev);
                } else {
                    let head = r.head;
                    r.events[head] = ev;
                    r.head = (head + 1) % CAPACITY;
                    r.dropped += 1;
                }
            });
        }
    }

    #[inline]
    pub fn span(name: &'static str) -> SpanGuard {
        SpanGuard {
            name,
            start_ns: now_ns(),
            detail: None,
        }
    }

    /// Drains this thread's buffered events in chronological order and
    /// returns them with the count of events lost to ring overflow.
    pub fn drain_events() -> (Vec<Event>, u64) {
        RING.with(|r| {
            let mut r = r.borrow_mut();
            let head = r.head;
            let mut evs = std::mem::take(&mut r.events);
            evs.rotate_left(head);
            r.head = 0;
            (evs, std::mem::take(&mut r.dropped))
        })
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::Event;

    #[inline(always)]
    pub fn now_ns() -> u64 {
        0
    }

    /// Inert zero-sized guard: construction, `detail` and drop all
    /// compile to nothing.
    pub struct SpanGuard;

    impl SpanGuard {
        #[inline(always)]
        pub fn detail(self, _d: impl Into<String>) -> Self {
            self
        }
    }

    #[inline(always)]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard
    }

    #[inline(always)]
    pub fn drain_events() -> (Vec<Event>, u64) {
        (Vec::new(), 0)
    }

    /// Inert zero-sized scope guard.
    pub struct ScopeGuard;

    #[inline(always)]
    pub fn scoped(_id: u64) -> ScopeGuard {
        ScopeGuard
    }
}

pub use imp::{drain_events, now_ns, scoped, span, ScopeGuard, SpanGuard};

/// Serializes events as a Chrome `trace_event` JSON document (load in
/// `chrome://tracing` or Perfetto). Timestamps are microseconds. Each
/// distinct event scope (session/request id) becomes its own `pid`
/// track — unscoped events land on pid 1 — so multi-session daemon
/// traces no longer interleave on a single row.
pub fn export_chrome_trace(events: &[Event]) -> String {
    use crate::json::esc;
    let mut out = String::with_capacity(events.len() * 96 + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let pid = if e.scope == 0 { 1 } else { e.scope };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{pid},\"ts\":{}.{:03},\"dur\":{}.{:03}",
            esc(e.name),
            e.start_ns / 1_000,
            e.start_ns % 1_000,
            e.dur_ns / 1_000,
            e.dur_ns % 1_000,
        ));
        if let Some(d) = &e.detail {
            out.push_str(&format!(",\"args\":{{\"detail\":\"{}\"}}", esc(d)));
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(feature = "enabled")]
    fn spans_record_into_ring_in_order() {
        let _ = drain_events();
        {
            let _a = span("outer");
            let _b = span("inner").detail("x=1");
        }
        let (evs, dropped) = drain_events();
        assert_eq!(dropped, 0);
        // Guards drop inner-first.
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "inner");
        assert_eq!(evs[0].detail.as_deref(), Some("x=1"));
        assert_eq!(evs[1].name, "outer");
        assert!(evs[1].start_ns <= evs[0].start_ns);
    }

    #[test]
    #[cfg(not(feature = "enabled"))]
    fn disabled_spans_are_inert() {
        let _g = span("anything").detail("ignored");
        drop(_g);
        let (evs, dropped) = drain_events();
        assert!(evs.is_empty());
        assert_eq!(dropped, 0);
        assert_eq!(now_ns(), 0);
    }

    #[test]
    #[cfg(feature = "enabled")]
    fn scoped_spans_carry_the_session_id() {
        let _ = drain_events();
        {
            let _outer = scoped(7);
            let _a = span("in_scope");
            drop(_a);
            {
                let _inner = scoped(9);
                let _b = span("nested_scope");
            }
            let _c = span("back_in_outer");
        }
        let _d = span("unscoped");
        drop(_d);
        let (evs, _) = drain_events();
        let scope_of = |name: &str| evs.iter().find(|e| e.name == name).unwrap().scope;
        assert_eq!(scope_of("in_scope"), 7);
        assert_eq!(scope_of("nested_scope"), 9);
        assert_eq!(scope_of("back_in_outer"), 7);
        assert_eq!(scope_of("unscoped"), 0);
    }

    #[test]
    fn chrome_export_is_wellformed_json() {
        let evs = vec![
            Event {
                name: "translate_block",
                start_ns: 1_500,
                dur_ns: 2_000,
                detail: Some("addr=0x1000".into()),
                scope: 0,
            },
            Event {
                name: "exec_block",
                start_ns: 4_000,
                dur_ns: 10,
                detail: None,
                scope: 42,
            },
        ];
        let s = export_chrome_trace(&evs);
        let doc = crate::json::Json::parse(&s).expect("parses");
        let arr = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(
            arr[0].get("name").and_then(|v| v.as_str()),
            Some("translate_block")
        );
        assert_eq!(arr[1].get("ph").and_then(|v| v.as_str()), Some("X"));
        // Unscoped events fall on pid 1; scoped events get their own.
        assert_eq!(arr[0].get("pid").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(arr[1].get("pid").and_then(|v| v.as_u64()), Some(42));
        assert_eq!(arr[1].get("tid").and_then(|v| v.as_u64()), Some(42));
    }
}
