//! Property tests for the dual-target compiler: every valid random
//! source program compiles on both backends, the guest image executes
//! to completion, and the span tables are consistent.

use pdbt_compiler::lang::*;
use pdbt_compiler::{build_debug_map, compile_pair};
use pdbt_isa::Width;
use proptest::prelude::*;

fn var() -> impl Strategy<Value = Var> {
    (0u8..8).prop_map(Var)
}

/// Destination variables exclude `v1`, which holds the data base
/// pointer for the final store.
fn dst_var() -> impl Strategy<Value = Var> {
    (0u8..7).prop_map(|i| Var(if i >= 1 { i + 1 } else { i }))
}

fn rvalue() -> impl Strategy<Value = Rvalue> {
    prop_oneof![
        var().prop_map(Rvalue::Var),
        (0u32..2048).prop_map(Rvalue::Const)
    ]
}

fn stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (dst_var(), 0usize..10, var(), rvalue()).prop_map(|(dst, opi, a, b)| {
            const OPS: [BinOp; 10] = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::And,
                BinOp::Or,
                BinOp::Xor,
                BinOp::AndNot,
                BinOp::Shl,
                BinOp::Shr,
                BinOp::Sar,
                BinOp::Mul,
            ];
            Stmt::Bin {
                dst,
                op: OPS[opi],
                a: Rvalue::Var(a),
                b,
            }
        }),
        (dst_var(), var()).prop_map(|(dst, a)| Stmt::Un {
            dst,
            op: UnOp::Not,
            a: Rvalue::Var(a)
        }),
        (dst_var(), rvalue()).prop_map(|(dst, a)| Stmt::Un {
            dst,
            op: UnOp::Mov,
            a
        }),
        (dst_var(), var(), var(), var()).prop_map(|(d, a, b, c)| Stmt::MulAdd { dst: d, a, b, c }),
        (dst_var(), var()).prop_map(|(dst, a)| Stmt::Un {
            dst,
            op: UnOp::Clz,
            a: Rvalue::Var(a)
        }),
        var().prop_map(|a| Stmt::Output { a }),
    ]
}

fn source(stmts: Vec<Stmt>) -> SourceProgram {
    let mut all = vec![
        // Materialize a valid data base in v1 in case memory statements
        // are ever added to the pool.
        Stmt::Un {
            dst: Var(1),
            op: UnOp::Mov,
            a: Rvalue::Const(0x100),
        },
        Stmt::Bin {
            dst: Var(1),
            op: BinOp::Shl,
            a: Rvalue::Var(Var(1)),
            b: Rvalue::Const(12),
        },
    ];
    all.extend(stmts);
    all.push(Stmt::Store {
        src: Var(0),
        base: Var(1),
        offset: 0,
        width: Width::B32,
    });
    all.push(Stmt::Return);
    SourceProgram {
        functions: vec![Function {
            name: "p".into(),
            stmts: all,
            n_vars: 8,
        }],
    }
}

proptest! {
    #[test]
    fn random_programs_compile_and_run(stmts in proptest::collection::vec(stmt(), 0..30)) {
        let src = source(stmts);
        let pair = compile_pair(&src, 0x1000).expect("compiles");
        // Span tables: in-bounds, ordered, contiguous coverage.
        let mut prev_end = 0usize;
        for span in &pair.guest.spans {
            prop_assert!(span.range.start == prev_end || span.range.is_empty());
            prop_assert!(span.range.end <= pair.guest.program.len());
            prev_end = span.range.end.max(prev_end);
        }
        // The accurate debug map joins both sides consistently.
        let map = build_debug_map(&pair.guest, &pair.host);
        for e in &map {
            prop_assert!(e.guest.end <= pair.guest.program.len());
            prop_assert!(e.host.end <= pair.host.insts.len());
            prop_assert!(!e.guest.is_empty());
            prop_assert!(!e.host.is_empty());
        }
        // The guest image executes to completion.
        let mut cpu = pdbt_isa_arm::Cpu::new();
        cpu.mem.map(0x10_0000, 0x1000);
        cpu.mem.map(0x8_0000, 0x1000);
        cpu.write(pdbt_isa_arm::Reg::Sp, 0x8_1000);
        pdbt_isa_arm::run(&mut cpu, &pair.guest.program, 100_000).expect("runs");
    }
}
