//! Randomized tests for the dual-target compiler: every valid random
//! source program compiles on both backends, the guest image executes
//! to completion, and the span tables are consistent.
//!
//! Originally written with `proptest`; the offline build environment has
//! no crates.io access, so the strategies are hand-rolled samplers over
//! the deterministic in-tree PRNG (`pdbt-rng`, aliased as `rand`).

use pdbt_compiler::lang::*;
use pdbt_compiler::{build_debug_map, compile_pair};
use pdbt_isa::Width;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cases() -> usize {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

fn var(rng: &mut StdRng) -> Var {
    Var(rng.gen_range(0u8..8))
}

/// Destination variables exclude `v1`, which holds the data base
/// pointer for the final store.
fn dst_var(rng: &mut StdRng) -> Var {
    let i = rng.gen_range(0u8..7);
    Var(if i >= 1 { i + 1 } else { i })
}

fn rvalue(rng: &mut StdRng) -> Rvalue {
    if rng.gen_bool(0.5) {
        Rvalue::Var(var(rng))
    } else {
        Rvalue::Const(rng.gen_range(0u32..2048))
    }
}

fn stmt(rng: &mut StdRng) -> Stmt {
    match rng.gen_range(0..6) {
        0 => {
            const OPS: [BinOp; 10] = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::And,
                BinOp::Or,
                BinOp::Xor,
                BinOp::AndNot,
                BinOp::Shl,
                BinOp::Shr,
                BinOp::Sar,
                BinOp::Mul,
            ];
            Stmt::Bin {
                dst: dst_var(rng),
                op: OPS[rng.gen_range(0..10)],
                a: Rvalue::Var(var(rng)),
                b: rvalue(rng),
            }
        }
        1 => Stmt::Un {
            dst: dst_var(rng),
            op: UnOp::Not,
            a: Rvalue::Var(var(rng)),
        },
        2 => Stmt::Un {
            dst: dst_var(rng),
            op: UnOp::Mov,
            a: rvalue(rng),
        },
        3 => Stmt::MulAdd {
            dst: dst_var(rng),
            a: var(rng),
            b: var(rng),
            c: var(rng),
        },
        4 => Stmt::Un {
            dst: dst_var(rng),
            op: UnOp::Clz,
            a: Rvalue::Var(var(rng)),
        },
        _ => Stmt::Output { a: var(rng) },
    }
}

fn source(stmts: Vec<Stmt>) -> SourceProgram {
    let mut all = vec![
        // Materialize a valid data base in v1 in case memory statements
        // are ever added to the pool.
        Stmt::Un {
            dst: Var(1),
            op: UnOp::Mov,
            a: Rvalue::Const(0x100),
        },
        Stmt::Bin {
            dst: Var(1),
            op: BinOp::Shl,
            a: Rvalue::Var(Var(1)),
            b: Rvalue::Const(12),
        },
    ];
    all.extend(stmts);
    all.push(Stmt::Store {
        src: Var(0),
        base: Var(1),
        offset: 0,
        width: Width::B32,
    });
    all.push(Stmt::Return);
    SourceProgram {
        functions: vec![Function {
            name: "p".into(),
            stmts: all,
            n_vars: 8,
        }],
    }
}

#[test]
fn random_programs_compile_and_run() {
    let mut rng = StdRng::seed_from_u64(0xC0_01);
    for _ in 0..cases() {
        let n = rng.gen_range(0..30);
        let stmts: Vec<Stmt> = (0..n).map(|_| stmt(&mut rng)).collect();
        let src = source(stmts);
        let pair = compile_pair(&src, 0x1000).expect("compiles");
        // Span tables: in-bounds, ordered, contiguous coverage.
        let mut prev_end = 0usize;
        for span in &pair.guest.spans {
            assert!(span.range.start == prev_end || span.range.is_empty());
            assert!(span.range.end <= pair.guest.program.len());
            prev_end = span.range.end.max(prev_end);
        }
        // The accurate debug map joins both sides consistently.
        let map = build_debug_map(&pair.guest, &pair.host);
        for e in &map {
            assert!(e.guest.end <= pair.guest.program.len());
            assert!(e.host.end <= pair.host.insts.len());
            assert!(!e.guest.is_empty());
            assert!(!e.host.is_empty());
        }
        // The guest image executes to completion.
        let mut cpu = pdbt_isa_arm::Cpu::new();
        cpu.mem.map(0x10_0000, 0x1000);
        cpu.mem.map(0x8_0000, 0x1000);
        cpu.write(pdbt_isa_arm::Reg::Sp, 0x8_1000);
        pdbt_isa_arm::run(&mut cpu, &pair.guest.program, 100_000).expect("runs");
    }
}
