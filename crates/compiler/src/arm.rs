//! The guest (ARM) backend.
//!
//! Variables live in `r4..r11`; `r12` is the materialization scratch.
//! A peephole pass fuses `dst = dst op …; if (dst ==/!= 0) goto L` into a
//! flag-setting instruction plus a conditional branch (`subs` + `bne`),
//! which is where the guest's implicit flag side effects — the target of
//! the paper's condition-flag delegation — come from.

use crate::lang::{BinOp, CmpKind, Rvalue, SourceProgram, Stmt, UnOp, Var};
use pdbt_isa::Cond;
use pdbt_isa::Width;
use pdbt_isa_arm::builders as g;
use pdbt_isa_arm::{Inst, MemAddr, Op, Operand, Program, Reg, INST_SIZE};
use std::collections::HashMap;
use std::fmt;

/// Scratch register for materialized constants.
const SCRATCH: Reg = Reg::R12;

/// The guest register assigned to a variable.
#[must_use]
pub fn var_reg(v: Var) -> Reg {
    Reg::from_index(4 + v.0 as usize).expect("variable register in range")
}

/// A compile-time error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.detail)
    }
}

impl std::error::Error for CompileError {}

fn err<T>(detail: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError {
        detail: detail.into(),
    })
}

/// Where each statement landed in the emitted code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StmtSpan {
    /// Function index.
    pub func: usize,
    /// Statement index within the function.
    pub stmt: usize,
    /// Emitted instruction range (indices into the flat program).
    pub range: std::ops::Range<usize>,
}

/// The compiled guest image.
#[derive(Debug, Clone)]
pub struct GuestImage {
    /// The linked program.
    pub program: Program,
    /// Statement spans (the accurate compiler-side map; debug-info
    /// degradation is applied separately).
    pub spans: Vec<StmtSpan>,
    /// Start instruction index of each function.
    pub func_starts: Vec<usize>,
}

fn op2(v: Rvalue) -> Operand {
    match v {
        Rvalue::Var(v) => Operand::Reg(var_reg(v)),
        Rvalue::Const(c) => Operand::Imm(c),
    }
}

fn guest_binop(op: BinOp) -> Op {
    match op {
        BinOp::Add => Op::Add,
        BinOp::Sub => Op::Sub,
        BinOp::And => Op::And,
        BinOp::Or => Op::Orr,
        BinOp::Xor => Op::Eor,
        BinOp::AndNot => Op::Bic,
        BinOp::Shl => Op::Lsl,
        BinOp::Shr => Op::Lsr,
        BinOp::Sar => Op::Asr,
        BinOp::Ror => Op::Ror,
        BinOp::Mul => Op::Mul,
    }
}

/// A pending branch fixup.
enum Fixup {
    /// Branch to a local label: (instruction index, label).
    Local(usize, crate::lang::Label),
    /// `bl` to a function: (instruction index, function index).
    Call(usize, usize),
}

struct Emitter {
    insts: Vec<Inst>,
    spans: Vec<StmtSpan>,
    fixups: Vec<Fixup>,
    labels: HashMap<(usize, u16), usize>,
    /// The variable whose Z-flag-relevant value the last emitted
    /// instruction could expose by setting its `s` bit.
    fusable: Option<(usize, Var)>,
}

impl Emitter {
    fn emit(&mut self, inst: Inst) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }
}

fn compile_stmt(
    e: &mut Emitter,
    func_idx: usize,
    stmt_idx: usize,
    stmt: &Stmt,
    is_entry: bool,
    saved: &[Reg],
) -> Result<(), CompileError> {
    let start = e.insts.len();
    let mut fusable = None;
    match stmt {
        Stmt::Bin { dst, op, a, b } => {
            let rd = var_reg(*dst);
            match (op, a) {
                (BinOp::Mul, _) => {
                    let ra = match a {
                        Rvalue::Var(v) => var_reg(*v),
                        Rvalue::Const(_) => return err("mul needs a variable left operand"),
                    };
                    let rb = match b {
                        Rvalue::Var(v) => var_reg(*v),
                        Rvalue::Const(c) => {
                            e.emit(g::mov(SCRATCH, Operand::Imm(*c)));
                            SCRATCH
                        }
                    };
                    e.emit(g::mul(rd, ra, rb));
                }
                (BinOp::Sub, Rvalue::Const(c)) => {
                    // c - v → rsb (the complex pair of sub, §IV-C1).
                    let rb = match b {
                        Rvalue::Var(v) => var_reg(*v),
                        Rvalue::Const(_) => return err("constant-folded rsb"),
                    };
                    e.emit(g::rsb(rd, rb, Operand::Imm(*c)));
                    fusable = Some(*dst);
                }
                (_, Rvalue::Const(_)) => {
                    return err(format!("constant left operand for {op}"));
                }
                (_, Rvalue::Var(av)) => {
                    let inst = Inst::new(
                        guest_binop(*op),
                        vec![Operand::Reg(rd), Operand::Reg(var_reg(*av)), op2(*b)],
                    )
                    .map_err(|e| CompileError {
                        detail: e.to_string(),
                    })?;
                    e.emit(inst);
                    // Shifts with a variable amount cannot carry the S bit
                    // (outside the verifier's and lifter's subset).
                    let var_shift = matches!(op, BinOp::Shl | BinOp::Shr | BinOp::Sar | BinOp::Ror)
                        && matches!(b, Rvalue::Var(_));
                    if !var_shift {
                        fusable = Some(*dst);
                    }
                }
            }
        }
        Stmt::BinShifted {
            dst,
            op,
            a,
            b,
            shift,
            amount,
        } => {
            if !matches!(
                op,
                BinOp::Add | BinOp::Sub | BinOp::And | BinOp::Or | BinOp::Xor
            ) {
                return err(format!("{op} does not take a shifted operand"));
            }
            let inst = Inst::new(
                guest_binop(*op),
                vec![
                    Operand::Reg(var_reg(*dst)),
                    Operand::Reg(var_reg(*a)),
                    Operand::Shifted {
                        rm: var_reg(*b),
                        kind: *shift,
                        amount: *amount,
                    },
                ],
            )
            .map_err(|e| CompileError {
                detail: e.to_string(),
            })?;
            e.emit(inst);
            fusable = Some(*dst);
        }
        Stmt::Un { dst, op, a } => {
            let rd = var_reg(*dst);
            match op {
                UnOp::Mov => {
                    e.emit(g::mov(rd, op2(*a)));
                }
                UnOp::Not => {
                    e.emit(g::mvn(rd, op2(*a)));
                }
                UnOp::Neg => {
                    let Rvalue::Var(av) = a else {
                        return err("neg of a constant");
                    };
                    e.emit(g::rsb(rd, var_reg(*av), Operand::Imm(0)));
                }
                UnOp::Clz => {
                    let Rvalue::Var(av) = a else {
                        return err("clz of a constant");
                    };
                    e.emit(g::clz(rd, var_reg(*av)));
                }
            }
        }
        Stmt::MulAdd { dst, a, b, c } => {
            e.emit(g::mla(var_reg(*dst), var_reg(*a), var_reg(*b), var_reg(*c)));
        }
        Stmt::WideMulAcc { lo, hi, a, b } => {
            if lo == hi || lo == a || lo == b || hi == a || hi == b {
                return err("wide multiply-accumulate needs distinct variables");
            }
            e.emit(g::umlal(
                var_reg(*lo),
                var_reg(*hi),
                var_reg(*a),
                var_reg(*b),
            ));
        }
        Stmt::Load {
            dst,
            base,
            offset,
            width,
        } => {
            let mem = MemAddr::BaseImm {
                base: var_reg(*base),
                offset: *offset,
            };
            let inst = match width {
                Width::B32 => g::ldr(var_reg(*dst), mem),
                Width::B16 => g::ldrh(var_reg(*dst), mem),
                Width::B8 => g::ldrb(var_reg(*dst), mem),
            };
            e.emit(inst);
        }
        Stmt::LoadIndexed { dst, base, index } => {
            e.emit(g::ldr(
                var_reg(*dst),
                MemAddr::BaseReg {
                    base: var_reg(*base),
                    index: var_reg(*index),
                },
            ));
        }
        Stmt::Store {
            src,
            base,
            offset,
            width,
        } => {
            let mem = MemAddr::BaseImm {
                base: var_reg(*base),
                offset: *offset,
            };
            let inst = match width {
                Width::B32 => g::str_(var_reg(*src), mem),
                Width::B16 => g::strh(var_reg(*src), mem),
                Width::B8 => g::strb(var_reg(*src), mem),
            };
            e.emit(inst);
        }
        Stmt::Branch { a, cmp, b, target } => {
            // Flag-fusion peephole: `v = …; if (v ==/!= 0)` reuses the
            // defining instruction's S bit instead of a cmp.
            let fuse = matches!(cmp, CmpKind::Eq | CmpKind::Ne)
                && matches!(b, Rvalue::Const(0))
                && e.fusable == Some((e.insts.len().wrapping_sub(1), *a))
                && e.insts.last().is_some_and(|i| i.op.supports_s());
            if fuse {
                let last = e.insts.last_mut().expect("fusable instruction");
                last.s = true;
                // The fused instruction now belongs to both statements;
                // keep it in the earlier span (matches how line tables
                // attribute fused code to one line).
            } else {
                e.emit(g::cmp(var_reg(*a), op2(*b)));
            }
            let idx = e.emit(g::b(cmp.guest_cond(), 0));
            e.fixups.push(Fixup::Local(idx, *target));
        }
        Stmt::Goto { target } => {
            let idx = e.emit(g::b(Cond::Al, 0));
            e.fixups.push(Fixup::Local(idx, *target));
        }
        Stmt::Define { label } => {
            e.labels.insert((func_idx, label.0), e.insts.len());
        }
        Stmt::Call { func } => {
            let idx = e.emit(g::bl(0));
            e.fixups.push(Fixup::Call(idx, func.0 as usize));
        }
        Stmt::Output { a } => {
            e.emit(g::mov(Reg::R0, Operand::Reg(var_reg(*a))));
            e.emit(g::svc(1));
        }
        Stmt::Return => {
            if is_entry {
                e.emit(g::svc(0));
            } else {
                let mut list: Vec<Reg> = saved.to_vec();
                list.push(Reg::Pc);
                e.emit(g::pop(list));
            }
        }
    }
    let end = e.insts.len();
    if end > start || !stmt.has_code() {
        e.spans.push(StmtSpan {
            func: func_idx,
            stmt: stmt_idx,
            range: start..end,
        });
    } else {
        // Fused away entirely: attribute an empty range at the fuse point.
        e.spans.push(StmtSpan {
            func: func_idx,
            stmt: stmt_idx,
            range: start..start,
        });
    }
    e.fusable = fusable.map(|v| (end.wrapping_sub(1), v));
    Ok(())
}

/// Compiles and links a source program into a guest image at `base`.
///
/// # Errors
///
/// [`CompileError`] on malformed statements or unresolved labels.
pub fn compile(src: &SourceProgram, base: u32) -> Result<GuestImage, CompileError> {
    if src.functions.is_empty() {
        return err("no functions");
    }
    let mut e = Emitter {
        insts: Vec::new(),
        spans: Vec::new(),
        fixups: Vec::new(),
        labels: HashMap::new(),
        fusable: None,
    };
    let mut func_starts = Vec::new();
    for (fi, func) in src.functions.iter().enumerate() {
        if func.n_vars > Var::MAX + 1 {
            return err(format!("{}: too many variables", func.name));
        }
        func_starts.push(e.insts.len());
        e.fusable = None;
        let is_entry = fi == 0;
        let saved: Vec<Reg> = (0..func.n_vars)
            .map(|i| var_reg(Var(i)))
            .chain([Reg::Lr])
            .collect();
        let saved_no_lr: Vec<Reg> = (0..func.n_vars).map(|i| var_reg(Var(i))).collect();
        if !is_entry {
            e.emit(g::push(saved.clone()));
        }
        for (si, stmt) in func.stmts.iter().enumerate() {
            compile_stmt(&mut e, fi, si, stmt, is_entry, &saved_no_lr)?;
        }
        // Guarantee the function terminates.
        let needs_term = !matches!(func.stmts.last(), Some(Stmt::Return | Stmt::Goto { .. }));
        if needs_term {
            if is_entry {
                e.emit(g::svc(0));
            } else {
                let mut list = saved_no_lr.clone();
                list.push(Reg::Pc);
                e.emit(g::pop(list));
            }
        }
    }
    // Resolve fixups.
    for fixup in &e.fixups {
        match fixup {
            Fixup::Local(idx, label) => {
                let func = e
                    .spans
                    .iter()
                    .find(|s| s.range.contains(idx) || s.range.start == *idx)
                    .map(|s| s.func)
                    .unwrap_or(0);
                let target = *e.labels.get(&(func, label.0)).ok_or_else(|| CompileError {
                    detail: format!("unresolved label L{} in function {func}", label.0),
                })?;
                let disp = (target as i64 - *idx as i64) * i64::from(INST_SIZE);
                e.insts[*idx].operands[0] = Operand::Target(disp as i32);
            }
            Fixup::Call(idx, func) => {
                let target = *func_starts.get(*func).ok_or_else(|| CompileError {
                    detail: format!("unknown function {func}"),
                })?;
                let disp = (target as i64 - *idx as i64) * i64::from(INST_SIZE);
                e.insts[*idx].operands[0] = Operand::Target(disp as i32);
            }
        }
    }
    Ok(GuestImage {
        program: Program::new(base, e.insts),
        spans: e.spans,
        func_starts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{FuncId, Function, Label};
    use pdbt_isa_arm::Cpu;

    fn f(stmts: Vec<Stmt>, n_vars: u8) -> Function {
        Function {
            name: "test".into(),
            stmts,
            n_vars,
        }
    }

    fn run_entry(stmts: Vec<Stmt>, n_vars: u8) -> Cpu {
        let src = SourceProgram {
            functions: vec![f(stmts, n_vars)],
        };
        let image = compile(&src, 0x1000).expect("compiles");
        let mut cpu = Cpu::new();
        cpu.mem.map(0x10_0000, 0x1000);
        cpu.mem.map(0x8_0000, 0x1000);
        cpu.write(Reg::Sp, 0x8_1000);
        pdbt_isa_arm::run(&mut cpu, &image.program, 100_000).expect("runs");
        cpu
    }

    #[test]
    fn arithmetic_statements_execute() {
        let cpu = run_entry(
            vec![
                Stmt::Un {
                    dst: Var(0),
                    op: UnOp::Mov,
                    a: Rvalue::Const(6),
                },
                Stmt::Un {
                    dst: Var(1),
                    op: UnOp::Mov,
                    a: Rvalue::Const(7),
                },
                Stmt::Bin {
                    dst: Var(2),
                    op: BinOp::Mul,
                    a: Rvalue::Var(Var(0)),
                    b: Rvalue::Var(Var(1)),
                },
                Stmt::Bin {
                    dst: Var(2),
                    op: BinOp::Add,
                    a: Rvalue::Var(Var(2)),
                    b: Rvalue::Const(8),
                },
                Stmt::Output { a: Var(2) },
                Stmt::Return,
            ],
            3,
        );
        assert_eq!(cpu.output, vec![50]);
    }

    #[test]
    fn loop_with_flag_fusion() {
        // v0 = 5; v1 = 0; L0: v1 += v0; v0 -= 1; if (v0 != 0) goto L0.
        let cpu = run_entry(
            vec![
                Stmt::Un {
                    dst: Var(0),
                    op: UnOp::Mov,
                    a: Rvalue::Const(5),
                },
                Stmt::Un {
                    dst: Var(1),
                    op: UnOp::Mov,
                    a: Rvalue::Const(0),
                },
                Stmt::Define { label: Label(0) },
                Stmt::Bin {
                    dst: Var(1),
                    op: BinOp::Add,
                    a: Rvalue::Var(Var(1)),
                    b: Rvalue::Var(Var(0)),
                },
                Stmt::Bin {
                    dst: Var(0),
                    op: BinOp::Sub,
                    a: Rvalue::Var(Var(0)),
                    b: Rvalue::Const(1),
                },
                Stmt::Branch {
                    a: Var(0),
                    cmp: CmpKind::Ne,
                    b: Rvalue::Const(0),
                    target: Label(0),
                },
                Stmt::Output { a: Var(1) },
                Stmt::Return,
            ],
            2,
        );
        assert_eq!(cpu.output, vec![15]);
    }

    #[test]
    fn fusion_emits_subs_not_cmp() {
        let src = SourceProgram {
            functions: vec![f(
                vec![
                    Stmt::Bin {
                        dst: Var(0),
                        op: BinOp::Sub,
                        a: Rvalue::Var(Var(0)),
                        b: Rvalue::Const(1),
                    },
                    Stmt::Branch {
                        a: Var(0),
                        cmp: CmpKind::Ne,
                        b: Rvalue::Const(0),
                        target: Label(0),
                    },
                    Stmt::Define { label: Label(0) },
                    Stmt::Return,
                ],
                1,
            )],
        };
        let image = compile(&src, 0).unwrap();
        let subs = image
            .program
            .insts()
            .iter()
            .find(|i| i.op == Op::Sub)
            .unwrap();
        assert!(subs.s, "sub fused into subs");
        assert!(!image.program.insts().iter().any(|i| i.op == Op::Cmp));
    }

    #[test]
    fn unfused_branch_uses_cmp() {
        let src = SourceProgram {
            functions: vec![f(
                vec![
                    Stmt::Branch {
                        a: Var(0),
                        cmp: CmpKind::LtS,
                        b: Rvalue::Const(10),
                        target: Label(0),
                    },
                    Stmt::Define { label: Label(0) },
                    Stmt::Return,
                ],
                1,
            )],
        };
        let image = compile(&src, 0).unwrap();
        assert!(image.program.insts().iter().any(|i| i.op == Op::Cmp));
    }

    #[test]
    fn memory_roundtrip_executes() {
        let cpu = run_entry(
            vec![
                Stmt::Un {
                    dst: Var(0),
                    op: UnOp::Mov,
                    a: Rvalue::Const(0x100),
                },
                Stmt::Bin {
                    dst: Var(0),
                    op: BinOp::Shl,
                    a: Rvalue::Var(Var(0)),
                    b: Rvalue::Const(12),
                }, // 0x100000
                Stmt::Un {
                    dst: Var(1),
                    op: UnOp::Mov,
                    a: Rvalue::Const(0x7b),
                },
                Stmt::Store {
                    src: Var(1),
                    base: Var(0),
                    offset: 16,
                    width: Width::B32,
                },
                Stmt::Load {
                    dst: Var(2),
                    base: Var(0),
                    offset: 16,
                    width: Width::B32,
                },
                Stmt::Output { a: Var(2) },
                Stmt::Return,
            ],
            3,
        );
        assert_eq!(cpu.output, vec![0x7b]);
    }

    #[test]
    fn function_calls_save_and_restore() {
        // f1 clobbers v0/v1 internally but restores them.
        let src = SourceProgram {
            functions: vec![
                f(
                    vec![
                        Stmt::Un {
                            dst: Var(0),
                            op: UnOp::Mov,
                            a: Rvalue::Const(11),
                        },
                        Stmt::Call { func: FuncId(1) },
                        Stmt::Output { a: Var(0) },
                        Stmt::Return,
                    ],
                    1,
                ),
                f(
                    vec![
                        Stmt::Un {
                            dst: Var(0),
                            op: UnOp::Mov,
                            a: Rvalue::Const(999),
                        },
                        Stmt::Return,
                    ],
                    1,
                ),
            ],
        };
        let image = compile(&src, 0x1000).unwrap();
        let mut cpu = Cpu::new();
        cpu.mem.map(0x8_0000, 0x1000);
        cpu.write(Reg::Sp, 0x8_1000);
        pdbt_isa_arm::run(&mut cpu, &image.program, 10_000).unwrap();
        assert_eq!(cpu.output, vec![11], "callee-saved register restored");
    }

    #[test]
    fn spans_cover_all_statements() {
        let src = SourceProgram {
            functions: vec![f(
                vec![
                    Stmt::Un {
                        dst: Var(0),
                        op: UnOp::Mov,
                        a: Rvalue::Const(1),
                    },
                    Stmt::Bin {
                        dst: Var(0),
                        op: BinOp::Add,
                        a: Rvalue::Var(Var(0)),
                        b: Rvalue::Const(2),
                    },
                    Stmt::Return,
                ],
                1,
            )],
        };
        let image = compile(&src, 0).unwrap();
        assert_eq!(image.spans.len(), 3);
        assert_eq!(image.spans[0].range, 0..1);
        assert_eq!(image.spans[1].range, 1..2);
    }

    #[test]
    fn complex_ops_select_complex_opcodes() {
        let src = SourceProgram {
            functions: vec![f(
                vec![
                    Stmt::Bin {
                        dst: Var(0),
                        op: BinOp::AndNot,
                        a: Rvalue::Var(Var(0)),
                        b: Rvalue::Var(Var(1)),
                    },
                    Stmt::Bin {
                        dst: Var(1),
                        op: BinOp::Sub,
                        a: Rvalue::Const(100),
                        b: Rvalue::Var(Var(1)),
                    },
                    Stmt::Un {
                        dst: Var(2),
                        op: UnOp::Not,
                        a: Rvalue::Var(Var(0)),
                    },
                    Stmt::Un {
                        dst: Var(2),
                        op: UnOp::Clz,
                        a: Rvalue::Var(Var(2)),
                    },
                    Stmt::MulAdd {
                        dst: Var(0),
                        a: Var(0),
                        b: Var(1),
                        c: Var(2),
                    },
                    Stmt::Return,
                ],
                3,
            )],
        };
        let image = compile(&src, 0).unwrap();
        let ops: Vec<Op> = image.program.insts().iter().map(|i| i.op).collect();
        assert!(ops.contains(&Op::Bic));
        assert!(ops.contains(&Op::Rsb));
        assert!(ops.contains(&Op::Mvn));
        assert!(ops.contains(&Op::Clz));
        assert!(ops.contains(&Op::Mla));
    }

    #[test]
    fn unresolved_label_errors() {
        let src = SourceProgram {
            functions: vec![f(vec![Stmt::Goto { target: Label(9) }, Stmt::Return], 0)],
        };
        assert!(compile(&src, 0).is_err());
    }
}
