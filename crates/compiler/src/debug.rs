//! The statement ↔ instruction debug map, with modelled imprecision.
//!
//! The paper attributes the first learning-funnel loss (100% of
//! statements → 53.8% candidates, Table I) to debug-information
//! inaccuracy: "compiler optimization can cause binaries from multiple
//! statements to be merged, eliminated or scattered … or lose the
//! connection" (§II-B). [`degrade`] models exactly those three effects
//! with per-benchmark probabilities.

use crate::arm::GuestImage;
use crate::x86::HostImage;
use rand::Rng;
use std::ops::Range;

/// One line-table entry: a statement and the guest/host instruction
/// ranges attributed to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DebugEntry {
    /// Function index.
    pub func: usize,
    /// First statement index covered.
    pub stmt: usize,
    /// Number of source statements covered (>1 after merging).
    pub n_stmts: usize,
    /// Guest instruction range.
    pub guest: Range<usize>,
    /// Host instruction range.
    pub host: Range<usize>,
}

/// Joins the two backends' accurate span tables into one debug map
/// (dropping codeless statements such as label definitions).
#[must_use]
pub fn build(guest: &GuestImage, host: &HostImage) -> Vec<DebugEntry> {
    let mut out = Vec::new();
    for gs in &guest.spans {
        if gs.range.is_empty() {
            continue;
        }
        if let Some(hs) = host
            .spans
            .iter()
            .find(|h| h.func == gs.func && h.stmt == gs.stmt && !h.range.is_empty())
        {
            out.push(DebugEntry {
                func: gs.func,
                stmt: gs.stmt,
                n_stmts: 1,
                guest: gs.range.clone(),
                host: hs.range.clone(),
            });
        }
    }
    out
}

/// The imprecision model (probabilities per entry).
#[derive(Debug, Clone, Copy)]
pub struct DegradeProfile {
    /// The entry loses its line information entirely.
    pub drop: f64,
    /// The entry is merged with its successor (one candidate covering
    /// two statements).
    pub merge: f64,
    /// A range boundary is skewed by one instruction (mis-attribution).
    pub skew: f64,
}

impl Default for DegradeProfile {
    fn default() -> DegradeProfile {
        // Calibrated so that, together with codeless statements and
        // call/branch exclusions, candidate yield lands near the paper's
        // 53.8% of statements (Table I).
        DegradeProfile {
            drop: 0.28,
            merge: 0.10,
            skew: 0.06,
        }
    }
}

/// Applies the imprecision model to an accurate debug map.
#[must_use]
pub fn degrade<R: Rng>(
    entries: &[DebugEntry],
    profile: DegradeProfile,
    rng: &mut R,
) -> Vec<DebugEntry> {
    let mut out: Vec<DebugEntry> = Vec::with_capacity(entries.len());
    let mut i = 0;
    while i < entries.len() {
        let e = &entries[i];
        if rng.gen_bool(profile.drop) {
            i += 1;
            continue;
        }
        let mergeable = i + 1 < entries.len()
            && entries[i + 1].func == e.func
            && entries[i + 1].guest.start == e.guest.end
            && entries[i + 1].host.start == e.host.end;
        if mergeable && rng.gen_bool(profile.merge) {
            let next = &entries[i + 1];
            out.push(DebugEntry {
                func: e.func,
                stmt: e.stmt,
                n_stmts: e.n_stmts + next.n_stmts,
                guest: e.guest.start..next.guest.end,
                host: e.host.start..next.host.end,
            });
            i += 2;
            continue;
        }
        let mut entry = e.clone();
        if rng.gen_bool(profile.skew) {
            // Scatter: the guest range loses its last instruction (or,
            // for one-instruction ranges, claims a neighbour), so the
            // pair no longer corresponds — it will fail verification.
            if entry.guest.len() > 1 {
                entry.guest.end -= 1;
            } else {
                entry.guest.end += 1;
            }
        }
        out.push(entry);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{BinOp, Function, Rvalue, SourceProgram, Stmt, UnOp, Var};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_map() -> Vec<DebugEntry> {
        let src = SourceProgram {
            functions: vec![Function {
                name: "m".into(),
                stmts: vec![
                    Stmt::Un {
                        dst: Var(0),
                        op: UnOp::Mov,
                        a: Rvalue::Const(1),
                    },
                    Stmt::Bin {
                        dst: Var(1),
                        op: BinOp::Add,
                        a: Rvalue::Var(Var(0)),
                        b: Rvalue::Const(2),
                    },
                    Stmt::Output { a: Var(1) },
                    Stmt::Return,
                ],
                n_vars: 2,
            }],
        };
        let gi = crate::arm::compile(&src, 0).unwrap();
        let hi = crate::x86::compile(&src).unwrap();
        build(&gi, &hi)
    }

    #[test]
    fn build_joins_both_sides() {
        let map = sample_map();
        assert_eq!(map.len(), 4);
        for e in &map {
            assert!(!e.guest.is_empty());
            assert!(!e.host.is_empty());
            assert_eq!(e.n_stmts, 1);
        }
    }

    #[test]
    fn degrade_zero_profile_is_identity() {
        let map = sample_map();
        let mut rng = StdRng::seed_from_u64(1);
        let out = degrade(
            &map,
            DegradeProfile {
                drop: 0.0,
                merge: 0.0,
                skew: 0.0,
            },
            &mut rng,
        );
        assert_eq!(out, map);
    }

    #[test]
    fn degrade_drop_loses_entries() {
        let map = sample_map();
        let mut rng = StdRng::seed_from_u64(2);
        let out = degrade(
            &map,
            DegradeProfile {
                drop: 1.0,
                merge: 0.0,
                skew: 0.0,
            },
            &mut rng,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn degrade_merge_combines_adjacent() {
        let map = sample_map();
        let mut rng = StdRng::seed_from_u64(3);
        let out = degrade(
            &map,
            DegradeProfile {
                drop: 0.0,
                merge: 1.0,
                skew: 0.0,
            },
            &mut rng,
        );
        assert!(out.len() < map.len());
        assert!(out.iter().any(|e| e.n_stmts == 2));
        // Ranges stay contiguous and ordered.
        for e in &out {
            assert!(e.guest.start < e.guest.end);
        }
    }

    #[test]
    fn degrade_skew_misattributes() {
        let map = sample_map();
        let mut rng = StdRng::seed_from_u64(4);
        let out = degrade(
            &map,
            DegradeProfile {
                drop: 0.0,
                merge: 0.0,
                skew: 1.0,
            },
            &mut rng,
        );
        assert_eq!(out.len(), map.len());
        assert!(out.iter().zip(&map).any(|(a, b)| a.guest != b.guest));
    }

    #[test]
    fn degrade_is_deterministic_per_seed() {
        let map = sample_map();
        let p = DegradeProfile::default();
        let a = degrade(&map, p, &mut StdRng::seed_from_u64(7));
        let b = degrade(&map, p, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
