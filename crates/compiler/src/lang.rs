//! The statement-level source mini-language.
//!
//! Learning-based DBTs pair guest and host instruction sequences
//! *per source statement* (paper §II-A). This language is the statement
//! granularity: each [`Stmt`] compiles independently to a short guest
//! sequence and a short host sequence, which become one rule candidate.

use pdbt_isa::Width;
use std::fmt;

/// A local variable (function-scoped). The backends map variables to
/// fixed registers: `v0..v7` → guest `r4..r11`; `v0..v3` → host
/// `ecx/ebx/esi/edi`, `v4..` → host frame slots (which the strict
/// verifier cannot map — one of the learning-funnel losses of §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u8);

impl Var {
    /// Highest variable index the backends accept.
    pub const MAX: u8 = 7;
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A right-hand-side value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rvalue {
    /// A variable.
    Var(Var),
    /// A constant (generators keep it within the guest's encodable
    /// immediate range).
    Const(u32),
}

impl fmt::Display for Rvalue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rvalue::Var(v) => write!(f, "{v}"),
            Rvalue::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Binary source operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    /// `a & !b` — compiles to the guest's complex `bic` (paper Fig 7).
    AndNot,
    Shl,
    Shr,
    Sar,
    Ror,
    Mul,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::AndNot => "&~",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Sar => ">>>",
            BinOp::Ror => "ror",
            BinOp::Mul => "*",
        };
        f.write_str(s)
    }
}

/// Unary source operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    /// `dst = a`
    Mov,
    /// `dst = !a` (bitwise not → guest `mvn`)
    Not,
    /// `dst = -a`
    Neg,
    /// `dst = clz(a)` — a compiler intrinsic; the paper found `clz`
    /// unlearnable (no single host counterpart).
    Clz,
}

/// Source comparison kinds (signed and unsigned flavours exercise the
/// different guest conditions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CmpKind {
    Eq,
    Ne,
    LtS,
    GeS,
    GtS,
    LeS,
    LtU,
    GeU,
}

impl CmpKind {
    /// The guest condition code for `branch if a <cmp> b` after
    /// `cmp a, b`.
    #[must_use]
    pub fn guest_cond(self) -> pdbt_isa::Cond {
        use pdbt_isa::Cond;
        match self {
            CmpKind::Eq => Cond::Eq,
            CmpKind::Ne => Cond::Ne,
            CmpKind::LtS => Cond::Lt,
            CmpKind::GeS => Cond::Ge,
            CmpKind::GtS => Cond::Gt,
            CmpKind::LeS => Cond::Le,
            CmpKind::LtU => Cond::Cc,
            CmpKind::GeU => Cond::Cs,
        }
    }

    /// Concrete evaluation (for test oracles).
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> bool {
        let (sa, sb) = (a as i32, b as i32);
        match self {
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
            CmpKind::LtS => sa < sb,
            CmpKind::GeS => sa >= sb,
            CmpKind::GtS => sa > sb,
            CmpKind::LeS => sa <= sb,
            CmpKind::LtU => a < b,
            CmpKind::GeU => a >= b,
        }
    }
}

/// A branch label, function-scoped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub u16);

/// A function index within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuncId(pub u16);

/// One source statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `dst = a <op> b`
    Bin {
        /// Destination variable.
        dst: Var,
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Rvalue,
        /// Right operand.
        b: Rvalue,
    },
    /// `dst = a <op> (b << amount)` etc. — exercises the guest's
    /// shifted-register addressing mode.
    BinShifted {
        /// Destination variable.
        dst: Var,
        /// Operator (`Add`, `Sub`, `And`, `Or`, `Xor` only).
        op: BinOp,
        /// Left operand variable.
        a: Var,
        /// Shifted operand variable.
        b: Var,
        /// Shift kind.
        shift: pdbt_isa_arm::ShiftKind,
        /// Shift amount (1–31).
        amount: u8,
    },
    /// `dst = <op> a`
    Un {
        /// Destination variable.
        dst: Var,
        /// Operator.
        op: UnOp,
        /// Operand.
        a: Rvalue,
    },
    /// `dst = a * b + c` — compiles to the guest's `mla` (unlearnable
    /// per the paper: no single host counterpart).
    MulAdd {
        /// Destination variable.
        dst: Var,
        /// Multiplicand.
        a: Var,
        /// Multiplier.
        b: Var,
        /// Addend.
        c: Var,
    },
    /// `(lo, hi) += a * b` as a 64-bit accumulate — compiles to the
    /// guest's `umlal` (another of the paper's unlearnables).
    WideMulAcc {
        /// Low accumulator variable.
        lo: Var,
        /// High accumulator variable.
        hi: Var,
        /// Multiplicand.
        a: Var,
        /// Multiplier.
        b: Var,
    },
    /// `dst = mem[base + offset]`
    Load {
        /// Destination variable.
        dst: Var,
        /// Base-address variable.
        base: Var,
        /// Byte offset.
        offset: i32,
        /// Access width (zero-extending for narrow widths).
        width: Width,
    },
    /// `dst = mem[base + index]` — register-offset addressing.
    LoadIndexed {
        /// Destination variable.
        dst: Var,
        /// Base-address variable.
        base: Var,
        /// Index variable.
        index: Var,
    },
    /// `mem[base + offset] = src`
    Store {
        /// Stored value.
        src: Var,
        /// Base-address variable.
        base: Var,
        /// Byte offset.
        offset: i32,
        /// Access width.
        width: Width,
    },
    /// `if (a <cmp> b) goto label`
    Branch {
        /// Left comparand.
        a: Var,
        /// Comparison.
        cmp: CmpKind,
        /// Right comparand.
        b: Rvalue,
        /// Branch target.
        target: Label,
    },
    /// `goto label`
    Goto {
        /// Branch target.
        target: Label,
    },
    /// A label definition (no code).
    Define {
        /// The label.
        label: Label,
    },
    /// `f()` — call a function (no arguments; state is in memory and
    /// caller-saved variables).
    Call {
        /// The callee.
        func: FuncId,
    },
    /// `output(a)` — emit a value to the observable output stream.
    Output {
        /// The emitted variable.
        a: Var,
    },
    /// Return from the function.
    Return,
}

impl Stmt {
    /// Whether this statement produces any machine code.
    #[must_use]
    pub fn has_code(&self) -> bool {
        !matches!(self, Stmt::Define { .. })
    }
}

/// A function: a statement list with `n_vars` local variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name (diagnostics only).
    pub name: String,
    /// Statements.
    pub stmts: Vec<Stmt>,
    /// Number of local variables used (≤ [`Var::MAX`] + 1).
    pub n_vars: u8,
}

/// A whole source program. Function 0 is the entry point; the compiler
/// appends the `exit` system call after its last statement.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SourceProgram {
    /// The functions; index = [`FuncId`].
    pub functions: Vec<Function>,
}

impl SourceProgram {
    /// Total number of statements across all functions.
    #[must_use]
    pub fn statement_count(&self) -> usize {
        self.functions.iter().map(|f| f.stmts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval_matches_cond_semantics() {
        // Signed vs unsigned distinction.
        assert!(CmpKind::LtU.eval(1, u32::MAX));
        assert!(!CmpKind::LtS.eval(1, u32::MAX));
        assert!(CmpKind::GeU.eval(u32::MAX, 1));
    }

    #[test]
    fn statement_code_presence() {
        assert!(!Stmt::Define { label: Label(0) }.has_code());
        assert!(Stmt::Return.has_code());
        assert!(Stmt::Goto { target: Label(0) }.has_code());
    }

    #[test]
    fn statement_count_sums_functions() {
        let p = SourceProgram {
            functions: vec![
                Function {
                    name: "main".into(),
                    stmts: vec![Stmt::Return],
                    n_vars: 0,
                },
                Function {
                    name: "f".into(),
                    stmts: vec![Stmt::Return, Stmt::Return],
                    n_vars: 0,
                },
            ],
        };
        assert_eq!(p.statement_count(), 3);
    }
}
