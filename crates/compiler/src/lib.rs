//! The synthetic dual-target compiler — the training-data generator of
//! the learning pipeline.
//!
//! The learning-based approach compiles the same source with the guest
//! and host compilers and pairs the binary sequences per source
//! statement (paper §II-A, Fig 1). This crate provides the source
//! mini-language ([`lang`]), an ARM backend ([`arm`]) and an x86 backend
//! ([`x86`]) with aligned instruction selection and the flag-fusion
//! peephole, and the statement↔instruction debug map with the paper's
//! three imprecision modes ([`debug`]).
//!
//! # Example
//!
//! ```
//! use pdbt_compiler::{compile_pair, lang::*};
//!
//! let src = SourceProgram {
//!     functions: vec![Function {
//!         name: "main".into(),
//!         stmts: vec![
//!             Stmt::Un { dst: Var(0), op: UnOp::Mov, a: Rvalue::Const(41) },
//!             Stmt::Bin { dst: Var(0), op: BinOp::Add, a: Rvalue::Var(Var(0)), b: Rvalue::Const(1) },
//!             Stmt::Output { a: Var(0) },
//!             Stmt::Return,
//!         ],
//!         n_vars: 1,
//!     }],
//! };
//! let pair = compile_pair(&src, 0x1000).unwrap();
//! assert_eq!(pair.debug.len(), 4);
//!
//! // The guest image runs on the reference interpreter.
//! let mut cpu = pdbt_isa_arm::Cpu::new();
//! pdbt_isa_arm::run(&mut cpu, &pair.guest.program, 1000).unwrap();
//! assert_eq!(cpu.output, vec![42]);
//! ```

pub mod arm;
pub mod debug;
pub mod lang;
pub mod x86;

pub use arm::{CompileError, GuestImage, StmtSpan};
pub use debug::{build as build_debug_map, degrade, DebugEntry, DegradeProfile};
pub use x86::HostImage;

/// A source program compiled by both backends, with the accurate debug
/// map (apply [`degrade`] to model line-table imprecision).
#[derive(Debug, Clone)]
pub struct CompiledPair {
    /// The guest image (runnable).
    pub guest: GuestImage,
    /// The host image (rule material; never executed).
    pub host: HostImage,
    /// The joined, accurate debug map.
    pub debug: Vec<DebugEntry>,
}

/// Compiles `src` with both backends and joins the span tables.
///
/// # Errors
///
/// [`CompileError`] from either backend.
pub fn compile_pair(
    src: &lang::SourceProgram,
    guest_base: u32,
) -> Result<CompiledPair, CompileError> {
    let guest = arm::compile(src, guest_base)?;
    let host = x86::compile(src)?;
    let debug = debug::build(&guest, &host);
    Ok(CompiledPair { guest, host, debug })
}
