//! The host (x86) backend.
//!
//! Variables `v0..v3` live in `ecx/ebx/esi/edi`; `v4..` live in frame
//! slots `[ebp - …]` (which the strict verifier cannot map to guest
//! registers — a deliberate model of the operand-type mismatches the
//! paper's §II-B blames for candidate loss). `eax`/`edx` are scratch;
//! the aux `movl` instructions they generate are exactly the auxiliary
//! instructions of the paper's Fig 6 that parameterization must leave
//! unparameterized.
//!
//! The backend mirrors the guest backend's algebra (same operand order,
//! same compare-against-zero fusion) so that per-statement candidate
//! pairs verify under the normalizing checker.

use crate::arm::{CompileError, StmtSpan};
use crate::lang::{BinOp, CmpKind, Rvalue, SourceProgram, Stmt, UnOp, Var};
use pdbt_isa::Width;
use pdbt_isa_x86::builders as h;
use pdbt_isa_x86::{Cc, Inst, Mem, Operand, Reg};
use std::collections::HashMap;

const SCRATCH_A: Reg = Reg::Eax;
const SCRATCH_B: Reg = Reg::Edx;

/// The host location of a variable.
#[must_use]
pub fn var_loc(v: Var) -> Operand {
    match v.0 {
        0 => Operand::Reg(Reg::Ecx),
        1 => Operand::Reg(Reg::Ebx),
        2 => Operand::Reg(Reg::Esi),
        3 => Operand::Reg(Reg::Edi),
        i => Operand::Mem(Mem::base_disp(Reg::Ebp, -8 - 4 * (i as i32 - 4))),
    }
}

fn rv(v: Rvalue) -> Operand {
    match v {
        Rvalue::Var(v) => var_loc(v),
        Rvalue::Const(c) => Operand::Imm(c as i32),
    }
}

fn is_mem(o: &Operand) -> bool {
    matches!(o, Operand::Mem(_))
}

/// The compiled host image (flat; never executed — it exists as rule
/// material for the learning pipeline).
#[derive(Debug, Clone)]
pub struct HostImage {
    /// The instructions.
    pub insts: Vec<Inst>,
    /// Statement spans.
    pub spans: Vec<StmtSpan>,
}

fn host_alu(op: BinOp) -> fn(Operand, Operand) -> Inst {
    match op {
        BinOp::Add => h::add,
        BinOp::Sub => h::sub,
        BinOp::And | BinOp::AndNot => h::and,
        BinOp::Or => h::or,
        BinOp::Xor => h::xor,
        BinOp::Shl => h::shl,
        BinOp::Shr => h::shr,
        BinOp::Sar => h::sar,
        BinOp::Ror => h::ror,
        BinOp::Mul => h::imul,
    }
}

fn host_cc(cmp: CmpKind) -> Cc {
    match cmp {
        CmpKind::Eq => Cc::E,
        CmpKind::Ne => Cc::Ne,
        CmpKind::LtS => Cc::L,
        CmpKind::GeS => Cc::Ge,
        CmpKind::GtS => Cc::G,
        CmpKind::LeS => Cc::Le,
        CmpKind::LtU => Cc::B,
        CmpKind::GeU => Cc::Ae,
    }
}

enum Fixup {
    Local(usize, crate::lang::Label),
    Call(usize, usize),
}

struct Emitter {
    insts: Vec<Inst>,
    spans: Vec<StmtSpan>,
    fixups: Vec<Fixup>,
    labels: HashMap<(usize, u16), usize>,
    fusable: Option<(usize, Var)>,
}

impl Emitter {
    fn emit(&mut self, inst: Inst) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    /// `mov dst, src` with the mem-mem fix through a scratch register.
    fn mov_via(&mut self, dst: Operand, src: Operand, scratch: Reg) {
        if is_mem(&dst) && is_mem(&src) {
            self.emit(h::mov(Operand::Reg(scratch), src));
            self.emit(h::mov(dst, Operand::Reg(scratch)));
        } else {
            self.emit(h::mov(dst, src));
        }
    }

    /// `op dst, src` with the mem-mem fix.
    fn alu_via(&mut self, op: fn(Operand, Operand) -> Inst, dst: Operand, src: Operand) {
        if is_mem(&dst) && is_mem(&src) {
            self.emit(h::mov(Operand::Reg(SCRATCH_A), src));
            self.emit(op(dst, Operand::Reg(SCRATCH_A)));
        } else {
            self.emit(op(dst, src));
        }
    }
}

fn compile_stmt(
    e: &mut Emitter,
    func_idx: usize,
    stmt_idx: usize,
    stmt: &Stmt,
    is_entry: bool,
    saved: &[Reg],
) -> Result<(), CompileError> {
    let start = e.insts.len();
    let mut fusable = None;
    let fail = |d: String| Err(CompileError { detail: d });
    match stmt {
        Stmt::Bin { dst, op, a, b } => {
            let d = var_loc(*dst);
            match (op, a) {
                (BinOp::AndNot, Rvalue::Var(av)) => {
                    // dst = a & ~b → movl eax, b; notl eax; andl dst, eax
                    // (the paper's Fig 7 auxiliary-instruction shape).
                    e.emit(h::mov(Operand::Reg(SCRATCH_A), rv(*b)));
                    e.emit(h::not(Operand::Reg(SCRATCH_A)));
                    if *dst != *av {
                        e.mov_via(d, var_loc(*av), SCRATCH_B);
                    }
                    e.emit(h::and(d, Operand::Reg(SCRATCH_A)));
                    fusable = Some(*dst);
                }
                (BinOp::Sub, Rvalue::Const(c)) => {
                    // dst = c - b.
                    let Rvalue::Var(bv) = b else {
                        return fail("constant-folded reverse subtract".into());
                    };
                    if dst == bv {
                        e.emit(h::mov(Operand::Reg(SCRATCH_A), Operand::Imm(*c as i32)));
                        e.emit(h::sub(Operand::Reg(SCRATCH_A), var_loc(*bv)));
                        e.emit(h::mov(d, Operand::Reg(SCRATCH_A)));
                    } else {
                        e.emit(h::mov(d, Operand::Imm(*c as i32)));
                        e.alu_via(h::sub, d, var_loc(*bv));
                    }
                    fusable = Some(*dst);
                }
                (BinOp::Mul, Rvalue::Var(av)) => {
                    // imul needs a register destination.
                    if matches!(d, Operand::Reg(_)) {
                        if dst != av {
                            if matches!(b, Rvalue::Var(bv) if bv == dst) {
                                // dst = a * dst: commutative, flip.
                                e.emit(h::imul(d, var_loc(*av)));
                            } else {
                                e.mov_via(d, var_loc(*av), SCRATCH_B);
                                e.emit(h::imul(d, rv(*b)));
                            }
                        } else {
                            e.emit(h::imul(d, rv(*b)));
                        }
                    } else {
                        e.emit(h::mov(Operand::Reg(SCRATCH_A), var_loc(*av)));
                        e.emit(h::imul(Operand::Reg(SCRATCH_A), rv(*b)));
                        e.emit(h::mov(d, Operand::Reg(SCRATCH_A)));
                    }
                }
                (_, Rvalue::Var(av)) => {
                    let alu = host_alu(*op);
                    if dst == av {
                        e.alu_via(alu, d, rv(*b));
                    } else if matches!(b, Rvalue::Var(bv) if bv == dst) {
                        // dst aliases the right operand: go through eax
                        // (the register-spill aux `movl` of Fig 6).
                        e.emit(h::mov(Operand::Reg(SCRATCH_A), var_loc(*av)));
                        e.emit(alu(Operand::Reg(SCRATCH_A), rv(*b)));
                        e.emit(h::mov(d, Operand::Reg(SCRATCH_A)));
                    } else {
                        e.mov_via(d, var_loc(*av), SCRATCH_A);
                        e.alu_via(alu, d, rv(*b));
                    }
                    let var_shift = matches!(op, BinOp::Shl | BinOp::Shr | BinOp::Sar | BinOp::Ror)
                        && matches!(b, Rvalue::Var(_));
                    if !var_shift {
                        fusable = Some(*dst);
                    }
                }
                (_, Rvalue::Const(_)) => {
                    return fail(format!("constant left operand for {op}"));
                }
            }
        }
        Stmt::BinShifted {
            dst,
            op,
            a,
            b,
            shift,
            amount,
        } => {
            let d = var_loc(*dst);
            e.emit(h::mov(Operand::Reg(SCRATCH_A), var_loc(*b)));
            let sh = match shift {
                pdbt_isa_arm::ShiftKind::Lsl => h::shl,
                pdbt_isa_arm::ShiftKind::Lsr => h::shr,
                pdbt_isa_arm::ShiftKind::Asr => h::sar,
                pdbt_isa_arm::ShiftKind::Ror => h::ror,
            };
            e.emit(sh(
                Operand::Reg(SCRATCH_A),
                Operand::Imm(i32::from(*amount)),
            ));
            if dst != a {
                e.mov_via(d, var_loc(*a), SCRATCH_B);
            }
            e.emit(host_alu(*op)(d, Operand::Reg(SCRATCH_A)));
            fusable = Some(*dst);
        }
        Stmt::Un { dst, op, a } => {
            let d = var_loc(*dst);
            match op {
                UnOp::Mov => e.mov_via(d, rv(*a), SCRATCH_A),
                UnOp::Not => {
                    e.mov_via(d, rv(*a), SCRATCH_A);
                    e.emit(h::not(d));
                }
                UnOp::Neg => {
                    e.mov_via(d, rv(*a), SCRATCH_A);
                    e.emit(h::neg(d));
                }
                UnOp::Clz => {
                    // Branchy bsr-based emulation; never verifies as a
                    // rule (the paper's unlearnable `clz`).
                    e.emit(h::mov(Operand::Reg(SCRATCH_A), rv(*a)));
                    e.emit(h::bsr(Operand::Reg(SCRATCH_B), Operand::Reg(SCRATCH_A)));
                    e.emit(h::jcc(Cc::E, 3));
                    e.emit(h::mov(Operand::Reg(SCRATCH_A), Operand::Imm(31)));
                    e.emit(h::sub(Operand::Reg(SCRATCH_A), Operand::Reg(SCRATCH_B)));
                    e.emit(h::jmp_rel(1));
                    e.emit(h::mov(Operand::Reg(SCRATCH_A), Operand::Imm(32)));
                    e.emit(h::mov(d, Operand::Reg(SCRATCH_A)));
                }
            }
        }
        Stmt::MulAdd { dst, a, b, c } => {
            e.emit(h::mov(Operand::Reg(SCRATCH_A), var_loc(*a)));
            e.emit(h::imul(Operand::Reg(SCRATCH_A), var_loc(*b)));
            e.emit(h::add(Operand::Reg(SCRATCH_A), var_loc(*c)));
            e.emit(h::mov(var_loc(*dst), Operand::Reg(SCRATCH_A)));
        }
        Stmt::WideMulAcc { lo, hi, a, b } => {
            // edx:eax = a * b; lo += eax; hi += edx + carry.
            if lo == hi || lo == a || lo == b || hi == a || hi == b {
                return fail("wide multiply-accumulate needs distinct variables".into());
            }
            e.emit(h::mov(Operand::Reg(SCRATCH_A), var_loc(*a)));
            e.emit(h::mul_wide(var_loc(*b)));
            e.emit(h::add(var_loc(*lo), Operand::Reg(SCRATCH_A)));
            e.emit(h::adc(var_loc(*hi), Operand::Reg(SCRATCH_B)));
        }
        Stmt::Load {
            dst,
            base,
            offset,
            width,
        } => {
            let base_reg = match var_loc(*base) {
                Operand::Reg(r) => r,
                mem => {
                    e.emit(h::mov(Operand::Reg(SCRATCH_B), mem));
                    SCRATCH_B
                }
            };
            let mem = Operand::Mem(Mem::base_disp(base_reg, *offset));
            let d = var_loc(*dst);
            match width {
                Width::B32 => e.mov_via(d, mem, SCRATCH_A),
                Width::B16 | Width::B8 => {
                    let load = if *width == Width::B8 {
                        h::movzxb
                    } else {
                        h::movzxw
                    };
                    if matches!(d, Operand::Reg(_)) {
                        e.emit(load(d, mem));
                    } else {
                        e.emit(load(Operand::Reg(SCRATCH_A), mem));
                        e.emit(h::mov(d, Operand::Reg(SCRATCH_A)));
                    }
                }
            }
        }
        Stmt::LoadIndexed { dst, base, index } => {
            let base_reg = match var_loc(*base) {
                Operand::Reg(r) => r,
                mem => {
                    e.emit(h::mov(Operand::Reg(SCRATCH_B), mem));
                    SCRATCH_B
                }
            };
            let index_reg = match var_loc(*index) {
                Operand::Reg(r) => r,
                mem => {
                    e.emit(h::mov(Operand::Reg(SCRATCH_A), mem));
                    SCRATCH_A
                }
            };
            let mem = Operand::Mem(Mem::base_index(base_reg, index_reg));
            e.mov_via(var_loc(*dst), mem, SCRATCH_A);
        }
        Stmt::Store {
            src,
            base,
            offset,
            width,
        } => {
            let base_reg = match var_loc(*base) {
                Operand::Reg(r) => r,
                mem => {
                    e.emit(h::mov(Operand::Reg(SCRATCH_B), mem));
                    SCRATCH_B
                }
            };
            let mem = Operand::Mem(Mem::base_disp(base_reg, *offset));
            match width {
                Width::B32 => e.mov_via(mem, var_loc(*src), SCRATCH_A),
                narrow => {
                    let src_reg = match var_loc(*src) {
                        Operand::Reg(r) => r,
                        slot => {
                            e.emit(h::mov(Operand::Reg(SCRATCH_A), slot));
                            SCRATCH_A
                        }
                    };
                    let store = if *narrow == Width::B8 {
                        h::movb
                    } else {
                        h::movw
                    };
                    e.emit(store(mem, Operand::Reg(src_reg)));
                }
            }
        }
        Stmt::Branch { a, cmp, b, target } => {
            let fuse = matches!(cmp, CmpKind::Eq | CmpKind::Ne)
                && matches!(b, Rvalue::Const(0))
                && e.fusable == Some((e.insts.len().wrapping_sub(1), *a));
            if !fuse {
                e.alu_via(h::cmp, var_loc(*a), rv(*b));
            }
            let idx = e.emit(h::jcc(host_cc(*cmp), 0));
            e.fixups.push(Fixup::Local(idx, *target));
        }
        Stmt::Goto { target } => {
            let idx = e.emit(h::jmp_rel(0));
            e.fixups.push(Fixup::Local(idx, *target));
        }
        Stmt::Define { label } => {
            e.labels.insert((func_idx, label.0), e.insts.len());
        }
        Stmt::Call { func } => {
            let idx = e.emit(h::call(Operand::Target(0)));
            e.fixups.push(Fixup::Call(idx, func.0 as usize));
        }
        Stmt::Output { a } => {
            e.emit(h::mov(Operand::Reg(SCRATCH_A), var_loc(*a)));
            e.emit(h::out());
        }
        Stmt::Return => {
            if is_entry {
                e.emit(h::hlt());
            } else {
                for r in saved.iter().rev() {
                    e.emit(h::pop(Operand::Reg(*r)));
                }
                e.emit(h::ret());
            }
        }
    }
    let end = e.insts.len();
    e.spans.push(StmtSpan {
        func: func_idx,
        stmt: stmt_idx,
        range: start..end,
    });
    e.fusable = fusable.map(|v| (end.wrapping_sub(1), v));
    Ok(())
}

/// Compiles a source program with the host backend.
///
/// # Errors
///
/// [`CompileError`] on malformed statements or unresolved labels.
pub fn compile(src: &SourceProgram) -> Result<HostImage, CompileError> {
    if src.functions.is_empty() {
        return Err(CompileError {
            detail: "no functions".into(),
        });
    }
    let mut e = Emitter {
        insts: Vec::new(),
        spans: Vec::new(),
        fixups: Vec::new(),
        labels: HashMap::new(),
        fusable: None,
    };
    let mut func_starts = Vec::new();
    for (fi, func) in src.functions.iter().enumerate() {
        func_starts.push(e.insts.len());
        e.fusable = None;
        let is_entry = fi == 0;
        let saved: Vec<Reg> = (0..func.n_vars.min(4))
            .map(|i| match var_loc(Var(i)) {
                Operand::Reg(r) => r,
                _ => unreachable!("first four variables are registers"),
            })
            .collect();
        if !is_entry {
            for r in &saved {
                e.emit(h::push(Operand::Reg(*r)));
            }
        }
        for (si, stmt) in func.stmts.iter().enumerate() {
            compile_stmt(&mut e, fi, si, stmt, is_entry, &saved)?;
        }
        let needs_term = !matches!(func.stmts.last(), Some(Stmt::Return | Stmt::Goto { .. }));
        if needs_term {
            if is_entry {
                e.emit(h::hlt());
            } else {
                for r in saved.iter().rev() {
                    e.emit(h::pop(Operand::Reg(*r)));
                }
                e.emit(h::ret());
            }
        }
    }
    for fixup in &e.fixups {
        match fixup {
            Fixup::Local(idx, label) => {
                let func = e
                    .spans
                    .iter()
                    .find(|s| s.range.contains(idx))
                    .map(|s| s.func)
                    .unwrap_or(0);
                let target = *e.labels.get(&(func, label.0)).ok_or_else(|| CompileError {
                    detail: format!("unresolved host label L{}", label.0),
                })?;
                let disp = target as i64 - (*idx as i64 + 1);
                e.insts[*idx].operands[0] = Operand::Target(disp as i32);
            }
            Fixup::Call(idx, func) => {
                let target = func_starts.get(*func).copied().unwrap_or(0);
                let disp = target as i64 - (*idx as i64 + 1);
                e.insts[*idx].operands[0] = Operand::Target(disp as i32);
            }
        }
    }
    Ok(HostImage {
        insts: e.insts,
        spans: e.spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{Function, Label};
    use pdbt_isa_x86::Op;

    fn f(stmts: Vec<Stmt>, n_vars: u8) -> Function {
        Function {
            name: "test".into(),
            stmts,
            n_vars,
        }
    }

    fn one(stmts: Vec<Stmt>, n_vars: u8) -> HostImage {
        compile(&SourceProgram {
            functions: vec![f(stmts, n_vars)],
        })
        .expect("compiles")
    }

    #[test]
    fn rmw_same_destination_is_single_alu() {
        // v0 = v0 + v1 → one addl.
        let image = one(
            vec![Stmt::Bin {
                dst: Var(0),
                op: BinOp::Add,
                a: Rvalue::Var(Var(0)),
                b: Rvalue::Var(Var(1)),
            }],
            2,
        );
        assert_eq!(image.spans[0].range.len(), 1);
        assert_eq!(image.insts[0].op, Op::Add);
    }

    #[test]
    fn three_address_needs_aux_move() {
        // v2 = v0 + v1 → movl + addl.
        let image = one(
            vec![Stmt::Bin {
                dst: Var(2),
                op: BinOp::Add,
                a: Rvalue::Var(Var(0)),
                b: Rvalue::Var(Var(1)),
            }],
            3,
        );
        assert_eq!(image.spans[0].range.len(), 2);
        assert_eq!(image.insts[0].op, Op::Mov);
        assert_eq!(image.insts[1].op, Op::Add);
    }

    #[test]
    fn alias_on_right_goes_through_scratch() {
        // v1 = v0 - v1 must not clobber v1 before reading it.
        let image = one(
            vec![Stmt::Bin {
                dst: Var(1),
                op: BinOp::Sub,
                a: Rvalue::Var(Var(0)),
                b: Rvalue::Var(Var(1)),
            }],
            2,
        );
        assert_eq!(image.spans[0].range.len(), 3);
        assert_eq!(image.insts[0].op, Op::Mov); // eax ← v0
        assert_eq!(image.insts[1].op, Op::Sub); // eax -= v1
        assert_eq!(image.insts[2].op, Op::Mov); // v1 ← eax
    }

    #[test]
    fn andnot_emits_fig7_shape() {
        let image = one(
            vec![Stmt::Bin {
                dst: Var(0),
                op: BinOp::AndNot,
                a: Rvalue::Var(Var(0)),
                b: Rvalue::Var(Var(1)),
            }],
            2,
        );
        let ops: Vec<Op> = image.insts.iter().map(|i| i.op).collect();
        assert_eq!(ops, vec![Op::Mov, Op::Not, Op::And, Op::Hlt]);
    }

    #[test]
    fn branch_fuses_after_rmw() {
        let image = one(
            vec![
                Stmt::Bin {
                    dst: Var(0),
                    op: BinOp::Sub,
                    a: Rvalue::Var(Var(0)),
                    b: Rvalue::Const(1),
                },
                Stmt::Branch {
                    a: Var(0),
                    cmp: CmpKind::Ne,
                    b: Rvalue::Const(0),
                    target: Label(0),
                },
                Stmt::Define { label: Label(0) },
                Stmt::Return,
            ],
            1,
        );
        let ops: Vec<Op> = image.insts.iter().map(|i| i.op).collect();
        assert!(!ops.contains(&Op::Cmp), "fused: {ops:?}");
        assert!(ops.contains(&Op::Jcc));
    }

    #[test]
    fn frame_slot_variables_use_memory() {
        let image = one(
            vec![Stmt::Bin {
                dst: Var(5),
                op: BinOp::Add,
                a: Rvalue::Var(Var(5)),
                b: Rvalue::Const(1),
            }],
            6,
        );
        assert!(image.insts[0]
            .operands
            .iter()
            .any(|o| matches!(o, Operand::Mem(m) if m.base == Some(Reg::Ebp))));
    }

    #[test]
    fn labels_resolve_relative() {
        let image = one(
            vec![
                Stmt::Define { label: Label(0) },
                Stmt::Bin {
                    dst: Var(0),
                    op: BinOp::Add,
                    a: Rvalue::Var(Var(0)),
                    b: Rvalue::Const(1),
                },
                Stmt::Goto { target: Label(0) },
                Stmt::Return,
            ],
            1,
        );
        let jmp = image.insts.iter().find(|i| i.op == Op::Jmp).unwrap();
        assert_eq!(jmp.operands[0], Operand::Target(-2));
    }

    #[test]
    fn callee_saves_registers() {
        let src = SourceProgram {
            functions: vec![
                f(
                    vec![
                        Stmt::Call {
                            func: crate::lang::FuncId(1),
                        },
                        Stmt::Return,
                    ],
                    0,
                ),
                f(
                    vec![
                        Stmt::Un {
                            dst: Var(0),
                            op: UnOp::Mov,
                            a: Rvalue::Const(1),
                        },
                        Stmt::Return,
                    ],
                    1,
                ),
            ],
        };
        let image = compile(&src).unwrap();
        let ops: Vec<Op> = image.insts.iter().map(|i| i.op).collect();
        assert!(ops.contains(&Op::Push));
        assert!(ops.contains(&Op::Ret));
        assert!(ops.contains(&Op::Call));
        assert!(ops.contains(&Op::Hlt));
    }

    #[test]
    fn clz_uses_bsr_sequence() {
        let image = one(
            vec![Stmt::Un {
                dst: Var(0),
                op: UnOp::Clz,
                a: Rvalue::Var(Var(1)),
            }],
            2,
        );
        assert!(image.insts.iter().any(|i| i.op == Op::Bsr));
        assert!(image.spans[0].range.len() >= 6);
    }
}
