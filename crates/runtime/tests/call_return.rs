//! Regression tests for call/return translation: the terminal
//! instruction's guest work (the `bl` link-register write) must be
//! emitted before the block epilogue, and repeated call/return cycles
//! must not drift the stack pointer (both were real bugs caught by the
//! workload integration tests).

use pdbt_isa::Cond;
use pdbt_isa_arm::builders as g;
use pdbt_isa_arm::{Operand as O, Program, Reg};
use pdbt_runtime::{Engine, EngineConfig, RunSetup};

fn run_both(prog: Program) -> (Vec<u32>, Vec<u32>) {
    let mut cpu = pdbt_isa_arm::Cpu::new();
    cpu.mem.map(0x10_0000, 0x1000);
    cpu.mem.map(0x8_0000, 0x1000);
    cpu.write(Reg::Sp, 0x8_1000);
    pdbt_isa_arm::run(&mut cpu, &prog, 1_000_000).unwrap();
    let mut engine = Engine::new(None, EngineConfig::default());
    let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
    let report = engine.run(&prog, &setup).unwrap();
    (cpu.output, report.output)
}

#[test]
fn simple_call_return() {
    let prog = Program::new(
        0x1000,
        vec![
            g::bl(16),                   // 0x1000 → f at 0x1010
            g::svc(1),                   // 0x1004
            g::svc(0),                   // 0x1008
            g::svc(0),                   // 0x100c pad
            g::push([Reg::R4, Reg::Lr]), // 0x1010 f:
            g::mov(Reg::R4, O::Imm(7)),
            g::mov(Reg::R0, O::Reg(Reg::R4)),
            g::pop([Reg::R4, Reg::Pc]),
        ],
    );
    let (a, b) = run_both(prog);
    assert_eq!(a, b);
    assert_eq!(a, vec![7]);
}

#[test]
fn repeated_calls_do_not_drift_sp() {
    let prog = Program::new(
        0x1000,
        vec![
            g::mov(Reg::R5, O::Imm(50)),                  // 0x1000
            g::bl(0x1c - 0x04),                           // 0x1004 → 0x101c
            g::sub(Reg::R5, Reg::R5, O::Imm(1)).with_s(), // 0x1008
            g::b(Cond::Ne, -8),                           // 0x100c
            g::mov(Reg::R0, O::Reg(Reg::Sp)),             // 0x1010
            g::svc(1),                                    // 0x1014
            g::svc(0),                                    // 0x1018
            g::push([Reg::R4, Reg::R6, Reg::Lr]),         // 0x101c f:
            g::add(Reg::R4, Reg::R4, O::Imm(1)),
            g::pop([Reg::R4, Reg::R6, Reg::Pc]),
        ],
    );
    let (a, b) = run_both(prog);
    assert_eq!(a, b, "sp after the call loop must match the interpreter");
}

#[test]
fn nested_calls_restore_state() {
    // main → f → g, each saving and clobbering registers.
    let prog = Program::new(
        0x1000,
        vec![
            g::mov(Reg::R4, O::Imm(11)),      // 0x1000
            g::bl(0x10),                      // 0x1004 → f at 0x1014
            g::mov(Reg::R0, O::Reg(Reg::R4)), // 0x1008
            g::svc(1),                        // 0x100c
            g::svc(0),                        // 0x1010
            // f:
            g::push([Reg::R4, Reg::Lr]), // 0x1014
            g::mov(Reg::R4, O::Imm(22)), // 0x1018
            g::bl(0x0c),                 // 0x101c → g at 0x1028
            g::pop([Reg::R4, Reg::Pc]),  // 0x1020
            g::svc(0),                   // 0x1024 pad
            // g:
            g::push([Reg::R4, Reg::Lr]), // 0x1028
            g::mov(Reg::R4, O::Imm(33)), // 0x102c
            g::pop([Reg::R4, Reg::Pc]),  // 0x1030
        ],
    );
    let (a, b) = run_both(prog);
    assert_eq!(a, b);
    assert_eq!(
        a,
        vec![11],
        "callee-saved registers restored through two levels"
    );
}
