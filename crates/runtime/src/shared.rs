//! Cross-session translation state: the ruleset, the sharded code
//! cache of pure translations, and the server-lifetime counters, held
//! behind one `Arc` so many engines (sessions) can share them.
//!
//! This is the ownership split behind `pdbt serve`: translating a block
//! is the expensive, *session-independent* work — the paper's
//! amortization argument (training cost spread over all future
//! translations) only pays off at scale if translations are likewise
//! amortized across runs. An [`Engine`](crate::Engine) therefore no
//! longer owns its `RuleSet` and `ShardedCache`; it borrows them from
//! here, keeps all *mutable* dispatch state (jump cache, chain links,
//! superblocks, metrics, report counters) session-private, and folds a
//! shared translation's static footprint into its own counters at first
//! session-local sight. The result: the first session translates a
//! block and every later session reuses it, while each session's
//! stripped report stays bit-identical to a cold single-engine run
//! (locked down in `tests/determinism.rs`).
//!
//! One shared state serves one guest image: translations are keyed by
//! guest pc, so sessions running *different* programs must use
//! different states (`pdbt-serve` partitions them by an image
//! fingerprint) or a session would execute another image's code.

use crate::cache::ShardedCache;
use crate::translate::TranslatedBlock;
use pdbt_core::RuleSet;
use pdbt_isa::Addr;
use pdbt_obs::{ArtifactCounters, ServerCounters, Telemetry};
use std::collections::HashMap;
use std::sync::Arc;

/// The translation state shared by every session of one server (or
/// owned exclusively by a standalone engine — `Engine::new` wraps one
/// privately, so the single-process CLI path is the one-session special
/// case of the same machinery).
#[derive(Debug)]
pub struct SharedTranslationState {
    /// The rule set every session translates with (`None` = pure
    /// QEMU-path baseline). Immutable for the state's lifetime: rule
    /// reloads are a new state, not a mutation.
    rules: Option<RuleSet>,
    /// The warm code cache of pure translations.
    cache: ShardedCache,
    /// Server-lifetime counters: probes, inserts, translate calls,
    /// sessions. See `pdbt_obs::ServerCounters` for the determinism
    /// discipline (`hits` is derived, not raced).
    server: ServerCounters,
    /// The serving-plane telemetry attached to this state: per-worker
    /// latency histograms, the flight recorder, and the request
    /// sequence counter. A standalone engine keeps one slot; the
    /// server sizes this to its worker count and stamps the partition
    /// fingerprint.
    telemetry: Telemetry,
    /// The superblock library rehydrated from a translation artifact,
    /// keyed by the full member list. Immutable after boot: a session
    /// forming a trace with exactly these members reuses the stored
    /// translation instead of calling `translate_trace` — translation
    /// is deterministic, so the result is identical and the session's
    /// stripped report stays bit-for-bit what a cold run produces.
    /// Traces a session forms live never enter this map (member choice
    /// follows session-local edge counters).
    traces: HashMap<Vec<Addr>, Arc<TranslatedBlock>>,
    /// What the artifact contributed at boot, plus live library hits.
    /// All-zero for a cold state.
    artifact: ArtifactCounters,
}

impl SharedTranslationState {
    /// Creates a shared state with the given rules and cache shard
    /// count (rounded up to a power of two).
    #[must_use]
    pub fn new(rules: Option<RuleSet>, cache_shards: usize) -> SharedTranslationState {
        Self::with_telemetry(rules, cache_shards, 1, 0)
    }

    /// [`SharedTranslationState::new`] with a sized telemetry plane:
    /// `slots` per-worker latency histogram sets (the server passes its
    /// worker count) and the guest-image `partition` fingerprint this
    /// state serves.
    #[must_use]
    pub fn with_telemetry(
        rules: Option<RuleSet>,
        cache_shards: usize,
        slots: usize,
        partition: u64,
    ) -> SharedTranslationState {
        SharedTranslationState {
            rules,
            cache: ShardedCache::new(cache_shards),
            server: ServerCounters::new(),
            telemetry: Telemetry::with_partition(slots, partition),
            traces: HashMap::new(),
            artifact: ArtifactCounters::new(),
        }
    }

    /// A state pre-warmed from a translation artifact: `blocks` are
    /// installed directly into the shared cache and `traces` become the
    /// superblock library, before any session attaches. Warm installs
    /// deliberately skip the `inserted`/`translate_calls` server
    /// counters — those count *live* translation work, so an
    /// artifact-booted daemon's first request reports pure cache hits
    /// and zero translate calls; the artifact's contribution is
    /// reported separately through `counters`.
    #[must_use]
    pub fn warm(
        rules: Option<RuleSet>,
        cache_shards: usize,
        slots: usize,
        partition: u64,
        blocks: Vec<TranslatedBlock>,
        traces: Vec<TranslatedBlock>,
        counters: ArtifactCounters,
    ) -> SharedTranslationState {
        let mut state = Self::with_telemetry(rules, cache_shards, slots, partition);
        for block in blocks {
            state.cache.insert(block.start, block);
        }
        state.traces = traces
            .into_iter()
            .map(|t| {
                let members: Vec<Addr> = t.member_marks.iter().map(|m| m.start).collect();
                (members, Arc::new(t))
            })
            .collect();
        state.artifact = counters;
        state
    }

    /// The shared rule set.
    #[must_use]
    pub fn rules(&self) -> Option<&RuleSet> {
        self.rules.as_ref()
    }

    /// The shared code cache.
    #[must_use]
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// The server-lifetime counters.
    #[must_use]
    pub fn server(&self) -> &ServerCounters {
        &self.server
    }

    /// The serving-plane telemetry.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The library translation for a superblock with exactly these
    /// members, if the boot artifact carried one.
    #[must_use]
    pub fn library_trace(&self, members: &[Addr]) -> Option<Arc<TranslatedBlock>> {
        self.traces.get(members).cloned()
    }

    /// Superblocks in the boot library.
    #[must_use]
    pub fn library_len(&self) -> usize {
        self.traces.len()
    }

    /// A clone of every library superblock, for re-sealing this state
    /// into an artifact (drain write-back). Order is unspecified; the
    /// canonical artifact writer sorts.
    #[must_use]
    pub fn library_traces(&self) -> Vec<TranslatedBlock> {
        self.traces.values().map(|t| (**t).clone()).collect()
    }

    /// The artifact counters.
    #[must_use]
    pub fn artifact(&self) -> &ArtifactCounters {
        &self.artifact
    }
}
