//! Pluggable host-execution backends.
//!
//! The dispatcher (chaining, jump cache, superblocks) is
//! backend-agnostic: it resolves a [`CachedBlock`] and hands it to a
//! [`HostBackend`] to run. Two backends exist:
//!
//! * [`ModelBackend`] — the original path through the x86 model's
//!   `exec_block_traced_into`, re-matching each `Inst` on every
//!   execution. Kept as the oracle: slow, obviously correct.
//! * [`ThreadedBackend`] — compiles each block *once* (lazily, on its
//!   first execute) into direct-threaded code
//!   ([`pdbt_isa_x86::compile_block`]) and runs that. Same
//!   architectural effects, retire counts and errors, minus the
//!   per-instruction decode/dispatch overhead.
//!
//! The lazy-compile rule is **counter-neutral**: compilation happens
//! at first *execute*, never at adopt/prewarm/warm-boot time, and
//! touches only the `compiled_blocks`/`compile_ns` counters (plus the
//! server-lifetime `compiled` rollup). `compiled_blocks` is therefore
//! deterministic — one per distinct block this session executed —
//! regardless of worker count, shared-cache warmth, or artifact boot;
//! `compile_ns` is wall-clock and is stripped by determinism
//! comparisons exactly like `histograms.translate_ns`.

use crate::cache::CachedBlock;
use pdbt_isa::ExecError;
use pdbt_isa_x86::{
    compile_block, exec_block_traced_into, exec_threaded_into, BlockExit, Cpu as HostCpu, ExecStats,
};
use pdbt_obs::{DispatchCounters, ServerCounters};

/// Which host backend a session executes blocks with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The interpreting x86 model (the oracle).
    Model,
    /// Pre-compiled direct-threaded code (the default).
    #[default]
    Threaded,
}

impl BackendKind {
    /// Stable machine-readable name (the `dispatch.backend` report
    /// field and the `--backend` flag value).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Model => "model",
            BackendKind::Threaded => "threaded",
        }
    }

    /// Parses a `--backend` flag value.
    #[must_use]
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "model" => Some(BackendKind::Model),
            "threaded" => Some(BackendKind::Threaded),
            _ => None,
        }
    }
}

/// Counter sinks a backend may touch while executing: the session's
/// dispatch counters (lazy-compile accounting) and the shared state's
/// server-lifetime rollup.
pub struct BackendObs<'a> {
    /// Session dispatch counters (`compiled_blocks`, `compile_ns`).
    pub dispatch: &'a mut DispatchCounters,
    /// Server-lifetime counters of the shared state.
    pub server: &'a ServerCounters,
}

/// A host block executor. Implementations must be bit-identical to the
/// model: same architectural effects, same per-instruction retire
/// counts (`counts` is cleared and resized to the block length), same
/// errors — the whole determinism lockdown runs under either backend.
pub trait HostBackend: Send + Sync + std::fmt::Debug {
    /// Stable backend name.
    fn name(&self) -> &'static str;

    /// Executes `cached` (a plain block or a superblock) on `cpu`.
    ///
    /// # Errors
    ///
    /// Exactly the model executor's errors: any interpreter fault,
    /// `Timeout` past `budget`, `BadPc` on a wild relative jump.
    fn execute(
        &self,
        cached: &CachedBlock,
        cpu: &mut HostCpu,
        budget: u64,
        counts: &mut Vec<u32>,
        obs: &mut BackendObs<'_>,
    ) -> Result<(BlockExit, ExecStats), ExecError>;
}

/// The oracle: the model interpreter, unchanged.
#[derive(Debug)]
pub struct ModelBackend;

impl HostBackend for ModelBackend {
    fn name(&self) -> &'static str {
        BackendKind::Model.name()
    }

    fn execute(
        &self,
        cached: &CachedBlock,
        cpu: &mut HostCpu,
        budget: u64,
        counts: &mut Vec<u32>,
        _obs: &mut BackendObs<'_>,
    ) -> Result<(BlockExit, ExecStats), ExecError> {
        exec_block_traced_into(cpu, &cached.block.code, budget, counts)
    }
}

/// Direct-threaded execution with first-execute lazy compilation into
/// the block's [`CachedBlock::compiled`] slot.
#[derive(Debug)]
pub struct ThreadedBackend;

impl HostBackend for ThreadedBackend {
    fn name(&self) -> &'static str {
        BackendKind::Threaded.name()
    }

    fn execute(
        &self,
        cached: &CachedBlock,
        cpu: &mut HostCpu,
        budget: u64,
        counts: &mut Vec<u32>,
        obs: &mut BackendObs<'_>,
    ) -> Result<(BlockExit, ExecStats), ExecError> {
        let code = match cached.compiled.get() {
            Some(code) => code,
            None => {
                let t0 = pdbt_obs::now_ns();
                let code = cached
                    .compiled
                    .get_or_init(|| compile_block(&cached.block.code));
                obs.dispatch.compiled_blocks += 1;
                obs.dispatch.compile_ns += pdbt_obs::now_ns().saturating_sub(t0);
                obs.server.record_compiled();
                code
            }
        };
        exec_threaded_into(cpu, code, budget, counts)
    }
}

static MODEL: ModelBackend = ModelBackend;
static THREADED: ThreadedBackend = ThreadedBackend;

/// The backend singleton for a [`BackendKind`] (backends are
/// stateless; all per-block state lives in the cache slots).
#[must_use]
pub fn backend_for(kind: BackendKind) -> &'static dyn HostBackend {
    match kind {
        BackendKind::Model => &MODEL,
        BackendKind::Threaded => &THREADED,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::{BlockSuccs, TranslatedBlock};
    use pdbt_isa_x86::builders::*;
    use pdbt_isa_x86::{Operand, Reg};
    use std::sync::Arc;

    fn cached(code: Vec<pdbt_isa_x86::Inst>) -> CachedBlock {
        CachedBlock::new(
            Arc::new(TranslatedBlock {
                start: 0x1000,
                classes: Vec::new(),
                guest_len: 1,
                rule_covered: 0,
                attributions: Vec::new(),
                lookup_misses: Vec::new(),
                deleg: None,
                succ: BlockSuccs::None,
                member_marks: Vec::new(),
                code,
            }),
            Vec::new(),
        )
    }

    #[test]
    fn backends_agree_and_compile_counts_once() {
        let block = cached(vec![
            mov(Reg::Eax.into(), Operand::Imm(6)),
            imul(Reg::Eax.into(), Operand::Imm(7)),
            out(),
            hlt(),
        ]);
        let server = ServerCounters::new();
        let mut dispatch = DispatchCounters::new();
        let mut counts_m = Vec::new();
        let mut counts_t = Vec::new();
        let mut cpu_m = HostCpu::new();
        let mut cpu_t = HostCpu::new();
        let mut obs = BackendObs {
            dispatch: &mut dispatch,
            server: &server,
        };
        let m = ModelBackend
            .execute(&block, &mut cpu_m, 100, &mut counts_m, &mut obs)
            .unwrap();
        let t = ThreadedBackend
            .execute(&block, &mut cpu_t, 100, &mut counts_t, &mut obs)
            .unwrap();
        assert_eq!(m, t);
        assert_eq!(counts_m, counts_t);
        assert_eq!(cpu_m.output, cpu_t.output);
        assert_eq!(cpu_m.regs, cpu_t.regs);
        // Second execute reuses the compiled slot: one compile total.
        ThreadedBackend
            .execute(&block, &mut cpu_t, 100, &mut counts_t, &mut obs)
            .unwrap();
        assert_eq!(obs.dispatch.compiled_blocks, 1);
        assert_eq!(server.snapshot().compiled_blocks, 1);
        // The model backend never compiles.
        assert_eq!(ModelBackend.name(), "model");
        assert_eq!(ThreadedBackend.name(), "threaded");
    }

    #[test]
    fn kind_parses_and_names_round_trip() {
        for kind in [BackendKind::Model, BackendKind::Threaded] {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
            assert_eq!(backend_for(kind).name(), kind.name());
        }
        assert_eq!(BackendKind::parse("jit"), None);
        assert_eq!(BackendKind::default(), BackendKind::Threaded);
    }
}
