//! The DBT runtime: block discovery, three translation paths (QEMU-IR,
//! learned rules, parameterized rules), condition-flag delegation, a
//! code cache, and class-attributed execution metrics.
//!
//! Which of the paper's configurations an [`Engine`] embodies is decided
//! by what it is given:
//!
//! * `Engine::new(None, …)` — the QEMU 4.1 baseline (pure lift/lower),
//! * a learned-only [`pdbt_core::RuleSet`] — the `w/o para.` learning
//!   baseline,
//! * a parameterized rule set (see `pdbt_core::derive`) — the paper's
//!   `para.` system, with [`TranslateConfig::flag_delegation`] as the
//!   condition-flag knob of Figs 14/15.
//!
//! # Example
//!
//! ```
//! use pdbt_runtime::{Engine, EngineConfig, RunSetup};
//! use pdbt_isa_arm::{builders as g, Program, Reg, Operand as O};
//!
//! let prog = Program::new(0x1000, vec![
//!     g::mov(Reg::R0, O::Imm(41)),
//!     g::add(Reg::R0, Reg::R0, O::Imm(1)),
//!     g::svc(1),
//!     g::svc(0),
//! ]);
//! let mut engine = Engine::new(None, EngineConfig::default());
//! let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
//! let report = engine.run(&prog, &setup).unwrap();
//! assert_eq!(report.output, vec![42]);
//! ```

mod backend;
mod cache;
mod engine;
mod shared;
mod translate;

pub use backend::{
    backend_for, BackendKind, BackendObs, HostBackend, ModelBackend, ThreadedBackend,
};
pub use cache::{CachedBlock, ChainLinks, LinkSlot, ShardedCache};
pub use engine::{
    Engine, EngineConfig, EngineError, Metrics, Outcome, Report, Resilience, RunObs, RunSetup,
    ENV_BASE,
};
pub use shared::SharedTranslationState;
pub use translate::{
    collect_block, translate_block, translate_trace, BlockSuccs, CodeClass, DelegOutcome,
    MemberMark, RuleAttribution, TranslateConfig, TranslateError, TranslatedBlock,
};
