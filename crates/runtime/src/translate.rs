//! Block translation: the three translation paths and their glue.
//!
//! Each guest basic block becomes one host block:
//!
//! * **prologue** — load the block's cached guest registers from the
//!   environment (the *data transfer* instructions of Table II),
//! * per guest instruction, either a **rule-translated** segment
//!   (template instantiation, §IV-D) or a **QEMU-path** segment
//!   (lift + lower through the TCG-like IR),
//! * condition-flag handling — delegation to live host flags when the
//!   flag producer sits within the look-ahead window, otherwise
//!   materialization into the environment (§IV-D, Fig 10),
//! * **epilogue** — store dirty cached registers back,
//! * **control stub** — block bookkeeping and the exit jumps (the
//!   *control code* of Table II).

use pdbt_core::classify::subgroup_of;
use pdbt_core::flags::{
    can_materialize, cond_flag_uses, delegated_cc, setcc_for_flag, DELEGATION_WINDOW,
};
use pdbt_core::{emit, key as rkey, template as rtemplate, HostLoc, RuleSet};
use pdbt_ir::{env, lift, lower_branch_cond, lower_ops, RegMap, Terminator};
use pdbt_isa::Flag;
use pdbt_isa::{Addr, Cond, FlagSet};
use pdbt_isa_arm::{Inst as GInst, Operand, Program, Reg as GReg, INST_SIZE};
use pdbt_isa_x86::builders as hb;
use pdbt_isa_x86::{Inst as HInst, Operand as HOperand, Reg as HReg};
use pdbt_symexec::FlagEquiv;
use std::fmt;

/// Where an executed host instruction's cost is attributed (the four
/// columns of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeClass {
    /// Host code produced by rule instantiation.
    RuleCore,
    /// Host code produced by the lift/lower (QEMU) path.
    QemuCore,
    /// Guest-register loads/stores around the block.
    DataTransfer,
    /// Block stubs: bookkeeping, exit jumps, chaining glue.
    Control,
}

impl CodeClass {
    /// Dense index for per-class counters.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            CodeClass::RuleCore => 0,
            CodeClass::QemuCore => 1,
            CodeClass::DataTransfer => 2,
            CodeClass::Control => 3,
        }
    }
}

/// Translation configuration (the ablation knobs of Figs 14/15 at the
/// runtime level; which rules exist is decided by the rule set itself).
#[derive(Debug, Clone, Copy)]
pub struct TranslateConfig {
    /// Condition-flag delegation at rule application (§IV-D). When off,
    /// rules only apply to live-flag producers whose report is exact,
    /// and flags are always materialized.
    pub flag_delegation: bool,
    /// Maximum guest instructions per block.
    pub max_block: usize,
    /// Delegation look-ahead window in guest instructions (§IV-D uses
    /// three; exposed for the window-size ablation bench).
    pub window: usize,
}

impl Default for TranslateConfig {
    fn default() -> TranslateConfig {
        TranslateConfig {
            flag_delegation: true,
            max_block: 32,
            window: DELEGATION_WINDOW,
        }
    }
}

/// A translation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslateError {
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "translation error: {}", self.detail)
    }
}

impl std::error::Error for TranslateError {}

/// One rule application inside a translated block, for per-rule
/// coverage attribution: which parameterized rule supplied which part
/// of the block's coverage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleAttribution {
    /// Rule label: the matched `ComboKey`'s display form, a
    /// `seq[..]` compound for sequence rules, or `b<cond> (delegated)`
    /// for a delegated terminal branch.
    pub label: String,
    /// Instruction-class subgroup of the rule's root opcode
    /// (`Int/Dp/Alu` style).
    pub subgroup: String,
    /// Guest instructions this application covers.
    pub covered: u32,
}

/// How the block's terminal conditional branch consumed its flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelegOutcome {
    /// Delegated to live host flags; the payload is the producer's
    /// look-ahead distance in guest instructions (0..=window).
    Delegated(u32),
    /// Fell back to flags materialized in the environment.
    EnvFallback,
}

/// Static successors of a translated block's exit, for block chaining:
/// which guest addresses the exit stub can jump to. Indirect transfers
/// and halts have no static successors and always return to the
/// dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockSuccs {
    /// No statically known successor (indirect branch, halt).
    None,
    /// A single successor (unconditional branch, call, fall-through).
    One(Addr),
    /// A conditional branch's two successors.
    Two {
        /// The branch-taken target.
        taken: Addr,
        /// The fall-through address.
        fall: Addr,
    },
}

/// Per-member accounting for a hot-trace superblock
/// ([`translate_trace`]): the engine folds guest/coverage metrics for
/// exactly the members an execution retired, identified by whether each
/// member's anchor host instruction executed. Superblocks are
/// straight-line (side exits only), so the retired members of one
/// execution always form a prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberMark {
    /// The member block's guest start address (trace invalidation keys
    /// off this).
    pub start: Addr,
    /// Index of the first host instruction at or after the member's
    /// region start. A member with no host code of its own shares the
    /// next member's anchor, which is exact for straight-line code.
    pub anchor: usize,
    /// Guest instructions this member covers.
    pub guest_len: u32,
    /// How many of them were rule-translated (including a delegated
    /// branch).
    pub rule_covered: u32,
    /// This member's half-open range in
    /// [`TranslatedBlock::attributions`].
    pub attr_range: (usize, usize),
    /// Flag handling of this member's conditional branch, if any.
    pub deleg: Option<DelegOutcome>,
}

/// One translated basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslatedBlock {
    /// Guest start address.
    pub start: Addr,
    /// The host code.
    pub code: Vec<HInst>,
    /// Per-host-instruction cost class (same length as `code`).
    pub classes: Vec<CodeClass>,
    /// Number of guest instructions the block covers.
    pub guest_len: u32,
    /// How many of them were rule-translated (including a delegated
    /// terminal branch).
    pub rule_covered: u32,
    /// Per-rule coverage attribution; `covered` sums to
    /// [`TranslatedBlock::rule_covered`].
    pub attributions: Vec<RuleAttribution>,
    /// Rule-lookup misses: labels of body instructions that fell to the
    /// QEMU path while a rule set was installed.
    pub lookup_misses: Vec<String>,
    /// Terminal-branch flag handling, when the block ends in a
    /// conditional branch. `None` for superblocks, whose branches are
    /// reported per member.
    pub deleg: Option<DelegOutcome>,
    /// Static successors of the exit stub, for chaining.
    pub succ: BlockSuccs,
    /// Superblock member accounting; empty for ordinary blocks.
    pub member_marks: Vec<MemberMark>,
}

struct Emitter {
    code: Vec<HInst>,
    classes: Vec<CodeClass>,
}

impl Emitter {
    fn push(&mut self, inst: HInst, class: CodeClass) {
        self.code.push(inst);
        self.classes.push(class);
    }

    fn extend(&mut self, insts: Vec<HInst>, class: CodeClass) {
        for i in insts {
            self.push(i, class);
        }
    }
}

/// Rewrites env-resident operands of ALU operations through scratch
/// registers — TCG emits reg-reg operations only (guest registers are
/// loaded into temps before use), so the QEMU path may not exploit the
/// host's memory-operand ALU forms the way rule-translated code does.
fn tcg_legalize(code: Vec<HInst>) -> Vec<HInst> {
    use pdbt_isa_x86::Op as HOp;
    let mut out = Vec::with_capacity(code.len());
    for inst in code {
        let alu_like = matches!(
            inst.op,
            HOp::Add
                | HOp::Adc
                | HOp::Sub
                | HOp::Sbb
                | HOp::And
                | HOp::Or
                | HOp::Xor
                | HOp::Imul
                | HOp::Shl
                | HOp::Shr
                | HOp::Sar
                | HOp::Ror
                | HOp::Cmp
                | HOp::Test
                | HOp::Not
                | HOp::Neg
        );
        if !alu_like {
            out.push(inst);
            continue;
        }
        let env_mem = |o: &HOperand| matches!(o, HOperand::Mem(m) if m.base == Some(HReg::Ebp));
        let mut operands = inst.operands.clone();
        let uses_eax = operands.contains(&HOperand::Reg(HReg::Eax));
        let uses_edx = operands.contains(&HOperand::Reg(HReg::Edx));
        // Source position (last operand) first.
        if operands.len() == 2 && env_mem(&operands[1]) {
            let scratch = if uses_edx { HReg::Eax } else { HReg::Edx };
            out.push(hb::mov(HOperand::Reg(scratch), operands[1]));
            operands[1] = HOperand::Reg(scratch);
        }
        // Destination (read-modify-write) position.
        if env_mem(&operands[0]) && !matches!(inst.op, HOp::Cmp | HOp::Test) {
            let scratch = if uses_eax || operands.get(1) == Some(&HOperand::Reg(HReg::Eax)) {
                HReg::Edx
            } else {
                HReg::Eax
            };
            let dst = operands[0];
            out.push(hb::mov(HOperand::Reg(scratch), dst));
            operands[0] = HOperand::Reg(scratch);
            out.push(HInst {
                op: inst.op,
                cc: inst.cc,
                operands,
            });
            out.push(hb::mov(dst, HOperand::Reg(scratch)));
            continue;
        } else if env_mem(&operands[0]) {
            // cmp/test with an env-resident left operand.
            let scratch = if uses_edx || operands.get(1) == Some(&HOperand::Reg(HReg::Edx)) {
                HReg::Eax
            } else {
                HReg::Edx
            };
            out.push(hb::mov(HOperand::Reg(scratch), operands[0]));
            operands[0] = HOperand::Reg(scratch);
        }
        out.push(HInst {
            op: inst.op,
            cc: inst.cc,
            operands,
        });
    }
    out
}

/// Whole-program flag live-in analysis: for every instruction index,
/// which flags may be read (along some path) before being redefined.
/// Backward fixpoint over the static CFG; indirect control transfers
/// (`bx`, `pop {…, pc}`, `mov pc, …`) conservatively treat all flags as
/// live. The block translator uses this to decide which flag
/// definitions must be materialized into the environment for
/// *successor* blocks — the cross-block counterpart of the paper's
/// "emulated by their corresponding memory locations to guarantee the
/// correctness" fallback (§IV-D).
pub(crate) fn flag_liveins(prog: &Program) -> Vec<FlagSet> {
    let insts = prog.insts();
    let n = insts.len();
    let idx_of = |addr: Addr| -> Option<usize> {
        if addr < prog.base() || !(addr - prog.base()).is_multiple_of(INST_SIZE) {
            return None;
        }
        let i = ((addr - prog.base()) / INST_SIZE) as usize;
        (i < n).then_some(i)
    };
    let mut live_in = vec![FlagSet::EMPTY; n];
    loop {
        let mut changed = false;
        // Indirect control transfers are overwhelmingly returns; their
        // flag live-out is the join over every call continuation (the
        // instruction after each `bl`). Truly unknown targets (computed
        // jumps) would need NZCV, but the guest compiler only produces
        // indirect control flow for returns.
        let mut ret_live = FlagSet::EMPTY;
        for (i, inst) in insts.iter().enumerate() {
            if inst.op == pdbt_isa_arm::Op::Bl && i + 1 < n {
                ret_live |= live_in[i + 1];
            }
        }
        for i in (0..n).rev() {
            let inst = &insts[i];
            let addr = prog.addr_of(i);
            let at = |j: Option<usize>, live_in: &[FlagSet]| {
                j.map(|j| live_in[j]).unwrap_or(FlagSet::NZCV)
            };
            let fall = (i + 1 < n).then_some(i + 1);
            let (uses, succ) = match inst.op {
                pdbt_isa_arm::Op::B => {
                    let Operand::Target(d) = inst.operands[0] else {
                        unreachable!()
                    };
                    let t = idx_of(addr.wrapping_add(d as u32));
                    if inst.cond == Cond::Al {
                        (FlagSet::EMPTY, at(t, &live_in))
                    } else {
                        (
                            cond_flag_uses(inst.cond),
                            at(t, &live_in) | at(fall, &live_in),
                        )
                    }
                }
                pdbt_isa_arm::Op::Bl => {
                    let Operand::Target(d) = inst.operands[0] else {
                        unreachable!()
                    };
                    let t = idx_of(addr.wrapping_add(d as u32));
                    // The callee's entry, plus (conservatively) the
                    // return continuation.
                    (FlagSet::EMPTY, at(t, &live_in) | at(fall, &live_in))
                }
                pdbt_isa_arm::Op::Svc if inst.operands[0].as_imm() == Some(0) => {
                    (FlagSet::EMPTY, FlagSet::EMPTY)
                }
                _ if inst.is_branch() => (inst.flag_uses(), ret_live),
                _ => (inst.flag_uses(), at(fall, &live_in)),
            };
            let new = uses | (succ - inst.flag_defs());
            if new != live_in[i] {
                live_in[i] = new;
                changed = true;
            }
        }
        if !changed {
            return live_in;
        }
    }
}

/// Collects the guest basic block starting at `start`.
///
/// # Errors
///
/// [`TranslateError`] if the start address is outside the program.
pub fn collect_block(
    prog: &Program,
    start: Addr,
    max: usize,
) -> Result<Vec<(Addr, &GInst)>, TranslateError> {
    let mut out = Vec::new();
    let mut pc = start;
    loop {
        let inst = prog.fetch(pc).map_err(|e| TranslateError {
            detail: format!("fetch {pc:#x}: {e}"),
        })?;
        out.push((pc, inst));
        if inst.ends_block() || out.len() >= max {
            return Ok(out);
        }
        pc += INST_SIZE;
    }
}

/// The guest register map location of a rule slot.
fn slot_loc(map: &RegMap, g: GReg) -> HostLoc {
    match map.loc(g) {
        env::Loc::Host(h) => HostLoc::Reg(h),
        env::Loc::Env => HostLoc::Mem(env::reg_mem(g)),
    }
}

/// Emits flag materialization from live host flags into the guest
/// environment, honouring the rule's per-flag relationship.
fn materialize_flags(
    e: &mut Emitter,
    flags: FlagSet,
    report: &[(pdbt_isa::Flag, FlagEquiv)],
) -> bool {
    for f in flags.iter() {
        let Some(equiv) = report.iter().find(|(ff, _)| *ff == f).map(|(_, eq)| *eq) else {
            return false;
        };
        let Some(cc) = setcc_for_flag(f, equiv) else {
            return false;
        };
        // setcc does not disturb the remaining live flags, so the loop
        // can materialize each flag in turn.
        e.push(hb::setcc(cc, HOperand::Reg(HReg::Eax)), CodeClass::RuleCore);
        e.push(
            hb::mov(HOperand::Mem(env::flag_mem(f)), HOperand::Reg(HReg::Eax)),
            CodeClass::RuleCore,
        );
    }
    true
}

/// The guest-flag ↔ host-flag relationship after lowering a foldable
/// flag producer with its environment materialization omitted: the last
/// flag-setting host instruction is the counterpart ALU op, whose flag
/// semantics relative to the guest's are fixed per opcode class. (The
/// same relationships the symbolic verifier reports for the equivalent
/// rule templates — asserted equal in this crate's tests.)
fn folded_flag_report(inst: &GInst) -> Option<Vec<(Flag, pdbt_symexec::FlagEquiv)>> {
    use pdbt_isa_arm::Op as G;
    use FlagEquiv::{Exact, Inverted};
    let defs = inst.flag_defs();
    if defs.is_empty() {
        return None;
    }
    let per_flag: Vec<(Flag, FlagEquiv)> = match inst.op {
        // Subtraction class: host CF is the borrow, guest C is its
        // inverse.
        G::Sub | G::Rsb | G::Cmp => {
            vec![
                (Flag::N, Exact),
                (Flag::Z, Exact),
                (Flag::C, Inverted),
                (Flag::V, Exact),
            ]
        }
        // Addition class: carries agree.
        G::Add | G::Cmn => {
            vec![
                (Flag::N, Exact),
                (Flag::Z, Exact),
                (Flag::C, Exact),
                (Flag::V, Exact),
            ]
        }
        // Logical class: NZ agree (guest leaves C/V, host zeroes them —
        // not reported, so conditions needing them will not fold).
        G::And | G::Orr | G::Eor | G::Bic | G::Tst | G::Teq => {
            vec![(Flag::N, Exact), (Flag::Z, Exact)]
        }
        // Shift class: NZ agree and the shifted-out carry formulas match.
        G::Lsl | G::Lsr | G::Asr | G::Ror => {
            vec![(Flag::N, Exact), (Flag::Z, Exact), (Flag::C, Exact)]
        }
        _ => return None,
    };
    Some(
        per_flag
            .into_iter()
            .filter(|(f, _)| defs.contains(*f))
            .collect(),
    )
}

/// Per-flag equivalence reports for a producer's host code.
type FlagReports = Vec<(Flag, FlagEquiv)>;

/// Emits host code for a foldable QEMU-path flag producer whose flags
/// feed the adjacent terminal branch: the canonical counterpart code
/// with environment flag materialization omitted (TCG's compare/branch
/// folding). Returns the flag report for the stub's condition mapping.
fn fold_producer(inst: &GInst, map: &RegMap) -> Option<(Vec<HInst>, FlagReports)> {
    let report = folded_flag_report(inst)?;
    let p = rkey::parameterize(inst)?;
    let template = emit::emit_for(&p.key)?;
    let locs: Vec<HostLoc> = p.inst.slots.iter().map(|g| slot_loc(map, *g)).collect();
    let code = rtemplate::instantiate(&template, &locs, &p.inst.imms).ok()?;
    Some((code, report))
}

/// Who produced the host flags the terminal branch may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProducerKind {
    Rule,
    Qemu,
}

/// How the terminal conditional branch will be compiled.
enum BranchMode {
    /// Branch directly on the live host flags with this condition.
    Direct(pdbt_isa_x86::Cc),
    /// Evaluate the guest condition from the environment flags.
    Env,
}

/// Appends the block bookkeeping the stubs perform on every exit
/// (modelling QEMU's icount/pending-work maintenance).
fn bookkeeping(e: &mut Emitter, guest_len: u32) {
    e.push(
        hb::add(
            HOperand::Mem(env::mem_icount()),
            HOperand::Imm(guest_len as i32),
        ),
        CodeClass::Control,
    );
    e.push(
        hb::mov(HOperand::Reg(HReg::Edx), HOperand::Mem(env::mem_pending())),
        CodeClass::Control,
    );
}

/// Emits a two-sided exit stub branching on `cc`.
fn two_sided_exit(e: &mut Emitter, cc: pdbt_isa_x86::Cc, taken: Addr, fall: Addr, guest_len: u32) {
    // jcc over the fall-through side (bookkeeping + exit = 3 each).
    e.push(hb::jcc(cc, 3), CodeClass::Control);
    bookkeeping(e, guest_len);
    e.push(hb::jmp_exit(HOperand::Imm(fall as i32)), CodeClass::Control);
    bookkeeping(e, guest_len);
    e.push(
        hb::jmp_exit(HOperand::Imm(taken as i32)),
        CodeClass::Control,
    );
}

/// Emits a one-sided exit stub.
fn one_sided_exit(e: &mut Emitter, target: HOperand, guest_len: u32) {
    bookkeeping(e, guest_len);
    e.push(hb::jmp_exit(target), CodeClass::Control);
}

/// Guest registers in most-frequent-first order across `insts`, ties
/// broken by first appearance. Counting goes through a fixed array
/// indexed by [`GReg::index`] so the scan is O(operands), not
/// O(operands × distinct regs).
fn reg_frequency_order<'a>(insts: impl Iterator<Item = &'a GInst>) -> Vec<GReg> {
    let mut counts = [0usize; 16];
    let mut order: Vec<GReg> = Vec::new();
    for inst in insts {
        for r in inst.uses().into_iter().chain(inst.defs()) {
            if counts[r.index()] == 0 {
                order.push(r);
            }
            counts[r.index()] += 1;
        }
    }
    // Stable: ties keep first-appearance order, matching the previous
    // linear-probe implementation exactly (register allocation — and so
    // emitted host code — is unchanged).
    order.sort_by_key(|r| std::cmp::Reverse(counts[r.index()]));
    order
}

/// The flag live-in set at a guest address — the conservative NZCV join
/// for addresses outside the program (unknown continuations).
fn livein_at(prog: &Program, liveins: &[FlagSet], addr: Addr) -> FlagSet {
    if addr < prog.base() || !(addr - prog.base()).is_multiple_of(INST_SIZE) {
        return FlagSet::NZCV;
    }
    let i = ((addr - prog.base()) / INST_SIZE) as usize;
    liveins.get(i).copied().unwrap_or(FlagSet::NZCV)
}

/// Flags live out of a block ending in `last_inst` at `last_addr`: the
/// join over the successors' live-ins (cross-block flag liveness).
fn block_exit_live(
    prog: &Program,
    liveins: &[FlagSet],
    last_addr: Addr,
    last_inst: &GInst,
) -> FlagSet {
    let at = |addr: Addr| livein_at(prog, liveins, addr);
    match last_inst.op {
        pdbt_isa_arm::Op::B => {
            let Operand::Target(d) = last_inst.operands[0] else {
                unreachable!()
            };
            let taken = at(last_addr.wrapping_add(d as u32));
            if last_inst.cond == Cond::Al {
                taken
            } else {
                taken | at(last_addr + INST_SIZE)
            }
        }
        pdbt_isa_arm::Op::Bl => {
            let Operand::Target(d) = last_inst.operands[0] else {
                unreachable!()
            };
            at(last_addr.wrapping_add(d as u32)) | at(last_addr + INST_SIZE)
        }
        pdbt_isa_arm::Op::Svc if last_inst.operands[0].as_imm() == Some(0) => FlagSet::EMPTY,
        _ if last_inst.is_branch() => {
            // Indirect transfer (return): join over call continuations.
            let mut ret_live = FlagSet::EMPTY;
            for (i, inst) in prog.insts().iter().enumerate() {
                if inst.op == pdbt_isa_arm::Op::Bl && i + 1 < liveins.len() {
                    ret_live |= liveins[i + 1];
                }
            }
            ret_live
        }
        // Max-length block: falls through to the next instruction.
        _ => at(last_addr + INST_SIZE),
    }
}

/// A host-code segment for one guest instruction (or one sequence-rule
/// application). Flag materialization is deferred so the delegation
/// decision can run with every segment's host code in hand.
struct Segment {
    code: Vec<HInst>,
    class: CodeClass,
    /// Guest instructions this segment rule-covers.
    covered: u32,
    /// Host-flag relationship at the segment's end, when its flag
    /// materialization was deferred.
    report: Option<Vec<(Flag, FlagEquiv)>>,
    needs_mat: FlagSet,
    kind: ProducerKind,
    /// Whether the segment works on the block's cached registers
    /// (rule path) or on the in-environment state (TCG path) — the
    /// register-residency split whose synchronization cost makes
    /// low coverage expensive.
    cached: bool,
}

/// Segment accumulation shared by the per-block and per-trace
/// translators. `seg_of_guest` is indexed by *global* guest position —
/// for traces, across all members including their terminals — so the
/// delegation pass can map a producer position to its segment
/// (`usize::MAX` marks positions with no segment of their own).
#[derive(Default)]
struct BodyState {
    segments: Vec<Segment>,
    seg_of_guest: Vec<usize>,
    cached_regs: Vec<GReg>,
    cached_writes: Vec<GReg>,
    attributions: Vec<RuleAttribution>,
    lookup_misses: Vec<String>,
}

/// Phase 1 of translation: generates per-instruction host segments for
/// a run of body instructions. `base` is the global guest position of
/// `insts[0]`; `live_after` is indexed and `producers` expressed in
/// global positions, so the same builder serves single blocks (base 0)
/// and the members of a hot trace.
#[allow(clippy::too_many_arguments)]
fn build_body_segments(
    insts: &[(Addr, &GInst)],
    base: usize,
    live_after: &[FlagSet],
    producers: &[usize],
    rules: Option<&RuleSet>,
    cfg: &TranslateConfig,
    map: &RegMap,
    use_cache: bool,
    body_matches: &[Option<pdbt_core::Match<'_>>],
    st: &mut BodyState,
) -> Result<(), TranslateError> {
    let env_map = RegMap::all_env();
    let body_len = insts.len();
    let mut i = 0usize;
    while i < body_len {
        let (addr, inst) = (&insts[i].0, insts[i].1);
        let live_defs = inst.flag_defs() & live_after[base + i];
        // --- learned sequence rules (longest-first, §V-D) ---
        if let Some(rules) = rules {
            if rules.max_seq_len() >= 2 {
                let tail: Vec<GInst> = insts[i..].iter().map(|(_, x)| (*x).clone()).collect();
                if let Some(sm) = rules.lookup_seq(&tail) {
                    // Flag policy: no instruction inside the sequence may
                    // define live flags except the last, which follows
                    // the single-instruction policy; and a branch
                    // producer may not sit strictly inside.
                    let last = i + sm.len - 1;
                    let mut ok = !producers.iter().any(|&p| p >= base + i && p < base + last);
                    let mut last_live = FlagSet::EMPTY;
                    for j in i..=last {
                        let ld = insts[j].1.flag_defs() & live_after[base + j];
                        if !ld.is_empty() {
                            if j != last {
                                ok = false;
                            } else {
                                last_live = ld;
                            }
                        }
                    }
                    if ok && !last_live.is_empty() {
                        ok = if cfg.flag_delegation {
                            can_materialize(last_live, &sm.entry.flags)
                        } else {
                            last_live.iter().all(|f| {
                                sm.entry
                                    .flags
                                    .iter()
                                    .any(|(ff, eq)| *ff == f && *eq == FlagEquiv::Exact)
                            })
                        };
                    }
                    if ok {
                        let locs: Vec<HostLoc> = if use_cache {
                            sm.inst.slots.iter().map(|g| slot_loc(map, *g)).collect()
                        } else {
                            sm.inst
                                .slots
                                .iter()
                                .map(|g| HostLoc::Mem(env::reg_mem(*g)))
                                .collect()
                        };
                        if let Ok(code) = rules.instantiate_seq_match(&sm, &locs) {
                            for (_, seq_inst) in &insts[i..=last] {
                                for g in seq_inst.uses().into_iter().chain(seq_inst.defs()) {
                                    if !st.cached_regs.contains(&g) {
                                        st.cached_regs.push(g);
                                    }
                                }
                                for g in seq_inst.defs() {
                                    if !st.cached_writes.contains(&g) {
                                        st.cached_writes.push(g);
                                    }
                                }
                            }
                            let report = sm.entry.flags.clone();
                            st.attributions.push(RuleAttribution {
                                label: format!(
                                    "seq[{}]",
                                    sm.keys
                                        .iter()
                                        .map(|k| k.to_string())
                                        .collect::<Vec<_>>()
                                        .join(" + ")
                                ),
                                subgroup: subgroup_of(sm.keys[0].op).to_string(),
                                covered: sm.len as u32,
                            });
                            for _ in 0..sm.len {
                                st.seg_of_guest.push(st.segments.len());
                            }
                            st.segments.push(Segment {
                                code,
                                class: CodeClass::RuleCore,
                                covered: sm.len as u32,
                                report: (!last_live.is_empty()).then_some(report),
                                needs_mat: last_live,
                                kind: ProducerKind::Rule,
                                cached: use_cache,
                            });
                            i += sm.len;
                            continue;
                        }
                    }
                }
            }
        }
        // --- rule path ---
        if let Some(rules) = rules {
            if let Some(m) = &body_matches[i] {
                let report = m.entry.flags.clone();
                let flags_ok = if live_defs.is_empty() {
                    true
                } else if cfg.flag_delegation {
                    // Live flags must be recoverable from the host flags
                    // (directly for a delegated branch, or via setcc
                    // materialization).
                    can_materialize(live_defs, &report)
                } else {
                    // Without delegation, rules apply to live-flag
                    // producers only when the relationship is exact —
                    // modelling the baseline's flag-inclusive rules.
                    live_defs.iter().all(|f| {
                        report
                            .iter()
                            .any(|(ff, eq)| *ff == f && *eq == FlagEquiv::Exact)
                    })
                };
                if flags_ok {
                    let locs: Vec<HostLoc> = if use_cache {
                        m.inst.slots.iter().map(|g| slot_loc(map, *g)).collect()
                    } else {
                        m.inst
                            .slots
                            .iter()
                            .map(|g| HostLoc::Mem(env::reg_mem(*g)))
                            .collect()
                    };
                    let code = rules
                        .instantiate_match(m, &locs)
                        .map_err(|err| TranslateError {
                            detail: format!("instantiation failed: {err}"),
                        })?;
                    for g in inst.uses().into_iter().chain(inst.defs()) {
                        if !st.cached_regs.contains(&g) {
                            st.cached_regs.push(g);
                        }
                    }
                    for g in inst.defs() {
                        if !st.cached_writes.contains(&g) {
                            st.cached_writes.push(g);
                        }
                    }
                    st.attributions.push(RuleAttribution {
                        label: m.key.to_string(),
                        subgroup: subgroup_of(m.key.op).to_string(),
                        covered: 1,
                    });
                    st.seg_of_guest.push(st.segments.len());
                    st.segments.push(Segment {
                        code,
                        class: CodeClass::RuleCore,
                        covered: 1,
                        report: (!live_defs.is_empty()).then_some(report),
                        needs_mat: live_defs,
                        kind: ProducerKind::Rule,
                        cached: use_cache,
                    });
                    i += 1;
                    continue;
                }
            }
        }
        // --- QEMU path ---
        // TCG-style flag handling: dead flags are never materialized,
        // and a producer whose live flags are recoverable from the host
        // ALU flags defers materialization (compare/branch folding).
        if rules.is_some() {
            st.lookup_misses.push(
                rkey::parameterize(inst)
                    .map(|p| p.key.to_string())
                    .unwrap_or_else(|| inst.op.to_string()),
            );
        }
        let dead = inst.flag_defs() - live_defs;
        let folded = if live_defs.is_empty() {
            None
        } else {
            folded_flag_report(inst)
                .filter(|r| can_materialize(live_defs, r))
                .and_then(|r| {
                    fold_producer(inst, &env_map).map(|(code, _)| (tcg_legalize(code), r))
                })
        };
        if let Some((code, report)) = folded {
            st.seg_of_guest.push(st.segments.len());
            st.segments.push(Segment {
                code,
                class: CodeClass::QemuCore,
                covered: 0,
                report: Some(report),
                needs_mat: live_defs,
                kind: ProducerKind::Qemu,
                cached: false,
            });
        } else {
            let lifted = pdbt_ir::lift_omit(inst, *addr, dead).map_err(|err| TranslateError {
                detail: format!("{inst}: {err}"),
            })?;
            let code = tcg_legalize(lower_ops(&lifted.body, &env_map));
            st.seg_of_guest.push(st.segments.len());
            st.segments.push(Segment {
                code,
                class: CodeClass::QemuCore,
                covered: 0,
                report: None,
                needs_mat: FlagSet::EMPTY,
                kind: ProducerKind::Qemu,
                cached: false,
            });
        }
        i += 1;
    }
    Ok(())
}

/// Loads the block's cached registers from the environment when
/// entering cached residency (flag-preserving moves).
fn enter_cached(e: &mut Emitter, cached_mode: &mut bool, sync_loads: &[(GReg, HReg)]) {
    if !*cached_mode {
        for (g, h) in sync_loads {
            e.push(
                hb::mov(HOperand::Reg(*h), HOperand::Mem(env::reg_mem(*g))),
                CodeClass::DataTransfer,
            );
        }
        *cached_mode = true;
    }
}

/// Stores the written cached registers back to the environment when
/// leaving cached residency (flag-preserving moves).
fn enter_env(e: &mut Emitter, cached_mode: &mut bool, sync_stores: &[(GReg, HReg)]) {
    if *cached_mode {
        for (g, h) in sync_stores {
            e.push(
                hb::mov(HOperand::Mem(env::reg_mem(*g)), HOperand::Reg(*h)),
                CodeClass::DataTransfer,
            );
        }
        *cached_mode = false;
    }
}

/// How a block's exit stubs transfer control.
enum StubPlan {
    FallThrough,
    Uncond(Addr),
    Cond(pdbt_isa_x86::Cc, Addr, Addr),
    Indirect,
    Exit,
}

/// Emits the terminal instruction's guest work (link-register writes,
/// pop loads, condition evaluation) BEFORE the epilogue so its register
/// effects are stored back, and returns the exit-stub plan; the caller
/// emits the epilogue and the exit stubs.
fn emit_terminal(
    e: &mut Emitter,
    addr: Addr,
    inst: &GInst,
    direct_cc: Option<pdbt_isa_x86::Cc>,
    env_map: &RegMap,
    sync_stores: &[(GReg, HReg)],
    cached_mode: &mut bool,
) -> Result<StubPlan, TranslateError> {
    let lifted = lift(inst, addr).map_err(|err| TranslateError {
        detail: format!("{inst}: {err}"),
    })?;
    let mode = match direct_cc {
        Some(cc) => BranchMode::Direct(cc),
        None => BranchMode::Env,
    };
    Ok(match (&lifted.term, mode) {
        (
            Some(Terminator::Br {
                cond: Some(_),
                taken,
                fallthrough,
            }),
            BranchMode::Direct(cc),
        ) => {
            // Direct branch on live host flags: delegation (rule
            // producer, Fig 10) or TCG folding (QEMU producer). The
            // coverage accounting happened in the delegation phase. The
            // cached registers are stored by the epilogue.
            StubPlan::Cond(cc, *taken, *fallthrough)
        }
        (
            Some(Terminator::Br {
                cond: Some((icc, a, b)),
                taken,
                fallthrough,
            }),
            BranchMode::Env,
        ) => {
            enter_env(e, cached_mode, sync_stores);
            let host = tcg_legalize(lower_ops(&lifted.body, env_map));
            e.extend(host, CodeClass::QemuCore);
            let (cmp, hcc) = lower_branch_cond(*icc, *a, *b, env_map);
            e.extend(tcg_legalize(cmp), CodeClass::QemuCore);
            StubPlan::Cond(hcc, *taken, *fallthrough)
        }
        (
            Some(Terminator::Br {
                cond: None, taken, ..
            }),
            _,
        ) => {
            enter_env(e, cached_mode, sync_stores);
            let host = tcg_legalize(lower_ops(&lifted.body, env_map));
            e.extend(host, CodeClass::QemuCore);
            StubPlan::Uncond(*taken)
        }
        (Some(Terminator::BrInd { target }), _) => {
            enter_env(e, cached_mode, sync_stores);
            let host = tcg_legalize(lower_ops(&lifted.body, env_map));
            e.extend(host, CodeClass::QemuCore);
            let src = match target {
                pdbt_ir::Val::Reg(g) => HOperand::Mem(env::reg_mem(*g)),
                pdbt_ir::Val::Tmp(t) => HOperand::Mem(env::spill_mem(t.0 as usize)),
                pdbt_ir::Val::Const(c) => HOperand::Imm(*c as i32),
            };
            e.push(hb::mov(HOperand::Reg(HReg::Eax), src), CodeClass::QemuCore);
            StubPlan::Indirect
        }
        (Some(Terminator::Exit), _) => {
            enter_env(e, cached_mode, sync_stores);
            let host = tcg_legalize(lower_ops(&lifted.body, env_map));
            e.extend(host, CodeClass::QemuCore);
            StubPlan::Exit
        }
        (None, _) => {
            enter_env(e, cached_mode, sync_stores);
            let host = tcg_legalize(lower_ops(&lifted.body, env_map));
            e.extend(host, CodeClass::QemuCore);
            StubPlan::FallThrough
        }
    })
}

/// The static successors a plan's exit stubs can reach.
fn succ_of_plan(plan: &StubPlan, fall: Addr) -> BlockSuccs {
    match plan {
        StubPlan::FallThrough => BlockSuccs::One(fall),
        StubPlan::Uncond(taken) => BlockSuccs::One(*taken),
        StubPlan::Cond(_, taken, fallthrough) => BlockSuccs::Two {
            taken: *taken,
            fall: *fallthrough,
        },
        StubPlan::Indirect | StubPlan::Exit => BlockSuccs::None,
    }
}

/// Emits a plan's exit stubs.
fn emit_exit_stubs(e: &mut Emitter, plan: &StubPlan, fall: Addr, guest_len: u32) {
    match plan {
        StubPlan::FallThrough => {
            one_sided_exit(e, HOperand::Imm(fall as i32), guest_len);
        }
        StubPlan::Uncond(taken) => {
            one_sided_exit(e, HOperand::Imm(*taken as i32), guest_len);
        }
        StubPlan::Cond(cc, taken, fallthrough) => {
            two_sided_exit(e, *cc, *taken, *fallthrough, guest_len);
        }
        StubPlan::Indirect => {
            one_sided_exit(e, HOperand::Reg(HReg::Eax), guest_len);
        }
        StubPlan::Exit => {
            bookkeeping(e, guest_len);
            e.push(hb::hlt(), CodeClass::Control);
        }
    }
}

/// Translates the basic block starting at `start`.
///
/// # Errors
///
/// [`TranslateError`] on fetch failures or unliftable instructions.
pub fn translate_block(
    prog: &Program,
    start: Addr,
    rules: Option<&RuleSet>,
    cfg: &TranslateConfig,
) -> Result<TranslatedBlock, TranslateError> {
    let _span = pdbt_obs::span_with("translate_block", || format!("{start:#x}"));
    let insts = collect_block(prog, start, cfg.max_block)?;
    let guest_len = insts.len() as u32;

    let ordered = reg_frequency_order(insts.iter().map(|(_, i)| *i));
    let map = RegMap::allocate(&ordered);

    // Flag liveness (backwards), including the terminal branch's needs.
    let terminal_cond: Option<Cond> = match insts.last() {
        Some((_, i)) if i.op == pdbt_isa_arm::Op::B && i.cond != Cond::Al => Some(i.cond),
        _ => None,
    };
    let n = insts.len();
    // Flags live into the block's successors (cross-block liveness).
    let liveins = flag_liveins(prog);
    let (last_addr, last_inst) = *insts.last().expect("non-empty block");
    let exit_live = block_exit_live(prog, &liveins, last_addr, last_inst);
    let mut live_after = vec![FlagSet::EMPTY; n];
    let mut live = exit_live;
    for i in (0..n).rev() {
        let inst = insts[i].1;
        live_after[i] = live;
        // Conditional branches read exactly their condition's flags.
        let uses = if inst.op == pdbt_isa_arm::Op::B && inst.cond != Cond::Al {
            cond_flag_uses(inst.cond)
        } else {
            inst.flag_uses()
        };
        live = (live - inst.flag_defs()) | uses;
    }

    // The body excludes the final instruction iff it terminates control
    // flow (it is handled by the stub); a max-length block keeps all.
    let last_terminates = insts.last().is_some_and(|(_, i)| i.ends_block());
    let body_len = if last_terminates { n - 1 } else { n };

    // Identify the flag producer feeding the terminal branch.
    let branch_flag_uses = terminal_cond.map(cond_flag_uses).unwrap_or(FlagSet::EMPTY);
    let mut producer: Option<usize> = None;
    if !branch_flag_uses.is_empty() {
        for i in (0..body_len).rev() {
            if insts[i].1.flag_defs().intersects(branch_flag_uses) {
                producer = Some(i);
                break;
            }
        }
    }

    let mut e = Emitter {
        code: Vec::new(),
        classes: Vec::new(),
    };
    let mut rule_covered: u32 = 0;

    // -------- Phase 1: generate per-instruction segments -----------------
    //
    // Materialization of live flags is deferred to phase 2, which decides
    // — with the generated host code of every segment in hand — whether
    // the terminal branch can consume the producer's live host flags
    // directly (delegation / TCG compare-branch folding) or whether the
    // flags must be stored into the environment.
    let env_map = RegMap::all_env();
    // Single rule-lookup pass over the body: each probe starts with the
    // store's O(1) opcode-presence check, and the match results are
    // reused by both the caching heuristic below and the segment builder
    // (which previously probed a second time).
    let body_matches: Vec<Option<pdbt_core::Match<'_>>> = match rules {
        Some(r) => insts
            .iter()
            .take(body_len)
            .map(|(_, i)| r.lookup(i))
            .collect(),
        None => vec![None; body_len],
    };
    // Register caching only pays off when enough of the block is
    // rule-translated to amortize the residency synchronization; short
    // or sparsely covered blocks instantiate rules directly on the
    // environment slots.
    let rule_hits = body_matches.iter().filter(|m| m.is_some()).count();
    let use_cache = rule_hits >= 3;
    let producers: Vec<usize> = producer.into_iter().collect();
    let mut st = BodyState::default();
    build_body_segments(
        &insts[..body_len],
        0,
        &live_after,
        &producers,
        rules,
        cfg,
        &map,
        use_cache,
        &body_matches,
        &mut st,
    )?;
    let BodyState {
        mut segments,
        seg_of_guest,
        cached_regs,
        cached_writes,
        mut attributions,
        lookup_misses,
    } = st;

    // -------- Phase 2: delegation decision --------------------------------
    let mut direct_cc: Option<pdbt_isa_x86::Cc> = None;
    let mut branch_covered = false;
    let mut deleg_depth: Option<u32> = None;
    if let (Some(cond), Some(p)) = (terminal_cond, producer) {
        let within_window = n - 1 - p <= cfg.window;
        // The segment holding the producer (sequence rules cover several
        // guest instructions); delegation additionally requires the
        // producer to be the segment's *last* flag definer, which the
        // sequence application policy guarantees.
        let sp = seg_of_guest.get(p).copied();
        if within_window {
            if let Some(sp) = sp {
                if let Some(report) = segments.get(sp).and_then(|s| s.report.clone()) {
                    if let Some(cc) = delegated_cc(cond, &report) {
                        // The host flags must survive every later segment
                        // (the paper's "killed within the window" check;
                        // materialization code is flag-preserving
                        // setcc/mov).
                        let clean = segments[sp + 1..]
                            .iter()
                            .flat_map(|s| &s.code)
                            .all(|h| h.flag_defs().is_empty());
                        if clean {
                            direct_cc = Some(cc);
                            deleg_depth = Some((n - 1 - p) as u32);
                            branch_covered =
                                segments[sp].kind == ProducerKind::Rule && cfg.flag_delegation;
                            // Flags the branch consumes can skip the
                            // environment — unless a successor block also
                            // reads them.
                            segments[sp].needs_mat =
                                segments[sp].needs_mat - (branch_flag_uses - exit_live);
                        }
                    }
                }
            }
        }
    }

    // -------- Emit: segments, with register-residency synchronization ------
    //
    // The environment is canonical between blocks. Rule-translated
    // segments work on block-cached host registers; TCG segments work on
    // the environment directly. Every residency transition pays data
    // transfer (register loads/stores), which is why low coverage —
    // frequent rule↔emulation mixing — barely beats pure emulation
    // (paper Fig 11: `w/o para.` at 1.04×) while high coverage pays the
    // sync only at block boundaries.
    let mut cached_mode = false;
    // Load every register the rule segments touch; store back only the
    // ones they write (values loaded and unmodified match the
    // environment already).
    let sync_loads: Vec<(GReg, HReg)> = map
        .allocated()
        .iter()
        .copied()
        .filter(|(g, _)| cached_regs.contains(g))
        .collect();
    let sync_stores: Vec<(GReg, HReg)> = map
        .allocated()
        .iter()
        .copied()
        .filter(|(g, _)| cached_writes.contains(g))
        .collect();
    for seg in &segments {
        if seg.cached {
            enter_cached(&mut e, &mut cached_mode, &sync_loads);
        } else {
            enter_env(&mut e, &mut cached_mode, &sync_stores);
        }
        e.extend(seg.code.clone(), seg.class);
        rule_covered += seg.covered;
        if !seg.needs_mat.is_empty() {
            let report = seg.report.as_ref().expect("deferred flags carry a report");
            if !materialize_flags(&mut e, seg.needs_mat, report) {
                return Err(TranslateError {
                    detail: "phase 1 admitted an unmaterializable producer".into(),
                });
            }
        }
    }
    if branch_covered {
        rule_covered += 1;
        attributions.push(RuleAttribution {
            label: format!(
                "b{} (delegated)",
                terminal_cond.expect("covered branch has a condition")
            ),
            subgroup: subgroup_of(pdbt_isa_arm::Op::B).to_string(),
            covered: 1,
        });
    }
    // Terminal-branch flag handling, for the window-depth histogram: a
    // conditional exit either delegated (depth = producer distance) or
    // read environment-materialized flags.
    let deleg = terminal_cond.map(|_| match deleg_depth {
        Some(d) => DelegOutcome::Delegated(d),
        None => DelegOutcome::EnvFallback,
    });

    // Terminal instruction: emit its guest work (link-register writes,
    // pop loads, condition evaluation) BEFORE the epilogue so its
    // register effects are stored back; the exit jumps come after.
    let fall = start + guest_len * INST_SIZE;
    let plan: StubPlan = if last_terminates {
        let (addr, inst) = insts[n - 1];
        emit_terminal(
            &mut e,
            addr,
            inst,
            direct_cc,
            &env_map,
            &sync_stores,
            &mut cached_mode,
        )?
    } else {
        StubPlan::FallThrough
    };
    let succ = succ_of_plan(&plan, fall);

    // Epilogue: leave the environment canonical (flag-preserving moves).
    enter_env(&mut e, &mut cached_mode, &sync_stores);

    // Exit stubs.
    emit_exit_stubs(&mut e, &plan, fall, guest_len);

    debug_assert_eq!(
        attributions.iter().map(|a| a.covered).sum::<u32>(),
        rule_covered,
        "attribution must decompose coverage exactly"
    );
    Ok(TranslatedBlock {
        start,
        code: e.code,
        classes: e.classes,
        guest_len,
        rule_covered,
        attributions,
        lookup_misses,
        deleg,
        succ,
        member_marks: Vec::new(),
    })
}

/// A recorded conditional branch inside a trace.
struct BranchSite {
    /// Global position of the branch instruction.
    t: usize,
    cond: Cond,
    /// Global position of the last instruction defining any of the
    /// branch's condition flags (may sit in an earlier member — the
    /// cross-block delegation case).
    producer: Option<usize>,
}

/// Decides condition-flag delegation for the branch at `bs`, adjusting
/// the producer segment's deferred materialization set on success.
/// Returns the host condition, whether the branch counts as
/// rule-covered, and the delegation depth.
///
/// `la_t` is the flag set live after the branch (for interior branches
/// this already joins the off-trace side's live-ins); `off_live` is the
/// off-trace exit's live-in set, retained for *later* branches sharing
/// this producer — flags a side exit may leave unread must still reach
/// the environment even if a later consumer would let them die.
fn decide_delegation(
    st: &mut BodyState,
    deleg_off: &mut Vec<(usize, FlagSet)>,
    bs: &BranchSite,
    la_t: FlagSet,
    off_live: FlagSet,
    cfg: &TranslateConfig,
) -> Option<(pdbt_isa_x86::Cc, bool, u32)> {
    let p = bs.producer?;
    if bs.t - p > cfg.window {
        return None;
    }
    let sp = *st.seg_of_guest.get(p)?;
    if sp == usize::MAX {
        return None;
    }
    let report = st.segments.get(sp).and_then(|s| s.report.clone())?;
    let cc = delegated_cc(bs.cond, &report)?;
    // The host flags must survive every later segment on the on-trace
    // path (the paper's "killed within the window" check; residency
    // syncs and materialization code are flag-preserving moves).
    let clean = st.segments[sp + 1..]
        .iter()
        .flat_map(|s| &s.code)
        .all(|h| h.flag_defs().is_empty());
    if !clean {
        return None;
    }
    let uses = cond_flag_uses(bs.cond);
    let protected = deleg_off
        .iter()
        .find(|(s, _)| *s == sp)
        .map(|(_, f)| *f)
        .unwrap_or(FlagSet::EMPTY);
    // Flags the branch consumes can skip the environment — unless a
    // successor, an earlier side exit, or another consumer reads them.
    st.segments[sp].needs_mat = st.segments[sp].needs_mat - (uses - (la_t | protected));
    match deleg_off.iter_mut().find(|(s, _)| *s == sp) {
        Some((_, f)) => *f |= off_live,
        None => deleg_off.push((sp, off_live)),
    }
    let covered = st.segments[sp].kind == ProducerKind::Rule && cfg.flag_delegation;
    Some((cc, covered, (bs.t - p) as u32))
}

/// How control flows from an interior trace member to the next.
#[derive(Clone, Copy)]
enum Trans {
    /// Straight-line (fall-through, unconditional branch, call): no
    /// branch code at all.
    Seamless,
    /// Conditional: `jcc cc` continues on-trace, otherwise a trampoline
    /// syncs state and side-exits to `off`.
    Cond { cc: pdbt_isa_x86::Cc, off: Addr },
}

/// Translates a straight-line hot trace spanning `members` (basic-block
/// start addresses in execution order; repeated members model loop
/// unrolling) into a single superblock.
///
/// The trace reuses [`translate_block`]'s machinery end to end:
/// register-frequency allocation runs over the whole trace, flag
/// liveness is solved across member boundaries — so condition-flag
/// delegation extends across former block boundaries — and every
/// interior direct branch becomes an inline conditional with a
/// side-exit trampoline instead of a block exit. Architectural effects
/// are identical to executing the members individually: every exit
/// synchronizes the cached registers, advances the environment icount
/// to exactly the guest instructions retired so far, and leaves the
/// environment canonical. Per-member accounting lands in
/// [`TranslatedBlock::member_marks`].
///
/// # Errors
///
/// [`TranslateError`] if the members do not form a connected
/// straight-line trace (each interior member's on-trace successor must
/// be the next member), or on any translation failure.
pub fn translate_trace(
    prog: &Program,
    members: &[Addr],
    rules: Option<&RuleSet>,
    cfg: &TranslateConfig,
) -> Result<TranslatedBlock, TranslateError> {
    let _span = pdbt_obs::span_with("translate_trace", || {
        format!("{:#x} ({} members)", members[0], members.len())
    });
    let k = members.len();
    if k < 2 {
        return Err(TranslateError {
            detail: "a trace needs at least two members".into(),
        });
    }
    let mut mems: Vec<Vec<(Addr, &GInst)>> = Vec::with_capacity(k);
    for &start in members {
        mems.push(collect_block(prog, start, cfg.max_block)?);
    }

    // Validate connectivity and find each interior member's on-trace
    // branch direction.
    let mut on_trace_taken: Vec<bool> = vec![false; k];
    for m in 0..k - 1 {
        let (last_addr, last_inst) = *mems[m].last().expect("non-empty block");
        let next = members[m + 1];
        let fall = last_addr + INST_SIZE;
        let connected = match last_inst.op {
            pdbt_isa_arm::Op::B => {
                let Operand::Target(d) = last_inst.operands[0] else {
                    unreachable!()
                };
                let taken = last_addr.wrapping_add(d as u32);
                if last_inst.cond == Cond::Al {
                    next == taken
                } else {
                    on_trace_taken[m] = next == taken;
                    next == taken || next == fall
                }
            }
            pdbt_isa_arm::Op::Bl => {
                let Operand::Target(d) = last_inst.operands[0] else {
                    unreachable!()
                };
                next == last_addr.wrapping_add(d as u32)
            }
            // Indirect transfers and halts have no static successor.
            _ if last_inst.ends_block() => false,
            // Max-length member: falls through.
            _ => next == fall,
        };
        if !connected {
            return Err(TranslateError {
                detail: format!("trace member {m} does not continue at {next:#x}"),
            });
        }
    }

    // Global instruction sequence and per-member position ranges.
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(k);
    let mut global: Vec<(Addr, &GInst)> = Vec::new();
    for insts in &mems {
        let b = global.len();
        global.extend(insts.iter().copied());
        ranges.push((b, global.len()));
    }
    let total_n = global.len();
    let body_lens: Vec<usize> = mems
        .iter()
        .map(|insts| {
            let lt = insts.last().is_some_and(|(_, i)| i.ends_block());
            if lt {
                insts.len() - 1
            } else {
                insts.len()
            }
        })
        .collect();

    // Trace-wide register-frequency allocation.
    let ordered = reg_frequency_order(global.iter().map(|(_, i)| *i));
    let map = RegMap::allocate(&ordered);
    let env_map = RegMap::all_env();

    // Flag liveness, solved backwards over the whole trace: interior
    // conditional branches join their off-trace side's live-ins, so a
    // producer's flags stay live exactly as long as any on- or off-trace
    // consumer can still read them.
    let liveins = flag_liveins(prog);
    let (final_last_addr, final_last_inst) = *mems[k - 1].last().expect("non-empty block");
    let exit_live = block_exit_live(prog, &liveins, final_last_addr, final_last_inst);
    let mut live_after = vec![FlagSet::EMPTY; total_n];
    {
        let mut live = exit_live;
        let mut m = k - 1;
        for t in (0..total_n).rev() {
            while t < ranges[m].0 {
                m -= 1;
            }
            let (addr, inst) = global[t];
            if m < k - 1 && t + 1 == ranges[m].1 {
                // Interior terminal: join what the off-trace side reads.
                match inst.op {
                    pdbt_isa_arm::Op::B if inst.cond != Cond::Al => {
                        let Operand::Target(d) = inst.operands[0] else {
                            unreachable!()
                        };
                        let taken = addr.wrapping_add(d as u32);
                        let off = if on_trace_taken[m] {
                            addr + INST_SIZE
                        } else {
                            taken
                        };
                        live |= livein_at(prog, &liveins, off);
                    }
                    // A call's return continuation is off-trace.
                    pdbt_isa_arm::Op::Bl => {
                        live |= livein_at(prog, &liveins, addr + INST_SIZE);
                    }
                    _ => {}
                }
            }
            live_after[t] = live;
            let uses = if inst.op == pdbt_isa_arm::Op::B && inst.cond != Cond::Al {
                cond_flag_uses(inst.cond)
            } else {
                inst.flag_uses()
            };
            live = (live - inst.flag_defs()) | uses;
        }
    }

    // Conditional branches and their flag producers (which may sit in an
    // earlier member — interior terminals define no flags, so the
    // backward scan crosses them transparently).
    let mut branches: Vec<BranchSite> = Vec::new();
    for (_, er) in &ranges {
        let t = er - 1;
        let (_, last_inst) = global[t];
        if last_inst.op == pdbt_isa_arm::Op::B && last_inst.cond != Cond::Al {
            let uses = cond_flag_uses(last_inst.cond);
            let producer = (0..t)
                .rev()
                .find(|&p| global[p].1.flag_defs().intersects(uses));
            branches.push(BranchSite {
                t,
                cond: last_inst.cond,
                producer,
            });
        }
    }
    let producers: Vec<usize> = branches.iter().filter_map(|bs| bs.producer).collect();

    // Rule matches per member body; the caching heuristic counts hits
    // across the whole trace.
    let mut all_matches: Vec<Vec<Option<pdbt_core::Match<'_>>>> = Vec::with_capacity(k);
    let mut rule_hits = 0usize;
    for (m, insts) in mems.iter().enumerate() {
        let matches: Vec<Option<pdbt_core::Match<'_>>> = match rules {
            Some(r) => insts
                .iter()
                .take(body_lens[m])
                .map(|(_, i)| r.lookup(i))
                .collect(),
            None => vec![None; body_lens[m]],
        };
        rule_hits += matches.iter().filter(|x| x.is_some()).count();
        all_matches.push(matches);
    }
    let use_cache = rule_hits >= 3;

    // Phase 1 + delegation, member by member in trace order: a branch's
    // decision runs as soon as its member's segments exist, so the clean
    // check always sees exactly the on-trace code between producer and
    // branch (including earlier members' transition segments).
    let mut st = BodyState::default();
    let mut deleg_off: Vec<(usize, FlagSet)> = Vec::new();
    let mut seg_ranges: Vec<(usize, usize)> = Vec::with_capacity(k);
    let mut attr_ranges: Vec<(usize, usize)> = Vec::with_capacity(k);
    let mut member_deleg: Vec<Option<DelegOutcome>> = vec![None; k];
    let mut member_branch_cov: Vec<bool> = vec![false; k];
    let mut trans: Vec<Trans> = vec![Trans::Seamless; k];
    let mut final_direct_cc: Option<pdbt_isa_x86::Cc> = None;
    for m in 0..k {
        let seg_b = st.segments.len();
        let attr_b = st.attributions.len();
        build_body_segments(
            &mems[m][..body_lens[m]],
            ranges[m].0,
            &live_after,
            &producers,
            rules,
            cfg,
            &map,
            use_cache,
            &all_matches[m],
            &mut st,
        )?;
        let has_term = body_lens[m] < mems[m].len();
        if has_term {
            let t = ranges[m].1 - 1;
            let (taddr, tinst) = global[t];
            if tinst.op == pdbt_isa_arm::Op::B && tinst.cond != Cond::Al {
                let bs = branches
                    .iter()
                    .find(|b| b.t == t)
                    .expect("conditional branch was recorded");
                let interior = m < k - 1;
                let Operand::Target(d) = tinst.operands[0] else {
                    unreachable!()
                };
                let taken = taddr.wrapping_add(d as u32);
                let off = if on_trace_taken[m] {
                    taddr + INST_SIZE
                } else {
                    taken
                };
                let off_live = if interior {
                    livein_at(prog, &liveins, off)
                } else {
                    FlagSet::EMPTY
                };
                let decided =
                    decide_delegation(&mut st, &mut deleg_off, bs, live_after[t], off_live, cfg);
                if let Some((_, covered, depth)) = decided {
                    member_deleg[m] = Some(DelegOutcome::Delegated(depth));
                    member_branch_cov[m] = covered;
                    if covered {
                        st.attributions.push(RuleAttribution {
                            label: format!("b{} (delegated)", bs.cond),
                            subgroup: subgroup_of(pdbt_isa_arm::Op::B).to_string(),
                            covered: 1,
                        });
                    }
                } else {
                    member_deleg[m] = Some(DelegOutcome::EnvFallback);
                }
                if interior {
                    let hcc = match decided {
                        Some((cc, _, _)) => {
                            st.seg_of_guest.push(usize::MAX);
                            if on_trace_taken[m] {
                                cc
                            } else {
                                cc.invert()
                            }
                        }
                        None => {
                            // Evaluate the guest condition from the
                            // environment flags in a transition segment.
                            let lifted = lift(tinst, taddr).map_err(|err| TranslateError {
                                detail: format!("{tinst}: {err}"),
                            })?;
                            let Some(Terminator::Br {
                                cond: Some((icc, a, b)),
                                ..
                            }) = lifted.term
                            else {
                                return Err(TranslateError {
                                    detail: format!("{tinst}: expected a conditional terminator"),
                                });
                            };
                            let mut code = tcg_legalize(lower_ops(&lifted.body, &env_map));
                            let (cmp, hcc0) = lower_branch_cond(icc, a, b, &env_map);
                            code.extend(tcg_legalize(cmp));
                            st.seg_of_guest.push(st.segments.len());
                            st.segments.push(Segment {
                                code,
                                class: CodeClass::QemuCore,
                                covered: 0,
                                report: None,
                                needs_mat: FlagSet::EMPTY,
                                kind: ProducerKind::Qemu,
                                cached: false,
                            });
                            if on_trace_taken[m] {
                                hcc0
                            } else {
                                hcc0.invert()
                            }
                        }
                    };
                    trans[m] = Trans::Cond { cc: hcc, off };
                } else {
                    final_direct_cc = decided.map(|(cc, _, _)| cc);
                }
            } else if m < k - 1 {
                // Unconditional b/bl: emit its guest work (link-register
                // writes) as a transition segment; a plain `b` has none
                // and the trace flows seamlessly through it.
                let lifted = lift(tinst, taddr).map_err(|err| TranslateError {
                    detail: format!("{tinst}: {err}"),
                })?;
                let code = tcg_legalize(lower_ops(&lifted.body, &env_map));
                if code.is_empty() {
                    st.seg_of_guest.push(usize::MAX);
                } else {
                    st.seg_of_guest.push(st.segments.len());
                    st.segments.push(Segment {
                        code,
                        class: CodeClass::QemuCore,
                        covered: 0,
                        report: None,
                        needs_mat: FlagSet::EMPTY,
                        kind: ProducerKind::Qemu,
                        cached: false,
                    });
                }
            }
        }
        seg_ranges.push((seg_b, st.segments.len()));
        attr_ranges.push((attr_b, st.attributions.len()));
    }

    // Emission: members in order, side-exit trampolines between them,
    // per-block terminal machinery for the final member.
    let mut e = Emitter {
        code: Vec::new(),
        classes: Vec::new(),
    };
    let mut cached_mode = false;
    let sync_loads: Vec<(GReg, HReg)> = map
        .allocated()
        .iter()
        .copied()
        .filter(|(g, _)| st.cached_regs.contains(g))
        .collect();
    let sync_stores: Vec<(GReg, HReg)> = map
        .allocated()
        .iter()
        .copied()
        .filter(|(g, _)| st.cached_writes.contains(g))
        .collect();
    let mut member_marks: Vec<MemberMark> = Vec::with_capacity(k);
    let mut rule_covered: u32 = 0;
    let mut cum_guest: u32 = 0;
    let mut succ = BlockSuccs::None;
    for m in 0..k {
        let anchor = e.code.len();
        cum_guest += mems[m].len() as u32;
        let mut member_rc: u32 = 0;
        for seg in &st.segments[seg_ranges[m].0..seg_ranges[m].1] {
            if seg.cached {
                enter_cached(&mut e, &mut cached_mode, &sync_loads);
            } else {
                enter_env(&mut e, &mut cached_mode, &sync_stores);
            }
            e.extend(seg.code.clone(), seg.class);
            member_rc += seg.covered;
            if !seg.needs_mat.is_empty() {
                let report = seg.report.as_ref().expect("deferred flags carry a report");
                if !materialize_flags(&mut e, seg.needs_mat, report) {
                    return Err(TranslateError {
                        detail: "phase 1 admitted an unmaterializable producer".into(),
                    });
                }
            }
        }
        if member_branch_cov[m] {
            member_rc += 1;
        }
        if m < k - 1 {
            if let Trans::Cond { cc, off } = trans[m] {
                // Side exit: `jcc` continues on-trace (keeping the cached
                // registers live), otherwise the trampoline syncs state,
                // advances icount to exactly the members retired so far,
                // and leaves through a block exit.
                let stores: &[(GReg, HReg)] = if cached_mode { &sync_stores } else { &[] };
                e.push(hb::jcc(cc, stores.len() as i32 + 3), CodeClass::Control);
                for (g, h) in stores {
                    e.push(
                        hb::mov(HOperand::Mem(env::reg_mem(*g)), HOperand::Reg(*h)),
                        CodeClass::DataTransfer,
                    );
                }
                bookkeeping(&mut e, cum_guest);
                e.push(hb::jmp_exit(HOperand::Imm(off as i32)), CodeClass::Control);
            }
        } else {
            let has_term = body_lens[m] < mems[m].len();
            let plan = if has_term {
                let (taddr, tinst) = *mems[m].last().expect("non-empty block");
                emit_terminal(
                    &mut e,
                    taddr,
                    tinst,
                    final_direct_cc,
                    &env_map,
                    &sync_stores,
                    &mut cached_mode,
                )?
            } else {
                StubPlan::FallThrough
            };
            let fall = members[m] + mems[m].len() as u32 * INST_SIZE;
            succ = succ_of_plan(&plan, fall);
            // Epilogue: leave the environment canonical.
            enter_env(&mut e, &mut cached_mode, &sync_stores);
            emit_exit_stubs(&mut e, &plan, fall, cum_guest);
        }
        rule_covered += member_rc;
        member_marks.push(MemberMark {
            start: members[m],
            anchor,
            guest_len: mems[m].len() as u32,
            rule_covered: member_rc,
            attr_range: attr_ranges[m],
            deleg: member_deleg[m],
        });
    }

    debug_assert_eq!(
        st.attributions.iter().map(|a| a.covered).sum::<u32>(),
        rule_covered,
        "attribution must decompose coverage exactly"
    );
    Ok(TranslatedBlock {
        start: members[0],
        code: e.code,
        classes: e.classes,
        guest_len: total_n as u32,
        rule_covered,
        attributions: st.attributions,
        lookup_misses: st.lookup_misses,
        deleg: None,
        succ,
        member_marks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig, RunSetup};
    use pdbt_compiler::lang::{
        BinOp, CmpKind, Function, Label, Rvalue, SourceProgram, Stmt, UnOp, Var,
    };
    use pdbt_compiler::{build_debug_map, compile_pair};
    use pdbt_core::derive::{derive, DeriveConfig};
    use pdbt_core::learning::{learn_into, LearnConfig};
    use pdbt_core::RuleSet;
    use pdbt_isa_arm::Cpu as GuestCpu;
    use pdbt_symexec::CheckOptions;

    /// A training program rich enough to seed the main subgroups.
    fn training_source() -> SourceProgram {
        let c = Rvalue::Const;
        let v = |i: u8| Rvalue::Var(Var(i));
        let stmts = vec![
            Stmt::Un {
                dst: Var(0),
                op: UnOp::Mov,
                a: c(100),
            },
            Stmt::Un {
                dst: Var(1),
                op: UnOp::Mov,
                a: c(7),
            },
            Stmt::Bin {
                dst: Var(0),
                op: BinOp::Add,
                a: v(0),
                b: v(1),
            },
            Stmt::Bin {
                dst: Var(2),
                op: BinOp::Sub,
                a: v(0),
                b: c(3),
            },
            Stmt::Bin {
                dst: Var(2),
                op: BinOp::And,
                a: v(2),
                b: c(255),
            },
            // Memory (base address = 0x10_0000 via shift).
            Stmt::Un {
                dst: Var(3),
                op: UnOp::Mov,
                a: c(0x100),
            },
            Stmt::Bin {
                dst: Var(3),
                op: BinOp::Shl,
                a: v(3),
                b: c(12),
            },
            Stmt::Store {
                src: Var(2),
                base: Var(3),
                offset: 4,
                width: pdbt_isa::Width::B32,
            },
            Stmt::Load {
                dst: Var(1),
                base: Var(3),
                offset: 4,
                width: pdbt_isa::Width::B32,
            },
            // Compare seed.
            Stmt::Branch {
                a: Var(0),
                cmp: CmpKind::LtS,
                b: c(0),
                target: Label(0),
            },
            Stmt::Define { label: Label(0) },
            Stmt::Output { a: Var(1) },
            Stmt::Return,
        ];
        SourceProgram {
            functions: vec![Function {
                name: "train".into(),
                stmts,
                n_vars: 4,
            }],
        }
    }

    fn learn_rules() -> RuleSet {
        let pair = compile_pair(&training_source(), 0x1000).unwrap();
        let debug = build_debug_map(&pair.guest, &pair.host);
        let mut rules = RuleSet::new();
        learn_into(&mut rules, &pair, &debug, LearnConfig::default());
        assert!(
            rules.len() >= 6,
            "expected a healthy seed set, got {}",
            rules.len()
        );
        rules
    }

    /// A distinct test program reusing only combos reachable from the
    /// training seeds (plus QEMU-path branches/IO).
    fn test_program() -> pdbt_isa_arm::Program {
        use pdbt_isa::Cond;
        use pdbt_isa_arm::builders as g;
        use pdbt_isa_arm::{Operand as O, Reg};
        // A loop long enough for block-level register caching to
        // amortize (real blocks are; see the workload suite).
        pdbt_isa_arm::Program::new(
            0x2000,
            vec![
                g::mov(Reg::R4, O::Imm(40)), // 0x2000
                g::mov(Reg::R5, O::Imm(0)),
                // loop: (0x2008)
                g::eor(Reg::R6, Reg::R4, O::Imm(21)), // derived opcode
                g::add(Reg::R5, Reg::R5, O::Reg(Reg::R6)),
                g::and(Reg::R6, Reg::R6, O::Imm(0xff)),
                g::orr(Reg::R5, Reg::R5, O::Imm(1)),
                g::add(Reg::R5, Reg::R5, O::Imm(3)),
                g::eor(Reg::R5, Reg::R5, O::Reg(Reg::R6)),
                g::sub(Reg::R4, Reg::R4, O::Imm(1)).with_s(), // s-variant (delegation)
                g::b(Cond::Ne, -28),
                g::mov(Reg::R0, O::Reg(Reg::R5)),
                g::svc(1),
                g::svc(0),
            ],
        )
    }

    fn run_config(rules: Option<RuleSet>, delegation: bool) -> crate::engine::Report {
        let mut cfg = EngineConfig::default();
        cfg.translate.flag_delegation = delegation;
        let mut engine = Engine::new(rules, cfg);
        let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        engine.run(&test_program(), &setup).expect("runs")
    }

    fn golden_output() -> Vec<u32> {
        let mut cpu = GuestCpu::new();
        cpu.mem.map(0x10_0000, 0x1000);
        cpu.mem.map(0x8_0000, 0x1000);
        cpu.write(pdbt_isa_arm::Reg::Sp, 0x8_1000);
        pdbt_isa_arm::run(&mut cpu, &test_program(), 100_000).unwrap();
        cpu.output
    }

    #[test]
    fn all_configurations_agree_with_the_interpreter() {
        let golden = golden_output();
        let learned = learn_rules();
        let (full, _) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
        let (opcode_only, _) = derive(
            &learned,
            DeriveConfig::opcode_only(),
            CheckOptions::default(),
        );
        for (name, rules, delegation) in [
            ("qemu", None, true),
            ("learned", Some(learned.clone()), false),
            ("opcode", Some(opcode_only), false),
            ("full", Some(full.clone()), true),
            ("full-no-delegation", Some(full), false),
        ] {
            let report = run_config(rules, delegation);
            assert_eq!(report.output, golden, "config {name}");
        }
    }

    #[test]
    fn coverage_orders_across_configurations() {
        let learned = learn_rules();
        let (full, _) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
        let (oa, _) = derive(
            &learned,
            DeriveConfig::opcode_addrmode(),
            CheckOptions::default(),
        );
        let qemu = run_config(None, true).metrics;
        let base = run_config(Some(learned), false).metrics;
        let mid = run_config(Some(oa), false).metrics;
        let top = run_config(Some(full), true).metrics;
        assert_eq!(qemu.coverage(), 0.0);
        assert!(base.coverage() > 0.0, "learned rules cover something");
        assert!(
            mid.coverage() >= base.coverage(),
            "{} vs {}",
            mid.coverage(),
            base.coverage()
        );
        assert!(
            top.coverage() > mid.coverage(),
            "delegation adds the branch+s coverage"
        );
        assert!(
            top.coverage() > 0.8,
            "full config covers most of the loop: {}",
            top.coverage()
        );
    }

    #[test]
    fn performance_proxy_orders_across_configurations() {
        let learned = learn_rules();
        let (full, _) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
        let qemu = run_config(None, true).metrics;
        let top = run_config(Some(full), true).metrics;
        assert!(
            top.host_executed() < qemu.host_executed(),
            "parameterized DBT executes fewer host instructions: {} vs {}",
            top.host_executed(),
            qemu.host_executed()
        );
        assert!(top.total_ratio() < qemu.total_ratio());
    }

    #[test]
    fn attribution_decomposes_coverage_exactly() {
        let learned = learn_rules();
        let (full, _) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
        let cfg = TranslateConfig::default();
        for start in [0x2000u32, 0x2008, 0x2028] {
            let block = translate_block(&test_program(), start, Some(&full), &cfg).unwrap();
            let sum: u32 = block.attributions.iter().map(|a| a.covered).sum();
            assert_eq!(sum, block.rule_covered, "block {start:#x}");
            for a in &block.attributions {
                assert!(!a.label.is_empty());
                assert!(!a.subgroup.is_empty(), "label {} has a subgroup", a.label);
            }
        }
        // The loop block delegates its terminal bne to the subs producer
        // one instruction back.
        let block = translate_block(&test_program(), 0x2008, Some(&full), &cfg).unwrap();
        assert_eq!(block.deleg, Some(DelegOutcome::Delegated(1)));
        assert!(block
            .attributions
            .iter()
            .any(|a| a.label.contains("delegated")));
        // Without rules every body instruction of the loop is a miss —
        // but only when a rule set is installed.
        let qemu = translate_block(&test_program(), 0x2008, None, &cfg).unwrap();
        assert!(qemu.attributions.is_empty());
        assert!(qemu.lookup_misses.is_empty());
        assert_eq!(qemu.rule_covered, 0);
    }

    #[test]
    fn undelegated_conditional_exit_reports_env_fallback() {
        let learned = learn_rules();
        let (full, _) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
        let cfg = TranslateConfig {
            window: 0,
            ..TranslateConfig::default()
        };
        // With a zero look-ahead window the producer (distance 1) is out
        // of range, so the branch reads environment flags.
        let block = translate_block(&test_program(), 0x2008, Some(&full), &cfg).unwrap();
        assert_eq!(block.deleg, Some(DelegOutcome::EnvFallback));
    }

    #[test]
    fn delegated_branch_skips_env_flags() {
        let learned = learn_rules();
        let (full, _) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
        let cfg = TranslateConfig::default();
        // The loop body block at 0x2008 (seven ALU ops + bne).
        let block = translate_block(&test_program(), 0x2008, Some(&full), &cfg).unwrap();
        assert_eq!(block.guest_len, 8);
        assert_eq!(block.rule_covered, 8, "subs delegated into bne");
        // No environment flag reads in the emitted code.
        let flag_addrs: Vec<i32> = pdbt_isa::Flag::ALL
            .iter()
            .map(|f| pdbt_ir::env::flag_offset(*f))
            .collect();
        for inst in &block.code {
            for o in &inst.operands {
                if let pdbt_isa_x86::Operand::Mem(m) = o {
                    if m.base == Some(HReg::Ebp) {
                        assert!(
                            !flag_addrs.contains(&m.disp),
                            "unexpected env flag access in {inst}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn without_delegation_subs_is_not_rule_covered() {
        // Without delegation the s-variant is not derivable, so the
        // producer goes through the QEMU path; TCG-style folding still
        // branches directly, but neither the subs nor the bne count as
        // rule-covered.
        let learned = learn_rules();
        let (oa, _) = derive(
            &learned,
            DeriveConfig::opcode_addrmode(),
            CheckOptions::default(),
        );
        let cfg = TranslateConfig {
            flag_delegation: false,
            ..TranslateConfig::default()
        };
        let block = translate_block(&test_program(), 0x2008, Some(&oa), &cfg).unwrap();
        assert!(
            block.rule_covered + 2 <= block.guest_len,
            "subs and bne stay emulated: {}/{}",
            block.rule_covered,
            block.guest_len
        );
    }

    #[test]
    fn distant_producer_branch_reads_env_flags() {
        // When another instruction separates the flag producer from the
        // branch AND clobbers host flags, the branch must evaluate the
        // guest condition from the environment.
        use pdbt_isa::Cond;
        use pdbt_isa_arm::builders as g;
        use pdbt_isa_arm::{Operand as O, Reg};
        let prog = pdbt_isa_arm::Program::new(
            0x3000,
            vec![
                g::sub(Reg::R4, Reg::R4, O::Imm(1)).with_s(),
                g::add(Reg::R5, Reg::R5, O::Imm(3)), // clobbers host flags
                g::b(Cond::Ne, -8),
                g::svc(0),
            ],
        );
        let cfg = TranslateConfig {
            flag_delegation: false,
            ..TranslateConfig::default()
        };
        let block = translate_block(&prog, 0x3000, None, &cfg).unwrap();
        let z_off = pdbt_ir::env::flag_offset(pdbt_isa::Flag::Z);
        let reads_z = block.code.iter().any(|i| {
            i.operands.iter().any(
                |o| matches!(o, pdbt_isa_x86::Operand::Mem(m) if m.base == Some(HReg::Ebp) && m.disp == z_off),
            )
        });
        assert!(reads_z, "env Z flag consulted by the branch");
        // And execution agrees with the interpreter.
        let mut engine = Engine::new(None, EngineConfig::default());
        let mut setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        setup.regs[4] = 5;
        let report = engine.run(&prog, &setup).unwrap();
        let mut cpu = pdbt_isa_arm::Cpu::new();
        cpu.write(Reg::R4, 5);
        pdbt_isa_arm::run(&mut cpu, &prog, 1000).unwrap();
        assert_eq!(report.output, cpu.output);
    }

    #[test]
    fn block_collection_stops_at_branches() {
        let prog = test_program();
        let b = collect_block(&prog, 0x2000, 32).unwrap();
        assert_eq!(b.len(), 2 + 8, "up to and including bne");
        let b = collect_block(&prog, 0x2028, 32).unwrap();
        assert_eq!(b.len(), 3, "mov/svc1 continue, svc0 terminates");
    }
}

#[cfg(test)]
mod seq_tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig, RunSetup};
    use pdbt_core::learning::LearnConfig;
    use pdbt_core::ruleset::{verify_seq, Provenance, RuleEntry};
    use pdbt_core::{key, template, RuleSet};
    use pdbt_isa_arm::builders as g;
    use pdbt_isa_arm::{Operand as O, Reg};
    use pdbt_isa_x86::builders as h;
    use pdbt_isa_x86::Reg as HReg;
    use pdbt_symexec::CheckOptions;

    /// Hand-build one sequence rule: `mov rA, #k; add rB, rB, rA`
    /// collapses into a single `addl`.
    fn seq_rule_set() -> RuleSet {
        let seq = [
            g::mov(Reg::R4, O::Imm(5)),
            g::add(Reg::R5, Reg::R5, O::Reg(Reg::R4)),
        ];
        let (keys, concrete) = key::parameterize_seq(&seq).unwrap();
        // Host: movl S0, $I0; addl S1, S0 — the learned pair shape.
        let host = [
            h::mov(HReg::Ecx.into(), pdbt_isa_x86::Operand::Imm(5)),
            h::add(HReg::Ebx.into(), HReg::Ecx.into()),
        ];
        let slot_of = |r: HReg| match r {
            HReg::Ecx => Some(0u8),
            HReg::Ebx => Some(1),
            _ => None,
        };
        let tmpl = template::extract(&host, &slot_of, &concrete.imms).unwrap();
        let flags = verify_seq(&keys, &tmpl, 2, CheckOptions::default()).unwrap();
        let mut rs = RuleSet::new();
        assert!(rs.insert_seq(
            keys,
            RuleEntry {
                template: tmpl,
                flags,
                provenance: Provenance::Learned,
                imm_constraint: None
            },
        ));
        rs
    }

    #[test]
    fn sequence_rule_matches_and_counts_coverage() {
        let rules = seq_rule_set();
        let prog = pdbt_isa_arm::Program::new(
            0x1000,
            vec![
                g::mov(Reg::R8, O::Imm(42)),               // single inst: no rule
                g::mov(Reg::R6, O::Imm(9)),                // seq part 1 (fresh regs)
                g::add(Reg::R7, Reg::R7, O::Reg(Reg::R6)), // seq part 2
                g::svc(0),
            ],
        );
        let block =
            translate_block(&prog, 0x1000, Some(&rules), &TranslateConfig::default()).unwrap();
        assert_eq!(block.guest_len, 4);
        assert_eq!(
            block.rule_covered, 2,
            "the sequence covers two guest instructions"
        );
        // And it executes correctly.
        let mut engine = Engine::new(Some(rules), EngineConfig::default());
        let mut setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        setup.regs[7] = 100;
        let mut prog2 = prog.insts().to_vec();
        prog2.insert(3, g::mov(Reg::R0, O::Reg(Reg::R7)));
        prog2.insert(4, g::svc(1));
        let prog2 = pdbt_isa_arm::Program::new(0x1000, prog2);
        let report = engine.run(&prog2, &setup).unwrap();
        assert_eq!(report.output, vec![109]);
    }

    #[test]
    fn sequence_rules_are_learned_from_merged_candidates() {
        // Force merge-everything debug maps so multi-statement candidates
        // dominate, then check sequence rules appear.
        use pdbt_compiler::lang::*;
        let src = SourceProgram {
            functions: vec![Function {
                name: "m".into(),
                stmts: vec![
                    Stmt::Un {
                        dst: Var(0),
                        op: UnOp::Mov,
                        a: Rvalue::Const(3),
                    },
                    Stmt::Bin {
                        dst: Var(2),
                        op: BinOp::Add,
                        a: Rvalue::Var(Var(2)),
                        b: Rvalue::Var(Var(0)),
                    },
                    Stmt::Bin {
                        dst: Var(3),
                        op: BinOp::Xor,
                        a: Rvalue::Var(Var(3)),
                        b: Rvalue::Const(9),
                    },
                    Stmt::Return,
                ],
                n_vars: 4,
            }],
        };
        let pair = pdbt_compiler::compile_pair(&src, 0x1000).unwrap();
        let accurate = pdbt_compiler::build_debug_map(&pair.guest, &pair.host);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let degraded = pdbt_compiler::degrade(
            &accurate,
            pdbt_compiler::DegradeProfile {
                drop: 0.0,
                merge: 1.0,
                skew: 0.0,
            },
            &mut rng,
        );
        let mut rules = RuleSet::new();
        let stats =
            pdbt_core::learning::learn_into(&mut rules, &pair, &degraded, LearnConfig::default());
        assert!(rules.seq_len() > 0, "sequence rules learned: {stats:?}");
    }
}
