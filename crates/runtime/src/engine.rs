//! The DBT engine: code cache, dispatcher, metrics.
//!
//! Translated blocks are cached by guest address ("code cache", paper
//! §V-B1) and executed on the host model; the dispatcher follows block
//! exits until the guest program halts. Executed host instructions are
//! attributed to their [`CodeClass`], which is the measurement behind
//! Table II, Fig 13 and the instruction-count performance proxy.

use crate::translate::{
    translate_block, CodeClass, TranslateConfig, TranslateError, TranslatedBlock,
};
use pdbt_core::RuleSet;
use pdbt_ir::env;
use pdbt_isa::{Addr, ExecError};
use pdbt_isa_arm::{Program, Reg as GReg};
use pdbt_isa_x86::{exec_block_traced, BlockExit, Cpu as HostCpu, Reg as HReg};
use std::collections::HashMap;
use std::fmt;

/// Base address of the guest environment block in host memory.
pub const ENV_BASE: Addr = 0xE000_0000;

/// Engine configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfig {
    /// Translation knobs.
    pub translate: TranslateConfig,
}

/// Guest memory layout and entry state for a run.
#[derive(Debug, Clone, Default)]
pub struct RunSetup {
    /// Regions to map (base, size) — data, stack, …; guest memory is
    /// identity-mapped into host memory (user-mode DBT).
    pub maps: Vec<(Addr, u32)>,
    /// Initial guest register values (index = register number).
    pub regs: [u32; 16],
    /// Initial memory contents: (address, words).
    pub init_words: Vec<(Addr, Vec<u32>)>,
    /// Guest instruction budget.
    pub max_guest: u64,
}

impl RunSetup {
    /// A setup with one data region and one stack region, `sp` at the
    /// stack top.
    #[must_use]
    pub fn basic(data_base: Addr, data_size: u32, stack_base: Addr, stack_size: u32) -> RunSetup {
        let mut regs = [0u32; 16];
        regs[GReg::Sp.index()] = stack_base + stack_size;
        RunSetup {
            maps: vec![(data_base, data_size), (stack_base, stack_size)],
            regs,
            init_words: Vec::new(),
            max_guest: 50_000_000,
        }
    }
}

/// Aggregated run metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Guest instructions retired (dynamic).
    pub guest_retired: u64,
    /// Guest instructions translated through rules (dynamic), including
    /// delegated terminal branches.
    pub rule_covered: u64,
    /// Executed host instructions by [`CodeClass`] index.
    pub host_by_class: [u64; 4],
    /// Blocks translated (static) and executed (dynamic).
    pub blocks_translated: u64,
    /// Block executions.
    pub blocks_executed: u64,
    /// Host instructions generated (static).
    pub host_generated: u64,
}

impl Metrics {
    /// Dynamic coverage: fraction of retired guest instructions that
    /// were rule-translated (paper Figs 12/14/16).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.guest_retired == 0 {
            return 0.0;
        }
        self.rule_covered as f64 / self.guest_retired as f64
    }

    /// Total executed host instructions — the deterministic performance
    /// proxy ("program execution time is directly proportionate to the
    /// number of instructions executed", §V-B1).
    #[must_use]
    pub fn host_executed(&self) -> u64 {
        self.host_by_class.iter().sum()
    }

    /// Host instructions per guest instruction for one class (the
    /// columns of Table II).
    #[must_use]
    pub fn ratio(&self, class: CodeClass) -> f64 {
        if self.guest_retired == 0 {
            return 0.0;
        }
        self.host_by_class[class.index()] as f64 / self.guest_retired as f64
    }

    /// Total host instructions per guest instruction (Fig 13).
    #[must_use]
    pub fn total_ratio(&self) -> f64 {
        if self.guest_retired == 0 {
            return 0.0;
        }
        self.host_executed() as f64 / self.guest_retired as f64
    }
}

/// The result of one run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Run metrics.
    pub metrics: Metrics,
    /// The guest's observable output stream.
    pub output: Vec<u32>,
}

/// A runtime failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Translation failed.
    Translate(TranslateError),
    /// Host execution failed.
    Exec(ExecError),
    /// The guest instruction budget was exhausted.
    Budget,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Translate(e) => write!(f, "{e}"),
            EngineError::Exec(e) => write!(f, "execution error: {e}"),
            EngineError::Budget => f.write_str("guest instruction budget exhausted"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<TranslateError> for EngineError {
    fn from(e: TranslateError) -> EngineError {
        EngineError::Translate(e)
    }
}

impl From<ExecError> for EngineError {
    fn from(e: ExecError) -> EngineError {
        EngineError::Exec(e)
    }
}

/// The dynamic binary translator.
#[derive(Debug)]
pub struct Engine {
    rules: Option<RuleSet>,
    cfg: EngineConfig,
    cache: HashMap<Addr, TranslatedBlock>,
    metrics: Metrics,
}

impl Engine {
    /// Creates an engine. `rules = None` is the pure QEMU-path baseline.
    #[must_use]
    pub fn new(rules: Option<RuleSet>, cfg: EngineConfig) -> Engine {
        Engine {
            rules,
            cfg,
            cache: HashMap::new(),
            metrics: Metrics::default(),
        }
    }

    /// The accumulated metrics.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Clears the code cache and metrics.
    pub fn reset(&mut self) {
        self.cache.clear();
        self.metrics = Metrics::default();
    }

    /// Translates (or fetches from cache) the block at `pc`.
    fn block(&mut self, prog: &Program, pc: Addr) -> Result<&TranslatedBlock, EngineError> {
        if !self.cache.contains_key(&pc) {
            let block = translate_block(prog, pc, self.rules.as_ref(), &self.cfg.translate)?;
            self.metrics.blocks_translated += 1;
            self.metrics.host_generated += block.code.len() as u64;
            self.cache.insert(pc, block);
        }
        Ok(&self.cache[&pc])
    }

    /// Runs a guest program under the DBT.
    ///
    /// # Errors
    ///
    /// [`EngineError`] on translation or execution failures, or when the
    /// guest budget runs out.
    pub fn run(&mut self, prog: &Program, setup: &RunSetup) -> Result<Report, EngineError> {
        let mut host = HostCpu::new();
        // The environment block.
        host.mem.map(ENV_BASE, env::ENV_SIZE);
        host.write(HReg::Ebp, ENV_BASE);
        // Identity-map guest memory.
        for (base, size) in &setup.maps {
            host.mem.map(*base, *size);
        }
        for (addr, words) in &setup.init_words {
            for (i, w) in words.iter().enumerate() {
                host.mem.store32(addr + (i as u32) * 4, *w)?;
            }
        }
        // Seed guest registers into the environment.
        for r in GReg::ALL {
            host.mem.store32(
                ENV_BASE.wrapping_add(env::reg_offset(r) as u32),
                setup.regs[r.index()],
            )?;
        }
        let mut pc = prog.base();
        loop {
            if self.metrics.guest_retired >= setup.max_guest {
                return Err(EngineError::Budget);
            }
            let (code_len, exit, counts) = {
                let block = self.block(prog, pc)?;
                let (exit, _stats, counts) = exec_block_traced(&mut host, &block.code, 1_000_000)?;
                (block.code.len(), exit, counts)
            };
            let block = &self.cache[&pc];
            debug_assert_eq!(code_len, block.classes.len());
            for (i, c) in counts.iter().enumerate() {
                self.metrics.host_by_class[block.classes[i].index()] += u64::from(*c);
            }
            self.metrics.blocks_executed += 1;
            self.metrics.guest_retired += u64::from(block.guest_len);
            self.metrics.rule_covered += u64::from(block.rule_covered);
            match exit {
                BlockExit::Jumped(next) => pc = next,
                BlockExit::Halted => break,
                BlockExit::Fell => {
                    return Err(EngineError::Exec(ExecError::BadPc { pc }));
                }
            }
        }
        Ok(Report {
            metrics: self.metrics.clone(),
            output: host.output,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdbt_isa::Cond;
    use pdbt_isa_arm::builders as g;
    use pdbt_isa_arm::{Cpu as GuestCpu, Operand as O, Reg};

    fn countdown_program() -> Program {
        Program::new(
            0x1000,
            vec![
                g::mov(Reg::R0, O::Imm(5)),
                g::mov(Reg::R1, O::Imm(0)),
                g::add(Reg::R1, Reg::R1, O::Reg(Reg::R0)),
                g::sub(Reg::R0, Reg::R0, O::Imm(1)).with_s(),
                g::b(Cond::Ne, -8),
                g::mov(Reg::R0, O::Reg(Reg::R1)),
                g::svc(1),
                g::svc(0),
            ],
        )
    }

    fn setup() -> RunSetup {
        RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000)
    }

    #[test]
    fn qemu_only_engine_matches_interpreter() {
        let prog = countdown_program();
        let mut engine = Engine::new(None, EngineConfig::default());
        let report = engine.run(&prog, &setup()).expect("runs");
        assert_eq!(report.output, vec![15]);
        assert_eq!(report.metrics.coverage(), 0.0, "no rules, no coverage");
        assert_eq!(report.metrics.guest_retired, 20);
        // And the golden interpreter agrees.
        let mut cpu = GuestCpu::new();
        pdbt_isa_arm::run(&mut cpu, &prog, 10_000).unwrap();
        assert_eq!(cpu.output, report.output);
    }

    #[test]
    fn code_cache_reuses_blocks() {
        let prog = countdown_program();
        let mut engine = Engine::new(None, EngineConfig::default());
        let report = engine.run(&prog, &setup()).unwrap();
        // The loop block executes 5 times but translates once.
        assert!(report.metrics.blocks_executed > report.metrics.blocks_translated);
    }

    #[test]
    fn class_accounting_covers_all_executed() {
        let prog = countdown_program();
        let mut engine = Engine::new(None, EngineConfig::default());
        let report = engine.run(&prog, &setup()).unwrap();
        assert!(report.metrics.host_executed() > report.metrics.guest_retired);
        assert!(report.metrics.host_by_class[CodeClass::Control.index()] > 0);
        assert!(report.metrics.host_by_class[CodeClass::QemuCore.index()] > 0);
    }

    #[test]
    fn budget_is_enforced() {
        let prog = Program::new(0, vec![g::b(Cond::Al, 0)]);
        let mut engine = Engine::new(None, EngineConfig::default());
        let mut s = setup();
        s.max_guest = 100;
        assert!(matches!(engine.run(&prog, &s), Err(EngineError::Budget)));
    }
}

#[cfg(test)]
mod engine_edge_tests {
    use super::*;
    use pdbt_isa_arm::builders as g;
    use pdbt_isa_arm::{Operand as O, Program, Reg};

    fn tiny_program() -> Program {
        Program::new(
            0x1000,
            vec![g::mov(Reg::R0, O::Imm(1)), g::svc(1), g::svc(0)],
        )
    }

    #[test]
    fn reset_clears_cache_and_metrics() {
        let prog = tiny_program();
        let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        let mut engine = Engine::new(None, EngineConfig::default());
        engine.run(&prog, &setup).unwrap();
        assert!(engine.metrics().blocks_translated > 0);
        engine.reset();
        assert_eq!(engine.metrics().blocks_translated, 0);
        assert_eq!(engine.metrics().guest_retired, 0);
        // And it still runs after a reset.
        let r = engine.run(&prog, &setup).unwrap();
        assert_eq!(r.output, vec![1]);
    }

    #[test]
    fn rerun_reuses_the_code_cache() {
        let prog = tiny_program();
        let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        let mut engine = Engine::new(None, EngineConfig::default());
        engine.run(&prog, &setup).unwrap();
        let translated_once = engine.metrics().blocks_translated;
        engine.run(&prog, &setup).unwrap();
        assert_eq!(
            engine.metrics().blocks_translated,
            translated_once,
            "second run translates nothing new"
        );
        assert_eq!(engine.metrics().blocks_executed, 2);
    }

    #[test]
    fn unmapped_guest_memory_faults_cleanly() {
        let prog = Program::new(
            0x1000,
            vec![
                g::mov(Reg::R1, O::Imm(0x40)),
                g::lsl(Reg::R1, Reg::R1, O::Imm(12)), // 0x40000: unmapped
                g::ldr(
                    Reg::R0,
                    pdbt_isa_arm::MemAddr::BaseImm {
                        base: Reg::R1,
                        offset: 0,
                    },
                ),
                g::svc(0),
            ],
        );
        let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        let mut engine = Engine::new(None, EngineConfig::default());
        assert!(matches!(
            engine.run(&prog, &setup),
            Err(EngineError::Exec(_))
        ));
    }

    #[test]
    fn init_words_are_visible_to_the_guest() {
        let prog = Program::new(
            0x1000,
            vec![
                g::mov(Reg::R1, O::Imm(0x100)),
                g::lsl(Reg::R1, Reg::R1, O::Imm(12)),
                g::ldr(
                    Reg::R0,
                    pdbt_isa_arm::MemAddr::BaseImm {
                        base: Reg::R1,
                        offset: 8,
                    },
                ),
                g::svc(1),
                g::svc(0),
            ],
        );
        let mut setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        setup.init_words.push((0x10_0008, vec![0xdead_beef]));
        let mut engine = Engine::new(None, EngineConfig::default());
        let r = engine.run(&prog, &setup).unwrap();
        assert_eq!(r.output, vec![0xdead_beef]);
    }

    #[test]
    fn metrics_ratios_are_consistent() {
        let prog = tiny_program();
        let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        let mut engine = Engine::new(None, EngineConfig::default());
        let r = engine.run(&prog, &setup).unwrap();
        let m = &r.metrics;
        let sum: f64 = [
            crate::CodeClass::RuleCore,
            crate::CodeClass::QemuCore,
            crate::CodeClass::DataTransfer,
            crate::CodeClass::Control,
        ]
        .into_iter()
        .map(|c| m.ratio(c))
        .sum();
        assert!((sum - m.total_ratio()).abs() < 1e-9);
        assert_eq!(m.host_executed(), m.host_by_class.iter().sum::<u64>());
    }
}
