//! The DBT engine: code cache, dispatcher, metrics.
//!
//! Translated blocks are cached by guest address ("code cache", paper
//! §V-B1) and executed on the host model; the dispatcher follows block
//! exits until the guest program halts. Executed host instructions are
//! attributed to their [`CodeClass`], which is the measurement behind
//! Table II, Fig 13 and the instruction-count performance proxy.

use crate::backend::{backend_for, BackendKind, BackendObs};
use crate::cache::{CachedBlock, ShardedCache};
use crate::shared::SharedTranslationState;
use crate::translate::{
    collect_block, translate_block, translate_trace, BlockSuccs, CodeClass, DelegOutcome,
    TranslateConfig, TranslateError, TranslatedBlock,
};
use pdbt_core::RuleSet;
use pdbt_ir::env;
use pdbt_isa::{Addr, Cond, Control, ExecError, Flag};
use pdbt_isa_arm::{step, Cpu as GuestCpu, FReg, Operand, Program, Reg as GReg, INST_SIZE};
use pdbt_isa_x86::{BlockExit, Cpu as HostCpu, Reg as HReg};
use pdbt_obs::json::Json;
use pdbt_obs::{
    ArtifactSnapshot, DispatchCounters, Histogram, PhaseNs, PoolCounters, RequestSummary,
    RuleCounters, RuleId, ServerSnapshot, ShardCounters, TelemetrySnapshot,
};
use pdbt_par::Pool;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Base address of the guest environment block in host memory.
pub const ENV_BASE: Addr = 0xE000_0000;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Translation knobs.
    pub translate: TranslateConfig,
    /// Worker threads for block pre-translation; `run` prewarms the
    /// code cache in parallel when this exceeds 1. Translation output
    /// and metrics are independent of the value (see [`Engine::prewarm`]).
    pub jobs: usize,
    /// Code-cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Dispatch fast path: probe the direct-mapped jump cache before
    /// the sharded cache, and follow chain links between blocks without
    /// re-entering the dispatcher. Off reproduces the pre-chaining
    /// engine exactly.
    pub chaining: bool,
    /// Promote hot chains to single-translation superblocks.
    pub traces: bool,
    /// Executions of a block before the chain it heads is considered
    /// hot and promoted to a superblock (`--trace-threshold`).
    pub trace_threshold: u32,
    /// Record a request summary (translate/execute phase latencies)
    /// into the shared state's telemetry plane at the end of each run.
    /// On for standalone engines — the one-session-server view — and
    /// turned off by `pdbt-serve`, which stamps the full request
    /// lifecycle (queue wait, reply write) itself and must not record
    /// each request twice.
    pub record_telemetry: bool,
    /// Host block executor (`--backend {model,threaded}`). Both produce
    /// bit-identical stripped reports; `threaded` runs pre-compiled
    /// threaded code instead of re-interpreting each `Inst`.
    pub backend: BackendKind,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            translate: TranslateConfig::default(),
            jobs: 1,
            cache_shards: 8,
            chaining: true,
            traces: true,
            trace_threshold: 50,
            record_telemetry: true,
            // `PDBT_BACKEND` overrides the default so CI can run the
            // whole suite under the model oracle without plumbing a
            // flag through every test.
            backend: std::env::var("PDBT_BACKEND")
                .ok()
                .and_then(|s| BackendKind::parse(&s))
                .unwrap_or_default(),
        }
    }
}

/// Guest memory layout and entry state for a run.
#[derive(Debug, Clone, Default)]
pub struct RunSetup {
    /// Regions to map (base, size) — data, stack, …; guest memory is
    /// identity-mapped into host memory (user-mode DBT).
    pub maps: Vec<(Addr, u32)>,
    /// Initial guest register values (index = register number).
    pub regs: [u32; 16],
    /// Initial memory contents: (address, words).
    pub init_words: Vec<(Addr, Vec<u32>)>,
    /// Guest instruction budget.
    pub max_guest: u64,
    /// Optional wall-clock deadline (`--deadline-ms` on a serve
    /// request): a run past it stops with a partial report and
    /// [`Outcome::Deadline`]. `None` (the default) never checks the
    /// clock, so deterministic runs stay clock-free.
    pub deadline: Option<Instant>,
}

impl RunSetup {
    /// A setup with one data region and one stack region, `sp` at the
    /// stack top.
    #[must_use]
    pub fn basic(data_base: Addr, data_size: u32, stack_base: Addr, stack_size: u32) -> RunSetup {
        let mut regs = [0u32; 16];
        regs[GReg::Sp.index()] = stack_base + stack_size;
        RunSetup {
            maps: vec![(data_base, data_size), (stack_base, stack_size)],
            regs,
            init_words: Vec::new(),
            max_guest: 50_000_000,
            deadline: None,
        }
    }
}

/// Aggregated run metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Guest instructions retired (dynamic).
    pub guest_retired: u64,
    /// Guest instructions translated through rules (dynamic), including
    /// delegated terminal branches.
    pub rule_covered: u64,
    /// Executed host instructions by [`CodeClass`] index.
    pub host_by_class: [u64; 4],
    /// Blocks translated (static) and executed (dynamic).
    pub blocks_translated: u64,
    /// Block executions.
    pub blocks_executed: u64,
    /// Host instructions generated (static).
    pub host_generated: u64,
    /// Executed host instructions as counted by the block executor
    /// (folds the per-block `ExecStats`; equals the sum of the
    /// per-class counters).
    pub host_retired: u64,
}

impl Metrics {
    /// Dynamic coverage: fraction of retired guest instructions that
    /// were rule-translated (paper Figs 12/14/16).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.guest_retired == 0 {
            return 0.0;
        }
        self.rule_covered as f64 / self.guest_retired as f64
    }

    /// Total executed host instructions — the deterministic performance
    /// proxy ("program execution time is directly proportionate to the
    /// number of instructions executed", §V-B1).
    #[must_use]
    pub fn host_executed(&self) -> u64 {
        self.host_by_class.iter().sum()
    }

    /// Host instructions per guest instruction for one class (the
    /// columns of Table II).
    #[must_use]
    pub fn ratio(&self, class: CodeClass) -> f64 {
        if self.guest_retired == 0 {
            return 0.0;
        }
        self.host_by_class[class.index()] as f64 / self.guest_retired as f64
    }

    /// Total host instructions per guest instruction (Fig 13).
    #[must_use]
    pub fn total_ratio(&self) -> f64 {
        if self.guest_retired == 0 {
            return 0.0;
        }
        self.host_executed() as f64 / self.guest_retired as f64
    }

    /// Folds another run's metrics into this one (suite aggregation).
    pub fn merge(&mut self, other: &Metrics) {
        self.guest_retired += other.guest_retired;
        self.rule_covered += other.rule_covered;
        for (a, b) in self.host_by_class.iter_mut().zip(&other.host_by_class) {
            *a += b;
        }
        self.blocks_translated += other.blocks_translated;
        self.blocks_executed += other.blocks_executed;
        self.host_generated += other.host_generated;
        self.host_retired += other.host_retired;
    }
}

impl fmt::Display for Metrics {
    /// Human-readable run summary (the `--stats` table).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  guest retired   {:>12}", self.guest_retired)?;
        writeln!(
            f,
            "  rule covered    {:>12}  ({:.1}%)",
            self.rule_covered,
            self.coverage() * 100.0
        )?;
        writeln!(
            f,
            "  host executed   {:>12}  ({:.2}x)",
            self.host_executed(),
            self.total_ratio()
        )?;
        for (name, class) in [
            ("rule core", CodeClass::RuleCore),
            ("qemu core", CodeClass::QemuCore),
            ("data transfer", CodeClass::DataTransfer),
            ("control", CodeClass::Control),
        ] {
            writeln!(
                f,
                "    {:<13} {:>12}  ({:.2}x)",
                name,
                self.host_by_class[class.index()],
                self.ratio(class)
            )?;
        }
        writeln!(
            f,
            "  blocks          {:>12}  translated, {} executed",
            self.blocks_translated, self.blocks_executed
        )?;
        write!(f, "  host generated  {:>12}", self.host_generated)
    }
}

/// Aggregated observability state for an engine's lifetime: per-rule
/// attribution counters and the timing/shape histograms behind the
/// `pdbt stats` table and the JSON run report.
#[derive(Debug, Clone)]
pub struct RunObs {
    /// Per-rule static hits, dynamic coverage attribution and lookup
    /// misses.
    pub rules: RuleCounters,
    /// Per-block translation latency in nanoseconds. Stays empty when
    /// the `obs` feature is disabled (no clock).
    pub translate_ns: Histogram,
    /// Executed host instructions per block execution.
    pub block_host_len: Histogram,
    /// Flag-delegation look-ahead depth per conditional-exit block
    /// execution; the catch-all bucket counts environment fallbacks.
    pub deleg_depth: Histogram,
    /// Per-shard code-cache hits and misses.
    pub cache: ShardCounters,
    /// Prewarm pool task distribution per worker slot.
    pub pool: PoolCounters,
    /// Dispatch hot-path counters: jump cache, chaining, traces.
    pub dispatch: DispatchCounters,
}

impl Default for RunObs {
    fn default() -> RunObs {
        RunObs {
            rules: RuleCounters::new(),
            translate_ns: Histogram::latency_ns(),
            block_host_len: Histogram::block_len(),
            deleg_depth: Histogram::deleg_depth(),
            cache: ShardCounters::new(),
            pool: PoolCounters::new(),
            dispatch: DispatchCounters::new(),
        }
    }
}

impl RunObs {
    /// Folds another run's observability state into this one.
    pub fn merge(&mut self, other: &RunObs) {
        self.rules.merge(&other.rules);
        self.translate_ns.merge(&other.translate_ns);
        self.block_host_len.merge(&other.block_host_len);
        self.deleg_depth.merge(&other.deleg_depth);
        self.cache.merge(&other.cache);
        self.pool.merge(&other.pool);
        self.dispatch.merge(&other.dispatch);
    }
}

fn hist_json(h: &Histogram) -> Json {
    h.to_json()
}

/// How a run ended. Anything other than [`Outcome::Completed`] means
/// the [`Report`] is *partial*: the metrics, output and observability
/// state cover everything that ran up to the stop point.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum Outcome {
    /// The guest halted normally.
    #[default]
    Completed,
    /// The guest instruction budget ran out.
    Budget,
    /// The wall-clock deadline ([`RunSetup::deadline`]) passed.
    Deadline,
    /// Guest or host execution faulted.
    Exec(ExecError),
}

impl Outcome {
    /// Stable machine-readable label for the report JSON.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Completed => "completed",
            Outcome::Budget => "budget",
            Outcome::Deadline => "deadline",
            Outcome::Exec(_) => "exec",
        }
    }
}

/// Degraded-mode counters for one run: how often the engine fell back
/// instead of failing, plus the fault-injection snapshot. All zeros in
/// a healthy, fault-free run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Resilience {
    /// Blocks that failed to translate and were interpreted instead.
    pub degraded_blocks: u64,
    /// Guest instructions retired on the interpreter fallback (a subset
    /// of `Metrics::guest_retired`).
    pub interpreted_guest: u64,
    /// Rule-store entries quarantined by salvage loading
    /// (`load_rules_salvage`); folded in by the CLI via
    /// [`Engine::resilience_mut`].
    pub quarantined_rules: u64,
    /// Derivation candidates quarantined by panic isolation
    /// (`DeriveStats::quarantined`); folded in by the CLI.
    pub quarantined_combos: u64,
    /// Verifications that ran out of fuel (`DeriveStats::fuel_exhausted`);
    /// folded in by the CLI.
    pub fuel_exhausted: u64,
    /// Per-site injected fault counts ([`pdbt_faults::injected`]),
    /// snapshotted when the report is built. All zeros unless a fault
    /// plan is active.
    pub injected: [u64; pdbt_faults::SITE_COUNT],
}

impl Resilience {
    /// Folds another run's counters into this one (suite aggregation).
    /// The injected-fault snapshot is process-wide, so it is maxed, not
    /// summed.
    pub fn merge(&mut self, other: &Resilience) {
        self.degraded_blocks += other.degraded_blocks;
        self.interpreted_guest += other.interpreted_guest;
        self.quarantined_rules += other.quarantined_rules;
        self.quarantined_combos += other.quarantined_combos;
        self.fuel_exhausted += other.fuel_exhausted;
        for (a, b) in self.injected.iter_mut().zip(&other.injected) {
            *a = (*a).max(*b);
        }
    }
}

/// The result of one run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Run metrics.
    pub metrics: Metrics,
    /// The guest's observable output stream.
    pub output: Vec<u32>,
    /// Observability snapshot: per-rule attribution and histograms.
    pub obs: RunObs,
    /// How the run ended; anything but `Completed` marks the rest of
    /// the report as partial.
    pub outcome: Outcome,
    /// Degraded-mode counters.
    pub resilience: Resilience,
    /// Server-lifetime shared-translation counters, snapshotted when
    /// the report was built. For a standalone engine this describes its
    /// own private state (`sessions: 1`, `hits: 0`); under `pdbt serve`
    /// it shows the cross-session sharing this run benefited from. The
    /// snapshot point is wall-clock-dependent under concurrency, so
    /// determinism comparisons strip this section (like
    /// `histograms.translate_ns`).
    pub server: ServerSnapshot,
    /// Serving-plane telemetry snapshot (request latency histograms and
    /// the flight-recorder tail) from the same shared state, taken at
    /// the same point as `server`. Reported inside the `server` JSON
    /// section, so it is stripped by the same determinism discipline.
    pub telemetry: TelemetrySnapshot,
    /// Translation-artifact counters of the shared state: what a
    /// sealed artifact contributed at boot and how often the loaded
    /// superblock library was hit. All-zero for a cold state. Reported
    /// inside the `server` JSON section (stripped with it).
    pub artifact: ArtifactSnapshot,
    /// Name of the host backend that executed the run (`"model"` or
    /// `"threaded"`; empty on a default-constructed report). Reported
    /// as `dispatch.backend`.
    pub backend: &'static str,
}

impl Report {
    /// The machine-readable run report (`pdbt run --report-json`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let m = &self.metrics;
        let r = &self.resilience;
        Json::obj([
            ("outcome", Json::str(self.outcome.label())),
            (
                "metrics",
                Json::obj([
                    ("guest_retired", Json::from(m.guest_retired)),
                    ("rule_covered", Json::from(m.rule_covered)),
                    ("coverage", Json::from(m.coverage())),
                    ("host_executed", Json::from(m.host_executed())),
                    ("host_retired", Json::from(m.host_retired)),
                    ("total_ratio", Json::from(m.total_ratio())),
                    (
                        "host_by_class",
                        Json::obj([
                            (
                                "rule_core",
                                Json::from(m.host_by_class[CodeClass::RuleCore.index()]),
                            ),
                            (
                                "qemu_core",
                                Json::from(m.host_by_class[CodeClass::QemuCore.index()]),
                            ),
                            (
                                "data_transfer",
                                Json::from(m.host_by_class[CodeClass::DataTransfer.index()]),
                            ),
                            (
                                "control",
                                Json::from(m.host_by_class[CodeClass::Control.index()]),
                            ),
                        ]),
                    ),
                    ("blocks_translated", Json::from(m.blocks_translated)),
                    ("blocks_executed", Json::from(m.blocks_executed)),
                    ("host_generated", Json::from(m.host_generated)),
                ]),
            ),
            (
                "rules",
                Json::arr(self.obs.rules.rows_by_coverage().into_iter().map(|r| {
                    Json::obj([
                        ("label", Json::str(&r.label)),
                        ("subgroup", Json::str(&r.subgroup)),
                        ("static_hits", Json::from(r.static_hits)),
                        ("dyn_covered", Json::from(r.dyn_covered)),
                    ])
                })),
            ),
            (
                "lookup_misses",
                Json::arr(self.obs.rules.misses().into_iter().map(|(label, n)| {
                    Json::obj([("label", Json::str(label)), ("count", Json::from(n))])
                })),
            ),
            (
                "coverage_by_subgroup",
                Json::arr(
                    self.obs
                        .rules
                        .coverage_by_subgroup()
                        .into_iter()
                        .map(|(sg, n)| {
                            Json::obj([("subgroup", Json::str(sg)), ("dyn_covered", Json::from(n))])
                        }),
                ),
            ),
            (
                "histograms",
                Json::obj([
                    ("translate_ns", hist_json(&self.obs.translate_ns)),
                    ("block_host_len", hist_json(&self.obs.block_host_len)),
                    ("deleg_depth", hist_json(&self.obs.deleg_depth)),
                ]),
            ),
            (
                "cache",
                Json::obj([
                    ("shards", Json::from(self.obs.cache.shards() as u64)),
                    (
                        "hits",
                        Json::arr(self.obs.cache.hits().iter().map(|&n| Json::from(n))),
                    ),
                    (
                        "misses",
                        Json::arr(self.obs.cache.misses().iter().map(|&n| Json::from(n))),
                    ),
                    ("total_hits", Json::from(self.obs.cache.total_hits())),
                    ("total_misses", Json::from(self.obs.cache.total_misses())),
                    ("hit_rate", Json::from(self.obs.cache.hit_rate())),
                ]),
            ),
            (
                "pool",
                Json::obj([
                    ("workers", Json::from(self.obs.pool.workers() as u64)),
                    (
                        "tasks",
                        Json::arr(self.obs.pool.tasks().iter().map(|&n| Json::from(n))),
                    ),
                    ("total", Json::from(self.obs.pool.total())),
                ]),
            ),
            (
                "dispatch",
                Json::obj([
                    ("backend", Json::str(self.backend)),
                    (
                        "compiled_blocks",
                        Json::from(self.obs.dispatch.compiled_blocks),
                    ),
                    // Wall-clock; determinism comparisons strip this
                    // field (like `histograms.translate_ns`).
                    ("compile_ns", Json::from(self.obs.dispatch.compile_ns)),
                    (
                        "jump_cache_hits",
                        Json::from(self.obs.dispatch.jump_cache_hits),
                    ),
                    (
                        "jump_cache_misses",
                        Json::from(self.obs.dispatch.jump_cache_misses),
                    ),
                    (
                        "chain_followed",
                        Json::from(self.obs.dispatch.chain_followed),
                    ),
                    (
                        "links_resolved",
                        Json::from(self.obs.dispatch.links_resolved),
                    ),
                    ("traces_formed", Json::from(self.obs.dispatch.traces_formed)),
                    ("trace_execs", Json::from(self.obs.dispatch.trace_execs)),
                    ("invalidations", Json::from(self.obs.dispatch.invalidations)),
                ]),
            ),
            (
                "server",
                Json::obj([
                    ("probes", Json::from(self.server.probes)),
                    ("inserted", Json::from(self.server.inserted)),
                    ("hits", Json::from(self.server.hits)),
                    ("translate_calls", Json::from(self.server.translate_calls)),
                    ("sessions", Json::from(self.server.sessions)),
                    ("compiled_blocks", Json::from(self.server.compiled_blocks)),
                    ("hit_rate", Json::from(self.server.hit_rate())),
                    (
                        "artifact",
                        Json::obj([
                            ("loaded_blocks", Json::from(self.artifact.loaded_blocks)),
                            ("loaded_traces", Json::from(self.artifact.loaded_traces)),
                            ("loaded_rules", Json::from(self.artifact.loaded_rules)),
                            (
                                "quarantined_sections",
                                Json::from(self.artifact.quarantined_sections),
                            ),
                            ("trace_hits", Json::from(self.artifact.trace_hits)),
                            ("warm", Json::from(self.artifact.warm())),
                        ]),
                    ),
                    ("latency", self.telemetry.latency.to_json()),
                    (
                        "flight",
                        Json::arr(self.telemetry.flight.iter().map(|s| s.to_json())),
                    ),
                    // A standalone engine sees exactly one partition:
                    // the shared state it ran against. `pdbt serve`
                    // exposes the full multi-image view through the
                    // same shape in its STATS payload.
                    (
                        "partitions",
                        Json::arr([Json::obj([
                            (
                                "partition",
                                Json::str(format!("{:016x}", self.telemetry.partition)),
                            ),
                            ("sessions", Json::from(self.server.sessions)),
                            ("probes", Json::from(self.server.probes)),
                            ("inserted", Json::from(self.server.inserted)),
                            ("hits", Json::from(self.server.hits)),
                            ("compiled_blocks", Json::from(self.server.compiled_blocks)),
                            ("hit_rate", Json::from(self.server.hit_rate())),
                            (
                                "latency",
                                Json::obj([
                                    (
                                        "count",
                                        Json::from(self.telemetry.latency.request_ns.count()),
                                    ),
                                    ("p50", Json::from(self.telemetry.latency.request_ns.p50())),
                                    ("p95", Json::from(self.telemetry.latency.request_ns.p95())),
                                    ("p99", Json::from(self.telemetry.latency.request_ns.p99())),
                                ]),
                            ),
                        ])]),
                    ),
                ]),
            ),
            (
                "resilience",
                Json::obj([
                    ("degraded_blocks", Json::from(r.degraded_blocks)),
                    ("interpreted_guest", Json::from(r.interpreted_guest)),
                    ("quarantined_rules", Json::from(r.quarantined_rules)),
                    ("quarantined_combos", Json::from(r.quarantined_combos)),
                    ("fuel_exhausted", Json::from(r.fuel_exhausted)),
                    (
                        "injected",
                        Json::obj(
                            pdbt_faults::Site::ALL
                                .iter()
                                .map(|s| (s.name(), Json::from(r.injected[s.index()]))),
                        ),
                    ),
                ]),
            ),
            (
                "output",
                Json::arr(self.output.iter().map(|&w| Json::from(u64::from(w)))),
            ),
        ])
    }
}

/// A runtime failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Translation failed.
    Translate(TranslateError),
    /// Host execution failed.
    Exec(ExecError),
    /// The guest instruction budget was exhausted.
    Budget,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Translate(e) => write!(f, "{e}"),
            EngineError::Exec(e) => write!(f, "execution error: {e}"),
            EngineError::Budget => f.write_str("guest instruction budget exhausted"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<TranslateError> for EngineError {
    fn from(e: TranslateError) -> EngineError {
        EngineError::Translate(e)
    }
}

impl From<ExecError> for EngineError {
    fn from(e: ExecError) -> EngineError {
        EngineError::Exec(e)
    }
}

/// Discovers every statically reachable block start from the program
/// entry by following direct branch and fall-through edges. Indirect
/// transfers (returns, computed jumps) contribute no static successors;
/// the dispatcher translates those targets lazily when execution
/// reaches them. The result is sorted (and so deterministic).
fn discover_block_starts(prog: &Program, max_block: usize) -> Vec<Addr> {
    use std::collections::BTreeSet;
    let mut seen: BTreeSet<Addr> = BTreeSet::new();
    let mut frontier = vec![prog.base()];
    while let Some(pc) = frontier.pop() {
        if !seen.insert(pc) {
            continue;
        }
        let Ok(insts) = collect_block(prog, pc, max_block) else {
            continue;
        };
        let (last_addr, last) = *insts.last().expect("non-empty block");
        let fall = pc + insts.len() as u32 * INST_SIZE;
        match last.op {
            pdbt_isa_arm::Op::B | pdbt_isa_arm::Op::Bl => {
                let Operand::Target(d) = last.operands[0] else {
                    unreachable!()
                };
                frontier.push(last_addr.wrapping_add(d as u32));
                if last.op == pdbt_isa_arm::Op::Bl || last.cond != Cond::Al {
                    frontier.push(fall);
                }
            }
            pdbt_isa_arm::Op::Svc if last.operands[0].as_imm() == Some(0) => {}
            _ if last.is_branch() => {}
            // Max-length block: falls through.
            _ => frontier.push(fall),
        }
    }
    seen.into_iter()
        .filter(|pc| prog.fetch(*pc).is_ok())
        .collect()
}

/// Host-instruction budget for a single block execution, derived from
/// the remaining *guest* budget: a block is allowed a generous host
/// ratio over the guest instructions it may still retire, plus slack —
/// so a tight `max_guest` cannot be overshot by a runaway host block
/// spinning toward a flat 1M-instruction ceiling (the old hardcoded
/// budget, kept as the upper clamp so effectively unlimited guest
/// budgets behave exactly as before). Deterministic: derived from
/// counters only, never the clock.
fn host_block_budget(max_guest: u64, retired: u64, guest_len: u32, code_len: usize) -> u64 {
    /// Host instructions allowed per remaining guest instruction — far
    /// above any legitimate translation's ratio (Table II measures
    /// single digits), so only runaway blocks hit it.
    const RATIO: u64 = 64;
    /// Flat slack so a tiny remainder still runs one full normal block.
    const SLACK: u64 = 256;
    /// The historical flat per-block budget, now the upper clamp.
    const CEILING: u64 = 1_000_000;
    let remaining = max_guest
        .saturating_sub(retired)
        .max(u64::from(guest_len.max(1)));
    remaining
        .saturating_mul(RATIO)
        .saturating_add(SLACK)
        .max(code_len as u64 + 1)
        .min(CEILING)
}

/// Direct-mapped jump cache size (power of two). At ~16 bytes a slot
/// this is a few KiB — small enough to stay cache-resident, large
/// enough that the workloads' working sets don't thrash it.
const JC_SIZE: usize = 1024;

/// One jump-cache slot: the full pc (distinct pcs alias a slot) plus
/// the cached block.
type JumpSlot = Option<(Addr, Arc<CachedBlock>)>;

/// The jump-cache slot an address maps to. Block starts are
/// word-aligned, so the two always-zero bits are dropped (same trick as
/// [`ShardedCache::shard_of`]).
fn jc_slot(pc: Addr) -> usize {
    ((pc >> 2) as usize) & (JC_SIZE - 1)
}

/// Mutable dispatch-fast-path state: the direct-mapped jump cache, the
/// superblock table, and the invalidation epoch. All single-threaded —
/// only the dispatcher touches it.
#[derive(Debug)]
struct DispatchState {
    /// Direct-mapped `pc → block` cache probed before the sharded
    /// cache: one array index, no hashing, no locks. A slot holds the
    /// full key because distinct pcs alias the same slot.
    jump_cache: Box<[JumpSlot]>,
    /// Current invalidation epoch; chain links resolved under an older
    /// epoch are stale and re-resolve.
    epoch: u32,
    /// Hot-trace superblocks keyed by head pc. Preferred over the
    /// per-block cache by the dispatcher once formed.
    traces: HashMap<Addr, Arc<CachedBlock>>,
    /// Heads a trace formation was already attempted for (successful or
    /// not) — each head is tried once.
    trace_attempted: HashSet<Addr>,
    /// Blocks that degraded to the interpreter (translation fault):
    /// never chained through, and traces containing them are dropped.
    poisoned: HashSet<Addr>,
}

impl Default for DispatchState {
    fn default() -> DispatchState {
        DispatchState {
            jump_cache: (0..JC_SIZE).map(|_| None).collect(),
            epoch: 0,
            traces: HashMap::new(),
            trace_attempted: HashSet::new(),
            poisoned: HashSet::new(),
        }
    }
}

/// The dynamic binary translator: one *session* over a (possibly
/// shared) translation state.
///
/// The engine no longer owns its rule set or code cache — those live in
/// an [`SharedTranslationState`] it holds behind an `Arc`, so `pdbt
/// serve` can run many concurrent sessions against one warm cache.
/// Everything mutable — metrics, report counters, the jump cache, chain
/// links, superblocks — is session-private: a session folds a shared
/// translation's static footprint (blocks translated, host generated,
/// attribution, lookup misses) into its own counters at first
/// session-local sight, which keeps its report bit-identical to a cold
/// single-engine run while the translation work is shared.
#[derive(Debug)]
pub struct Engine {
    shared: Arc<SharedTranslationState>,
    cfg: EngineConfig,
    /// The session block table: this session's adopted view (chain
    /// links, hotness, interned attribution ids) of each shared
    /// translation, keyed by guest pc.
    session: HashMap<Addr, Arc<CachedBlock>>,
    metrics: Metrics,
    obs: RunObs,
    resilience: Resilience,
    dispatch: DispatchState,
}

impl Engine {
    /// Creates a standalone engine owning a private translation state.
    /// `rules = None` is the pure QEMU-path baseline.
    #[must_use]
    pub fn new(rules: Option<RuleSet>, cfg: EngineConfig) -> Engine {
        let shards = cfg.cache_shards;
        Engine::with_shared(Arc::new(SharedTranslationState::new(rules, shards)), cfg)
    }

    /// Creates a session engine over an existing shared translation
    /// state (the `pdbt serve` path). `cfg.cache_shards` is ignored —
    /// the shared cache already has its geometry. `cfg.jobs` is
    /// normalized to the effective worker count (`0` would be clamped
    /// to 1 by the pool anyway, and the report must say what actually
    /// ran).
    #[must_use]
    pub fn with_shared(shared: Arc<SharedTranslationState>, mut cfg: EngineConfig) -> Engine {
        cfg.jobs = cfg.jobs.max(1);
        let obs = RunObs {
            cache: ShardCounters::with_shards(shared.cache().shard_count()),
            pool: PoolCounters::with_workers(cfg.jobs),
            ..RunObs::default()
        };
        shared.server().record_session();
        Engine {
            shared,
            cfg,
            session: HashMap::new(),
            metrics: Metrics::default(),
            obs,
            resilience: Resilience::default(),
            dispatch: DispatchState::default(),
        }
    }

    /// The accumulated metrics.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The accumulated observability state.
    #[must_use]
    pub fn obs(&self) -> &RunObs {
        &self.obs
    }

    /// The (shared) code cache.
    #[must_use]
    pub fn cache(&self) -> &ShardedCache {
        self.shared.cache()
    }

    /// The shared translation state this session runs against.
    #[must_use]
    pub fn shared(&self) -> &Arc<SharedTranslationState> {
        &self.shared
    }

    /// The accumulated degraded-mode counters.
    #[must_use]
    pub fn resilience(&self) -> &Resilience {
        &self.resilience
    }

    /// Mutable degraded-mode counters, so the pipeline driver can fold
    /// in counts produced outside the engine (salvage loading,
    /// derivation quarantines).
    pub fn resilience_mut(&mut self) -> &mut Resilience {
        &mut self.resilience
    }

    /// Clears the session state (block table, metrics, observability,
    /// dispatch fast path) *and* the shared code cache. Meant for
    /// exclusively owned engines — a serve session never resets; the
    /// server's warm cache outlives every session.
    pub fn reset(&mut self) {
        self.shared.cache().clear();
        self.session.clear();
        self.metrics = Metrics::default();
        self.obs = RunObs::default();
        self.obs.cache = ShardCounters::with_shards(self.shared.cache().shard_count());
        self.obs.pool = PoolCounters::with_workers(self.cfg.jobs);
        self.resilience = Resilience::default();
        self.dispatch = DispatchState::default();
    }

    /// Adopts a shared translation into this session at first
    /// session-local sight: folds its static footprint — block/host
    /// counts, attribution interning and static hits, lookup misses —
    /// into the session counters and wraps it with fresh per-session
    /// dispatch state. The fold happens whether or not *this* session
    /// produced the translation; that is the invariant that keeps a
    /// warm-cache session's report bit-identical to a cold run.
    fn adopt(&mut self, pc: Addr, block: Arc<TranslatedBlock>) -> Arc<CachedBlock> {
        self.metrics.blocks_translated += 1;
        self.metrics.host_generated += block.code.len() as u64;
        // Intern this block's rule attributions once; executions only
        // bump dense counters.
        let attr_ids: Vec<(RuleId, u32)> = block
            .attributions
            .iter()
            .map(|a| {
                let id = self.obs.rules.intern(&a.label, &a.subgroup);
                self.obs.rules.hit(id, 1);
                (id, a.covered)
            })
            .collect();
        for miss in &block.lookup_misses {
            self.obs.rules.miss(miss);
        }
        let cached = Arc::new(CachedBlock::new(block, attr_ids));
        self.session.insert(pc, cached.clone());
        cached
    }

    /// Resolves the block at `pc` for this session: session block
    /// table, then the shared cache, then the translator. The shard
    /// hit/miss counters record *session-local* sights (hit = seen
    /// before in this session), so they are identical for a cold and a
    /// warm shared cache; the cross-session sharing shows up only in
    /// the server-lifetime counters.
    fn block(&mut self, prog: &Program, pc: Addr) -> Result<Arc<CachedBlock>, EngineError> {
        // Fault site `cache`: keyed by pc so the same blocks fail on
        // every run with the same plan, cached or not. `run` degrades a
        // translation failure to the interpreter, so this exercises the
        // per-block fallback path.
        if pdbt_faults::hit(pdbt_faults::Site::Cache, u64::from(pc)) {
            return Err(EngineError::Translate(TranslateError {
                detail: format!("injected fault: cache/translation failed at {pc:#x}"),
            }));
        }
        let shard = self.shared.cache().shard_of(pc);
        if let Some(cached) = self.session.get(&pc) {
            self.obs.cache.record_hit(shard);
            return Ok(cached.clone());
        }
        self.obs.cache.record_miss(shard);
        let translation = match self.shared.cache().get(pc) {
            Some(t) => t,
            None => {
                let t0 = pdbt_obs::now_ns();
                let block = translate_block(prog, pc, self.shared.rules(), &self.cfg.translate)?;
                if pdbt_obs::ENABLED {
                    self.obs
                        .translate_ns
                        .record(pdbt_obs::now_ns().saturating_sub(t0));
                }
                self.shared.server().record_translate();
                let (t, new) = self.shared.cache().insert(pc, block);
                if new {
                    self.shared.server().record_insert();
                }
                t
            }
        };
        // One probe per distinct pc per session, counted only for
        // successful resolutions — so the server counters stay
        // schedule-independent (see `ServerCounters`).
        self.shared.server().record_probe();
        Ok(self.adopt(pc, translation))
    }

    /// Whether executing `b` in full keeps the run within the guest
    /// budget. Plain blocks always qualify — the dispatcher's per-block
    /// budget check already ran, and a partial final block is fine
    /// (matches the unchained engine). Superblocks retire in member
    /// granularity, so they only run when the *whole* trace fits: that
    /// implies every intermediate per-member budget check of the
    /// unchained engine would have passed, keeping `guest_retired`
    /// identical. Otherwise the dispatcher falls back to plain blocks.
    fn budget_ok(b: &CachedBlock, retired: u64, max_guest: u64) -> bool {
        b.block.member_marks.is_empty() || retired + u64::from(b.block.guest_len) <= max_guest
    }

    /// The dispatcher's slow path: superblock table (budget allowing),
    /// then the sharded cache / translator.
    fn resolve_slow(
        &mut self,
        prog: &Program,
        pc: Addr,
        retired: u64,
        max_guest: u64,
    ) -> Result<Arc<CachedBlock>, EngineError> {
        if self.cfg.traces {
            if let Some(t) = self.dispatch.traces.get(&pc) {
                if Self::budget_ok(t, retired, max_guest) {
                    return Ok(t.clone());
                }
            }
        }
        self.block(prog, pc)
    }

    /// Resolves the block to execute at `pc`: the direct-mapped jump
    /// cache first (hash-free, lock-free), then the slow path. The jump
    /// cache is refilled on miss — except when the slow path had to
    /// bypass a budget-blocked superblock, which must not evict the
    /// trace's jump-cache entry semantics (the plain block is a
    /// one-off near the budget edge).
    fn resolve_entry(
        &mut self,
        prog: &Program,
        pc: Addr,
        retired: u64,
        max_guest: u64,
    ) -> Result<Arc<CachedBlock>, EngineError> {
        if !self.cfg.chaining {
            return self.resolve_slow(prog, pc, retired, max_guest);
        }
        let slot = jc_slot(pc);
        if let Some((key, b)) = &self.dispatch.jump_cache[slot] {
            if *key == pc && Self::budget_ok(b, retired, max_guest) {
                self.obs.dispatch.jump_cache_hits += 1;
                return Ok(b.clone());
            }
        }
        self.obs.dispatch.jump_cache_misses += 1;
        let b = self.resolve_slow(prog, pc, retired, max_guest)?;
        let bypassed_trace = b.block.member_marks.is_empty()
            && self.cfg.traces
            && self.dispatch.traces.contains_key(&pc);
        if !bypassed_trace {
            self.dispatch.jump_cache[slot] = Some((pc, b.clone()));
        }
        Ok(b)
    }

    /// Follows (resolving lazily) the chain link of `cur` for the
    /// observed exit to `next`. Returns `None` when the edge is not a
    /// direct-branch successor, resolution fails (the dispatcher's
    /// degradation path handles it), or the budget guard rejects a
    /// superblock — the caller re-enters the dispatcher.
    fn follow_link(
        &mut self,
        prog: &Program,
        cur: &CachedBlock,
        next: Addr,
        retired: u64,
        max_guest: u64,
    ) -> Option<Arc<CachedBlock>> {
        let slot = match cur.block.succ {
            BlockSuccs::One(t) if t == next => &cur.links.taken,
            BlockSuccs::Two { taken, .. } if taken == next => {
                cur.taken_count.fetch_add(1, Ordering::Relaxed);
                &cur.links.taken
            }
            BlockSuccs::Two { fall, .. } if fall == next => {
                cur.fall_count.fetch_add(1, Ordering::Relaxed);
                &cur.links.fall
            }
            _ => return None,
        };
        {
            let guard = slot.lock().expect("link poisoned");
            if guard.epoch == self.dispatch.epoch {
                if let Some(target) = guard.target.as_ref().and_then(std::sync::Weak::upgrade) {
                    if !Self::budget_ok(&target, retired, max_guest) {
                        return None;
                    }
                    self.obs.dispatch.chain_followed += 1;
                    return Some(target);
                }
            }
        }
        // Stale or unresolved: resolve through the dispatcher's slow
        // path and install the link. Resolution failure (an injected
        // translation fault) leaves the link empty; the dispatcher's
        // own attempt at `next` handles degradation.
        let resolved = self.resolve_slow(prog, next, retired, max_guest).ok()?;
        let mut guard = slot.lock().expect("link poisoned");
        guard.epoch = self.dispatch.epoch;
        guard.target = Some(Arc::downgrade(&resolved));
        self.obs.dispatch.links_resolved += 1;
        drop(guard);
        if !Self::budget_ok(&resolved, retired, max_guest) {
            return None;
        }
        self.obs.dispatch.chain_followed += 1;
        Some(resolved)
    }

    /// Attempts to promote the hot chain headed at `head` into a
    /// superblock: walks the static successor links (picking the hotter
    /// edge of conditionals), retranslates the member sequence as one
    /// trace, and installs it in the trace table. Each head is
    /// attempted once; failures (short chains, indirect exits,
    /// unsupported shapes) are permanent no-ops.
    fn form_trace(&mut self, prog: &Program, head: &Arc<CachedBlock>) {
        const MAX_MEMBERS: usize = 8;
        let head_pc = head.block.start;
        self.dispatch.trace_attempted.insert(head_pc);
        let mut members = vec![head_pc];
        let mut cur = head.clone();
        while members.len() < MAX_MEMBERS {
            let next = match cur.block.succ {
                BlockSuccs::One(t) => t,
                BlockSuccs::Two { taken, fall } => {
                    let t = cur.taken_count.load(Ordering::Relaxed);
                    let f = cur.fall_count.load(Ordering::Relaxed);
                    if t >= f {
                        taken
                    } else {
                        fall
                    }
                }
                BlockSuccs::None => break,
            };
            // Loop closure: stop extending when the trace would revisit
            // a member (the backedge exits to the trace head, which the
            // jump cache catches).
            if members.contains(&next) || self.dispatch.poisoned.contains(&next) {
                break;
            }
            let Ok(b) = self.block(prog, next) else { break };
            members.push(next);
            cur = b;
        }
        if members.len() < 2 {
            return;
        }
        // The boot artifact's superblock library is consulted *after*
        // member selection: on an exact member-list match the stored
        // translation is reused (translation is deterministic, so it
        // equals what `translate_trace` would produce and the stripped
        // report stays bit-identical to a cold run); any other member
        // choice simply misses and retranslates.
        let tb = match self.shared.library_trace(&members) {
            Some(t) => {
                self.shared.artifact().record_trace_hit();
                t
            }
            None => {
                let Ok(tb) =
                    translate_trace(prog, &members, self.shared.rules(), &self.cfg.translate)
                else {
                    return;
                };
                Arc::new(tb)
            }
        };
        // Intern attribution ids only — no static `hit` and no miss
        // recording: the members' own translations already counted
        // them, and a superblock must not perturb the static rule
        // counters relative to the unchained engine. Superblocks are
        // session-local (member choice follows session edge counters),
        // so the trace translation stays out of the shared cache.
        let attr_ids: Vec<(RuleId, u32)> = tb
            .attributions
            .iter()
            .map(|a| (self.obs.rules.intern(&a.label, &a.subgroup), a.covered))
            .collect();
        self.dispatch
            .traces
            .insert(head_pc, Arc::new(CachedBlock::new(tb, attr_ids)));
        self.obs.dispatch.traces_formed += 1;
        // Links into the old head block must re-route through the
        // dispatcher to pick the trace up.
        self.bump_epoch();
    }

    /// Advances the invalidation epoch: every chain link goes stale at
    /// once and the jump cache empties.
    fn bump_epoch(&mut self) {
        self.dispatch.epoch = self.dispatch.epoch.wrapping_add(1);
        self.dispatch.jump_cache.iter_mut().for_each(|s| *s = None);
        self.obs.dispatch.invalidations += 1;
    }

    /// Scoped invalidation when the block at `pc` degrades to the
    /// interpreter: drop only the superblocks actually containing it,
    /// scrub only the jump-cache slots holding it (or a dropped trace),
    /// stale only the chain links whose successor is `pc`, and bar it
    /// from future traces. Unrelated chains, traces and jump-cache
    /// entries survive — a poisoned pc in one corner of the program (or
    /// one session of a shared server) must not cold-start everything
    /// else. Links *into* a dropped trace self-stale without an epoch
    /// bump: the trace table and jump cache held the only strong
    /// references, so the links' weak upgrades fail and the next follow
    /// re-resolves through the dispatcher.
    fn invalidate_for(&mut self, pc: Addr) {
        if !(self.cfg.chaining || self.cfg.traces) || !self.dispatch.poisoned.insert(pc) {
            return;
        }
        let dropped: Vec<Addr> = self
            .dispatch
            .traces
            .iter()
            .filter(|(_, t)| t.block.member_marks.iter().any(|m| m.start == pc))
            .map(|(head, _)| *head)
            .collect();
        for head in &dropped {
            self.dispatch.traces.remove(head);
        }
        for slot in self.dispatch.jump_cache.iter_mut() {
            if let Some((key, _)) = slot {
                if *key == pc || dropped.contains(key) {
                    *slot = None;
                }
            }
        }
        // The poisoned pc's plain block is still strongly held by the
        // session table, so links targeting it are cleared explicitly:
        // the next follow goes through the dispatcher and its fault
        // check.
        for b in self.session.values() {
            let targets_pc = match b.block.succ {
                BlockSuccs::One(t) => t == pc,
                BlockSuccs::Two { taken, fall } => taken == pc || fall == pc,
                BlockSuccs::None => false,
            };
            if targets_pc {
                b.links.taken.lock().expect("link poisoned").target = None;
                b.links.fall.lock().expect("link poisoned").target = None;
            }
        }
        self.obs.dispatch.invalidations += 1;
    }

    /// Adopts every statically reachable block up front, fanning the
    /// translation work across [`EngineConfig::jobs`] workers. Returns
    /// the number of blocks newly adopted into the session.
    ///
    /// Discovery is a serial walk of the static CFG, workers fetch from
    /// the shared cache or translate independently (translation is
    /// pure) and publish through the deduplicating insert, and the fold
    /// into the session counters runs serially in address order — so
    /// the session state after a prewarm does not depend on the worker
    /// count, on scheduling, or on how warm the shared cache already
    /// was. Blocks that fail to translate are skipped; the run path
    /// surfaces the error if execution actually reaches them.
    pub fn prewarm(&mut self, prog: &Program) -> usize {
        let pool = Pool::new(self.cfg.jobs);
        let _span = pdbt_obs::span_with("prewarm", || format!("jobs={}", pool.jobs()));
        let todo: Vec<Addr> = discover_block_starts(prog, self.cfg.translate.max_block)
            .into_iter()
            .filter(|pc| !self.session.contains_key(pc))
            .collect();
        let shared = Arc::clone(&self.shared);
        let tcfg = self.cfg.translate;
        let (resolved, util) = pool.map_util(&todo, |pc| {
            if let Some(t) = shared.cache().get(*pc) {
                return (Some(t), None);
            }
            let t0 = pdbt_obs::now_ns();
            match translate_block(prog, *pc, shared.rules(), &tcfg) {
                Ok(block) => {
                    let ns = pdbt_obs::now_ns().saturating_sub(t0);
                    shared.server().record_translate();
                    let (t, new) = shared.cache().insert(*pc, block);
                    if new {
                        shared.server().record_insert();
                    }
                    (Some(t), Some(ns))
                }
                Err(_) => (None, None),
            }
        });
        self.obs.pool.record(&util);
        let mut cached = 0usize;
        for (pc, (translation, ns)) in todo.into_iter().zip(resolved) {
            let Some(translation) = translation else {
                continue;
            };
            if pdbt_obs::ENABLED {
                if let Some(ns) = ns {
                    self.obs.translate_ns.record(ns);
                }
            }
            self.shared.server().record_probe();
            self.adopt(pc, translation);
            cached += 1;
        }
        cached
    }

    /// Runs a guest program under the DBT.
    ///
    /// Runtime failures degrade instead of erroring: a block that fails
    /// to translate is interpreted ([`Resilience::degraded_blocks`]),
    /// and budget exhaustion or an execution fault ends the run with a
    /// *partial* [`Report`] whose [`Report::outcome`] says why — the
    /// metrics and observability state accumulated so far are never
    /// dropped.
    ///
    /// # Errors
    ///
    /// [`EngineError`] only on setup failures (mapping or seeding the
    /// environment), before any guest instruction runs.
    pub fn run(&mut self, prog: &Program, setup: &RunSetup) -> Result<Report, EngineError> {
        let run_start_ns = pdbt_obs::now_ns();
        let translate_ns_before = self.obs.translate_ns.sum();
        if self.cfg.jobs > 1 {
            self.prewarm(prog);
        }
        let mut host = HostCpu::new();
        // The environment block.
        host.mem.map(ENV_BASE, env::ENV_SIZE);
        host.write(HReg::Ebp, ENV_BASE);
        // Identity-map guest memory.
        for (base, size) in &setup.maps {
            host.mem.map(*base, *size);
        }
        for (addr, words) in &setup.init_words {
            for (i, w) in words.iter().enumerate() {
                host.mem.store32(addr + (i as u32) * 4, *w)?;
            }
        }
        // Seed guest registers into the environment.
        for r in GReg::ALL {
            host.mem.store32(
                ENV_BASE.wrapping_add(env::reg_offset(r) as u32),
                setup.regs[r.index()],
            )?;
        }
        let mut pc = prog.base();
        // Reused per-instruction execution-count buffer: chained
        // dispatch executes many blocks per dispatcher entry, so the
        // allocation is hoisted out of the hot loop entirely.
        let mut counts: Vec<u32> = Vec::new();
        // The host executor, resolved once; the shared handle is
        // cloned out so the backend's counter sinks don't alias the
        // `&mut self` borrows inside the segment loop.
        let backend = backend_for(self.cfg.backend);
        let shared = Arc::clone(&self.shared);
        let outcome = loop {
            if self.metrics.guest_retired >= setup.max_guest {
                break Outcome::Budget;
            }
            if let Some(d) = setup.deadline {
                if Instant::now() >= d {
                    break Outcome::Deadline;
                }
            }
            let mut cur =
                match self.resolve_entry(prog, pc, self.metrics.guest_retired, setup.max_guest) {
                    Ok(cached) => cached,
                    Err(EngineError::Translate(_)) => {
                        // Degraded mode: interpret this one block and keep
                        // translating from the next one. The block is
                        // poisoned for chaining first, so no chain or
                        // trace can re-enter it behind the dispatcher's
                        // back.
                        self.invalidate_for(pc);
                        match self.interpret_block(prog, pc, &mut host) {
                            Ok(Some(next)) => {
                                pc = next;
                                continue;
                            }
                            Ok(None) => break Outcome::Completed,
                            Err(e) => break Outcome::Exec(e),
                        }
                    }
                    Err(EngineError::Exec(e)) => break Outcome::Exec(e),
                    Err(EngineError::Budget) => break Outcome::Budget,
                };
            // Chain segment: execute the resolved block, then follow
            // chain links inline for as long as they resolve. The
            // per-block scalar folds batch into locals and land in the
            // metrics once per segment.
            let mut seg_guest = 0u64;
            let mut seg_rule = 0u64;
            let mut seg_host = 0u64;
            let mut seg_blocks = 0u64;
            let seg_outcome = loop {
                let block = &cur.block;
                let exec = {
                    let _exec_span = pdbt_obs::span("exec_block");
                    let budget = host_block_budget(
                        setup.max_guest,
                        self.metrics.guest_retired + seg_guest,
                        block.guest_len,
                        block.code.len(),
                    );
                    let mut obs = BackendObs {
                        dispatch: &mut self.obs.dispatch,
                        server: shared.server(),
                    };
                    backend.execute(&cur, &mut host, budget, &mut counts, &mut obs)
                };
                let (exit, stats) = match exec {
                    Ok(res) => res,
                    Err(e) => break Some(Outcome::Exec(e)),
                };
                debug_assert_eq!(block.code.len(), block.classes.len());
                for (i, c) in counts.iter().enumerate() {
                    self.metrics.host_by_class[block.classes[i].index()] += u64::from(*c);
                }
                seg_blocks += 1;
                seg_host += stats.executed;
                self.obs.block_host_len.record(stats.executed);
                if block.member_marks.is_empty() {
                    // A plain block retires wholesale.
                    seg_guest += u64::from(block.guest_len);
                    seg_rule += u64::from(block.rule_covered);
                    // Dynamic coverage attribution: static per-block
                    // shares weighted by this execution.
                    for (id, covered) in &cur.attr_ids {
                        self.obs.rules.covered(*id, u64::from(*covered));
                    }
                    if let Some(d) = block.deleg {
                        self.obs.deleg_depth.record(match d {
                            DelegOutcome::Delegated(depth) => u64::from(depth),
                            DelegOutcome::EnvFallback => Histogram::FALLBACK,
                        });
                    }
                    if self.cfg.traces {
                        let hot = cur.hotness.fetch_add(1, Ordering::Relaxed) + 1;
                        if hot == self.cfg.trace_threshold.max(1)
                            && !self.dispatch.trace_attempted.contains(&block.start)
                        {
                            let head = cur.clone();
                            self.form_trace(prog, &head);
                        }
                    }
                } else {
                    // A superblock retires the member prefix that
                    // actually ran: a member retired iff its first host
                    // instruction executed (side exits leave through a
                    // member's own trampoline, so retired members always
                    // form a prefix).
                    self.obs.dispatch.trace_execs += 1;
                    for m in &block.member_marks {
                        if counts[m.anchor] == 0 {
                            break;
                        }
                        seg_guest += u64::from(m.guest_len);
                        seg_rule += u64::from(m.rule_covered);
                        for (id, covered) in &cur.attr_ids[m.attr_range.0..m.attr_range.1] {
                            self.obs.rules.covered(*id, u64::from(*covered));
                        }
                        if let Some(d) = m.deleg {
                            self.obs.deleg_depth.record(match d {
                                DelegOutcome::Delegated(depth) => u64::from(depth),
                                DelegOutcome::EnvFallback => Histogram::FALLBACK,
                            });
                        }
                    }
                }
                match exit {
                    BlockExit::Jumped(next) => pc = next,
                    BlockExit::Halted => break Some(Outcome::Completed),
                    BlockExit::Fell => break Some(Outcome::Exec(ExecError::BadPc { pc })),
                }
                if !self.cfg.chaining {
                    break None;
                }
                let retired = self.metrics.guest_retired + seg_guest;
                if retired >= setup.max_guest {
                    break Some(Outcome::Budget);
                }
                // A chain segment can loop indefinitely (a self-loop
                // chains to itself without re-entering the dispatcher),
                // so the deadline is also polled inside the segment —
                // throttled, since `Instant::now` is not free. No
                // deadline, no clock reads: determinism is unaffected.
                if seg_blocks.is_multiple_of(64) {
                    if let Some(d) = setup.deadline {
                        if Instant::now() >= d {
                            break Some(Outcome::Deadline);
                        }
                    }
                }
                match self.follow_link(prog, &cur, pc, retired, setup.max_guest) {
                    Some(next_b) => cur = next_b,
                    None => break None,
                }
            };
            self.metrics.guest_retired += seg_guest;
            self.metrics.rule_covered += seg_rule;
            self.metrics.host_retired += seg_host;
            self.metrics.blocks_executed += seg_blocks;
            if let Some(outcome) = seg_outcome {
                break outcome;
            }
        };
        // `snapshot` is scope-aware: inside a request-scoped fault
        // guard (`pdbt serve`) it reads the request's own counters, so
        // concurrent sessions never see each other's injections.
        self.resilience.injected = pdbt_faults::snapshot();
        if self.cfg.record_telemetry {
            // The one-session-server view: translate time is the run's
            // delta on the translate histogram; everything else spent
            // inside `run` counts as execute. Queue and reply phases
            // exist only under `pdbt-serve`, which records the full
            // lifecycle itself (and disables this path).
            let translate = self
                .obs
                .translate_ns
                .sum()
                .saturating_sub(translate_ns_before);
            let elapsed = pdbt_obs::now_ns().saturating_sub(run_start_ns);
            let telemetry = self.shared.telemetry();
            let summary = RequestSummary {
                seq: telemetry.next_seq(),
                id: 0,
                partition: telemetry.partition(),
                outcome: outcome.label().to_string(),
                phases: PhaseNs {
                    queue: 0,
                    translate,
                    execute: elapsed.saturating_sub(translate),
                    reply: 0,
                },
                reply_bytes: 0,
                injected: self.resilience.injected.iter().sum(),
                fault_sites: String::new(),
            };
            telemetry.record(pdbt_par::current_worker_slot().unwrap_or(0), summary);
        }
        Ok(Report {
            metrics: self.metrics.clone(),
            output: host.output,
            obs: self.obs.clone(),
            outcome,
            resilience: self.resilience.clone(),
            server: self.shared.server().snapshot(),
            telemetry: self.shared.telemetry().snapshot(),
            artifact: self.shared.artifact().snapshot(),
            backend: self.cfg.backend.name(),
        })
    }

    /// A copy of every superblock this session formed, sorted by head
    /// address — the canonical order translation artifacts persist them
    /// in. The member list of each trace is recoverable from its
    /// `member_marks`, which is how an artifact loader keys the
    /// library.
    #[must_use]
    pub fn export_traces(&self) -> Vec<TranslatedBlock> {
        let mut traces: Vec<TranslatedBlock> = self
            .dispatch
            .traces
            .values()
            .map(|t| (*t.block).clone())
            .collect();
        traces.sort_unstable_by_key(|t| t.start);
        traces
    }

    /// Interprets the guest block starting at `pc` directly against the
    /// environment state — the graceful-degradation path for blocks the
    /// translator cannot handle (or that an injected `cache` fault
    /// poisoned). Architectural state (registers, flags, float
    /// registers, icount, guest memory, output) round-trips through the
    /// environment block so translated and interpreted blocks compose
    /// transparently.
    ///
    /// Returns the next guest pc, or `None` when the guest halted.
    fn interpret_block(
        &mut self,
        prog: &Program,
        pc: Addr,
        host: &mut HostCpu,
    ) -> Result<Option<Addr>, ExecError> {
        let mut gc = GuestCpu::new();
        // Guest memory is identity-mapped in the host, so the host
        // memory *is* the guest memory (plus the env block, which the
        // guest never touches). Borrow it wholesale for the block.
        std::mem::swap(&mut gc.mem, &mut host.mem);
        let env = |off: i32| ENV_BASE.wrapping_add(off as u32);
        // Load the architectural state out of the environment.
        let mut load = || -> Result<(), ExecError> {
            for r in GReg::ALL {
                if r != GReg::Pc {
                    gc.regs[r.index()] = gc.mem.load32(env(env::reg_offset(r)))?;
                }
            }
            for f in Flag::ALL {
                let v = gc.mem.load32(env(env::flag_offset(f)))? != 0;
                gc.flags.set(f, v);
            }
            for i in 0..16u8 {
                let s = FReg::new(i);
                let bits = gc.mem.load32(env(env::freg_offset(s)))?;
                gc.fregs[s.index()] = f32::from_bits(bits);
            }
            Ok(())
        };
        if let Err(e) = load() {
            std::mem::swap(&mut gc.mem, &mut host.mem);
            return Err(e);
        }
        let (stepped, executed) = interpret_steps(&mut gc, prog, pc, self.cfg.translate.max_block);
        // Write the state back even when stepping faulted, so the
        // partial report reflects everything that retired.
        let mut store = || -> Result<(), ExecError> {
            for r in GReg::ALL {
                if r != GReg::Pc {
                    gc.mem
                        .store32(env(env::reg_offset(r)), gc.regs[r.index()])?;
                }
            }
            for f in Flag::ALL {
                gc.mem
                    .store32(env(env::flag_offset(f)), u32::from(gc.flags.get(f)))?;
            }
            for i in 0..16u8 {
                let s = FReg::new(i);
                gc.mem
                    .store32(env(env::freg_offset(s)), gc.fregs[s.index()].to_bits())?;
            }
            let icount = gc.mem.load32(env(env::ICOUNT_OFFSET))?;
            gc.mem.store32(
                env(env::ICOUNT_OFFSET),
                icount.wrapping_add(executed as u32),
            )?;
            Ok(())
        };
        let store_res = store();
        std::mem::swap(&mut gc.mem, &mut host.mem);
        host.output.extend(gc.output);
        self.metrics.blocks_executed += 1;
        self.metrics.guest_retired += executed;
        self.obs.block_host_len.record(0);
        self.resilience.degraded_blocks += 1;
        self.resilience.interpreted_guest += executed;
        store_res?;
        stepped
    }
}

/// Steps the interpreter from `pc` until the end of the basic block: a
/// control transfer, a halt, at most `max_block` straight-line
/// instructions, or a fault. Returns the stepping result (next pc, halt
/// or error) plus how many instructions retired.
fn interpret_steps(
    gc: &mut GuestCpu,
    prog: &Program,
    mut pc: Addr,
    max_block: usize,
) -> (Result<Option<Addr>, ExecError>, u64) {
    let mut executed = 0u64;
    loop {
        let inst = match prog.fetch(pc) {
            Ok(inst) => inst,
            Err(e) => return (Err(e), executed),
        };
        gc.set_pc(pc);
        match step(gc, inst) {
            Ok(Control::Next) => {
                executed += 1;
                pc = pc.wrapping_add(INST_SIZE);
                if executed >= max_block as u64 {
                    return (Ok(Some(pc)), executed);
                }
            }
            Ok(Control::Jump(target)) | Ok(Control::Call { target, .. }) => {
                executed += 1;
                return (Ok(Some(target)), executed);
            }
            Ok(Control::Halt) => {
                executed += 1;
                return (Ok(None), executed);
            }
            Err(e) => return (Err(e), executed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdbt_isa::Cond;
    use pdbt_isa_arm::builders as g;
    use pdbt_isa_arm::{Cpu as GuestCpu, Operand as O, Reg};

    fn countdown_program() -> Program {
        Program::new(
            0x1000,
            vec![
                g::mov(Reg::R0, O::Imm(5)),
                g::mov(Reg::R1, O::Imm(0)),
                g::add(Reg::R1, Reg::R1, O::Reg(Reg::R0)),
                g::sub(Reg::R0, Reg::R0, O::Imm(1)).with_s(),
                g::b(Cond::Ne, -8),
                g::mov(Reg::R0, O::Reg(Reg::R1)),
                g::svc(1),
                g::svc(0),
            ],
        )
    }

    fn setup() -> RunSetup {
        RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000)
    }

    #[test]
    fn qemu_only_engine_matches_interpreter() {
        let prog = countdown_program();
        let mut engine = Engine::new(None, EngineConfig::default());
        let report = engine.run(&prog, &setup()).expect("runs");
        assert_eq!(report.output, vec![15]);
        assert_eq!(report.metrics.coverage(), 0.0, "no rules, no coverage");
        assert_eq!(report.metrics.guest_retired, 20);
        // And the golden interpreter agrees.
        let mut cpu = GuestCpu::new();
        pdbt_isa_arm::run(&mut cpu, &prog, 10_000).unwrap();
        assert_eq!(cpu.output, report.output);
    }

    #[test]
    fn code_cache_reuses_blocks() {
        let prog = countdown_program();
        let mut engine = Engine::new(None, EngineConfig::default());
        let report = engine.run(&prog, &setup()).unwrap();
        // The loop block executes 5 times but translates once.
        assert!(report.metrics.blocks_executed > report.metrics.blocks_translated);
    }

    #[test]
    fn class_accounting_covers_all_executed() {
        let prog = countdown_program();
        let mut engine = Engine::new(None, EngineConfig::default());
        let report = engine.run(&prog, &setup()).unwrap();
        assert!(report.metrics.host_executed() > report.metrics.guest_retired);
        assert!(report.metrics.host_by_class[CodeClass::Control.index()] > 0);
        assert!(report.metrics.host_by_class[CodeClass::QemuCore.index()] > 0);
    }

    #[test]
    fn budget_is_enforced() {
        let prog = Program::new(0, vec![g::b(Cond::Al, 0)]);
        let mut engine = Engine::new(None, EngineConfig::default());
        let mut s = setup();
        s.max_guest = 100;
        let report = engine.run(&prog, &s).expect("partial report");
        assert_eq!(report.outcome, Outcome::Budget);
        assert!(report.metrics.guest_retired >= 100);
    }

    /// The interpreter fallback must be architecturally transparent:
    /// driving a program block-by-block through `interpret_block` has
    /// to produce the same observable output as the translated run,
    /// with the degradation counted.
    #[test]
    fn interpreter_fallback_matches_translated_run() {
        let prog = countdown_program();
        let s = setup();
        let reference = Engine::new(None, EngineConfig::default())
            .run(&prog, &s)
            .expect("runs")
            .output;
        let mut engine = Engine::new(None, EngineConfig::default());
        let mut host = HostCpu::new();
        host.mem.map(ENV_BASE, env::ENV_SIZE);
        host.write(HReg::Ebp, ENV_BASE);
        for (base, size) in &s.maps {
            host.mem.map(*base, *size);
        }
        for r in GReg::ALL {
            host.mem
                .store32(
                    ENV_BASE.wrapping_add(env::reg_offset(r) as u32),
                    s.regs[r.index()],
                )
                .unwrap();
        }
        let mut pc = prog.base();
        while let Some(next) = engine.interpret_block(&prog, pc, &mut host).expect("steps") {
            pc = next;
        }
        assert_eq!(host.output, reference);
        assert!(engine.resilience().degraded_blocks > 0);
        assert_eq!(
            engine.resilience().interpreted_guest,
            engine.metrics().guest_retired,
            "every retired instruction came from the interpreter"
        );
    }

    /// Satellite regression: a budget-exhausted run must still carry
    /// the metrics and histograms accumulated up to the stop point —
    /// the partial report is the whole point of degrading instead of
    /// erroring.
    #[test]
    fn partial_report_survives_budget_exhaustion() {
        let prog = Program::new(0, vec![g::b(Cond::Al, 0)]);
        let mut engine = Engine::new(None, EngineConfig::default());
        let mut s = setup();
        s.max_guest = 100;
        let report = engine.run(&prog, &s).expect("partial report");
        assert_eq!(report.outcome, Outcome::Budget);
        assert!(report.metrics.host_retired > 0, "host work retained");
        assert!(report.metrics.blocks_executed > 0);
        assert!(
            report.obs.block_host_len.count() > 0,
            "histograms survive the abort"
        );
        let json = report.to_json().to_string();
        assert!(json.contains("\"outcome\":\"budget\""), "{json}");
    }

    /// Satellite regression: the per-block host budget is derived from
    /// the *remaining* guest budget, not a flat million. A host block
    /// that spins forever must time out after the derived allowance —
    /// under either backend — instead of burning 1M host instructions.
    #[test]
    fn host_block_budget_derives_from_remaining_guest_budget() {
        use pdbt_isa_x86::builders as hx;
        let prog = Program::new(0x1000, vec![g::svc(0)]);
        let mut s = setup();
        s.max_guest = 10;
        // remaining 10 × ratio 64 + slack 256 = 896.
        let expect = host_block_budget(s.max_guest, 0, 1, 1);
        assert_eq!(expect, 896);
        assert_eq!(
            host_block_budget(50_000_000, 0, 1, 1),
            1_000_000,
            "default budgets still clamp at the old ceiling"
        );
        assert_eq!(
            host_block_budget(10, 10, 4, 900),
            901,
            "exhausted budget still admits one pass over the block"
        );
        for backend in [BackendKind::Model, BackendKind::Threaded] {
            let cfg = EngineConfig {
                backend,
                ..EngineConfig::default()
            };
            let mut engine = Engine::new(None, cfg);
            // A host block that never exits: `jmp .-0` re-executes
            // itself forever without retiring guest work.
            let spin = TranslatedBlock {
                start: prog.base(),
                code: vec![hx::jmp_rel(-1)],
                classes: vec![CodeClass::QemuCore],
                guest_len: 1,
                rule_covered: 0,
                attributions: Vec::new(),
                lookup_misses: Vec::new(),
                deleg: None,
                succ: BlockSuccs::None,
                member_marks: Vec::new(),
            };
            engine.adopt(prog.base(), Arc::new(spin));
            let report = engine.run(&prog, &s).expect("partial report");
            assert_eq!(
                report.outcome,
                Outcome::Exec(ExecError::Timeout { budget: expect }),
                "backend {}",
                backend.name()
            );
        }
    }

    /// Tentpole smoke: model and threaded backends agree on a full run
    /// — same output, metrics, and compiled-block accounting rules.
    #[test]
    fn backends_produce_identical_runs() {
        let prog = countdown_program();
        let run = |backend: BackendKind| {
            let cfg = EngineConfig {
                backend,
                ..EngineConfig::default()
            };
            let mut engine = Engine::new(None, cfg);
            engine.run(&prog, &setup()).expect("runs")
        };
        let model = run(BackendKind::Model);
        let threaded = run(BackendKind::Threaded);
        assert_eq!(model.output, threaded.output);
        assert_eq!(model.metrics, threaded.metrics);
        assert_eq!(model.outcome, threaded.outcome);
        assert_eq!(model.backend, "model");
        assert_eq!(threaded.backend, "threaded");
        assert_eq!(model.obs.dispatch.compiled_blocks, 0);
        assert_eq!(
            threaded.obs.dispatch.compiled_blocks, threaded.metrics.blocks_translated,
            "every distinct executed block compiled exactly once"
        );
    }
}

#[cfg(test)]
mod engine_edge_tests {
    use super::*;
    use pdbt_isa_arm::builders as g;
    use pdbt_isa_arm::{Operand as O, Program, Reg};

    fn tiny_program() -> Program {
        Program::new(
            0x1000,
            vec![g::mov(Reg::R0, O::Imm(1)), g::svc(1), g::svc(0)],
        )
    }

    fn countdown_program() -> Program {
        Program::new(
            0x1000,
            vec![
                g::mov(Reg::R0, O::Imm(5)),
                g::mov(Reg::R1, O::Imm(0)),
                g::add(Reg::R1, Reg::R1, O::Reg(Reg::R0)),
                g::sub(Reg::R0, Reg::R0, O::Imm(1)).with_s(),
                g::b(pdbt_isa::Cond::Ne, -8),
                g::mov(Reg::R0, O::Reg(Reg::R1)),
                g::svc(1),
                g::svc(0),
            ],
        )
    }

    fn setup() -> RunSetup {
        RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000)
    }

    #[test]
    fn reset_clears_cache_and_metrics() {
        let prog = tiny_program();
        let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        let mut engine = Engine::new(None, EngineConfig::default());
        engine.run(&prog, &setup).unwrap();
        assert!(engine.metrics().blocks_translated > 0);
        engine.reset();
        assert_eq!(engine.metrics().blocks_translated, 0);
        assert_eq!(engine.metrics().guest_retired, 0);
        // And it still runs after a reset.
        let r = engine.run(&prog, &setup).unwrap();
        assert_eq!(r.output, vec![1]);
    }

    #[test]
    fn rerun_reuses_the_code_cache() {
        let prog = tiny_program();
        let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        let mut engine = Engine::new(None, EngineConfig::default());
        engine.run(&prog, &setup).unwrap();
        let translated_once = engine.metrics().blocks_translated;
        engine.run(&prog, &setup).unwrap();
        assert_eq!(
            engine.metrics().blocks_translated,
            translated_once,
            "second run translates nothing new"
        );
        assert_eq!(engine.metrics().blocks_executed, 2);
    }

    #[test]
    fn unmapped_guest_memory_faults_cleanly() {
        let prog = Program::new(
            0x1000,
            vec![
                g::mov(Reg::R1, O::Imm(0x40)),
                g::lsl(Reg::R1, Reg::R1, O::Imm(12)), // 0x40000: unmapped
                g::ldr(
                    Reg::R0,
                    pdbt_isa_arm::MemAddr::BaseImm {
                        base: Reg::R1,
                        offset: 0,
                    },
                ),
                g::svc(0),
            ],
        );
        let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        let mut engine = Engine::new(None, EngineConfig::default());
        let report = engine.run(&prog, &setup).expect("partial report");
        assert!(matches!(report.outcome, Outcome::Exec(_)));
    }

    #[test]
    fn init_words_are_visible_to_the_guest() {
        let prog = Program::new(
            0x1000,
            vec![
                g::mov(Reg::R1, O::Imm(0x100)),
                g::lsl(Reg::R1, Reg::R1, O::Imm(12)),
                g::ldr(
                    Reg::R0,
                    pdbt_isa_arm::MemAddr::BaseImm {
                        base: Reg::R1,
                        offset: 8,
                    },
                ),
                g::svc(1),
                g::svc(0),
            ],
        );
        let mut setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        setup.init_words.push((0x10_0008, vec![0xdead_beef]));
        let mut engine = Engine::new(None, EngineConfig::default());
        let r = engine.run(&prog, &setup).unwrap();
        assert_eq!(r.output, vec![0xdead_beef]);
    }

    #[test]
    fn metrics_merge_sums_every_field() {
        let prog = tiny_program();
        let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        let mut engine = Engine::new(None, EngineConfig::default());
        let a = engine.run(&prog, &setup).unwrap().metrics;
        let mut total = a.clone();
        total.merge(&a);
        assert_eq!(total.guest_retired, 2 * a.guest_retired);
        assert_eq!(total.host_executed(), 2 * a.host_executed());
        assert_eq!(total.host_retired, 2 * a.host_retired);
        assert_eq!(total.blocks_translated, 2 * a.blocks_translated);
        assert_eq!(total.host_generated, 2 * a.host_generated);
        // Ratios are invariant under self-merge.
        assert!((total.total_ratio() - a.total_ratio()).abs() < 1e-12);
        // The Display table mentions the headline counters.
        let table = total.to_string();
        assert!(table.contains("guest retired"));
        assert!(table.contains("rule core"));
    }

    #[test]
    fn exec_stats_fold_into_host_retired() {
        let prog = countdown_program();
        let mut engine = Engine::new(None, EngineConfig::default());
        let report = engine.run(&prog, &setup()).unwrap();
        // The executor's own count agrees with the per-class attribution.
        assert_eq!(report.metrics.host_retired, report.metrics.host_executed());
        assert!(report.metrics.host_retired > 0);
    }

    #[test]
    fn observability_counts_block_shapes() {
        let prog = countdown_program();
        let mut engine = Engine::new(None, EngineConfig::default());
        let report = engine.run(&prog, &setup()).unwrap();
        // One histogram sample per block execution.
        assert_eq!(
            report.obs.block_host_len.count(),
            report.metrics.blocks_executed
        );
        assert_eq!(report.obs.block_host_len.sum(), report.metrics.host_retired);
        // The loop's conditional exit ran once per iteration; without
        // rules it cannot delegate (QEMU folding may still apply, so we
        // only check that every conditional exit was observed).
        assert_eq!(report.obs.deleg_depth.count(), 5);
        // No rules, no attribution.
        assert_eq!(report.obs.rules.total_covered(), 0);
    }

    #[test]
    fn report_json_roundtrips() {
        let prog = countdown_program();
        let mut engine = Engine::new(None, EngineConfig::default());
        let report = engine.run(&prog, &setup()).unwrap();
        let text = report.to_json().to_string();
        let doc = pdbt_obs::json::Json::parse(&text).expect("valid json");
        let metrics = doc.get("metrics").expect("metrics object");
        assert_eq!(
            metrics.get("guest_retired").and_then(|v| v.as_u64()),
            Some(report.metrics.guest_retired)
        );
        assert_eq!(
            metrics
                .get("host_by_class")
                .and_then(|c| c.get("control"))
                .and_then(|v| v.as_u64()),
            Some(report.metrics.host_by_class[CodeClass::Control.index()])
        );
        let hists = doc.get("histograms").expect("histograms object");
        assert_eq!(
            hists
                .get("block_host_len")
                .and_then(|h| h.get("count"))
                .and_then(|v| v.as_u64()),
            Some(report.metrics.blocks_executed)
        );
        assert_eq!(
            doc.get("output").and_then(|o| o.as_arr()).map(|a| a.len()),
            Some(report.output.len())
        );
        let cache = doc.get("cache").expect("cache object");
        assert_eq!(cache.get("shards").and_then(|v| v.as_u64()), Some(8));
        assert_eq!(
            cache.get("total_misses").and_then(|v| v.as_u64()),
            Some(report.metrics.blocks_translated)
        );
        let pool = doc.get("pool").expect("pool object");
        assert_eq!(
            pool.get("total").and_then(|v| v.as_u64()),
            Some(0),
            "no prewarm ran"
        );
    }

    #[test]
    fn prewarm_populates_the_cache_deterministically() {
        let prog = countdown_program();
        let mut serial = Engine::new(None, EngineConfig::default());
        let n1 = serial.prewarm(&prog);
        assert!(n1 > 0, "the static CFG has blocks to discover");
        let mut par = Engine::new(
            None,
            EngineConfig {
                jobs: 4,
                ..EngineConfig::default()
            },
        );
        let n4 = par.prewarm(&prog);
        assert_eq!(n1, n4, "worker count cannot change what is discovered");
        assert_eq!(serial.cache().len(), par.cache().len());
        assert_eq!(serial.metrics(), par.metrics());
        assert_eq!(par.obs().pool.total(), n4 as u64);
        // Prewarm is idempotent: everything is already cached.
        assert_eq!(par.prewarm(&prog), 0);
    }

    #[test]
    fn parallel_engine_run_matches_serial() {
        let prog = countdown_program();
        let mut serial = Engine::new(None, EngineConfig::default());
        let a = serial.run(&prog, &setup()).unwrap();
        let mut par = Engine::new(
            None,
            EngineConfig {
                jobs: 4,
                cache_shards: 4,
                ..EngineConfig::default()
            },
        );
        let b = par.run(&prog, &setup()).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.metrics, b.metrics);
        // Dispatch behaviour (jump cache, chaining, traces) only
        // depends on execution order, which is identical.
        assert_eq!(a.obs.dispatch.chain_followed, b.obs.dispatch.chain_followed);
        assert_eq!(
            a.obs.dispatch.jump_cache_hits,
            b.obs.dispatch.jump_cache_hits
        );
        // The auto-prewarmed engine never misses at dispatch time…
        assert_eq!(b.obs.cache.total_misses(), 0);
        // …while the lazy engine misses exactly once per translation.
        assert_eq!(a.obs.cache.total_misses(), a.metrics.blocks_translated);
    }

    /// Two independent two-block loops (each body split by an
    /// unconditional branch, so hot chains span multiple members and
    /// superblocks can form).
    fn two_loop_program() -> Program {
        Program::new(
            0x1000,
            vec![
                g::mov(Reg::R0, O::Imm(80)),                  // 0x1000
                g::sub(Reg::R0, Reg::R0, O::Imm(1)).with_s(), // 0x1004: A1
                g::b(pdbt_isa::Cond::Al, 8),                  // 0x1008 -> 0x1010
                g::svc(0),                                    // 0x100c (dead)
                g::add(Reg::R1, Reg::R1, O::Imm(1)),          // 0x1010: A2
                g::b(pdbt_isa::Cond::Ne, -16),                // 0x1014 -> 0x1004
                g::mov(Reg::R2, O::Imm(80)),                  // 0x1018
                g::sub(Reg::R2, Reg::R2, O::Imm(1)).with_s(), // 0x101c: B1
                g::b(pdbt_isa::Cond::Al, 8),                  // 0x1020 -> 0x1028
                g::svc(0),                                    // 0x1024 (dead)
                g::add(Reg::R3, Reg::R3, O::Imm(1)),          // 0x1028: B2
                g::b(pdbt_isa::Cond::Ne, -16),                // 0x102c -> 0x101c
                g::svc(0),                                    // 0x1030
            ],
        )
    }

    /// Two independent hot loops promote to superblocks; poisoning a pc
    /// inside the first must drop only the traces containing it — the
    /// other loop keeps its superblocks and its chains (satellite
    /// regression for the formerly global epoch bump).
    #[test]
    fn invalidation_is_scoped_to_traces_containing_the_pc() {
        let prog = two_loop_program();
        let cfg = EngineConfig {
            trace_threshold: 5,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(None, cfg);
        let report = engine.run(&prog, &setup()).unwrap();
        assert_eq!(report.outcome, Outcome::Completed);
        assert!(
            engine.dispatch.traces.len() >= 2,
            "both loops promoted: {} traces",
            engine.dispatch.traces.len()
        );
        let traces_before = engine.dispatch.traces.len();
        let heads_before: Vec<Addr> = engine.dispatch.traces.keys().copied().collect();
        // Poison a pc inside loop A's trace.
        let poisoned_pc = 0x1004;
        let containing: Vec<Addr> = engine
            .dispatch
            .traces
            .iter()
            .filter(|(_, t)| t.block.member_marks.iter().any(|m| m.start == poisoned_pc))
            .map(|(h, _)| *h)
            .collect();
        assert!(!containing.is_empty(), "a trace contains {poisoned_pc:#x}");
        engine.invalidate_for(poisoned_pc);
        assert_eq!(
            engine.dispatch.traces.len(),
            traces_before - containing.len(),
            "only the traces containing the pc were dropped"
        );
        for h in heads_before {
            assert_eq!(
                engine.dispatch.traces.contains_key(&h),
                !containing.contains(&h),
                "trace at {h:#x}"
            );
        }
        // Unrelated jump-cache entries survive (scoped scrub).
        let survivors = engine
            .dispatch
            .jump_cache
            .iter()
            .flatten()
            .filter(|(key, _)| *key != poisoned_pc && !containing.contains(key))
            .count();
        assert!(survivors > 0, "unrelated jump-cache entries kept");
        // Links *into* the poisoned pc are cleared; everything else
        // keeps its chains: a rerun needs no link re-resolution for the
        // surviving loop.
        for (pc, b) in &engine.session {
            let targets = match b.block.succ {
                BlockSuccs::One(t) => t == poisoned_pc,
                BlockSuccs::Two { taken, fall } => taken == poisoned_pc || fall == poisoned_pc,
                BlockSuccs::None => false,
            };
            if targets {
                assert!(
                    b.links.taken.lock().unwrap().target.is_none(),
                    "{pc:#x}: link into poisoned pc cleared"
                );
            }
        }
    }

    /// Two sessions over one shared state: invalidating in one session
    /// leaves the other's superblocks and chains untouched (dispatch
    /// state is session-private by construction).
    #[test]
    fn invalidation_in_one_session_spares_the_other() {
        let prog = two_loop_program();
        let cfg = EngineConfig {
            trace_threshold: 5,
            ..EngineConfig::default()
        };
        let shared = Arc::new(SharedTranslationState::new(None, cfg.cache_shards));
        let mut a = Engine::with_shared(shared.clone(), cfg);
        let mut b = Engine::with_shared(shared.clone(), cfg);
        a.run(&prog, &setup()).unwrap();
        b.run(&prog, &setup()).unwrap();
        assert!(!b.dispatch.traces.is_empty(), "session B formed traces");
        let b_traces = b.dispatch.traces.len();
        let poisoned = *a
            .dispatch
            .traces
            .keys()
            .next()
            .expect("session A has traces");
        a.invalidate_for(poisoned);
        assert_eq!(
            b.dispatch.traces.len(),
            b_traces,
            "session B's superblocks survive session A's invalidation"
        );
        assert!(b.dispatch.poisoned.is_empty());
    }

    /// A run past its wall-clock deadline stops with a partial report
    /// and the `deadline` outcome; an already-expired deadline stops
    /// before any guest instruction retires.
    #[test]
    fn deadline_stops_the_run_with_a_partial_report() {
        let prog = Program::new(0, vec![g::b(pdbt_isa::Cond::Al, 0)]);
        let mut engine = Engine::new(None, EngineConfig::default());
        let mut s = setup();
        s.max_guest = u64::MAX;
        s.deadline = Some(Instant::now() + std::time::Duration::from_millis(30));
        let report = engine.run(&prog, &s).expect("partial report");
        assert_eq!(report.outcome, Outcome::Deadline);
        assert!(report.metrics.guest_retired > 0, "work before the deadline");
        let json = report.to_json().to_string();
        assert!(json.contains("\"outcome\":\"deadline\""), "{json}");
        // Expired before the first block: nothing retires.
        let mut engine = Engine::new(None, EngineConfig::default());
        let mut s2 = setup();
        s2.deadline = Some(Instant::now());
        let r2 = engine.run(&countdown_program(), &s2).expect("report");
        assert_eq!(r2.outcome, Outcome::Deadline);
        assert_eq!(r2.metrics.guest_retired, 0);
    }

    /// The warm-cache session invariant: a second session over a shared
    /// state translates nothing, yet its metrics and counters are
    /// identical to the cold session's (per-session static folding).
    #[test]
    fn warm_session_reports_match_cold_without_translating() {
        let prog = countdown_program();
        let cfg = EngineConfig::default();
        let shared = Arc::new(SharedTranslationState::new(None, cfg.cache_shards));
        let mut cold = Engine::with_shared(shared.clone(), cfg);
        let a = cold.run(&prog, &setup()).unwrap();
        let translates_after_cold = shared.server().snapshot().translate_calls;
        let mut warm = Engine::with_shared(shared.clone(), cfg);
        let b = warm.run(&prog, &setup()).unwrap();
        let snap = shared.server().snapshot();
        assert_eq!(
            snap.translate_calls, translates_after_cold,
            "the warm session translated nothing"
        );
        assert_eq!(a.output, b.output);
        assert_eq!(a.metrics, b.metrics, "static folds identical warm or cold");
        assert_eq!(
            a.obs.cache.total_misses(),
            b.obs.cache.total_misses(),
            "session-local sight counting is cache-warmth-independent"
        );
        assert_eq!(snap.sessions, 2);
        assert_eq!(snap.inserted, a.metrics.blocks_translated);
        assert_eq!(snap.probes, 2 * a.metrics.blocks_translated);
        assert_eq!(snap.hits, a.metrics.blocks_translated);
        // The report carries the server section.
        let doc = pdbt_obs::json::Json::parse(&b.to_json().to_string()).unwrap();
        let server = doc.get("server").expect("server section");
        assert_eq!(server.get("sessions").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(server.get("hits").and_then(|v| v.as_u64()), Some(snap.hits));
    }

    #[test]
    fn metrics_ratios_are_consistent() {
        let prog = tiny_program();
        let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        let mut engine = Engine::new(None, EngineConfig::default());
        let r = engine.run(&prog, &setup).unwrap();
        let m = &r.metrics;
        let sum: f64 = [
            crate::CodeClass::RuleCore,
            crate::CodeClass::QemuCore,
            crate::CodeClass::DataTransfer,
            crate::CodeClass::Control,
        ]
        .into_iter()
        .map(|c| m.ratio(c))
        .sum();
        assert!((sum - m.total_ratio()).abs() < 1e-9);
        assert_eq!(m.host_executed(), m.host_by_class.iter().sum::<u64>());
    }
}
