//! The sharded code cache: translated blocks keyed by guest address
//! (paper §V-B1), split across independently locked shards.
//!
//! The cache stores *pure translations* (`Arc<TranslatedBlock>`): the
//! immutable, session-independent product of `translate_block`. The
//! mutable dispatch state a session layers on top — chain links,
//! hotness, edge counters, interned attribution ids — lives in
//! [`CachedBlock`], which each session builds privately around the
//! shared translation. That split is what lets one warm cache serve
//! many concurrent sessions (`pdbt serve`) while every session's
//! dispatch behaviour and report stay bit-identical to a run against a
//! cold, exclusively owned engine.
//!
//! The access pattern is read-mostly — every block is translated once
//! and then fetched on each session's first sight — so translations
//! live behind per-shard `RwLock`s and are handed out as [`Arc`]s: a
//! fetch takes one shard's read lock for a hash probe and never blocks
//! readers of other shards, which is what lets prewarm fan translation
//! out across workers while dispatchers keep running.

use crate::translate::TranslatedBlock;
use pdbt_isa::Addr;
use pdbt_isa_x86::ThreadedCode;
use pdbt_obs::RuleId;
use std::collections::HashMap;
use std::sync::atomic::AtomicU32;
use std::sync::{Arc, Mutex, OnceLock, RwLock, Weak};

/// One shard: a locked address → translation map.
type Shard = RwLock<HashMap<Addr, Arc<TranslatedBlock>>>;

/// A lazily resolved chain link to a successor block. The target is
/// held weakly — links never keep a block alive (the cache and the
/// engine's trace table hold the strong references), and loops chain
/// back to themselves without creating `Arc` cycles. The epoch stamps
/// when the link was resolved: the engine bumps its epoch on every
/// invalidation, staling all links at once without walking them.
#[derive(Debug, Default)]
pub struct LinkSlot {
    /// The engine epoch the link was resolved in; stale links resolve
    /// again.
    pub epoch: u32,
    /// The linked successor, if resolved.
    pub target: Option<Weak<CachedBlock>>,
}

/// The chain links of a block's direct-branch exits: `taken` doubles as
/// the single link of one-successor exits (unconditional branches,
/// calls, fall-throughs).
#[derive(Debug, Default)]
pub struct ChainLinks {
    /// Link for the branch-taken (or only) successor.
    pub taken: Mutex<LinkSlot>,
    /// Link for the fall-through successor of a conditional branch.
    pub fall: Mutex<LinkSlot>,
}

/// A session's view of one translated block: the shared translation
/// plus the session's pre-interned attribution ids — `(rule id,
/// per-execution coverage)` pairs resolved once at adoption time so
/// block executions only bump dense counters — and the mutable dispatch
/// state of the hot path: chain links for its direct-branch exits, an
/// execution counter for hot-trace promotion, and per-edge counters
/// that pick the hotter side of a conditional when a trace is formed.
/// All of this is per-session (two sessions sharing a translation never
/// share chain state), so the counters use relaxed ordering — they are
/// heuristics, and each session's executor is single-threaded; `Sync`
/// is only needed because prewarm shares blocks across worker threads.
#[derive(Debug)]
pub struct CachedBlock {
    /// The shared, immutable translation.
    pub block: Arc<TranslatedBlock>,
    /// Interned rule attributions (session-local ids).
    pub attr_ids: Vec<(RuleId, u32)>,
    /// Chain links to successor blocks.
    pub links: ChainLinks,
    /// Completed executions, for hot-trace promotion.
    pub hotness: AtomicU32,
    /// Times the taken edge was followed.
    pub taken_count: AtomicU32,
    /// Times the fall-through edge was followed.
    pub fall_count: AtomicU32,
    /// Threaded code, compiled lazily on the block's *first execute*
    /// (never at adopt/prewarm time, so the `compiled_blocks` counter
    /// stays deterministic across worker counts and warm boots — see
    /// the counter-neutral rule in DESIGN §16). Empty forever under
    /// the model backend.
    pub compiled: OnceLock<ThreadedCode>,
}

impl CachedBlock {
    /// Wraps a translation with fresh (unresolved, cold) dispatch state.
    #[must_use]
    pub fn new(block: Arc<TranslatedBlock>, attr_ids: Vec<(RuleId, u32)>) -> CachedBlock {
        CachedBlock {
            block,
            attr_ids,
            links: ChainLinks::default(),
            hotness: AtomicU32::new(0),
            taken_count: AtomicU32::new(0),
            fall_count: AtomicU32::new(0),
            compiled: OnceLock::new(),
        }
    }
}

/// A code cache of `N` independently locked shards (`N` is the
/// requested count rounded up to a power of two), storing shared
/// translations.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Box<[Shard]>,
}

impl ShardedCache {
    /// Creates a cache with at least `shards` shards.
    #[must_use]
    pub fn new(shards: usize) -> ShardedCache {
        let n = shards.max(1).next_power_of_two();
        ShardedCache {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    /// The shard count.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard an address lands in. Block starts are word-aligned, so
    /// the two always-zero bits are dropped to spread consecutive
    /// blocks across shards.
    #[must_use]
    pub fn shard_of(&self, pc: Addr) -> usize {
        ((pc >> 2) as usize) & (self.shards.len() - 1)
    }

    /// Fetches the translation at `pc` under its shard's read lock.
    #[must_use]
    pub fn get(&self, pc: Addr) -> Option<Arc<TranslatedBlock>> {
        self.shards[self.shard_of(pc)]
            .read()
            .expect("cache shard poisoned")
            .get(&pc)
            .cloned()
    }

    /// Inserts a translation, returning the cached `Arc` and whether it
    /// was new. When another insert won the race the existing
    /// translation is kept — translation is deterministic, so the two
    /// are identical (the loser's duplicate work is visible only as an
    /// extra `translate_calls` tick in the server counters).
    pub fn insert(&self, pc: Addr, block: TranslatedBlock) -> (Arc<TranslatedBlock>, bool) {
        use std::collections::hash_map::Entry;
        let mut shard = self.shards[self.shard_of(pc)]
            .write()
            .expect("cache shard poisoned");
        match shard.entry(pc) {
            Entry::Occupied(e) => (e.get().clone(), false),
            Entry::Vacant(v) => (v.insert(Arc::new(block)).clone(), true),
        }
    }

    /// A point-in-time copy of every cached translation, sorted by
    /// guest address — the canonical order persisted translation
    /// artifacts use, so sealing the same cache twice yields identical
    /// bytes regardless of shard geometry or insertion schedule.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(Addr, Arc<TranslatedBlock>)> {
        let mut all: Vec<(Addr, Arc<TranslatedBlock>)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("cache shard poisoned")
                    .iter()
                    .map(|(pc, b)| (*pc, b.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable_by_key(|(pc, _)| *pc);
        all
    }

    /// Cached block count across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether no blocks are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached block.
    pub fn clear(&self) {
        for s in &self.shards {
            s.write().expect("cache shard poisoned").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_block(start: Addr) -> TranslatedBlock {
        TranslatedBlock {
            start,
            code: Vec::new(),
            classes: Vec::new(),
            guest_len: 1,
            rule_covered: 0,
            attributions: Vec::new(),
            lookup_misses: Vec::new(),
            deleg: None,
            succ: crate::translate::BlockSuccs::None,
            member_marks: Vec::new(),
        }
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        assert_eq!(ShardedCache::new(0).shard_count(), 1);
        assert_eq!(ShardedCache::new(1).shard_count(), 1);
        assert_eq!(ShardedCache::new(5).shard_count(), 8);
        assert_eq!(ShardedCache::new(8).shard_count(), 8);
    }

    #[test]
    fn word_aligned_addresses_spread_over_shards() {
        let cache = ShardedCache::new(8);
        let shards: Vec<usize> = (0..8u32).map(|i| cache.shard_of(0x1000 + i * 4)).collect();
        let mut unique = shards.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(
            unique.len(),
            8,
            "consecutive blocks land in distinct shards"
        );
    }

    #[test]
    fn insert_get_and_racing_insert() {
        let cache = ShardedCache::new(4);
        assert!(cache.get(0x1000).is_none());
        let (a, new) = cache.insert(0x1000, dummy_block(0x1000));
        assert!(new);
        let (b, new) = cache.insert(0x1000, dummy_block(0x1000));
        assert!(!new, "second insert keeps the first block");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(Arc::ptr_eq(&a, &cache.get(0x1000).unwrap()));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_readers_and_writers_agree() {
        // 8 threads hammer insert+get over 64 addresses; afterwards every
        // address holds exactly one block with the right start field.
        let cache = ShardedCache::new(8);
        let addrs: Vec<Addr> = (0..64u32).map(|i| 0x2000 + i * 4).collect();
        std::thread::scope(|s| {
            for t in 0..8 {
                let cache = &cache;
                let addrs = &addrs;
                s.spawn(move || {
                    for (i, &pc) in addrs.iter().enumerate() {
                        if (i + t) % 2 == 0 {
                            cache.insert(pc, dummy_block(pc));
                        }
                        if let Some(b) = cache.get(pc) {
                            assert_eq!(b.start, pc);
                        }
                    }
                });
            }
        });
        for &pc in &addrs {
            cache.insert(pc, dummy_block(pc));
            assert_eq!(cache.get(pc).unwrap().start, pc);
        }
        assert_eq!(cache.len(), addrs.len());
    }
}
