//! The common execution-error type for both machine interpreters.

use crate::Addr;
use std::fmt;

/// An error raised while interpreting guest or host code.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// A load or store touched an address outside the mapped memory.
    MemoryFault {
        /// The faulting address.
        addr: Addr,
    },
    /// An unaligned access where the model requires alignment.
    Unaligned {
        /// The faulting address.
        addr: Addr,
        /// The required alignment in bytes.
        align: u32,
    },
    /// The program counter left the text section.
    BadPc {
        /// The faulting program-counter value.
        pc: Addr,
    },
    /// An instruction whose operand shape is invalid for its opcode.
    MalformedInstruction {
        /// Human-readable description of the shape violation.
        detail: String,
    },
    /// Integer division by zero.
    DivideByZero,
    /// The interpreter exceeded its instruction budget (runaway guest).
    Timeout {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// An undefined or unimplemented operation was executed.
    Undefined {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MemoryFault { addr } => write!(f, "memory fault at {addr:#010x}"),
            ExecError::Unaligned { addr, align } => {
                write!(
                    f,
                    "unaligned access at {addr:#010x} (requires {align}-byte alignment)"
                )
            }
            ExecError::BadPc { pc } => write!(f, "program counter left text section: {pc:#010x}"),
            ExecError::MalformedInstruction { detail } => {
                write!(f, "malformed instruction: {detail}")
            }
            ExecError::DivideByZero => f.write_str("integer division by zero"),
            ExecError::Timeout { budget } => {
                write!(f, "execution exceeded budget of {budget} instructions")
            }
            ExecError::Undefined { detail } => write!(f, "undefined operation: {detail}"),
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ExecError::MemoryFault { addr: 0x1000 };
        assert!(e.to_string().contains("0x00001000"));
        let e = ExecError::Unaligned { addr: 3, align: 4 };
        assert!(e.to_string().contains("4-byte"));
        let e = ExecError::Timeout { budget: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<ExecError>();
    }
}
