//! Shared ISA vocabulary for the `pdbt` workspace.
//!
//! Both machine models (`pdbt-isa-arm`, the guest, and `pdbt-isa-x86`, the
//! host) and the parameterization framework (`pdbt-core`) speak in terms of
//! the types defined here: condition flags, condition codes, operand
//! addressing-mode kinds, operation categories and data types used for
//! instruction-subgroup classification (paper §IV-A), and the common
//! execution-error type.

mod cond;
mod error;
mod flags;
pub mod mem;
mod operand;

pub use cond::Cond;
pub use error::ExecError;
pub use flags::{Flag, FlagSet, Flags};
pub use mem::Memory;
pub use operand::{AddrModeKind, AddrModeSet, DataType, EncodingFormat, OpCategory, Width};

/// A guest or host memory address (the models are 32-bit machines).
pub type Addr = u32;

/// Outcome of interpreting one instruction: where control goes next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Fall through to the next sequential instruction.
    Next,
    /// Jump to an absolute address.
    Jump(Addr),
    /// A call: jump to `target`, return address is `link`.
    Call { target: Addr, link: Addr },
    /// Stop execution (the guest executed its exit system call).
    Halt,
}

impl Control {
    /// Whether this outcome ends a basic block.
    #[must_use]
    pub fn ends_block(&self) -> bool {
        !matches!(self, Control::Next)
    }
}

/// Sign-extend the low `bits` bits of `v`.
#[must_use]
pub fn sign_extend(v: u32, bits: u32) -> u32 {
    debug_assert!((1..=32).contains(&bits));
    if bits == 32 {
        return v;
    }
    let shift = 32 - bits;
    (((v << shift) as i32) >> shift) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_extend_basics() {
        assert_eq!(sign_extend(0xff, 8), 0xffff_ffff);
        assert_eq!(sign_extend(0x7f, 8), 0x7f);
        assert_eq!(sign_extend(0x8000, 16), 0xffff_8000);
        assert_eq!(sign_extend(0x1234, 32), 0x1234);
        assert_eq!(sign_extend(1, 1), u32::MAX);
    }

    #[test]
    fn control_ends_block() {
        assert!(!Control::Next.ends_block());
        assert!(Control::Jump(4).ends_block());
        assert!(Control::Call { target: 8, link: 4 }.ends_block());
        assert!(Control::Halt.ends_block());
    }
}
