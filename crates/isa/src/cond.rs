//! Condition codes shared by both machine models.
//!
//! Both ISAs evaluate their conditional branches against the same four
//! flags, so a single condition-code enum serves the guest (`beq`, `bne`,
//! …) and the host (`je`, `jne`, …). `Display` is ARM-flavoured; the host
//! crate maps codes to x86 mnemonic suffixes itself.

use crate::flags::Flags;
use std::fmt;

/// A condition code over the N/Z/C/V flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cond {
    /// Equal (Z set).
    Eq,
    /// Not equal (Z clear).
    Ne,
    /// Carry set / unsigned higher-or-same.
    Cs,
    /// Carry clear / unsigned lower.
    Cc,
    /// Minus / negative (N set).
    Mi,
    /// Plus / positive-or-zero (N clear).
    Pl,
    /// Overflow set.
    Vs,
    /// Overflow clear.
    Vc,
    /// Unsigned higher (C set and Z clear).
    Hi,
    /// Unsigned lower-or-same (C clear or Z set).
    Ls,
    /// Signed greater-or-equal (N == V).
    Ge,
    /// Signed less-than (N != V).
    Lt,
    /// Signed greater-than (Z clear and N == V).
    Gt,
    /// Signed less-or-equal (Z set or N != V).
    Le,
    /// Always.
    Al,
}

impl Cond {
    /// All condition codes, in encoding order.
    pub const ALL: [Cond; 15] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Cs,
        Cond::Cc,
        Cond::Mi,
        Cond::Pl,
        Cond::Vs,
        Cond::Vc,
        Cond::Hi,
        Cond::Ls,
        Cond::Ge,
        Cond::Lt,
        Cond::Gt,
        Cond::Le,
        Cond::Al,
    ];

    /// Evaluates the condition against concrete flags.
    #[must_use]
    pub fn eval(self, f: Flags) -> bool {
        match self {
            Cond::Eq => f.z,
            Cond::Ne => !f.z,
            Cond::Cs => f.c,
            Cond::Cc => !f.c,
            Cond::Mi => f.n,
            Cond::Pl => !f.n,
            Cond::Vs => f.v,
            Cond::Vc => !f.v,
            Cond::Hi => f.c && !f.z,
            Cond::Ls => !f.c || f.z,
            Cond::Ge => f.n == f.v,
            Cond::Lt => f.n != f.v,
            Cond::Gt => !f.z && f.n == f.v,
            Cond::Le => f.z || f.n != f.v,
            Cond::Al => true,
        }
    }

    /// The logical negation (`Al` has no negation and returns itself).
    #[must_use]
    pub fn invert(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Cs => Cond::Cc,
            Cond::Cc => Cond::Cs,
            Cond::Mi => Cond::Pl,
            Cond::Pl => Cond::Mi,
            Cond::Vs => Cond::Vc,
            Cond::Vc => Cond::Vs,
            Cond::Hi => Cond::Ls,
            Cond::Ls => Cond::Hi,
            Cond::Ge => Cond::Lt,
            Cond::Lt => Cond::Ge,
            Cond::Gt => Cond::Le,
            Cond::Le => Cond::Gt,
            Cond::Al => Cond::Al,
        }
    }

    /// Encoding index (0–14), used by both models' binary encoders.
    #[must_use]
    pub fn index(self) -> u8 {
        Cond::ALL.iter().position(|c| *c == self).unwrap() as u8
    }

    /// Inverse of [`Cond::index`].
    #[must_use]
    pub fn from_index(i: u8) -> Option<Cond> {
        Cond::ALL.get(i as usize).copied()
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Cs => "cs",
            Cond::Cc => "cc",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
            Cond::Al => "",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(n: bool, z: bool, c: bool, v: bool) -> Flags {
        Flags { n, z, c, v }
    }

    #[test]
    fn eval_signed_comparisons() {
        // 3 cmp 5 → N=1 (3-5 negative), Z=0, V=0 → Lt true, Ge false.
        let f = flags(true, false, false, false);
        assert!(Cond::Lt.eval(f));
        assert!(!Cond::Ge.eval(f));
        assert!(Cond::Le.eval(f));
        assert!(!Cond::Gt.eval(f));
    }

    #[test]
    fn eval_unsigned_comparisons() {
        // 5 cmp 3 unsigned → C=1 (no borrow), Z=0 → Hi true, Ls false.
        let f = flags(false, false, true, false);
        assert!(Cond::Hi.eval(f));
        assert!(!Cond::Ls.eval(f));
        assert!(Cond::Cs.eval(f));
    }

    #[test]
    fn invert_is_involution_and_negates() {
        for c in Cond::ALL {
            assert_eq!(c.invert().invert(), c);
            if c != Cond::Al {
                // For every flag combination the inverted condition must
                // evaluate to the opposite value.
                for bits in 0..16u8 {
                    let f = flags(bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0);
                    assert_eq!(c.eval(f), !c.invert().eval(f), "{c:?} on {f}");
                }
            }
        }
    }

    #[test]
    fn index_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_index(c.index()), Some(c));
        }
        assert_eq!(Cond::from_index(15), None);
    }

    #[test]
    fn al_always_true() {
        for bits in 0..16u8 {
            let f = flags(bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0);
            assert!(Cond::Al.eval(f));
        }
    }
}
