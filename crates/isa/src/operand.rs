//! Classification vocabulary: addressing-mode kinds, operation categories,
//! data types and encoding formats.
//!
//! These are the two parameterization dimensions of the paper plus the
//! classification axes of §IV-A: instructions are first split by *data
//! type*, then by *encoding format* and *operation category*; within a
//! subgroup, rules are parameterized over *opcode* and *addressing mode*.

use std::fmt;

/// Access width of a memory operand or operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Width {
    /// 8 bits.
    B8,
    /// 16 bits.
    B16,
    /// 32 bits.
    B32,
}

impl Width {
    /// Width in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            Width::B8 => 1,
            Width::B16 => 2,
            Width::B32 => 4,
        }
    }

    /// Width in bits.
    #[must_use]
    pub fn bits(self) -> u32 {
        self.bytes() * 8
    }

    /// Mask selecting the low `bits()` bits.
    #[must_use]
    pub fn mask(self) -> u32 {
        match self {
            Width::B8 => 0xff,
            Width::B16 => 0xffff,
            Width::B32 => 0xffff_ffff,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bits())
    }
}

/// The addressing-mode *kind* of one operand position.
///
/// This is the unit of the paper's addressing-mode parameterization: a
/// parameterized rule records, per operand slot, the set of kinds the slot
/// may take (see [`AddrModeSet`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AddrModeKind {
    /// A register operand.
    Reg,
    /// An immediate operand.
    Imm,
    /// A register operand transformed by the barrel shifter (guest only).
    ShiftedReg,
    /// A memory operand.
    Mem,
}

impl AddrModeKind {
    /// All kinds, in canonical order.
    pub const ALL: [AddrModeKind; 4] = [
        AddrModeKind::Reg,
        AddrModeKind::Imm,
        AddrModeKind::ShiftedReg,
        AddrModeKind::Mem,
    ];

    fn bit(self) -> u8 {
        match self {
            AddrModeKind::Reg => 1,
            AddrModeKind::Imm => 2,
            AddrModeKind::ShiftedReg => 4,
            AddrModeKind::Mem => 8,
        }
    }
}

impl fmt::Display for AddrModeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AddrModeKind::Reg => "reg",
            AddrModeKind::Imm => "imm",
            AddrModeKind::ShiftedReg => "sreg",
            AddrModeKind::Mem => "mem",
        };
        f.write_str(s)
    }
}

/// A set of addressing-mode kinds an operand slot may take.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct AddrModeSet(u8);

impl AddrModeSet {
    /// The empty set.
    pub const EMPTY: AddrModeSet = AddrModeSet(0);
    /// Register only.
    pub const REG: AddrModeSet = AddrModeSet(1);
    /// Register or immediate — the usual flexible-operand generalization.
    pub const REG_IMM: AddrModeSet = AddrModeSet(1 | 2);
    /// Register, immediate or shifted register.
    pub const REG_IMM_SREG: AddrModeSet = AddrModeSet(1 | 2 | 4);
    /// Memory only (load sources / store targets, paper §IV-B guideline 3).
    pub const MEM: AddrModeSet = AddrModeSet(8);

    /// The singleton set `{k}`.
    #[must_use]
    pub fn single(k: AddrModeKind) -> AddrModeSet {
        AddrModeSet(k.bit())
    }

    /// Set from an iterator of kinds.
    pub fn from_kinds<I: IntoIterator<Item = AddrModeKind>>(iter: I) -> AddrModeSet {
        let mut s = AddrModeSet::EMPTY;
        for k in iter {
            s.0 |= k.bit();
        }
        s
    }

    /// Whether the set contains `k`.
    #[must_use]
    pub fn contains(self, k: AddrModeKind) -> bool {
        self.0 & k.bit() != 0
    }

    /// Inserts `k`.
    pub fn insert(&mut self, k: AddrModeKind) {
        self.0 |= k.bit();
    }

    /// Removes `k`.
    pub fn remove(&mut self, k: AddrModeKind) {
        self.0 &= !k.bit();
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of kinds in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over the kinds in canonical order.
    pub fn iter(self) -> impl Iterator<Item = AddrModeKind> {
        AddrModeKind::ALL
            .into_iter()
            .filter(move |k| self.contains(*k))
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: AddrModeSet) -> AddrModeSet {
        AddrModeSet(self.0 | other.0)
    }
}

impl FromIterator<AddrModeKind> for AddrModeSet {
    fn from_iter<I: IntoIterator<Item = AddrModeKind>>(iter: I) -> AddrModeSet {
        AddrModeSet::from_kinds(iter)
    }
}

impl fmt::Debug for AddrModeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AddrModeSet{{")?;
        let mut first = true;
        for k in self.iter() {
            if !first {
                write!(f, "|")?;
            }
            write!(f, "{k}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for AddrModeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("none");
        }
        let mut first = true;
        for k in self.iter() {
            if !first {
                f.write_str("/")?;
            }
            write!(f, "{k}")?;
            first = false;
        }
        Ok(())
    }
}

/// Data type embedded in an opcode (paper §IV-A: the first classification
/// axis — rules never parameterize across data types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// Integer operations.
    Int,
    /// Scalar floating-point operations.
    Float,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DataType::Int => "int",
            DataType::Float => "float",
        })
    }
}

/// Operation category (paper §IV-A, second classification guideline): the
/// five ARM subgroups of the paper, shared by the host model so that each
/// guest subgroup has a corresponding host subgroup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpCategory {
    /// Arithmetic and logic (`add`, `and`, `sub`, …).
    ArithLogic,
    /// Data transfer from memory (or operand) into registers (`mov`, `ldr`).
    LoadToReg,
    /// Data transfer from registers to memory (`str`).
    StoreToMem,
    /// Compare (`cmp`, `tst`) — flag-only producers.
    Compare,
    /// Everything else (`b`, `push`, `pop`, …) — not parameterizable.
    Other,
}

impl OpCategory {
    /// The categories the parameterization framework operates on.
    pub const PARAMETERIZABLE: [OpCategory; 4] = [
        OpCategory::ArithLogic,
        OpCategory::LoadToReg,
        OpCategory::StoreToMem,
        OpCategory::Compare,
    ];

    /// Whether rules of this category may be parameterized at all.
    #[must_use]
    pub fn is_parameterizable(self) -> bool {
        !matches!(self, OpCategory::Other)
    }
}

impl fmt::Display for OpCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OpCategory::ArithLogic => "arith-logic",
            OpCategory::LoadToReg => "load-to-reg",
            OpCategory::StoreToMem => "store-to-mem",
            OpCategory::Compare => "compare",
            OpCategory::Other => "other",
        })
    }
}

/// Encoding format (paper §IV-A, first classification guideline: "the same
/// length for X86 or the same R-type for MIPS").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EncodingFormat {
    /// Guest data-processing format (3-operand, flexible second source).
    GuestDp,
    /// Guest load/store format (register + memory operand).
    GuestLdSt,
    /// Guest multiply format (`mul`/`mla` family — distinct encoding).
    GuestMul,
    /// Guest branch format.
    GuestBranch,
    /// Guest floating-point format.
    GuestVfp,
    /// Guest miscellaneous format (`push`/`pop`/`svc`/`clz`).
    GuestMisc,
    /// Host two-operand ALU format.
    HostAlu,
    /// Host move/load/store format.
    HostMov,
    /// Host unary format (`not`, `neg`, `setcc`).
    HostUnary,
    /// Host branch/call format.
    HostBranch,
    /// Host floating-point (scalar SSE-like) format.
    HostSse,
    /// Host miscellaneous format.
    HostMisc,
}

impl fmt::Display for EncodingFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EncodingFormat::GuestDp => "g-dp",
            EncodingFormat::GuestLdSt => "g-ldst",
            EncodingFormat::GuestMul => "g-mul",
            EncodingFormat::GuestBranch => "g-br",
            EncodingFormat::GuestVfp => "g-vfp",
            EncodingFormat::GuestMisc => "g-misc",
            EncodingFormat::HostAlu => "h-alu",
            EncodingFormat::HostMov => "h-mov",
            EncodingFormat::HostUnary => "h-unary",
            EncodingFormat::HostBranch => "h-br",
            EncodingFormat::HostSse => "h-sse",
            EncodingFormat::HostMisc => "h-misc",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_accessors() {
        assert_eq!(Width::B8.bytes(), 1);
        assert_eq!(Width::B16.bits(), 16);
        assert_eq!(Width::B32.mask(), u32::MAX);
        assert_eq!(Width::B8.mask(), 0xff);
        assert_eq!(Width::B32.to_string(), "32");
    }

    #[test]
    fn addrmode_set_ops() {
        let mut s = AddrModeSet::EMPTY;
        assert!(s.is_empty());
        s.insert(AddrModeKind::Reg);
        s.insert(AddrModeKind::Imm);
        assert_eq!(s, AddrModeSet::REG_IMM);
        assert!(s.contains(AddrModeKind::Reg));
        assert!(!s.contains(AddrModeKind::Mem));
        s.remove(AddrModeKind::Imm);
        assert_eq!(s, AddrModeSet::REG);
        assert_eq!(s.len(), 1);
        assert_eq!(AddrModeSet::REG_IMM.union(AddrModeSet::MEM).len(), 3);
    }

    #[test]
    fn addrmode_set_display() {
        assert_eq!(AddrModeSet::REG_IMM.to_string(), "reg/imm");
        assert_eq!(AddrModeSet::EMPTY.to_string(), "none");
        assert_eq!(AddrModeSet::MEM.to_string(), "mem");
    }

    #[test]
    fn addrmode_set_from_iter() {
        let s: AddrModeSet = [AddrModeKind::Mem, AddrModeKind::Reg].into_iter().collect();
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![AddrModeKind::Reg, AddrModeKind::Mem]
        );
    }

    #[test]
    fn categories() {
        assert!(OpCategory::ArithLogic.is_parameterizable());
        assert!(!OpCategory::Other.is_parameterizable());
        assert_eq!(OpCategory::PARAMETERIZABLE.len(), 4);
    }
}
