//! Condition flags shared by the guest and host machine models.
//!
//! The guest (ARM-like) calls them N/Z/C/V in `CPSR`; the host (x86-like)
//! calls them SF/ZF/CF/OF in `EFLAGS`. The paper's condition-flag delegation
//! (§IV-B, §IV-D) relies on the fact that "a large part of the condition
//! codes are the same in all ISAs", so both models share this one
//! representation and the delegation analysis maps N↔SF, Z↔ZF, C↔CF, V↔OF.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Not, Sub};

/// One condition flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Flag {
    /// Negative (ARM N, x86 SF).
    N,
    /// Zero (ARM Z, x86 ZF).
    Z,
    /// Carry (ARM C, x86 CF — note ARM borrow semantics are inverted; the
    /// machine models handle that in their interpreters).
    C,
    /// Overflow (ARM V, x86 OF).
    V,
}

impl Flag {
    /// All four flags in canonical order.
    pub const ALL: [Flag; 4] = [Flag::N, Flag::Z, Flag::C, Flag::V];

    fn bit(self) -> u8 {
        match self {
            Flag::N => 1 << 0,
            Flag::Z => 1 << 1,
            Flag::C => 1 << 2,
            Flag::V => 1 << 3,
        }
    }
}

impl fmt::Display for Flag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Flag::N => "N",
            Flag::Z => "Z",
            Flag::C => "C",
            Flag::V => "V",
        };
        f.write_str(s)
    }
}

/// A set of condition flags, e.g. the flags an instruction defines or reads.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct FlagSet(u8);

impl FlagSet {
    /// The empty set.
    pub const EMPTY: FlagSet = FlagSet(0);
    /// All four flags.
    pub const NZCV: FlagSet = FlagSet(0b1111);
    /// N and Z only (logical operations on the guest).
    pub const NZ: FlagSet = FlagSet(0b0011);
    /// N, Z and C (shifter-carry logical operations).
    pub const NZC: FlagSet = FlagSet(0b0111);

    /// Creates a set from an iterator of flags.
    pub fn from_flags<I: IntoIterator<Item = Flag>>(iter: I) -> FlagSet {
        let mut s = FlagSet::EMPTY;
        for f in iter {
            s |= FlagSet::single(f);
        }
        s
    }

    /// The singleton set `{f}`.
    #[must_use]
    pub fn single(f: Flag) -> FlagSet {
        FlagSet(f.bit())
    }

    /// Whether the set contains `f`.
    #[must_use]
    pub fn contains(self, f: Flag) -> bool {
        self.0 & f.bit() != 0
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `self` and `other` share any flag.
    #[must_use]
    pub fn intersects(self, other: FlagSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether every flag in `other` is also in `self`.
    #[must_use]
    pub fn contains_all(self, other: FlagSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Iterates over the flags in the set in canonical order.
    pub fn iter(self) -> impl Iterator<Item = Flag> {
        Flag::ALL.into_iter().filter(move |f| self.contains(*f))
    }

    /// Number of flags in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }
}

impl BitOr for FlagSet {
    type Output = FlagSet;
    fn bitor(self, rhs: FlagSet) -> FlagSet {
        FlagSet(self.0 | rhs.0)
    }
}

impl BitOrAssign for FlagSet {
    fn bitor_assign(&mut self, rhs: FlagSet) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for FlagSet {
    type Output = FlagSet;
    fn bitand(self, rhs: FlagSet) -> FlagSet {
        FlagSet(self.0 & rhs.0)
    }
}

impl Sub for FlagSet {
    type Output = FlagSet;
    fn sub(self, rhs: FlagSet) -> FlagSet {
        FlagSet(self.0 & !rhs.0)
    }
}

impl Not for FlagSet {
    type Output = FlagSet;
    fn not(self) -> FlagSet {
        FlagSet(!self.0 & 0b1111)
    }
}

impl FromIterator<Flag> for FlagSet {
    fn from_iter<I: IntoIterator<Item = Flag>>(iter: I) -> FlagSet {
        FlagSet::from_flags(iter)
    }
}

impl fmt::Debug for FlagSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FlagSet{{")?;
        for flag in self.iter() {
            write!(f, "{flag}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for FlagSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("-");
        }
        for flag in self.iter() {
            write!(f, "{flag}")?;
        }
        Ok(())
    }
}

/// Concrete values of the four condition flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Flags {
    /// Negative / sign flag.
    pub n: bool,
    /// Zero flag.
    pub z: bool,
    /// Carry flag.
    pub c: bool,
    /// Overflow flag.
    pub v: bool,
}

impl Flags {
    /// Reads one flag.
    #[must_use]
    pub fn get(&self, f: Flag) -> bool {
        match f {
            Flag::N => self.n,
            Flag::Z => self.z,
            Flag::C => self.c,
            Flag::V => self.v,
        }
    }

    /// Writes one flag.
    pub fn set(&mut self, f: Flag, val: bool) {
        match f {
            Flag::N => self.n = val,
            Flag::Z => self.z = val,
            Flag::C => self.c = val,
            Flag::V => self.v = val,
        }
    }

    /// Sets N and Z from a 32-bit result.
    pub fn set_nz(&mut self, result: u32) {
        self.n = (result as i32) < 0;
        self.z = result == 0;
    }

    /// Copies only the flags in `mask` from `other`.
    pub fn copy_masked(&mut self, other: Flags, mask: FlagSet) {
        for f in mask.iter() {
            self.set(f, other.get(f));
        }
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}",
            if self.n { 'N' } else { 'n' },
            if self.z { 'Z' } else { 'z' },
            if self.c { 'C' } else { 'c' },
            if self.v { 'V' } else { 'v' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flagset_ops() {
        let nz = FlagSet::single(Flag::N) | FlagSet::single(Flag::Z);
        assert_eq!(nz, FlagSet::NZ);
        assert!(nz.contains(Flag::N));
        assert!(!nz.contains(Flag::C));
        assert!(nz.intersects(FlagSet::NZCV));
        assert!(FlagSet::NZCV.contains_all(nz));
        assert!(!nz.contains_all(FlagSet::NZCV));
        assert_eq!((FlagSet::NZCV - nz).len(), 2);
        assert_eq!(!FlagSet::NZCV, FlagSet::EMPTY);
        assert_eq!(nz.iter().collect::<Vec<_>>(), vec![Flag::N, Flag::Z]);
    }

    #[test]
    fn flagset_display() {
        assert_eq!(FlagSet::EMPTY.to_string(), "-");
        assert_eq!(FlagSet::NZCV.to_string(), "NZCV");
        assert_eq!(format!("{:?}", FlagSet::NZ), "FlagSet{NZ}");
    }

    #[test]
    fn flags_set_nz() {
        let mut f = Flags::default();
        f.set_nz(0);
        assert!(f.z && !f.n);
        f.set_nz(0x8000_0000);
        assert!(!f.z && f.n);
        f.set_nz(7);
        assert!(!f.z && !f.n);
    }

    #[test]
    fn flags_copy_masked() {
        let mut a = Flags::default();
        let b = Flags {
            n: true,
            z: true,
            c: true,
            v: true,
        };
        a.copy_masked(b, FlagSet::NZ);
        assert!(a.n && a.z && !a.c && !a.v);
    }

    #[test]
    fn flags_get_set_roundtrip() {
        let mut f = Flags::default();
        for flag in Flag::ALL {
            f.set(flag, true);
            assert!(f.get(flag));
            f.set(flag, false);
            assert!(!f.get(flag));
        }
    }

    #[test]
    fn from_iterator() {
        let s: FlagSet = [Flag::C, Flag::V].into_iter().collect();
        assert!(s.contains(Flag::C) && s.contains(Flag::V) && s.len() == 2);
    }
}
