//! A simple paged, little-endian memory shared by the guest and host
//! machine models.
//!
//! Pages are allocated on demand inside explicitly mapped regions;
//! accesses outside any mapped region fault, which is how the interpreters
//! catch miscompiled or mistranslated address arithmetic.

use crate::{Addr, ExecError, Width};
use std::collections::HashMap;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: u32 = 1 << PAGE_BITS;

/// Little-endian byte-addressable memory with demand-paged storage.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE as usize]>>,
    regions: Vec<(Addr, Addr)>, // [start, end) mapped ranges
}

impl Memory {
    /// Creates an empty memory with no mapped regions.
    #[must_use]
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Maps `[base, base + size)` as accessible. Overlapping maps are
    /// allowed and merged logically.
    pub fn map(&mut self, base: Addr, size: u32) {
        assert!(size > 0, "cannot map an empty region");
        let end = base
            .checked_add(size)
            .expect("region wraps the address space");
        self.regions.push((base, end));
    }

    /// Whether `[addr, addr + len)` lies inside one mapped region.
    #[must_use]
    pub fn is_mapped(&self, addr: Addr, len: u32) -> bool {
        let Some(end) = addr.checked_add(len) else {
            return false;
        };
        self.regions.iter().any(|&(s, e)| addr >= s && end <= e)
    }

    fn check(&self, addr: Addr, len: u32) -> Result<(), ExecError> {
        if self.is_mapped(addr, len) {
            Ok(())
        } else {
            Err(ExecError::MemoryFault { addr })
        }
    }

    fn byte(&self, addr: Addr) -> u8 {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(p) => p[(addr & (PAGE_SIZE - 1)) as usize],
            None => 0,
        }
    }

    fn byte_mut(&mut self, addr: Addr) -> &mut u8 {
        let page = self
            .pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
        &mut page[(addr & (PAGE_SIZE - 1)) as usize]
    }

    /// Loads a value of the given width, zero-extended to 32 bits.
    ///
    /// # Errors
    ///
    /// [`ExecError::MemoryFault`] if any byte of the access is unmapped.
    pub fn load(&self, addr: Addr, width: Width) -> Result<u32, ExecError> {
        self.check(addr, width.bytes())?;
        let mut v = 0u32;
        for i in 0..width.bytes() {
            v |= u32::from(self.byte(addr + i)) << (8 * i);
        }
        Ok(v)
    }

    /// Stores the low `width` bits of `value`.
    ///
    /// # Errors
    ///
    /// [`ExecError::MemoryFault`] if any byte of the access is unmapped.
    pub fn store(&mut self, addr: Addr, value: u32, width: Width) -> Result<(), ExecError> {
        self.check(addr, width.bytes())?;
        for i in 0..width.bytes() {
            *self.byte_mut(addr + i) = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Loads a 32-bit word.
    ///
    /// # Errors
    ///
    /// See [`Memory::load`].
    pub fn load32(&self, addr: Addr) -> Result<u32, ExecError> {
        self.load(addr, Width::B32)
    }

    /// Stores a 32-bit word.
    ///
    /// # Errors
    ///
    /// See [`Memory::store`].
    pub fn store32(&mut self, addr: Addr, value: u32) -> Result<(), ExecError> {
        self.store(addr, value, Width::B32)
    }

    /// Writes a byte slice starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`ExecError::MemoryFault`] if the range is unmapped.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), ExecError> {
        self.check(addr, bytes.len() as u32)?;
        for (i, b) in bytes.iter().enumerate() {
            *self.byte_mut(addr + i as u32) = *b;
        }
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`ExecError::MemoryFault`] if the range is unmapped.
    pub fn read_bytes(&self, addr: Addr, len: u32) -> Result<Vec<u8>, ExecError> {
        self.check(addr, len)?;
        Ok((0..len).map(|i| self.byte(addr + i)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_access_faults() {
        let m = Memory::new();
        assert_eq!(
            m.load32(0x1000),
            Err(ExecError::MemoryFault { addr: 0x1000 })
        );
    }

    #[test]
    fn map_load_store_roundtrip() {
        let mut m = Memory::new();
        m.map(0x1000, 0x1000);
        m.store32(0x1000, 0xdead_beef).unwrap();
        assert_eq!(m.load32(0x1000).unwrap(), 0xdead_beef);
        // Little-endian byte order.
        assert_eq!(m.load(0x1000, Width::B8).unwrap(), 0xef);
        assert_eq!(m.load(0x1001, Width::B8).unwrap(), 0xbe);
        assert_eq!(m.load(0x1000, Width::B16).unwrap(), 0xbeef);
    }

    #[test]
    fn narrow_store_preserves_neighbors() {
        let mut m = Memory::new();
        m.map(0, 0x100);
        m.store32(0, 0x1122_3344).unwrap();
        m.store(1, 0xaa, Width::B8).unwrap();
        assert_eq!(m.load32(0).unwrap(), 0x1122_aa44);
        m.store(2, 0xbbcc, Width::B16).unwrap();
        assert_eq!(m.load32(0).unwrap(), 0xbbcc_aa44);
    }

    #[test]
    fn boundary_access_fails_partially_outside() {
        let mut m = Memory::new();
        m.map(0x1000, 0x10);
        assert!(m.load32(0x100c).is_ok());
        assert!(m.load32(0x100d).is_err());
        assert!(m.load(0x100f, Width::B8).is_ok());
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        m.map(0, 0x3000);
        m.store32(0xffe, 0xcafe_f00d).unwrap();
        assert_eq!(m.load32(0xffe).unwrap(), 0xcafe_f00d);
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let mut m = Memory::new();
        m.map(0x2000, 0x100);
        m.write_bytes(0x2000, &[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(m.read_bytes(0x2000, 5).unwrap(), vec![1, 2, 3, 4, 5]);
        assert!(m.write_bytes(0x20fe, &[0; 4]).is_err());
    }

    #[test]
    fn zero_initialized() {
        let mut m = Memory::new();
        m.map(0x5000, 0x100);
        assert_eq!(m.load32(0x5000).unwrap(), 0);
    }
}
