//! A simple paged, little-endian memory shared by the guest and host
//! machine models.
//!
//! Pages are allocated on demand inside explicitly mapped regions;
//! accesses outside any mapped region fault, which is how the interpreters
//! catch miscompiled or mistranslated address arithmetic.
//!
//! Translated DBT code hammers a tiny working set — the environment
//! page holding the guest registers above all — so the hot paths keep
//! two one-entry caches (last matched region, last touched page) that
//! turn the common access into two compares and an array index. Both
//! caches are pure memoization behind [`std::cell::Cell`]: they never
//! change an access's result, only how it is found.

use crate::{Addr, ExecError, Width};
use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: u32 = 1 << PAGE_BITS;

/// Page-number hasher: one multiply by a 64-bit odd constant
/// (Fibonacci hashing). Page numbers are small dense integers, so
/// SipHash's DoS resistance buys nothing here and its cost lands on
/// every executed load/store of both machine models.
#[derive(Debug, Clone, Copy, Default)]
pub struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("page keys hash via write_u32");
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = u64::from(n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type Page = Box<[u8; PAGE_SIZE as usize]>;

/// Little-endian byte-addressable memory with demand-paged storage.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    /// Page number → index into `arena`. Pages are never deallocated,
    /// so arena indices stay valid for the life of the memory.
    pages: HashMap<u32, u32, BuildHasherDefault<PageHasher>>,
    arena: Vec<Page>,
    regions: Vec<(Addr, Addr)>, // [start, end) mapped ranges
    /// `(page number + 1, arena index)` of the last page touched;
    /// `(0, _)` means empty. The `+1` keeps page 0 distinguishable.
    last_page: Cell<(u32, u32)>,
    /// Bounds of the last region that satisfied a mapping check.
    last_region: Cell<(Addr, Addr)>,
}

impl Memory {
    /// Creates an empty memory with no mapped regions.
    #[must_use]
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Maps `[base, base + size)` as accessible. Overlapping maps are
    /// allowed and merged logically.
    pub fn map(&mut self, base: Addr, size: u32) {
        assert!(size > 0, "cannot map an empty region");
        let end = base
            .checked_add(size)
            .expect("region wraps the address space");
        self.regions.push((base, end));
    }

    /// Whether `[addr, addr + len)` lies inside one mapped region.
    #[must_use]
    #[inline]
    pub fn is_mapped(&self, addr: Addr, len: u32) -> bool {
        let Some(end) = addr.checked_add(len) else {
            return false;
        };
        let (s, e) = self.last_region.get();
        if addr >= s && end <= e {
            return true;
        }
        for &(s, e) in &self.regions {
            if addr >= s && end <= e {
                self.last_region.set((s, e));
                return true;
            }
        }
        false
    }

    #[inline]
    fn check(&self, addr: Addr, len: u32) -> Result<(), ExecError> {
        if self.is_mapped(addr, len) {
            Ok(())
        } else {
            Err(ExecError::MemoryFault { addr })
        }
    }

    /// The page holding `addr`, if it has ever been written.
    #[inline]
    fn page(&self, pn: u32) -> Option<&Page> {
        let (tag, idx) = self.last_page.get();
        if tag == pn + 1 {
            return Some(&self.arena[idx as usize]);
        }
        let idx = *self.pages.get(&pn)?;
        self.last_page.set((pn + 1, idx));
        Some(&self.arena[idx as usize])
    }

    /// The page holding `addr`, allocated (zeroed) on first write.
    #[inline]
    fn page_mut(&mut self, pn: u32) -> &mut Page {
        let (tag, idx) = self.last_page.get();
        if tag == pn + 1 {
            return &mut self.arena[idx as usize];
        }
        let idx = match self.pages.get(&pn) {
            Some(&i) => i,
            None => {
                let i = self.arena.len() as u32;
                self.arena.push(Box::new([0u8; PAGE_SIZE as usize]));
                self.pages.insert(pn, i);
                i
            }
        };
        self.last_page.set((pn + 1, idx));
        &mut self.arena[idx as usize]
    }

    #[inline]
    fn byte(&self, addr: Addr) -> u8 {
        match self.page(addr >> PAGE_BITS) {
            Some(p) => p[(addr & (PAGE_SIZE - 1)) as usize],
            None => 0,
        }
    }

    #[inline]
    fn byte_mut(&mut self, addr: Addr) -> &mut u8 {
        &mut self.page_mut(addr >> PAGE_BITS)[(addr & (PAGE_SIZE - 1)) as usize]
    }

    /// Loads a value of the given width, zero-extended to 32 bits.
    ///
    /// # Errors
    ///
    /// [`ExecError::MemoryFault`] if any byte of the access is unmapped.
    #[inline]
    pub fn load(&self, addr: Addr, width: Width) -> Result<u32, ExecError> {
        let len = width.bytes();
        self.check(addr, len)?;
        let off = (addr & (PAGE_SIZE - 1)) as usize;
        if off + len as usize <= PAGE_SIZE as usize {
            // Whole access inside one page: a single page probe instead
            // of one per byte. This is the hot path of both machine
            // models — every executed load lands here except the rare
            // page-straddling access.
            let Some(p) = self.page(addr >> PAGE_BITS) else {
                return Ok(0); // demand-paged: untouched pages read zero
            };
            let mut v = 0u32;
            for (i, b) in p[off..off + len as usize].iter().enumerate() {
                v |= u32::from(*b) << (8 * i);
            }
            Ok(v)
        } else {
            let mut v = 0u32;
            for i in 0..len {
                v |= u32::from(self.byte(addr + i)) << (8 * i);
            }
            Ok(v)
        }
    }

    /// Stores the low `width` bits of `value`.
    ///
    /// # Errors
    ///
    /// [`ExecError::MemoryFault`] if any byte of the access is unmapped.
    #[inline]
    pub fn store(&mut self, addr: Addr, value: u32, width: Width) -> Result<(), ExecError> {
        let len = width.bytes();
        self.check(addr, len)?;
        let off = (addr & (PAGE_SIZE - 1)) as usize;
        if off + len as usize <= PAGE_SIZE as usize {
            let page = self.page_mut(addr >> PAGE_BITS);
            for (i, b) in page[off..off + len as usize].iter_mut().enumerate() {
                *b = (value >> (8 * i)) as u8;
            }
        } else {
            for i in 0..len {
                *self.byte_mut(addr + i) = (value >> (8 * i)) as u8;
            }
        }
        Ok(())
    }

    /// Loads a 32-bit word.
    ///
    /// # Errors
    ///
    /// See [`Memory::load`].
    #[inline]
    pub fn load32(&self, addr: Addr) -> Result<u32, ExecError> {
        self.check(addr, 4)?;
        let off = (addr & (PAGE_SIZE - 1)) as usize;
        if off <= PAGE_SIZE as usize - 4 {
            Ok(match self.page(addr >> PAGE_BITS) {
                Some(p) => u32::from_le_bytes([p[off], p[off + 1], p[off + 2], p[off + 3]]),
                None => 0,
            })
        } else {
            let mut v = 0u32;
            for i in 0..4 {
                v |= u32::from(self.byte(addr + i)) << (8 * i);
            }
            Ok(v)
        }
    }

    /// Stores a 32-bit word.
    ///
    /// # Errors
    ///
    /// See [`Memory::store`].
    #[inline]
    pub fn store32(&mut self, addr: Addr, value: u32) -> Result<(), ExecError> {
        self.check(addr, 4)?;
        let off = (addr & (PAGE_SIZE - 1)) as usize;
        if off <= PAGE_SIZE as usize - 4 {
            let page = self.page_mut(addr >> PAGE_BITS);
            page[off..off + 4].copy_from_slice(&value.to_le_bytes());
        } else {
            for i in 0..4 {
                *self.byte_mut(addr + i) = (value >> (8 * i)) as u8;
            }
        }
        Ok(())
    }

    /// Writes a byte slice starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`ExecError::MemoryFault`] if the range is unmapped.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), ExecError> {
        self.check(addr, bytes.len() as u32)?;
        for (i, b) in bytes.iter().enumerate() {
            *self.byte_mut(addr + i as u32) = *b;
        }
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`ExecError::MemoryFault`] if the range is unmapped.
    pub fn read_bytes(&self, addr: Addr, len: u32) -> Result<Vec<u8>, ExecError> {
        self.check(addr, len)?;
        Ok((0..len).map(|i| self.byte(addr + i)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_access_faults() {
        let m = Memory::new();
        assert_eq!(
            m.load32(0x1000),
            Err(ExecError::MemoryFault { addr: 0x1000 })
        );
    }

    #[test]
    fn map_load_store_roundtrip() {
        let mut m = Memory::new();
        m.map(0x1000, 0x1000);
        m.store32(0x1000, 0xdead_beef).unwrap();
        assert_eq!(m.load32(0x1000).unwrap(), 0xdead_beef);
        // Little-endian byte order.
        assert_eq!(m.load(0x1000, Width::B8).unwrap(), 0xef);
        assert_eq!(m.load(0x1001, Width::B8).unwrap(), 0xbe);
        assert_eq!(m.load(0x1000, Width::B16).unwrap(), 0xbeef);
    }

    #[test]
    fn narrow_store_preserves_neighbors() {
        let mut m = Memory::new();
        m.map(0, 0x100);
        m.store32(0, 0x1122_3344).unwrap();
        m.store(1, 0xaa, Width::B8).unwrap();
        assert_eq!(m.load32(0).unwrap(), 0x1122_aa44);
        m.store(2, 0xbbcc, Width::B16).unwrap();
        assert_eq!(m.load32(0).unwrap(), 0xbbcc_aa44);
    }

    #[test]
    fn boundary_access_fails_partially_outside() {
        let mut m = Memory::new();
        m.map(0x1000, 0x10);
        assert!(m.load32(0x100c).is_ok());
        assert!(m.load32(0x100d).is_err());
        assert!(m.load(0x100f, Width::B8).is_ok());
    }

    /// The one-entry region cache must not satisfy a range the cached
    /// region only partially covers.
    #[test]
    fn region_cache_respects_bounds() {
        let mut m = Memory::new();
        m.map(0x1000, 0x10);
        m.map(0x2000, 0x10);
        // Prime the cache with the first region, then check accesses
        // against the second and outside both.
        assert!(m.load32(0x1000).is_ok());
        assert!(m.load32(0x2008).is_ok());
        assert!(m.load32(0x100c).is_ok());
        assert!(m.load32(0x100d).is_err());
        assert!(m.load32(0x1800).is_err());
    }

    /// The one-entry page cache must follow writes across pages.
    #[test]
    fn page_cache_tracks_distinct_pages() {
        let mut m = Memory::new();
        m.map(0, 0x4000);
        m.store32(0x0010, 0x1111_1111).unwrap();
        m.store32(0x1010, 0x2222_2222).unwrap();
        m.store32(0x2010, 0x3333_3333).unwrap();
        assert_eq!(m.load32(0x0010).unwrap(), 0x1111_1111);
        assert_eq!(m.load32(0x1010).unwrap(), 0x2222_2222);
        assert_eq!(m.load32(0x2010).unwrap(), 0x3333_3333);
        // Page 3 was never written: reads as zero without allocating.
        assert_eq!(m.load32(0x3010).unwrap(), 0);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        m.map(0, 0x3000);
        m.store32(0xffe, 0xcafe_f00d).unwrap();
        assert_eq!(m.load32(0xffe).unwrap(), 0xcafe_f00d);
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let mut m = Memory::new();
        m.map(0x2000, 0x100);
        m.write_bytes(0x2000, &[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(m.read_bytes(0x2000, 5).unwrap(), vec![1, 2, 3, 4, 5]);
        assert!(m.write_bytes(0x20fe, &[0; 4]).is_err());
    }

    #[test]
    fn zero_initialized() {
        let mut m = Memory::new();
        m.map(0x5000, 0x100);
        assert_eq!(m.load32(0x5000).unwrap(), 0);
    }

    /// Clones share no state: the caches memoize per-instance.
    #[test]
    fn clone_is_independent() {
        let mut a = Memory::new();
        a.map(0x1000, 0x100);
        a.store32(0x1000, 7).unwrap();
        let mut b = a.clone();
        b.store32(0x1000, 9).unwrap();
        assert_eq!(a.load32(0x1000).unwrap(), 7);
        assert_eq!(b.load32(0x1000).unwrap(), 9);
    }
}
