//! Deterministic fault injection for the pdbt pipeline.
//!
//! A production DBT must *degrade* under partial failure — a combo that
//! cannot be verified is a rejection, a corrupt rule-store entry is a
//! quarantine, an untranslatable block falls back to interpretation —
//! and degraded paths that are never executed rot. This crate provides
//! the seeded fault points that exercise them on demand: each
//! hardened consumer asks [`hit`] at a named [`Site`], and the answer
//! is a pure function of `(seed, site, key)`, so the same plan injects
//! the same faults no matter how work is scheduled across worker
//! threads. That keying is what preserves the pipeline's
//! serial-vs-parallel bit-identity even while faults are firing.
//!
//! A fault plan is configured programmatically ([`configure`]), from
//! the `PDBT_FAULTS` environment variable, or from the `--faults` CLI
//! flag, all sharing one spec syntax:
//!
//! ```text
//! seed=7,rate=0.01,sites=symexec,emit,store,pool,cache
//! ```
//!
//! With the `enabled` cargo feature off (the default everywhere), every
//! entry point is an inlinable no-op and [`hit`] is constant `false`;
//! the call sites stay in the code but cost nothing. Per-site injection
//! counters ([`injected`]) are folded into the engine's run report so a
//! fault-matrix harness can assert that faults actually fired.

use std::fmt;

/// Number of fault sites (the length of [`Site::ALL`]).
pub const SITE_COUNT: usize = 5;

/// A named fault point in the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Inside `symexec::check`: the verdict degrades to a conservative
    /// rejection, as if the checker timed out.
    Symexec,
    /// Template emission during derivation: the candidate is treated as
    /// un-emittable and quarantined.
    Emit,
    /// Rule-store parsing: the entry is treated as corrupt; salvage
    /// mode quarantines it and loads the rest.
    Store,
    /// Inside a worker-pool task: the worker panics; the isolating map
    /// quarantines the item instead of propagating.
    Pool,
    /// Code-cache/translation lookup in the engine: the block fails to
    /// translate and execution degrades to the interpreter.
    Cache,
}

impl Site {
    /// Every site, in counter-index order.
    pub const ALL: [Site; SITE_COUNT] = [
        Site::Symexec,
        Site::Emit,
        Site::Store,
        Site::Pool,
        Site::Cache,
    ];

    /// The site's dense counter index.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Site::Symexec => 0,
            Site::Emit => 1,
            Site::Store => 2,
            Site::Pool => 3,
            Site::Cache => 4,
        }
    }

    /// The site's spec-syntax name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Site::Symexec => "symexec",
            Site::Emit => "emit",
            Site::Store => "store",
            Site::Pool => "pool",
            Site::Cache => "cache",
        }
    }

    /// Parses a spec-syntax site name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Site> {
        Site::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fault-injection plan: which sites fire, how often, under which
/// seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    /// Seed mixed into every per-site decision.
    pub seed: u64,
    /// Per-key firing probability in `[0, 1]`.
    pub rate: f64,
    /// Bitmask of enabled sites (bit = [`Site::index`]).
    pub sites: u8,
}

impl Plan {
    /// A plan enabling a single site.
    #[must_use]
    pub fn single(site: Site, seed: u64, rate: f64) -> Plan {
        Plan {
            seed,
            rate,
            sites: 1 << site.index(),
        }
    }

    /// A plan enabling every site.
    #[must_use]
    pub fn all_sites(seed: u64, rate: f64) -> Plan {
        Plan {
            seed,
            rate,
            sites: (1 << SITE_COUNT) - 1,
        }
    }

    /// Parses the shared spec syntax, e.g.
    /// `seed=7,rate=0.01,sites=symexec,emit`. Fields may appear in any
    /// order; `sites` consumes the comma-separated names that follow it
    /// until the next `key=value` field. Omitted fields default to
    /// `seed=0`, `rate=1.0`, all sites.
    ///
    /// # Errors
    ///
    /// A description of the malformed field.
    pub fn parse(spec: &str) -> Result<Plan, String> {
        let mut plan = Plan {
            seed: 0,
            rate: 1.0,
            sites: (1 << SITE_COUNT) - 1,
        };
        let mut in_sites = false;
        for piece in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            match piece.split_once('=') {
                Some(("seed", v)) => {
                    in_sites = false;
                    plan.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
                }
                Some(("rate", v)) => {
                    in_sites = false;
                    plan.rate = v.parse().map_err(|_| format!("bad rate `{v}`"))?;
                    if !(0.0..=1.0).contains(&plan.rate) {
                        return Err(format!("rate `{v}` outside [0, 1]"));
                    }
                }
                Some(("sites", v)) => {
                    in_sites = true;
                    plan.sites = 0;
                    if !v.is_empty() {
                        let site = Site::parse(v).ok_or_else(|| format!("unknown site `{v}`"))?;
                        plan.sites |= 1 << site.index();
                    }
                }
                Some((k, _)) => return Err(format!("unknown field `{k}`")),
                None if in_sites => {
                    let site =
                        Site::parse(piece).ok_or_else(|| format!("unknown site `{piece}`"))?;
                    plan.sites |= 1 << site.index();
                }
                None => return Err(format!("bad field `{piece}`")),
            }
        }
        Ok(plan)
    }
}

/// FNV-1a over raw bytes — the canonical way call sites derive a
/// stable `u64` key from an item's identity (never use a randomized
/// std hasher here: the decision must be identical across processes
/// and worker schedules).
#[must_use]
pub fn key_of(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Whether the crate was built with the fault machinery compiled in.
pub const ENABLED: bool = cfg!(feature = "enabled");

#[cfg(feature = "enabled")]
mod imp {
    use super::{Plan, Site, SITE_COUNT};
    use std::cell::{Cell, RefCell};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;

    #[derive(Clone, Copy)]
    struct State {
        seed: u64,
        /// `rate` pre-scaled to an integer threshold so the per-key
        /// decision is a single u64 compare.
        threshold: u64,
        sites: u8,
    }

    impl State {
        fn of(p: Plan) -> State {
            State {
                seed: p.seed,
                threshold: (p.rate.clamp(0.0, 1.0) * u64::MAX as f64) as u64,
                sites: p.sites,
            }
        }
    }

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static STATE: Mutex<Option<State>> = Mutex::new(None);
    static COUNTS: [AtomicU64; SITE_COUNT] = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];

    thread_local! {
        /// Request-scoped overlay: `Some(Some(state))` = a scoped plan
        /// shadows the process plan on this thread, `Some(None)` = the
        /// thread is explicitly shielded (no faults at all, even with a
        /// process plan installed), `None` = fall through to the
        /// process plan.
        static SCOPED: Cell<Option<Option<State>>> = const { Cell::new(None) };
        /// Per-site injection counts of the innermost scoped plan.
        static SCOPED_COUNTS: RefCell<[u64; SITE_COUNT]> = const { RefCell::new([0; SITE_COUNT]) };
    }

    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn configure(plan: Option<Plan>) {
        let state = plan.map(State::of);
        for c in &COUNTS {
            c.store(0, Ordering::SeqCst);
        }
        let active = state.is_some();
        *STATE.lock().expect("fault plan lock") = state;
        ACTIVE.store(active, Ordering::SeqCst);
    }

    pub fn active() -> bool {
        SCOPED.with(|s| match s.get() {
            Some(over) => over.is_some(),
            None => ACTIVE.load(Ordering::Relaxed),
        })
    }

    fn decide(state: State, site: Site, key: impl FnOnce() -> u64) -> bool {
        if state.sites & (1 << site.index()) == 0 {
            return false;
        }
        let decision = splitmix(
            state
                .seed
                .wrapping_add(splitmix(site.index() as u64 ^ splitmix(key()))),
        );
        decision < state.threshold
    }

    pub fn hit_with(site: Site, key: impl FnOnce() -> u64) -> bool {
        // The scoped overlay wins: it both arms per-request plans and
        // shields scoped threads from the process-wide plan.
        if let Some(over) = SCOPED.with(Cell::get) {
            let Some(state) = over else { return false };
            if decide(state, site, key) {
                SCOPED_COUNTS.with(|c| c.borrow_mut()[site.index()] += 1);
                return true;
            }
            return false;
        }
        if !ACTIVE.load(Ordering::Relaxed) {
            return false;
        }
        let Some(state) = *STATE.lock().expect("fault plan lock") else {
            return false;
        };
        if decide(state, site, key) {
            COUNTS[site.index()].fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    pub fn injected() -> [u64; SITE_COUNT] {
        let mut out = [0u64; SITE_COUNT];
        for (o, c) in out.iter_mut().zip(&COUNTS) {
            *o = c.load(Ordering::Relaxed);
        }
        out
    }

    /// RAII state for a scoped plan on this thread: the previous
    /// overlay and counts, restored on drop.
    pub struct ScopedGuard {
        prev: Option<Option<State>>,
        prev_counts: [u64; SITE_COUNT],
    }

    pub fn scoped(plan: Option<Plan>) -> ScopedGuard {
        let prev = SCOPED.with(|s| s.replace(Some(plan.map(State::of))));
        let prev_counts =
            SCOPED_COUNTS.with(|c| std::mem::replace(&mut *c.borrow_mut(), [0; SITE_COUNT]));
        ScopedGuard { prev, prev_counts }
    }

    pub fn scoped_active() -> bool {
        SCOPED.with(|s| s.get().is_some())
    }

    pub fn scoped_injected() -> [u64; SITE_COUNT] {
        SCOPED_COUNTS.with(|c| *c.borrow())
    }

    impl Drop for ScopedGuard {
        fn drop(&mut self) {
            SCOPED.with(|s| s.set(self.prev));
            SCOPED_COUNTS.with(|c| *c.borrow_mut() = self.prev_counts);
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::{Plan, Site, SITE_COUNT};

    #[inline(always)]
    pub fn configure(_plan: Option<Plan>) {}

    #[inline(always)]
    pub fn active() -> bool {
        false
    }

    #[inline(always)]
    pub fn hit_with(_site: Site, _key: impl FnOnce() -> u64) -> bool {
        false
    }

    #[inline(always)]
    pub fn injected() -> [u64; SITE_COUNT] {
        [0; SITE_COUNT]
    }

    /// Inert scoped-plan guard for disabled builds.
    pub struct ScopedGuard;

    #[inline(always)]
    pub fn scoped(_plan: Option<Plan>) -> ScopedGuard {
        ScopedGuard
    }

    #[inline(always)]
    pub fn scoped_active() -> bool {
        false
    }

    #[inline(always)]
    pub fn scoped_injected() -> [u64; SITE_COUNT] {
        [0; SITE_COUNT]
    }
}

/// Installs (or, with `None`, clears) the process-wide fault plan and
/// resets every injection counter. A no-op without the `enabled`
/// feature.
pub fn configure(plan: Option<Plan>) {
    imp::configure(plan);
}

/// Installs a plan from the `PDBT_FAULTS` environment variable.
/// Returns `Ok(true)` if a plan was installed, `Ok(false)` if the
/// variable is unset.
///
/// # Errors
///
/// The variable is set but malformed.
pub fn configure_from_env() -> Result<bool, String> {
    match std::env::var("PDBT_FAULTS") {
        Ok(spec) => {
            let plan = Plan::parse(&spec).map_err(|e| format!("PDBT_FAULTS: {e}"))?;
            configure(Some(plan));
            Ok(true)
        }
        Err(_) => Ok(false),
    }
}

/// Whether a fault plan is currently installed.
#[must_use]
pub fn active() -> bool {
    imp::active()
}

/// Decides whether the fault at `site` fires for `key`.
///
/// The decision is a pure function of `(plan seed, site, key)` — call
/// sites key by stable item identity (a candidate key, a file line, a
/// block address), never by call order, so injection is identical
/// under any worker schedule. A `true` return increments the site's
/// injection counter.
#[must_use]
pub fn hit(site: Site, key: u64) -> bool {
    imp::hit_with(site, || key)
}

/// Like [`hit`], but computes the key lazily — the closure never runs
/// when no plan is active (or the feature is off), so call sites can
/// hash item identity without paying for it on the hot path.
#[must_use]
pub fn hit_with(site: Site, key: impl FnOnce() -> u64) -> bool {
    imp::hit_with(site, key)
}

/// Per-site injection counts since the last [`configure`].
#[must_use]
pub fn injected() -> [u64; SITE_COUNT] {
    imp::injected()
}

/// RAII guard for a request-scoped fault plan (see [`scoped`]).
pub use imp::ScopedGuard;

/// Installs a *request-scoped* fault plan on the current thread,
/// shadowing the process-wide plan until the returned guard drops.
///
/// `Some(plan)` arms the plan for this thread only, with its own
/// injection counters ([`scoped_injected`]); `None` explicitly
/// *shields* the thread — no faults fire even when a process-wide plan
/// is installed. Either way the process-wide plan and its counters are
/// untouched, so concurrent sessions of a translation server can arm
/// per-request plans without cross-talk.
///
/// Scoped plans do not propagate to threads spawned inside the scope
/// (worker pools see the process-wide plan); serve sessions run
/// single-threaded, which is what makes the scope airtight there.
/// Guards nest: dropping restores the previous overlay and counts.
#[must_use]
pub fn scoped(plan: Option<Plan>) -> ScopedGuard {
    imp::scoped(plan)
}

/// Whether a scoped overlay (armed or shielding) is installed on the
/// current thread.
#[must_use]
pub fn scoped_active() -> bool {
    imp::scoped_active()
}

/// Per-site injection counts of the current thread's scoped plan
/// (zeros when none is installed).
#[must_use]
pub fn scoped_injected() -> [u64; SITE_COUNT] {
    imp::scoped_injected()
}

/// The injection counters that describe *this context*: the scoped
/// plan's counts when one is installed on the current thread, the
/// process-wide counts otherwise. Run reports snapshot through this so
/// a request-scoped session reports only its own faults.
#[must_use]
pub fn snapshot() -> [u64; SITE_COUNT] {
    if scoped_active() {
        scoped_injected()
    } else {
        injected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_fields_in_any_order() {
        let p = Plan::parse("seed=7,rate=0.25,sites=symexec,emit").unwrap();
        assert_eq!(p.seed, 7);
        assert!((p.rate - 0.25).abs() < 1e-12);
        assert_eq!(p.sites, 0b11);
        let p = Plan::parse("sites=cache,seed=9").unwrap();
        assert_eq!(p.seed, 9);
        assert_eq!(p.sites, 1 << Site::Cache.index());
        assert!((p.rate - 1.0).abs() < 1e-12);
        let p = Plan::parse("").unwrap();
        assert_eq!(p.sites, (1 << SITE_COUNT) - 1);
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(Plan::parse("seed=x").is_err());
        assert!(Plan::parse("rate=2.0").is_err());
        assert!(Plan::parse("sites=bogus").is_err());
        assert!(Plan::parse("frobnicate=1").is_err());
        assert!(Plan::parse("cache").is_err(), "site name outside `sites=`");
    }

    #[test]
    fn site_names_roundtrip() {
        for s in Site::ALL {
            assert_eq!(Site::parse(s.name()), Some(s));
        }
        assert_eq!(Site::parse("nope"), None);
    }

    #[test]
    fn key_of_is_stable() {
        assert_eq!(key_of(b"abc"), key_of(b"abc"));
        assert_ne!(key_of(b"abc"), key_of(b"abd"));
    }

    /// The process-wide plan is global; tests that configure it take
    /// this lock.
    #[cfg(feature = "enabled")]
    static PLAN: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[cfg(feature = "enabled")]
    #[test]
    fn decisions_are_keyed_and_counted() {
        let _lock = PLAN.lock().unwrap();
        configure(Some(Plan::all_sites(42, 0.5)));
        let a: Vec<bool> = (0..256).map(|k| hit(Site::Emit, k)).collect();
        let b: Vec<bool> = (0..256).map(|k| hit(Site::Emit, k)).collect();
        assert_eq!(a, b, "same (seed, site, key) → same decision");
        let fired = a.iter().filter(|x| **x).count();
        assert!(fired > 64 && fired < 192, "rate≈0.5 fired {fired}/256");
        assert_eq!(injected()[Site::Emit.index()] as usize, 2 * fired);
        // Disabled sites never fire; clearing the plan resets counters.
        configure(Some(Plan::single(Site::Store, 42, 1.0)));
        assert!(!hit(Site::Emit, 1));
        assert!(hit(Site::Store, 1));
        configure(None);
        assert!(!hit(Site::Store, 1));
        assert_eq!(injected(), [0; SITE_COUNT]);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn scoped_plans_shadow_and_shield() {
        let _lock = PLAN.lock().unwrap();
        configure(Some(Plan::single(Site::Store, 42, 1.0)));
        assert!(hit(Site::Store, 1));
        let global_before = injected()[Site::Store.index()];
        {
            // A scoped plan arms a different site and counts locally.
            let _g = scoped(Some(Plan::single(Site::Cache, 7, 1.0)));
            assert!(scoped_active());
            assert!(active());
            assert!(hit(Site::Cache, 9));
            assert!(
                !hit(Site::Store, 1),
                "the process plan is shadowed inside the scope"
            );
            assert_eq!(scoped_injected()[Site::Cache.index()], 1);
            assert_eq!(snapshot(), scoped_injected());
            // Nested shield: no faults at all.
            {
                let _inner = scoped(None);
                assert!(!active());
                assert!(!hit(Site::Cache, 9));
            }
            // Back in the armed scope after the shield drops.
            assert!(hit(Site::Cache, 9));
            assert_eq!(scoped_injected()[Site::Cache.index()], 2);
        }
        // The scope is gone: process plan visible again, its counters
        // untouched by the scoped firings.
        assert!(!scoped_active());
        assert_eq!(injected()[Site::Store.index()], global_before);
        assert_eq!(injected()[Site::Cache.index()], 0);
        assert!(hit(Site::Store, 1));
        assert_eq!(snapshot(), injected());
        // Scoped decisions are deterministic per (seed, site, key),
        // independent of the thread that evaluates them.
        let on_main: Vec<bool> = {
            let _g = scoped(Some(Plan::all_sites(11, 0.5)));
            (0..64).map(|k| hit(Site::Emit, k)).collect()
        };
        let on_thread: Vec<bool> = std::thread::spawn(|| {
            let _g = scoped(Some(Plan::all_sites(11, 0.5)));
            (0..64).map(|k| hit(Site::Emit, k)).collect()
        })
        .join()
        .unwrap();
        assert_eq!(on_main, on_thread);
        configure(None);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_is_inert() {
        configure(Some(Plan::all_sites(1, 1.0)));
        assert!(!active());
        assert!(!hit(Site::Cache, 0));
        assert!(!hit_with(Site::Cache, || unreachable!(
            "key must stay lazy"
        )));
        assert_eq!(injected(), [0; SITE_COUNT]);
        let _g = scoped(Some(Plan::all_sites(1, 1.0)));
        assert!(!scoped_active());
        assert!(!hit(Site::Cache, 0));
        assert_eq!(snapshot(), [0; SITE_COUNT]);
    }
}
