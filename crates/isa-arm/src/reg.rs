//! Guest register file: sixteen general-purpose registers (with `pc`
//! usable as a general-purpose register, paper Fig 9) and sixteen
//! single-precision floating-point registers.

use std::fmt;
use std::str::FromStr;

/// A guest general-purpose register.
///
/// `R13`–`R15` carry their conventional roles (`sp`, `lr`, `pc`), and —
/// as on real ARM — `pc` can appear as an ordinary operand, which is one
/// of the addressing-mode constraints the parameterizer must handle
/// (paper §IV-C2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    /// Stack pointer (`r13`).
    Sp,
    /// Link register (`r14`).
    Lr,
    /// Program counter (`r15`).
    Pc,
}

impl Reg {
    /// All sixteen registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::Sp,
        Reg::Lr,
        Reg::Pc,
    ];

    /// The register's index (0–15).
    #[must_use]
    pub fn index(self) -> usize {
        Reg::ALL.iter().position(|r| *r == self).unwrap()
    }

    /// Register from index.
    #[must_use]
    pub fn from_index(i: usize) -> Option<Reg> {
        Reg::ALL.get(i).copied()
    }

    /// Whether this is the program counter.
    #[must_use]
    pub fn is_pc(self) -> bool {
        self == Reg::Pc
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Sp => f.write_str("sp"),
            Reg::Lr => f.write_str("lr"),
            Reg::Pc => f.write_str("pc"),
            r => write!(f, "r{}", r.index()),
        }
    }
}

impl FromStr for Reg {
    type Err = String;

    fn from_str(s: &str) -> Result<Reg, String> {
        match s {
            "sp" | "r13" => return Ok(Reg::Sp),
            "lr" | "r14" => return Ok(Reg::Lr),
            "pc" | "r15" => return Ok(Reg::Pc),
            _ => {}
        }
        let n: usize = s
            .strip_prefix('r')
            .ok_or_else(|| format!("bad register `{s}`"))?
            .parse()
            .map_err(|_| format!("bad register `{s}`"))?;
        Reg::from_index(n).ok_or_else(|| format!("register index out of range: `{s}`"))
    }
}

/// A guest single-precision floating-point register (`s0`–`s15`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FReg(u8);

impl FReg {
    /// Creates `s<i>`; panics if `i >= 16`.
    #[must_use]
    pub fn new(i: u8) -> FReg {
        assert!(i < 16, "float register index out of range: {i}");
        FReg(i)
    }

    /// The register's index (0–15).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl FromStr for FReg {
    type Err = String;

    fn from_str(s: &str) -> Result<FReg, String> {
        let n: u8 = s
            .strip_prefix('s')
            .ok_or_else(|| format!("bad float register `{s}`"))?
            .parse()
            .map_err(|_| format!("bad float register `{s}`"))?;
        if n < 16 {
            Ok(FReg(n))
        } else {
            Err(format!("float register index out of range: `{s}`"))
        }
    }
}

/// A set of general-purpose registers, used by `push`/`pop`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct RegList(u16);

impl RegList {
    /// The empty list.
    pub const EMPTY: RegList = RegList(0);

    /// Creates a list from registers.
    pub fn from_regs<I: IntoIterator<Item = Reg>>(iter: I) -> RegList {
        let mut l = RegList(0);
        for r in iter {
            l.insert(r);
        }
        l
    }

    /// Raw bitmask (bit *i* = `r<i>`).
    #[must_use]
    pub fn bits(self) -> u16 {
        self.0
    }

    /// List from a raw bitmask.
    #[must_use]
    pub fn from_bits(bits: u16) -> RegList {
        RegList(bits)
    }

    /// Inserts a register.
    pub fn insert(&mut self, r: Reg) {
        self.0 |= 1 << r.index();
    }

    /// Whether the list contains `r`.
    #[must_use]
    pub fn contains(self, r: Reg) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of registers in the list.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates in ascending register order (the order `pop` restores and
    /// the reverse of the order `push` stores).
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        Reg::ALL.into_iter().filter(move |r| self.contains(*r))
    }
}

impl FromIterator<Reg> for RegList {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> RegList {
        RegList::from_regs(iter)
    }
}

impl fmt::Debug for RegList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RegList({self})")
    }
}

impl fmt::Display for RegList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_index_roundtrip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index()), Some(r));
        }
        assert_eq!(Reg::from_index(16), None);
    }

    #[test]
    fn reg_display_and_parse() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::Sp.to_string(), "sp");
        assert_eq!("r7".parse::<Reg>(), Ok(Reg::R7));
        assert_eq!("pc".parse::<Reg>(), Ok(Reg::Pc));
        assert_eq!("r13".parse::<Reg>(), Ok(Reg::Sp));
        assert!("r16".parse::<Reg>().is_err());
        assert!("x0".parse::<Reg>().is_err());
    }

    #[test]
    fn freg_basics() {
        let s3 = FReg::new(3);
        assert_eq!(s3.index(), 3);
        assert_eq!(s3.to_string(), "s3");
        assert_eq!("s15".parse::<FReg>(), Ok(FReg::new(15)));
        assert!("s16".parse::<FReg>().is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn freg_out_of_range_panics() {
        let _ = FReg::new(16);
    }

    #[test]
    fn reglist_ops() {
        let l: RegList = [Reg::R4, Reg::R5, Reg::Lr].into_iter().collect();
        assert_eq!(l.len(), 3);
        assert!(l.contains(Reg::R4) && l.contains(Reg::Lr));
        assert!(!l.contains(Reg::R0));
        assert_eq!(
            l.iter().collect::<Vec<_>>(),
            vec![Reg::R4, Reg::R5, Reg::Lr]
        );
        assert_eq!(l.to_string(), "{r4, r5, lr}");
        assert_eq!(RegList::from_bits(l.bits()), l);
        assert!(RegList::EMPTY.is_empty());
    }
}
