//! Reference interpreter for the guest ISA.
//!
//! This is the semantic ground truth: the synthetic compiler's output, the
//! learned rules, and every DBT configuration are all validated against
//! it (directly in tests and via differential testing in the verifier).

use crate::inst::{Inst, Op};
use crate::operand::{MemAddr, Operand, ShiftKind};
use crate::reg::Reg;
use crate::state::Cpu;
use pdbt_isa::{Addr, Control, ExecError, Flags};

/// The result of evaluating a flexible second operand.
struct Op2Value {
    value: u32,
    /// Carry out of the barrel shifter, when a shift actually happened.
    /// (Reserved for DP-shifter carry semantics; the model only routes
    /// shifter carry through the explicit shift opcodes.)
    #[allow(dead_code)]
    shifter_carry: Option<bool>,
}

fn eval_op2(cpu: &Cpu, op: &Operand) -> Result<Op2Value, ExecError> {
    match op {
        Operand::Reg(r) => Ok(Op2Value {
            value: cpu.read(*r),
            shifter_carry: None,
        }),
        Operand::Imm(v) => Ok(Op2Value {
            value: *v,
            shifter_carry: None,
        }),
        Operand::Shifted { rm, kind, amount } => {
            let v = cpu.read(*rm);
            if *amount == 0 {
                return Ok(Op2Value {
                    value: v,
                    shifter_carry: None,
                });
            }
            let (value, carry) = kind.apply(v, *amount);
            Ok(Op2Value {
                value,
                shifter_carry: Some(carry),
            })
        }
        other => Err(ExecError::MalformedInstruction {
            detail: format!("operand {other} cannot be a flexible second operand"),
        }),
    }
}

fn mem_addr(cpu: &Cpu, m: MemAddr) -> Addr {
    match m {
        MemAddr::BaseImm { base, offset } => cpu.read(base).wrapping_add(offset as u32),
        MemAddr::BaseReg { base, index } => cpu.read(base).wrapping_add(cpu.read(index)),
    }
}

/// Arithmetic helper: `a + b + carry_in`, producing NZCV.
fn add_with_carry(a: u32, b: u32, carry_in: bool) -> (u32, Flags) {
    let wide = u64::from(a) + u64::from(b) + u64::from(carry_in);
    let result = wide as u32;
    let c = wide > u64::from(u32::MAX);
    let v = (!(a ^ b) & (a ^ result)) & 0x8000_0000 != 0;
    let mut f = Flags {
        c,
        v,
        ..Flags::default()
    };
    f.set_nz(result);
    (result, f)
}

fn write_result(cpu: &mut Cpu, rd: Reg, value: u32) -> Control {
    if rd.is_pc() {
        Control::Jump(value)
    } else {
        cpu.write(rd, value);
        Control::Next
    }
}

/// Executes one instruction on `cpu`.
///
/// The caller is responsible for advancing the PC on [`Control::Next`]
/// (the interpreter never mutates `pc` itself except through explicit
/// control transfers reported in the return value).
///
/// # Errors
///
/// Any [`ExecError`] the instruction semantics can raise (memory faults,
/// malformed shapes, undefined system calls).
pub fn step(cpu: &mut Cpu, inst: &Inst) -> Result<Control, ExecError> {
    inst.validate()?;
    if !inst.cond.eval(cpu.flags) {
        return Ok(Control::Next);
    }
    let pc = cpu.pc();
    use Op::*;
    match inst.op {
        // ---- three-operand data processing -------------------------------
        And | Eor | Sub | Rsb | Add | Adc | Sbc | Rsc | Orr | Bic | Lsl | Lsr | Asr | Ror => {
            let rd = inst.operands[0].as_reg().expect("validated");
            let rn = cpu.read(inst.operands[1].as_reg().expect("validated"));
            let op2 = eval_op2(cpu, &inst.operands[2])?;
            let carry_in = cpu.flags.c;
            let (result, arith_flags) = match inst.op {
                Add => add_with_carry(rn, op2.value, false),
                Adc => add_with_carry(rn, op2.value, carry_in),
                Sub => add_with_carry(rn, !op2.value, true),
                Sbc => add_with_carry(rn, !op2.value, carry_in),
                Rsb => add_with_carry(op2.value, !rn, true),
                Rsc => add_with_carry(op2.value, !rn, carry_in),
                And => (rn & op2.value, Flags::default()),
                Orr => (rn | op2.value, Flags::default()),
                Eor => (rn ^ op2.value, Flags::default()),
                Bic => (rn & !op2.value, Flags::default()),
                Lsl | Lsr | Asr | Ror => {
                    let amount = (op2.value & 31) as u8;
                    let kind = match inst.op {
                        Lsl => ShiftKind::Lsl,
                        Lsr => ShiftKind::Lsr,
                        Asr => ShiftKind::Asr,
                        _ => ShiftKind::Ror,
                    };
                    if amount == 0 {
                        (
                            rn,
                            Flags {
                                c: cpu.flags.c,
                                ..Flags::default()
                            },
                        )
                    } else {
                        let (v, c) = kind.apply(rn, amount);
                        (
                            v,
                            Flags {
                                c,
                                ..Flags::default()
                            },
                        )
                    }
                }
                _ => unreachable!(),
            };
            if inst.s {
                let defs = inst.flag_defs();
                let mut new = arith_flags;
                new.set_nz(result);
                cpu.flags.copy_masked(new, defs);
            }
            Ok(write_result(cpu, rd, result))
        }
        // ---- two-operand data processing ----------------------------------
        Mov | Mvn => {
            let rd = inst.operands[0].as_reg().expect("validated");
            let op2 = eval_op2(cpu, &inst.operands[1])?;
            let result = if inst.op == Mvn {
                !op2.value
            } else {
                op2.value
            };
            if inst.s {
                let mut new = Flags::default();
                new.set_nz(result);
                cpu.flags.copy_masked(new, inst.flag_defs());
            }
            Ok(write_result(cpu, rd, result))
        }
        Clz => {
            let rd = inst.operands[0].as_reg().expect("validated");
            let rm = cpu.read(inst.operands[1].as_reg().expect("validated"));
            Ok(write_result(cpu, rd, rm.leading_zeros()))
        }
        // ---- multiply family ----------------------------------------------
        Mul | Mla => {
            let rd = inst.operands[0].as_reg().expect("validated");
            let rm = cpu.read(inst.operands[1].as_reg().expect("validated"));
            let rs = cpu.read(inst.operands[2].as_reg().expect("validated"));
            let acc = if inst.op == Mla {
                cpu.read(inst.operands[3].as_reg().expect("validated"))
            } else {
                0
            };
            let result = rm.wrapping_mul(rs).wrapping_add(acc);
            if inst.s {
                let mut new = Flags::default();
                new.set_nz(result);
                cpu.flags.copy_masked(new, inst.flag_defs());
            }
            Ok(write_result(cpu, rd, result))
        }
        Umull | Umlal => {
            let rdlo = inst.operands[0].as_reg().expect("validated");
            let rdhi = inst.operands[1].as_reg().expect("validated");
            let rm = cpu.read(inst.operands[2].as_reg().expect("validated"));
            let rs = cpu.read(inst.operands[3].as_reg().expect("validated"));
            let mut wide = u64::from(rm) * u64::from(rs);
            if inst.op == Umlal {
                let acc = (u64::from(cpu.read(rdhi)) << 32) | u64::from(cpu.read(rdlo));
                wide = wide.wrapping_add(acc);
            }
            cpu.write(rdlo, wide as u32);
            cpu.write(rdhi, (wide >> 32) as u32);
            Ok(Control::Next)
        }
        // ---- compares -------------------------------------------------------
        Cmp | Cmn | Tst | Teq => {
            let rn = cpu.read(inst.operands[0].as_reg().expect("validated"));
            let op2 = eval_op2(cpu, &inst.operands[1])?;
            match inst.op {
                Cmp => {
                    let (_, f) = add_with_carry(rn, !op2.value, true);
                    cpu.flags = f;
                }
                Cmn => {
                    let (_, f) = add_with_carry(rn, op2.value, false);
                    cpu.flags = f;
                }
                Tst => {
                    let mut f = Flags::default();
                    f.set_nz(rn & op2.value);
                    cpu.flags.copy_masked(f, inst.flag_defs());
                }
                Teq => {
                    let mut f = Flags::default();
                    f.set_nz(rn ^ op2.value);
                    cpu.flags.copy_masked(f, inst.flag_defs());
                }
                _ => unreachable!(),
            }
            Ok(Control::Next)
        }
        // ---- loads and stores -----------------------------------------------
        Ldr | Ldrb | Ldrh => {
            let rt = inst.operands[0].as_reg().expect("validated");
            let addr = mem_addr(cpu, inst.operands[1].as_mem().expect("validated"));
            let width = inst.op.access_width().expect("load has a width");
            let v = cpu.mem.load(addr, width)?;
            Ok(write_result(cpu, rt, v))
        }
        Str | Strb | Strh => {
            let rt = cpu.read(inst.operands[0].as_reg().expect("validated"));
            let addr = mem_addr(cpu, inst.operands[1].as_mem().expect("validated"));
            let width = inst.op.access_width().expect("store has a width");
            cpu.mem.store(addr, rt, width)?;
            Ok(Control::Next)
        }
        // ---- stack -----------------------------------------------------------
        Push => {
            let list = inst.reg_list().expect("validated");
            let mut sp = cpu.sp();
            // Store in descending address order: highest-numbered register
            // at the highest address.
            for r in list.iter().collect::<Vec<_>>().into_iter().rev() {
                sp = sp.wrapping_sub(4);
                cpu.mem.store32(sp, cpu.read(r))?;
            }
            cpu.write(Reg::Sp, sp);
            Ok(Control::Next)
        }
        Pop => {
            let list = inst.reg_list().expect("validated");
            let mut sp = cpu.sp();
            let mut jump = None;
            for r in list.iter() {
                let v = cpu.mem.load32(sp)?;
                sp = sp.wrapping_add(4);
                if r.is_pc() {
                    jump = Some(v);
                } else {
                    cpu.write(r, v);
                }
            }
            cpu.write(Reg::Sp, sp);
            Ok(match jump {
                Some(t) => Control::Jump(t),
                None => Control::Next,
            })
        }
        // ---- branches ----------------------------------------------------------
        B => {
            let Operand::Target(d) = inst.operands[0] else {
                unreachable!()
            };
            Ok(Control::Jump(pc.wrapping_add(d as u32)))
        }
        Bl => {
            let Operand::Target(d) = inst.operands[0] else {
                unreachable!()
            };
            let link = pc.wrapping_add(4);
            cpu.write(Reg::Lr, link);
            Ok(Control::Call {
                target: pc.wrapping_add(d as u32),
                link,
            })
        }
        Bx => {
            let rm = cpu.read(inst.operands[0].as_reg().expect("validated"));
            Ok(Control::Jump(rm))
        }
        Svc => {
            let imm = inst.operands[0].as_imm().expect("validated");
            match imm {
                0 => Ok(Control::Halt),
                1 => {
                    cpu.output.push(cpu.read(Reg::R0));
                    Ok(Control::Next)
                }
                other => Err(ExecError::Undefined {
                    detail: format!("svc #{other}"),
                }),
            }
        }
        // ---- floating point -------------------------------------------------------
        Vadd | Vsub | Vmul | Vdiv => {
            let (Operand::FReg(sd), Operand::FReg(sn), Operand::FReg(sm)) =
                (inst.operands[0], inst.operands[1], inst.operands[2])
            else {
                unreachable!()
            };
            let a = cpu.read_f(sn);
            let b = cpu.read_f(sm);
            let r = match inst.op {
                Vadd => a + b,
                Vsub => a - b,
                Vmul => a * b,
                Vdiv => a / b,
                _ => unreachable!(),
            };
            cpu.write_f(sd, r);
            Ok(Control::Next)
        }
        Vmov => {
            let (Operand::FReg(sd), Operand::FReg(sm)) = (inst.operands[0], inst.operands[1])
            else {
                unreachable!()
            };
            let v = cpu.read_f(sm);
            cpu.write_f(sd, v);
            Ok(Control::Next)
        }
        Vcmp => {
            let (Operand::FReg(sd), Operand::FReg(sm)) = (inst.operands[0], inst.operands[1])
            else {
                unreachable!()
            };
            let a = cpu.read_f(sd);
            let b = cpu.read_f(sm);
            // ARM FP comparison flags: N = less, Z = equal, C = greater-or-
            // equal-or-unordered, V = unordered.
            let unordered = a.is_nan() || b.is_nan();
            cpu.flags = Flags {
                n: !unordered && a < b,
                z: !unordered && a == b,
                c: unordered || a >= b,
                v: unordered,
            };
            Ok(Control::Next)
        }
        Vldr => {
            let Operand::FReg(sd) = inst.operands[0] else {
                unreachable!()
            };
            let addr = mem_addr(cpu, inst.operands[1].as_mem().expect("validated"));
            let bits = cpu.mem.load32(addr)?;
            cpu.write_f(sd, f32::from_bits(bits));
            Ok(Control::Next)
        }
        Vstr => {
            let Operand::FReg(sd) = inst.operands[0] else {
                unreachable!()
            };
            let addr = mem_addr(cpu, inst.operands[1].as_mem().expect("validated"));
            cpu.mem.store32(addr, cpu.read_f(sd).to_bits())?;
            Ok(Control::Next)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::*;
    use crate::reg::FReg;
    use pdbt_isa::Cond;

    fn cpu() -> Cpu {
        let mut c = Cpu::new();
        c.mem.map(0x1_0000, 0x1000); // data
        c.mem.map(0x8_0000, 0x1000); // stack
        c.write(Reg::Sp, 0x8_1000);
        c
    }

    #[test]
    fn add_and_flags() {
        let mut c = cpu();
        c.write(Reg::R1, u32::MAX);
        let ctl = step(&mut c, &add(Reg::R0, Reg::R1, Operand::Imm(1)).with_s()).unwrap();
        assert_eq!(ctl, Control::Next);
        assert_eq!(c.read(Reg::R0), 0);
        assert!(c.flags.z && c.flags.c && !c.flags.n && !c.flags.v);
    }

    #[test]
    fn signed_overflow_sets_v() {
        let mut c = cpu();
        c.write(Reg::R1, 0x7fff_ffff);
        step(&mut c, &add(Reg::R0, Reg::R1, Operand::Imm(1)).with_s()).unwrap();
        assert!(c.flags.v && c.flags.n && !c.flags.c);
    }

    #[test]
    fn sub_carry_is_not_borrow() {
        let mut c = cpu();
        c.write(Reg::R1, 5);
        step(&mut c, &sub(Reg::R0, Reg::R1, Operand::Imm(3)).with_s()).unwrap();
        assert_eq!(c.read(Reg::R0), 2);
        assert!(c.flags.c, "5-3 does not borrow → C set (ARM convention)");
        step(&mut c, &sub(Reg::R0, Reg::R1, Operand::Imm(9)).with_s()).unwrap();
        assert!(!c.flags.c, "5-9 borrows → C clear");
        assert!(c.flags.n);
    }

    #[test]
    fn adc_sbc_use_carry() {
        let mut c = cpu();
        c.flags.c = true;
        c.write(Reg::R1, 10);
        step(&mut c, &adc(Reg::R0, Reg::R1, Operand::Imm(5))).unwrap();
        assert_eq!(c.read(Reg::R0), 16);
        // sbc: rn - op2 - (1 - C); with C set it's a plain subtract.
        step(&mut c, &sbc(Reg::R0, Reg::R1, Operand::Imm(5))).unwrap();
        assert_eq!(c.read(Reg::R0), 5);
        c.flags.c = false;
        step(&mut c, &sbc(Reg::R0, Reg::R1, Operand::Imm(5))).unwrap();
        assert_eq!(c.read(Reg::R0), 4);
    }

    #[test]
    fn rsb_reverses() {
        let mut c = cpu();
        c.write(Reg::R1, 3);
        step(&mut c, &rsb(Reg::R0, Reg::R1, Operand::Imm(10))).unwrap();
        assert_eq!(c.read(Reg::R0), 7);
    }

    #[test]
    fn logical_ops() {
        let mut c = cpu();
        c.write(Reg::R1, 0b1100);
        c.write(Reg::R2, 0b1010);
        step(&mut c, &and(Reg::R0, Reg::R1, Operand::Reg(Reg::R2))).unwrap();
        assert_eq!(c.read(Reg::R0), 0b1000);
        step(&mut c, &orr(Reg::R0, Reg::R1, Operand::Reg(Reg::R2))).unwrap();
        assert_eq!(c.read(Reg::R0), 0b1110);
        step(&mut c, &eor(Reg::R0, Reg::R1, Operand::Reg(Reg::R2))).unwrap();
        assert_eq!(c.read(Reg::R0), 0b0110);
        step(&mut c, &bic(Reg::R0, Reg::R1, Operand::Reg(Reg::R2))).unwrap();
        assert_eq!(c.read(Reg::R0), 0b0100);
        step(&mut c, &mvn(Reg::R0, Operand::Imm(0))).unwrap();
        assert_eq!(c.read(Reg::R0), u32::MAX);
    }

    #[test]
    fn shifted_operand() {
        let mut c = cpu();
        c.write(Reg::R1, 1);
        c.write(Reg::R2, 3);
        let op2 = Operand::Shifted {
            rm: Reg::R2,
            kind: ShiftKind::Lsl,
            amount: 2,
        };
        step(&mut c, &add(Reg::R0, Reg::R1, op2)).unwrap();
        assert_eq!(c.read(Reg::R0), 13);
    }

    #[test]
    fn shift_opcodes() {
        let mut c = cpu();
        c.write(Reg::R1, 0x80);
        step(&mut c, &lsr(Reg::R0, Reg::R1, Operand::Imm(4))).unwrap();
        assert_eq!(c.read(Reg::R0), 8);
        c.write(Reg::R2, 2);
        step(&mut c, &lsl(Reg::R0, Reg::R1, Operand::Reg(Reg::R2))).unwrap();
        assert_eq!(c.read(Reg::R0), 0x200);
        c.write(Reg::R1, 0x8000_0000);
        step(&mut c, &asr(Reg::R0, Reg::R1, Operand::Imm(31))).unwrap();
        assert_eq!(c.read(Reg::R0), u32::MAX);
        // Shift with S sets carry from the last bit shifted out.
        c.write(Reg::R1, 0b11);
        step(&mut c, &lsr(Reg::R0, Reg::R1, Operand::Imm(1)).with_s()).unwrap();
        assert!(c.flags.c);
    }

    #[test]
    fn multiply_family() {
        let mut c = cpu();
        c.write(Reg::R1, 7);
        c.write(Reg::R2, 6);
        c.write(Reg::R3, 100);
        step(&mut c, &mul(Reg::R0, Reg::R1, Reg::R2)).unwrap();
        assert_eq!(c.read(Reg::R0), 42);
        step(&mut c, &mla(Reg::R0, Reg::R1, Reg::R2, Reg::R3)).unwrap();
        assert_eq!(c.read(Reg::R0), 142);
        c.write(Reg::R1, 0);
        c.write(Reg::R2, 0);
        c.write(Reg::R4, 0xffff_ffff);
        c.write(Reg::R5, 0x10);
        step(&mut c, &umull(Reg::R1, Reg::R2, Reg::R4, Reg::R5)).unwrap();
        assert_eq!(c.read(Reg::R1), 0xffff_fff0);
        assert_eq!(c.read(Reg::R2), 0xf);
        step(&mut c, &umlal(Reg::R1, Reg::R2, Reg::R4, Reg::R5)).unwrap();
        assert_eq!(c.read(Reg::R1), 0xffff_ffe0);
        assert_eq!(c.read(Reg::R2), 0x1f);
    }

    #[test]
    fn clz_counts() {
        let mut c = cpu();
        c.write(Reg::R1, 0x10);
        step(&mut c, &clz(Reg::R0, Reg::R1)).unwrap();
        assert_eq!(c.read(Reg::R0), 27);
        c.write(Reg::R1, 0);
        step(&mut c, &clz(Reg::R0, Reg::R1)).unwrap();
        assert_eq!(c.read(Reg::R0), 32);
    }

    #[test]
    fn compare_and_conditional() {
        let mut c = cpu();
        c.write(Reg::R0, 3);
        step(&mut c, &cmp(Reg::R0, Operand::Imm(5))).unwrap();
        assert!(Cond::Lt.eval(c.flags) && Cond::Ne.eval(c.flags));
        // Conditional instruction whose predicate fails has no effect.
        c.write(Reg::R1, 111);
        step(&mut c, &mov(Reg::R1, Operand::Imm(0)).with_cond(Cond::Eq)).unwrap();
        assert_eq!(c.read(Reg::R1), 111);
        step(&mut c, &mov(Reg::R1, Operand::Imm(0)).with_cond(Cond::Ne)).unwrap();
        assert_eq!(c.read(Reg::R1), 0);
    }

    #[test]
    fn tst_and_teq() {
        let mut c = cpu();
        c.write(Reg::R0, 0b1010);
        step(&mut c, &tst(Reg::R0, Operand::Imm(0b0101))).unwrap();
        assert!(c.flags.z);
        step(&mut c, &teq(Reg::R0, Operand::Imm(0b1010))).unwrap();
        assert!(c.flags.z);
        step(&mut c, &teq(Reg::R0, Operand::Imm(0b1000))).unwrap();
        assert!(!c.flags.z);
    }

    #[test]
    fn loads_and_stores() {
        let mut c = cpu();
        c.write(Reg::R1, 0x1_0000);
        c.write(Reg::R0, 0xaabb_ccdd);
        step(
            &mut c,
            &str_(
                Reg::R0,
                MemAddr::BaseImm {
                    base: Reg::R1,
                    offset: 4,
                },
            ),
        )
        .unwrap();
        step(
            &mut c,
            &ldr(
                Reg::R2,
                MemAddr::BaseImm {
                    base: Reg::R1,
                    offset: 4,
                },
            ),
        )
        .unwrap();
        assert_eq!(c.read(Reg::R2), 0xaabb_ccdd);
        step(
            &mut c,
            &ldrb(
                Reg::R3,
                MemAddr::BaseImm {
                    base: Reg::R1,
                    offset: 4,
                },
            ),
        )
        .unwrap();
        assert_eq!(c.read(Reg::R3), 0xdd);
        step(
            &mut c,
            &ldrh(
                Reg::R3,
                MemAddr::BaseImm {
                    base: Reg::R1,
                    offset: 4,
                },
            ),
        )
        .unwrap();
        assert_eq!(c.read(Reg::R3), 0xccdd);
        // Register-offset addressing.
        c.write(Reg::R4, 8);
        step(
            &mut c,
            &str_(
                Reg::R0,
                MemAddr::BaseReg {
                    base: Reg::R1,
                    index: Reg::R4,
                },
            ),
        )
        .unwrap();
        step(
            &mut c,
            &ldr(
                Reg::R5,
                MemAddr::BaseImm {
                    base: Reg::R1,
                    offset: 8,
                },
            ),
        )
        .unwrap();
        assert_eq!(c.read(Reg::R5), 0xaabb_ccdd);
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut c = cpu();
        c.write(Reg::R4, 44);
        c.write(Reg::R5, 55);
        let sp0 = c.sp();
        step(&mut c, &push([Reg::R4, Reg::R5])).unwrap();
        assert_eq!(c.sp(), sp0 - 8);
        c.write(Reg::R4, 0);
        c.write(Reg::R5, 0);
        step(&mut c, &pop([Reg::R4, Reg::R5])).unwrap();
        assert_eq!((c.read(Reg::R4), c.read(Reg::R5), c.sp()), (44, 55, sp0));
    }

    #[test]
    fn pop_pc_jumps() {
        let mut c = cpu();
        c.write(Reg::R0, 0x4000);
        step(&mut c, &push([Reg::R0])).unwrap();
        let ctl = step(&mut c, &pop([Reg::Pc])).unwrap();
        assert_eq!(ctl, Control::Jump(0x4000));
    }

    #[test]
    fn branches() {
        let mut c = cpu();
        c.set_pc(0x1000);
        assert_eq!(
            step(&mut c, &b(Cond::Al, 16)).unwrap(),
            Control::Jump(0x1010)
        );
        c.flags.z = true;
        assert_eq!(
            step(&mut c, &b(Cond::Eq, -8)).unwrap(),
            Control::Jump(0xff8)
        );
        assert_eq!(step(&mut c, &b(Cond::Ne, -8)).unwrap(), Control::Next);
        let ctl = step(&mut c, &bl(0x100)).unwrap();
        assert_eq!(
            ctl,
            Control::Call {
                target: 0x1100,
                link: 0x1004
            }
        );
        assert_eq!(c.read(Reg::Lr), 0x1004);
        c.write(Reg::R3, 0x2000);
        assert_eq!(step(&mut c, &bx(Reg::R3)).unwrap(), Control::Jump(0x2000));
    }

    #[test]
    fn pc_relative_load_uses_plus_eight() {
        let mut c = cpu();
        c.mem.map(0x1000, 0x100);
        c.mem.store32(0x1010, 0x1234_5678).unwrap();
        c.set_pc(0x1000);
        // ldr r0, [pc, #8] → address = 0x1000 + 8 + 8 = 0x1010.
        step(
            &mut c,
            &ldr(
                Reg::R0,
                MemAddr::BaseImm {
                    base: Reg::Pc,
                    offset: 8,
                },
            ),
        )
        .unwrap();
        assert_eq!(c.read(Reg::R0), 0x1234_5678);
    }

    #[test]
    fn mov_to_pc_is_a_jump() {
        let mut c = cpu();
        c.write(Reg::Lr, 0x3000);
        assert_eq!(
            step(&mut c, &mov(Reg::Pc, Operand::Reg(Reg::Lr))).unwrap(),
            Control::Jump(0x3000)
        );
    }

    #[test]
    fn svc_semantics() {
        let mut c = cpu();
        assert_eq!(step(&mut c, &svc(0)).unwrap(), Control::Halt);
        c.write(Reg::R0, 99);
        step(&mut c, &svc(1)).unwrap();
        assert_eq!(c.output, vec![99]);
        assert!(matches!(
            step(&mut c, &svc(7)),
            Err(ExecError::Undefined { .. })
        ));
    }

    #[test]
    fn float_ops_and_vcmp() {
        let mut c = cpu();
        c.write_f(FReg::new(1), 1.5);
        c.write_f(FReg::new(2), 2.5);
        step(&mut c, &vadd(FReg::new(0), FReg::new(1), FReg::new(2))).unwrap();
        assert_eq!(c.read_f(FReg::new(0)), 4.0);
        step(&mut c, &vdiv(FReg::new(0), FReg::new(2), FReg::new(1))).unwrap();
        assert!((c.read_f(FReg::new(0)) - 5.0 / 3.0).abs() < 1e-6);
        step(&mut c, &vcmp(FReg::new(1), FReg::new(2))).unwrap();
        assert!(c.flags.n && !c.flags.z, "1.5 < 2.5");
        step(&mut c, &vcmp(FReg::new(2), FReg::new(2))).unwrap();
        assert!(c.flags.z && c.flags.c);
    }

    #[test]
    fn vldr_vstr_roundtrip() {
        let mut c = cpu();
        c.write(Reg::R1, 0x1_0000);
        c.write_f(FReg::new(5), 3.25);
        step(
            &mut c,
            &vstr(
                FReg::new(5),
                MemAddr::BaseImm {
                    base: Reg::R1,
                    offset: 0,
                },
            ),
        )
        .unwrap();
        step(
            &mut c,
            &vldr(
                FReg::new(6),
                MemAddr::BaseImm {
                    base: Reg::R1,
                    offset: 0,
                },
            ),
        )
        .unwrap();
        assert_eq!(c.read_f(FReg::new(6)), 3.25);
    }

    #[test]
    fn memory_fault_propagates() {
        let mut c = cpu();
        c.write(Reg::R1, 0xdead_0000);
        let r = step(
            &mut c,
            &ldr(
                Reg::R0,
                MemAddr::BaseImm {
                    base: Reg::R1,
                    offset: 0,
                },
            ),
        );
        assert!(matches!(r, Err(ExecError::MemoryFault { .. })));
    }
}
