//! Fixed-width 32-bit binary encoding for the guest ISA.
//!
//! The layout is custom (this is a model ISA, not real ARM) but keeps the
//! property that matters to the paper: a *regular, well-structured
//! format* — fixed fields for condition, opcode, set-flags bit, and
//! shape-specific operand fields — which is exactly the regularity the
//! parameterization approach exploits (§I).
//!
//! Layout: `[31:28] cond | [27:22] opcode | [21] s | [20:0] shape payload`.

use crate::inst::{Inst, Op, Shape};
use crate::operand::{MemAddr, Operand, ShiftKind};
use crate::reg::{FReg, Reg, RegList};
use pdbt_isa::Cond;
use std::fmt;

/// Largest encodable immediate operand (11-bit field).
pub const MAX_IMM: u32 = 2047;
/// Largest encodable memory-offset magnitude (signed 12-bit field).
pub const MAX_MEM_OFFSET: u32 = 2047;
/// Largest encodable branch displacement magnitude in bytes
/// (word-granular signed 21-bit field).
pub const MAX_BRANCH: i32 = (1 << 20) * 4 - 4;

/// An error raised while encoding an instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An operand value does not fit its encoding field.
    FieldOverflow {
        /// Description of the overflowing field.
        detail: String,
    },
    /// The instruction failed shape validation.
    Malformed {
        /// Description of the shape violation.
        detail: String,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::FieldOverflow { detail } => write!(f, "field overflow: {detail}"),
            EncodeError::Malformed { detail } => write!(f, "malformed instruction: {detail}"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// An error raised while decoding a word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode field does not name an opcode.
    BadOpcode {
        /// The raw opcode field value.
        raw: u8,
    },
    /// A field held an invalid value (condition, shift kind, …).
    BadField {
        /// Description of the invalid field.
        detail: String,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode { raw } => write!(f, "invalid opcode field {raw:#x}"),
            DecodeError::BadField { detail } => write!(f, "invalid field: {detail}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn encode_op2(op2: &Operand) -> Result<u32, EncodeError> {
    match op2 {
        Operand::Imm(v) => {
            if *v > MAX_IMM {
                return Err(EncodeError::FieldOverflow {
                    detail: format!("immediate {v} > {MAX_IMM}"),
                });
            }
            Ok(*v) // kind 0
        }
        Operand::Reg(r) => Ok((1 << 11) | r.index() as u32),
        Operand::Shifted { rm, kind, amount } => {
            if *amount == 0 || *amount > 31 {
                return Err(EncodeError::FieldOverflow {
                    detail: format!("shift amount {amount} out of 1..=31"),
                });
            }
            Ok((2 << 11)
                | ((rm.index() as u32) << 7)
                | (u32::from(kind.index()) << 5)
                | u32::from(*amount))
        }
        other => Err(EncodeError::Malformed {
            detail: format!("{other} is not an op2"),
        }),
    }
}

fn decode_op2(bits: u32) -> Result<Operand, DecodeError> {
    match bits >> 11 {
        0 => Ok(Operand::Imm(bits & 0x7ff)),
        1 => Ok(Operand::Reg(reg_field(bits & 0xf)?)),
        2 => {
            let rm = reg_field((bits >> 7) & 0xf)?;
            let kind = ShiftKind::from_index(((bits >> 5) & 0x3) as u8).ok_or_else(|| {
                DecodeError::BadField {
                    detail: "shift kind".into(),
                }
            })?;
            let amount = (bits & 0x1f) as u8;
            if amount == 0 {
                return Err(DecodeError::BadField {
                    detail: "zero shift amount".into(),
                });
            }
            Ok(Operand::Shifted { rm, kind, amount })
        }
        k => Err(DecodeError::BadField {
            detail: format!("op2 kind {k}"),
        }),
    }
}

fn encode_mem(m: &MemAddr) -> Result<u32, EncodeError> {
    match m {
        MemAddr::BaseImm { base, offset } => {
            if offset.unsigned_abs() > MAX_MEM_OFFSET {
                return Err(EncodeError::FieldOverflow {
                    detail: format!("memory offset {offset}"),
                });
            }
            Ok(((base.index() as u32) << 12) | ((*offset as u32) & 0xfff))
        }
        MemAddr::BaseReg { base, index } => {
            Ok((1 << 16) | ((base.index() as u32) << 12) | ((index.index() as u32) << 8))
        }
    }
}

fn decode_mem(bits: u32) -> Result<MemAddr, DecodeError> {
    let base = reg_field((bits >> 12) & 0xf)?;
    if bits >> 16 == 0 {
        let offset = pdbt_isa::sign_extend(bits & 0xfff, 12) as i32;
        Ok(MemAddr::BaseImm { base, offset })
    } else {
        let index = reg_field((bits >> 8) & 0xf)?;
        Ok(MemAddr::BaseReg { base, index })
    }
}

fn reg_field(v: u32) -> Result<Reg, DecodeError> {
    Reg::from_index(v as usize).ok_or_else(|| DecodeError::BadField {
        detail: format!("register {v}"),
    })
}

fn freg_field(v: u32) -> FReg {
    FReg::new((v & 0xf) as u8)
}

fn reg_of(o: &Operand) -> u32 {
    o.as_reg().expect("validated register operand").index() as u32
}

fn freg_of(o: &Operand) -> u32 {
    match o {
        Operand::FReg(r) => r.index() as u32,
        _ => unreachable!("validated float register operand"),
    }
}

/// Encodes one instruction to its 32-bit word.
///
/// # Errors
///
/// [`EncodeError`] if the instruction is malformed or a field overflows.
pub fn encode(inst: &Inst) -> Result<u32, EncodeError> {
    inst.validate().map_err(|e| EncodeError::Malformed {
        detail: e.to_string(),
    })?;
    let head = (u32::from(inst.cond.index()) << 28)
        | (u32::from(inst.op.index()) << 22)
        | (u32::from(inst.s) << 21);
    let ops = &inst.operands;
    let payload = match inst.op.shape() {
        Shape::Dp3 => (reg_of(&ops[0]) << 17) | (reg_of(&ops[1]) << 13) | encode_op2(&ops[2])?,
        Shape::Dp2 | Shape::Cmp2 => (reg_of(&ops[0]) << 17) | encode_op2(&ops[1])?,
        Shape::Unary2 => (reg_of(&ops[0]) << 17) | (reg_of(&ops[1]) << 13),
        Shape::Mul3 => (reg_of(&ops[0]) << 17) | (reg_of(&ops[1]) << 13) | (reg_of(&ops[2]) << 9),
        Shape::Mul4 => {
            (reg_of(&ops[0]) << 17)
                | (reg_of(&ops[1]) << 13)
                | (reg_of(&ops[2]) << 9)
                | (reg_of(&ops[3]) << 5)
        }
        Shape::LdSt => (reg_of(&ops[0]) << 17) | encode_mem(&ops[1].as_mem().unwrap())?,
        Shape::Stack => match ops[0] {
            Operand::RegList(l) => u32::from(l.bits()),
            _ => unreachable!(),
        },
        Shape::Branch => {
            let Operand::Target(d) = ops[0] else {
                unreachable!()
            };
            if d % 4 != 0 || d.abs() > MAX_BRANCH {
                return Err(EncodeError::FieldOverflow {
                    detail: format!("branch target {d}"),
                });
            }
            ((d / 4) as u32) & 0x1f_ffff
        }
        Shape::BranchReg => reg_of(&ops[0]) << 17,
        Shape::Sys => {
            let v = ops[0].as_imm().unwrap();
            if v > 0xffff {
                return Err(EncodeError::FieldOverflow {
                    detail: format!("svc #{v}"),
                });
            }
            v
        }
        Shape::Vfp3 => {
            (freg_of(&ops[0]) << 17) | (freg_of(&ops[1]) << 13) | (freg_of(&ops[2]) << 9)
        }
        Shape::Vfp2 => (freg_of(&ops[0]) << 17) | (freg_of(&ops[1]) << 13),
        Shape::VfpLdSt => (freg_of(&ops[0]) << 17) | encode_mem(&ops[1].as_mem().unwrap())?,
    };
    Ok(head | payload)
}

/// Decodes a 32-bit word back into an instruction.
///
/// # Errors
///
/// [`DecodeError`] on any invalid field.
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let cond = Cond::from_index((word >> 28) as u8).ok_or_else(|| DecodeError::BadField {
        detail: "condition".into(),
    })?;
    let op = Op::from_index(((word >> 22) & 0x3f) as u8).ok_or(DecodeError::BadOpcode {
        raw: ((word >> 22) & 0x3f) as u8,
    })?;
    let s = (word >> 21) & 1 != 0;
    let p = word & 0x1f_ffff;
    let operands = match op.shape() {
        Shape::Dp3 => vec![
            Operand::Reg(reg_field((p >> 17) & 0xf)?),
            Operand::Reg(reg_field((p >> 13) & 0xf)?),
            decode_op2(p & 0x1fff)?,
        ],
        Shape::Dp2 | Shape::Cmp2 => vec![
            Operand::Reg(reg_field((p >> 17) & 0xf)?),
            decode_op2(p & 0x1fff)?,
        ],
        Shape::Unary2 => vec![
            Operand::Reg(reg_field((p >> 17) & 0xf)?),
            Operand::Reg(reg_field((p >> 13) & 0xf)?),
        ],
        Shape::Mul3 => vec![
            Operand::Reg(reg_field((p >> 17) & 0xf)?),
            Operand::Reg(reg_field((p >> 13) & 0xf)?),
            Operand::Reg(reg_field((p >> 9) & 0xf)?),
        ],
        Shape::Mul4 => vec![
            Operand::Reg(reg_field((p >> 17) & 0xf)?),
            Operand::Reg(reg_field((p >> 13) & 0xf)?),
            Operand::Reg(reg_field((p >> 9) & 0xf)?),
            Operand::Reg(reg_field((p >> 5) & 0xf)?),
        ],
        Shape::LdSt => vec![
            Operand::Reg(reg_field((p >> 17) & 0xf)?),
            Operand::Mem(decode_mem(p & 0x1_ffff)?),
        ],
        Shape::Stack => vec![Operand::RegList(RegList::from_bits((p & 0xffff) as u16))],
        Shape::Branch => {
            let d = (pdbt_isa::sign_extend(p, 21) as i32) * 4;
            vec![Operand::Target(d)]
        }
        Shape::BranchReg => vec![Operand::Reg(reg_field((p >> 17) & 0xf)?)],
        Shape::Sys => vec![Operand::Imm(p & 0xffff)],
        Shape::Vfp3 => vec![
            Operand::FReg(freg_field((p >> 17) & 0xf)),
            Operand::FReg(freg_field((p >> 13) & 0xf)),
            Operand::FReg(freg_field((p >> 9) & 0xf)),
        ],
        Shape::Vfp2 => vec![
            Operand::FReg(freg_field((p >> 17) & 0xf)),
            Operand::FReg(freg_field((p >> 13) & 0xf)),
        ],
        Shape::VfpLdSt => vec![
            Operand::FReg(freg_field((p >> 17) & 0xf)),
            Operand::Mem(decode_mem(p & 0x1_ffff)?),
        ],
    };
    let inst = Inst {
        op,
        s,
        cond,
        operands,
    };
    inst.validate().map_err(|e| DecodeError::BadField {
        detail: e.to_string(),
    })?;
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::*;
    use pdbt_isa::Cond;

    fn roundtrip(i: &Inst) {
        let w = encode(i).unwrap_or_else(|e| panic!("encode {i}: {e}"));
        let back = decode(w).unwrap_or_else(|e| panic!("decode {i} ({w:#010x}): {e}"));
        assert_eq!(&back, i, "roundtrip of {i}");
    }

    #[test]
    fn roundtrip_representative_instructions() {
        let cases = vec![
            add(Reg::R0, Reg::R1, Operand::Imm(5)),
            add(Reg::R0, Reg::R1, Operand::Reg(Reg::R2)).with_s(),
            sub(Reg::R12, Reg::Sp, Operand::Imm(2047)),
            eor(
                Reg::R3,
                Reg::R3,
                Operand::Shifted {
                    rm: Reg::R4,
                    kind: ShiftKind::Asr,
                    amount: 31,
                },
            ),
            mov(Reg::R0, Operand::Imm(0)).with_cond(Cond::Eq),
            mvn(Reg::R7, Operand::Reg(Reg::R8)).with_s(),
            clz(Reg::R1, Reg::R2),
            mul(Reg::R0, Reg::R1, Reg::R2),
            mla(Reg::R0, Reg::R1, Reg::R2, Reg::R3),
            umull(Reg::R0, Reg::R1, Reg::R2, Reg::R3),
            umlal(Reg::R4, Reg::R5, Reg::R6, Reg::R7),
            cmp(Reg::R0, Operand::Imm(100)),
            teq(Reg::R9, Operand::Reg(Reg::R10)),
            ldr(
                Reg::R0,
                MemAddr::BaseImm {
                    base: Reg::Sp,
                    offset: -2047,
                },
            ),
            ldr(
                Reg::R0,
                MemAddr::BaseImm {
                    base: Reg::Pc,
                    offset: 16,
                },
            ),
            ldrb(
                Reg::R1,
                MemAddr::BaseReg {
                    base: Reg::R2,
                    index: Reg::R3,
                },
            ),
            strh(
                Reg::R4,
                MemAddr::BaseImm {
                    base: Reg::R5,
                    offset: 6,
                },
            ),
            push([Reg::R4, Reg::R5, Reg::Lr]),
            pop([Reg::R4, Reg::Pc]),
            b(Cond::Ne, -1024),
            b(Cond::Al, MAX_BRANCH),
            bl(4096),
            bx(Reg::Lr),
            svc(1),
            vadd(FReg::new(0), FReg::new(1), FReg::new(15)),
            vcmp(FReg::new(3), FReg::new(4)),
            vldr(
                FReg::new(2),
                MemAddr::BaseImm {
                    base: Reg::R0,
                    offset: 8,
                },
            ),
            vstr(
                FReg::new(9),
                MemAddr::BaseReg {
                    base: Reg::R1,
                    index: Reg::R2,
                },
            ),
        ];
        for i in &cases {
            roundtrip(i);
        }
    }

    #[test]
    fn encode_rejects_overflow() {
        let i = Inst {
            op: Op::B,
            s: false,
            cond: Cond::Al,
            operands: vec![Operand::Target(2)],
        };
        assert!(matches!(encode(&i), Err(EncodeError::FieldOverflow { .. })));
        let i = Inst {
            op: Op::Svc,
            s: false,
            cond: Cond::Al,
            operands: vec![Operand::Imm(0x1_0000)],
        };
        assert!(matches!(encode(&i), Err(EncodeError::FieldOverflow { .. })));
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        // Opcode field 63 is unused.
        let w = 63u32 << 22;
        assert!(matches!(decode(w), Err(DecodeError::BadOpcode { raw: 63 })));
    }

    #[test]
    fn decode_rejects_bad_op2_kind() {
        // Build an add with op2 kind = 3 (invalid).
        let w =
            (u32::from(Cond::Al.index()) << 28) | (u32::from(Op::Add.index()) << 22) | (3 << 11);
        assert!(decode(w).is_err());
    }
}
