//! Ergonomic constructors for guest instructions.
//!
//! These panic on shape violations (they are meant for code generators and
//! tests that construct instructions statically); use [`Inst::new`] for
//! fallible construction from untrusted input.

use crate::inst::{Inst, Op};
use crate::operand::{MemAddr, Operand};
use crate::reg::{FReg, Reg, RegList};
use pdbt_isa::Cond;

fn build(op: Op, operands: Vec<Operand>) -> Inst {
    Inst::new(op, operands).expect("builder produced a malformed instruction")
}

macro_rules! dp3_builder {
    ($(#[$doc:meta] $name:ident => $op:ident),* $(,)?) => {
        $(
            #[$doc]
            #[must_use]
            pub fn $name(rd: Reg, rn: Reg, op2: Operand) -> Inst {
                build(Op::$op, vec![Operand::Reg(rd), Operand::Reg(rn), op2])
            }
        )*
    };
}

dp3_builder! {
    /// `and rd, rn, <op2>`
    and => And,
    /// `eor rd, rn, <op2>`
    eor => Eor,
    /// `sub rd, rn, <op2>`
    sub => Sub,
    /// `rsb rd, rn, <op2>`
    rsb => Rsb,
    /// `add rd, rn, <op2>`
    add => Add,
    /// `adc rd, rn, <op2>`
    adc => Adc,
    /// `sbc rd, rn, <op2>`
    sbc => Sbc,
    /// `rsc rd, rn, <op2>`
    rsc => Rsc,
    /// `orr rd, rn, <op2>`
    orr => Orr,
    /// `bic rd, rn, <op2>`
    bic => Bic,
    /// `lsl rd, rn, <op2>`
    lsl => Lsl,
    /// `lsr rd, rn, <op2>`
    lsr => Lsr,
    /// `asr rd, rn, <op2>`
    asr => Asr,
    /// `ror rd, rn, <op2>`
    ror => Ror,
}

/// `mov rd, <op2>`
#[must_use]
pub fn mov(rd: Reg, op2: Operand) -> Inst {
    build(Op::Mov, vec![Operand::Reg(rd), op2])
}

/// `mvn rd, <op2>`
#[must_use]
pub fn mvn(rd: Reg, op2: Operand) -> Inst {
    build(Op::Mvn, vec![Operand::Reg(rd), op2])
}

/// `clz rd, rm`
#[must_use]
pub fn clz(rd: Reg, rm: Reg) -> Inst {
    build(Op::Clz, vec![Operand::Reg(rd), Operand::Reg(rm)])
}

/// `mul rd, rm, rs`
#[must_use]
pub fn mul(rd: Reg, rm: Reg, rs: Reg) -> Inst {
    build(
        Op::Mul,
        vec![Operand::Reg(rd), Operand::Reg(rm), Operand::Reg(rs)],
    )
}

/// `mla rd, rm, rs, ra` — `rd = rm * rs + ra`
#[must_use]
pub fn mla(rd: Reg, rm: Reg, rs: Reg, ra: Reg) -> Inst {
    build(
        Op::Mla,
        vec![
            Operand::Reg(rd),
            Operand::Reg(rm),
            Operand::Reg(rs),
            Operand::Reg(ra),
        ],
    )
}

/// `umull rdlo, rdhi, rm, rs`
#[must_use]
pub fn umull(rdlo: Reg, rdhi: Reg, rm: Reg, rs: Reg) -> Inst {
    build(
        Op::Umull,
        vec![
            Operand::Reg(rdlo),
            Operand::Reg(rdhi),
            Operand::Reg(rm),
            Operand::Reg(rs),
        ],
    )
}

/// `umlal rdlo, rdhi, rm, rs`
#[must_use]
pub fn umlal(rdlo: Reg, rdhi: Reg, rm: Reg, rs: Reg) -> Inst {
    build(
        Op::Umlal,
        vec![
            Operand::Reg(rdlo),
            Operand::Reg(rdhi),
            Operand::Reg(rm),
            Operand::Reg(rs),
        ],
    )
}

/// `cmp rn, <op2>`
#[must_use]
pub fn cmp(rn: Reg, op2: Operand) -> Inst {
    build(Op::Cmp, vec![Operand::Reg(rn), op2])
}

/// `cmn rn, <op2>`
#[must_use]
pub fn cmn(rn: Reg, op2: Operand) -> Inst {
    build(Op::Cmn, vec![Operand::Reg(rn), op2])
}

/// `tst rn, <op2>`
#[must_use]
pub fn tst(rn: Reg, op2: Operand) -> Inst {
    build(Op::Tst, vec![Operand::Reg(rn), op2])
}

/// `teq rn, <op2>`
#[must_use]
pub fn teq(rn: Reg, op2: Operand) -> Inst {
    build(Op::Teq, vec![Operand::Reg(rn), op2])
}

macro_rules! ldst_builder {
    ($(#[$doc:meta] $name:ident => $op:ident),* $(,)?) => {
        $(
            #[$doc]
            #[must_use]
            pub fn $name(rt: Reg, mem: MemAddr) -> Inst {
                build(Op::$op, vec![Operand::Reg(rt), Operand::Mem(mem)])
            }
        )*
    };
}

ldst_builder! {
    /// `ldr rt, <mem>`
    ldr => Ldr,
    /// `ldrb rt, <mem>`
    ldrb => Ldrb,
    /// `ldrh rt, <mem>`
    ldrh => Ldrh,
    /// `str rt, <mem>` (named `str_` to avoid the `str` keyword-adjacent clash)
    str_ => Str,
    /// `strb rt, <mem>`
    strb => Strb,
    /// `strh rt, <mem>`
    strh => Strh,
}

/// `push {regs}`
#[must_use]
pub fn push<I: IntoIterator<Item = Reg>>(regs: I) -> Inst {
    build(Op::Push, vec![Operand::RegList(RegList::from_regs(regs))])
}

/// `pop {regs}`
#[must_use]
pub fn pop<I: IntoIterator<Item = Reg>>(regs: I) -> Inst {
    build(Op::Pop, vec![Operand::RegList(RegList::from_regs(regs))])
}

/// `b<cond> <target>` — `target` is a byte displacement from this
/// instruction.
#[must_use]
pub fn b(cond: Cond, target: i32) -> Inst {
    build(Op::B, vec![Operand::Target(target)]).with_cond(cond)
}

/// `bl <target>`
#[must_use]
pub fn bl(target: i32) -> Inst {
    build(Op::Bl, vec![Operand::Target(target)])
}

/// `bx rm`
#[must_use]
pub fn bx(rm: Reg) -> Inst {
    build(Op::Bx, vec![Operand::Reg(rm)])
}

/// `svc #imm` — `0` exits, `1` emits `r0` to the output stream.
#[must_use]
pub fn svc(imm: u32) -> Inst {
    build(Op::Svc, vec![Operand::Imm(imm)])
}

/// `vadd.f32 sd, sn, sm`
#[must_use]
pub fn vadd(sd: FReg, sn: FReg, sm: FReg) -> Inst {
    build(
        Op::Vadd,
        vec![Operand::FReg(sd), Operand::FReg(sn), Operand::FReg(sm)],
    )
}

/// `vsub.f32 sd, sn, sm`
#[must_use]
pub fn vsub(sd: FReg, sn: FReg, sm: FReg) -> Inst {
    build(
        Op::Vsub,
        vec![Operand::FReg(sd), Operand::FReg(sn), Operand::FReg(sm)],
    )
}

/// `vmul.f32 sd, sn, sm`
#[must_use]
pub fn vmul(sd: FReg, sn: FReg, sm: FReg) -> Inst {
    build(
        Op::Vmul,
        vec![Operand::FReg(sd), Operand::FReg(sn), Operand::FReg(sm)],
    )
}

/// `vdiv.f32 sd, sn, sm`
#[must_use]
pub fn vdiv(sd: FReg, sn: FReg, sm: FReg) -> Inst {
    build(
        Op::Vdiv,
        vec![Operand::FReg(sd), Operand::FReg(sn), Operand::FReg(sm)],
    )
}

/// `vmov.f32 sd, sm`
#[must_use]
pub fn vmov(sd: FReg, sm: FReg) -> Inst {
    build(Op::Vmov, vec![Operand::FReg(sd), Operand::FReg(sm)])
}

/// `vcmp.f32 sd, sm`
#[must_use]
pub fn vcmp(sd: FReg, sm: FReg) -> Inst {
    build(Op::Vcmp, vec![Operand::FReg(sd), Operand::FReg(sm)])
}

/// `vldr sd, <mem>`
#[must_use]
pub fn vldr(sd: FReg, mem: MemAddr) -> Inst {
    build(Op::Vldr, vec![Operand::FReg(sd), Operand::Mem(mem)])
}

/// `vstr sd, <mem>`
#[must_use]
pub fn vstr(sd: FReg, mem: MemAddr) -> Inst {
    build(Op::Vstr, vec![Operand::FReg(sd), Operand::Mem(mem)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_valid_instructions() {
        let insts = vec![
            add(Reg::R0, Reg::R1, Operand::Imm(1)),
            eor(Reg::R2, Reg::R2, Operand::Reg(Reg::R3)),
            mov(Reg::R0, Operand::Imm(0)),
            mvn(Reg::R0, Operand::Reg(Reg::R1)),
            clz(Reg::R0, Reg::R1),
            mul(Reg::R0, Reg::R1, Reg::R2),
            mla(Reg::R0, Reg::R1, Reg::R2, Reg::R3),
            umull(Reg::R0, Reg::R1, Reg::R2, Reg::R3),
            umlal(Reg::R0, Reg::R1, Reg::R2, Reg::R3),
            cmp(Reg::R0, Operand::Imm(0)),
            tst(Reg::R0, Operand::Reg(Reg::R1)),
            ldr(
                Reg::R0,
                MemAddr::BaseImm {
                    base: Reg::Sp,
                    offset: 4,
                },
            ),
            str_(
                Reg::R0,
                MemAddr::BaseReg {
                    base: Reg::R1,
                    index: Reg::R2,
                },
            ),
            push([Reg::R4, Reg::Lr]),
            pop([Reg::R4, Reg::Pc]),
            b(Cond::Eq, 16),
            bl(128),
            bx(Reg::Lr),
            svc(0),
            vadd(FReg::new(0), FReg::new(1), FReg::new(2)),
            vmov(FReg::new(0), FReg::new(1)),
            vldr(
                FReg::new(3),
                MemAddr::BaseImm {
                    base: Reg::R0,
                    offset: 8,
                },
            ),
        ];
        for i in insts {
            assert!(i.validate().is_ok(), "{i}");
        }
    }
}
