//! A small assembler: parses the disassembly syntax back into
//! instructions, so tests and examples can write guest code as text.
//!
//! The grammar is exactly what [`Inst`]'s `Display` produces, e.g.
//! `adds r0, r1, #5`, `ldr r3, [sp, #16]`, `bne .-8`, `push {r4, lr}`.

use crate::inst::{Inst, Op};
use crate::operand::{MemAddr, Operand, ShiftKind};
use crate::reg::{FReg, Reg, RegList};
use pdbt_isa::Cond;
use std::str::FromStr;

/// An assembler parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.detail)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(detail: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        detail: detail.into(),
    })
}

/// Splits the operand text on top-level commas (commas inside `[...]` and
/// `{...}` do not split).
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '[' | '{' => {
                depth += 1;
                cur.push(ch);
            }
            ']' | '}' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn parse_imm(s: &str) -> Result<i64, ParseError> {
    let body = s.strip_prefix('#').unwrap_or(s);
    let (neg, digits) = match body.strip_prefix('-') {
        Some(d) => (true, d),
        None => (false, body),
    };
    let v = if let Some(hex) = digits.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        digits.parse::<i64>()
    };
    match v {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(format!("bad immediate `{s}`")),
    }
}

fn parse_mem(s: &str) -> Result<MemAddr, ParseError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| ParseError {
            detail: format!("bad memory operand `{s}`"),
        })?;
    let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
    let base = Reg::from_str(parts[0]).map_err(|e| ParseError { detail: e })?;
    match parts.len() {
        1 => Ok(MemAddr::BaseImm { base, offset: 0 }),
        2 => {
            if parts[1].starts_with('#') {
                Ok(MemAddr::BaseImm {
                    base,
                    offset: parse_imm(parts[1])? as i32,
                })
            } else {
                let index = Reg::from_str(parts[1]).map_err(|e| ParseError { detail: e })?;
                Ok(MemAddr::BaseReg { base, index })
            }
        }
        _ => err(format!("bad memory operand `{s}`")),
    }
}

fn parse_reglist(s: &str) -> Result<RegList, ParseError> {
    let inner = s
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| ParseError {
            detail: format!("bad register list `{s}`"),
        })?;
    let mut list = RegList::EMPTY;
    for part in inner.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        list.insert(Reg::from_str(part).map_err(|e| ParseError { detail: e })?);
    }
    Ok(list)
}

/// Parses one operand. A trailing shifted-register pair such as
/// `r1, lsl #2` arrives as two comma-split pieces, so the caller glues
/// them; this function only sees single pieces.
fn parse_operand(s: &str) -> Result<Operand, ParseError> {
    if s.starts_with('#') {
        return Ok(Operand::Imm(parse_imm(s)? as u32));
    }
    if s.starts_with('[') {
        return Ok(Operand::Mem(parse_mem(s)?));
    }
    if s.starts_with('{') {
        return Ok(Operand::RegList(parse_reglist(s)?));
    }
    if let Some(rest) = s.strip_prefix(".") {
        let d = parse_imm(rest.strip_prefix('+').unwrap_or(rest))?;
        return Ok(Operand::Target(d as i32));
    }
    if s.starts_with('s') && s[1..].chars().all(|c| c.is_ascii_digit()) {
        return Ok(Operand::FReg(
            FReg::from_str(s).map_err(|e| ParseError { detail: e })?,
        ));
    }
    Ok(Operand::Reg(
        Reg::from_str(s).map_err(|e| ParseError { detail: e })?,
    ))
}

/// Recognizes `<reg>, <shift> #<amount>` produced when the last two
/// comma-split pieces form a shifted-register operand.
fn try_glue_shift(a: &str, b: &str) -> Option<Operand> {
    let mut it = b.split_whitespace();
    let kind = match it.next()? {
        "lsl" => ShiftKind::Lsl,
        "lsr" => ShiftKind::Lsr,
        "asr" => ShiftKind::Asr,
        "ror" => ShiftKind::Ror,
        _ => return None,
    };
    let amount: u8 = it.next()?.strip_prefix('#')?.parse().ok()?;
    let rm = Reg::from_str(a).ok()?;
    Some(Operand::Shifted { rm, kind, amount })
}

/// Splits a mnemonic into `(opcode, s, cond)`.
fn parse_mnemonic(m: &str) -> Result<(Op, bool, Cond), ParseError> {
    // Longest-match opcode first, then optional `s`, then optional cond.
    let mut candidates: Vec<&Op> = Op::ALL.iter().collect();
    candidates.sort_by_key(|o| std::cmp::Reverse(o.mnemonic().len()));
    for op in candidates {
        if let Some(rest) = m.strip_prefix(op.mnemonic()) {
            let (s, rest) = if op.supports_s() && rest.starts_with('s') {
                // Avoid eating a condition that begins with 's'... no ARM
                // condition starts with 's', so this is unambiguous.
                (true, &rest[1..])
            } else {
                (false, rest)
            };
            let cond = if rest.is_empty() {
                Cond::Al
            } else {
                match Cond::ALL.iter().find(|c| c.to_string() == rest) {
                    Some(c) => *c,
                    None => continue,
                }
            };
            return Ok((*op, s, cond));
        }
    }
    err(format!("unknown mnemonic `{m}`"))
}

impl FromStr for Inst {
    type Err = ParseError;

    fn from_str(line: &str) -> Result<Inst, ParseError> {
        let line = line.trim();
        let (mnemonic, rest) = match line.find(char::is_whitespace) {
            Some(i) => (&line[..i], line[i..].trim()),
            None => (line, ""),
        };
        let (op, s, cond) = parse_mnemonic(mnemonic)?;
        let pieces = split_operands(rest);
        let mut operands = Vec::new();
        let mut i = 0;
        while i < pieces.len() {
            if i + 1 < pieces.len() {
                if let Some(glued) = try_glue_shift(&pieces[i], &pieces[i + 1]) {
                    operands.push(glued);
                    i += 2;
                    continue;
                }
            }
            operands.push(parse_operand(&pieces[i])?);
            i += 1;
        }
        let mut inst = Inst::new(op, operands).map_err(|e| ParseError {
            detail: e.to_string(),
        })?;
        if s {
            inst = inst.with_s();
        }
        Ok(inst.with_cond(cond))
    }
}

/// Parses a multi-line listing (blank lines and `;` comments ignored).
///
/// # Errors
///
/// The first [`ParseError`] encountered, annotated with its line.
pub fn parse_listing(text: &str) -> Result<Vec<Inst>, ParseError> {
    let mut out = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let inst: Inst = line.parse().map_err(|e: ParseError| ParseError {
            detail: format!("line {}: {}", no + 1, e.detail),
        })?;
        out.push(inst);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::*;

    fn roundtrip(i: &Inst) {
        let text = i.to_string();
        let back: Inst = text
            .parse()
            .unwrap_or_else(|e| panic!("parse `{text}`: {e}"));
        assert_eq!(&back, i, "text roundtrip of `{text}`");
    }

    #[test]
    fn parse_roundtrips_display() {
        let cases = vec![
            add(Reg::R0, Reg::R1, Operand::Imm(5)),
            add(Reg::R0, Reg::R1, Operand::Reg(Reg::R2)).with_s(),
            sub(Reg::R0, Reg::Sp, Operand::Imm(16)),
            eor(
                Reg::R3,
                Reg::R3,
                Operand::Shifted {
                    rm: Reg::R4,
                    kind: ShiftKind::Lsl,
                    amount: 2,
                },
            ),
            mov(Reg::R0, Operand::Imm(0)).with_cond(Cond::Eq),
            mvn(Reg::R7, Operand::Reg(Reg::R8)).with_s(),
            clz(Reg::R1, Reg::R2),
            mla(Reg::R0, Reg::R1, Reg::R2, Reg::R3),
            cmp(Reg::R0, Operand::Imm(100)),
            ldr(
                Reg::R0,
                MemAddr::BaseImm {
                    base: Reg::Sp,
                    offset: -8,
                },
            ),
            ldr(
                Reg::R2,
                MemAddr::BaseImm {
                    base: Reg::R1,
                    offset: 0,
                },
            ),
            strb(
                Reg::R1,
                MemAddr::BaseReg {
                    base: Reg::R2,
                    index: Reg::R3,
                },
            ),
            push([Reg::R4, Reg::Lr]),
            pop([Reg::R4, Reg::Pc]),
            b(Cond::Ne, -8),
            b(Cond::Al, 64),
            bl(256),
            bx(Reg::Lr),
            svc(0),
            vadd(FReg::new(0), FReg::new(1), FReg::new(2)),
            vldr(
                FReg::new(3),
                MemAddr::BaseImm {
                    base: Reg::R0,
                    offset: 4,
                },
            ),
        ];
        for i in &cases {
            roundtrip(i);
        }
    }

    #[test]
    fn parse_listing_with_comments() {
        let text = "
            mov r0, #5      ; counter
            mov r1, #0

            add r1, r1, r0
            subs r0, r0, #1
            bne .-8
            svc #0
        ";
        let insts = parse_listing(text).unwrap();
        assert_eq!(insts.len(), 6);
        assert_eq!(insts[3], sub(Reg::R0, Reg::R0, Operand::Imm(1)).with_s());
        assert_eq!(insts[4], b(Cond::Ne, -8));
    }

    #[test]
    fn parse_errors_are_located() {
        let e = parse_listing("mov r0, #1\nbogus r1").unwrap_err();
        assert!(e.detail.contains("line 2"), "{e}");
    }

    #[test]
    fn parse_hex_immediates() {
        let i: Inst = "mov r0, #0xff".parse().unwrap();
        assert_eq!(i, mov(Reg::R0, Operand::Imm(255)));
    }

    #[test]
    fn ambiguous_mnemonics_resolve() {
        // `muls` is mul + s, not m + uls; `bls` is b + ls condition.
        let i: Inst = "muls r0, r1, r2".parse().unwrap();
        assert_eq!(i.op, Op::Mul);
        assert!(i.s);
        let i: Inst = "bls .+8".parse().unwrap();
        assert_eq!(i.op, Op::B);
        assert_eq!(i.cond, Cond::Ls);
        // `bics` = bic + s.
        let i: Inst = "bics r0, r0, r1".parse().unwrap();
        assert_eq!(i.op, Op::Bic);
        assert!(i.s);
    }
}
