//! Guest operands: the flexible second operand (immediate / register /
//! shifted register), memory addressing modes, and the uniform operand
//! type the parameterization framework manipulates.

use crate::reg::{FReg, Reg, RegList};
use pdbt_isa::AddrModeKind;
use std::fmt;

/// Barrel-shifter operation applied to a register operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ShiftKind {
    /// Logical shift left.
    Lsl,
    /// Logical shift right.
    Lsr,
    /// Arithmetic shift right.
    Asr,
    /// Rotate right.
    Ror,
}

impl ShiftKind {
    /// All shift kinds, in encoding order.
    pub const ALL: [ShiftKind; 4] = [
        ShiftKind::Lsl,
        ShiftKind::Lsr,
        ShiftKind::Asr,
        ShiftKind::Ror,
    ];

    /// Applies the shift to `v` by `amount` (1–31), returning the result
    /// and the carry-out bit.
    #[must_use]
    pub fn apply(self, v: u32, amount: u8) -> (u32, bool) {
        debug_assert!((1..32).contains(&amount));
        let a = u32::from(amount);
        match self {
            ShiftKind::Lsl => (v << a, (v >> (32 - a)) & 1 != 0),
            ShiftKind::Lsr => (v >> a, (v >> (a - 1)) & 1 != 0),
            ShiftKind::Asr => (((v as i32) >> a) as u32, ((v as i32) >> (a - 1)) & 1 != 0),
            ShiftKind::Ror => (v.rotate_right(a), (v >> (a - 1)) & 1 != 0),
        }
    }

    /// Encoding index (0–3).
    #[must_use]
    pub fn index(self) -> u8 {
        ShiftKind::ALL.iter().position(|k| *k == self).unwrap() as u8
    }

    /// Inverse of [`ShiftKind::index`].
    #[must_use]
    pub fn from_index(i: u8) -> Option<ShiftKind> {
        ShiftKind::ALL.get(i as usize).copied()
    }
}

impl fmt::Display for ShiftKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShiftKind::Lsl => "lsl",
            ShiftKind::Lsr => "lsr",
            ShiftKind::Asr => "asr",
            ShiftKind::Ror => "ror",
        })
    }
}

/// A guest memory addressing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemAddr {
    /// `[base, #offset]` — base register plus signed immediate offset.
    /// With `base == pc` this is the PC-relative mode of paper Fig 9.
    BaseImm {
        /// Base register.
        base: Reg,
        /// Signed byte offset, representable range ±2047.
        offset: i32,
    },
    /// `[base, index]` — base register plus index register.
    BaseReg {
        /// Base register.
        base: Reg,
        /// Index register.
        index: Reg,
    },
}

impl MemAddr {
    /// Registers the address computation reads.
    pub fn uses(self) -> impl Iterator<Item = Reg> {
        let (a, b) = match self {
            MemAddr::BaseImm { base, .. } => (base, None),
            MemAddr::BaseReg { base, index } => (base, Some(index)),
        };
        std::iter::once(a).chain(b)
    }

    /// Whether the address uses the program counter.
    #[must_use]
    pub fn uses_pc(self) -> bool {
        self.uses().any(Reg::is_pc)
    }
}

impl fmt::Display for MemAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemAddr::BaseImm { base, offset: 0 } => write!(f, "[{base}]"),
            MemAddr::BaseImm { base, offset } => write!(f, "[{base}, #{offset}]"),
            MemAddr::BaseReg { base, index } => write!(f, "[{base}, {index}]"),
        }
    }
}

/// A uniform guest operand.
///
/// Instructions carry a positional operand vector of this type, which is
/// what makes the addressing-mode dimension of parameterization (paper
/// §IV-B) a per-slot substitution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Operand {
    /// A general-purpose register.
    Reg(Reg),
    /// An immediate (representable range 0–2047 in the binary encoding).
    Imm(u32),
    /// A register transformed by the barrel shifter.
    Shifted {
        /// The register being shifted.
        rm: Reg,
        /// The shift operation.
        kind: ShiftKind,
        /// Shift amount, 1–31.
        amount: u8,
    },
    /// A memory operand.
    Mem(MemAddr),
    /// A floating-point register.
    FReg(FReg),
    /// A register list (`push`/`pop`).
    RegList(RegList),
    /// A branch displacement in bytes, relative to the branch instruction.
    Target(i32),
}

impl Operand {
    /// The addressing-mode kind of this operand, if it participates in
    /// addressing-mode parameterization (`RegList`/`Target` do not; `FReg`
    /// is classified as a register).
    #[must_use]
    pub fn addr_mode(&self) -> Option<AddrModeKind> {
        match self {
            Operand::Reg(_) => Some(AddrModeKind::Reg),
            Operand::Imm(_) => Some(AddrModeKind::Imm),
            Operand::Shifted { .. } => Some(AddrModeKind::ShiftedReg),
            Operand::Mem(_) => Some(AddrModeKind::Mem),
            Operand::FReg(_) => Some(AddrModeKind::Reg),
            Operand::RegList(_) | Operand::Target(_) => None,
        }
    }

    /// The general-purpose registers this operand reads.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Operand::Reg(r) => vec![*r],
            Operand::Shifted { rm, .. } => vec![*rm],
            Operand::Mem(m) => m.uses().collect(),
            Operand::RegList(l) => l.iter().collect(),
            Operand::Imm(_) | Operand::FReg(_) | Operand::Target(_) => vec![],
        }
    }

    /// Whether the operand mentions the program counter.
    #[must_use]
    pub fn uses_pc(&self) -> bool {
        self.uses().iter().any(|r| r.is_pc())
    }

    /// Convenience accessor: the register, if this is a plain register.
    #[must_use]
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// Convenience accessor: the immediate, if this is an immediate.
    #[must_use]
    pub fn as_imm(&self) -> Option<u32> {
        match self {
            Operand::Imm(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience accessor: the memory address, if this is a memory
    /// operand.
    #[must_use]
    pub fn as_mem(&self) -> Option<MemAddr> {
        match self {
            Operand::Mem(m) => Some(*m),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
            Operand::Shifted { rm, kind, amount } => write!(f, "{rm}, {kind} #{amount}"),
            Operand::Mem(m) => write!(f, "{m}"),
            Operand::FReg(r) => write!(f, "{r}"),
            Operand::RegList(l) => write!(f, "{l}"),
            Operand::Target(d) => {
                if *d >= 0 {
                    write!(f, ".+{d}")
                } else {
                    write!(f, ".{d}")
                }
            }
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Operand {
        Operand::Imm(v)
    }
}

impl From<MemAddr> for Operand {
    fn from(m: MemAddr) -> Operand {
        Operand::Mem(m)
    }
}

impl From<FReg> for Operand {
    fn from(r: FReg) -> Operand {
        Operand::FReg(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_apply_lsl() {
        assert_eq!(ShiftKind::Lsl.apply(1, 4), (16, false));
        assert_eq!(ShiftKind::Lsl.apply(0x8000_0000, 1), (0, true));
    }

    #[test]
    fn shift_apply_lsr_asr() {
        assert_eq!(ShiftKind::Lsr.apply(0x8000_0000, 31), (1, false));
        assert_eq!(ShiftKind::Lsr.apply(3, 1), (1, true));
        assert_eq!(ShiftKind::Asr.apply(0x8000_0000, 31), (0xffff_ffff, false));
        assert_eq!(ShiftKind::Asr.apply(0xffff_fffe, 1), (0xffff_ffff, false));
    }

    #[test]
    fn shift_apply_ror() {
        assert_eq!(ShiftKind::Ror.apply(1, 1), (0x8000_0000, true));
        assert_eq!(ShiftKind::Ror.apply(0xf000_000f, 4), (0xff00_0000, true));
    }

    #[test]
    fn shift_index_roundtrip() {
        for k in ShiftKind::ALL {
            assert_eq!(ShiftKind::from_index(k.index()), Some(k));
        }
        assert_eq!(ShiftKind::from_index(4), None);
    }

    #[test]
    fn memaddr_uses_and_pc() {
        let m = MemAddr::BaseImm {
            base: Reg::Pc,
            offset: 16,
        };
        assert!(m.uses_pc());
        let m = MemAddr::BaseReg {
            base: Reg::R1,
            index: Reg::R2,
        };
        assert_eq!(m.uses().collect::<Vec<_>>(), vec![Reg::R1, Reg::R2]);
        assert!(!m.uses_pc());
    }

    #[test]
    fn operand_addr_modes() {
        assert_eq!(Operand::Reg(Reg::R0).addr_mode(), Some(AddrModeKind::Reg));
        assert_eq!(Operand::Imm(5).addr_mode(), Some(AddrModeKind::Imm));
        assert_eq!(
            Operand::Shifted {
                rm: Reg::R1,
                kind: ShiftKind::Lsl,
                amount: 2
            }
            .addr_mode(),
            Some(AddrModeKind::ShiftedReg)
        );
        assert_eq!(
            Operand::Mem(MemAddr::BaseImm {
                base: Reg::R1,
                offset: 0
            })
            .addr_mode(),
            Some(AddrModeKind::Mem)
        );
        assert_eq!(Operand::Target(8).addr_mode(), None);
    }

    #[test]
    fn operand_display() {
        assert_eq!(Operand::Reg(Reg::R3).to_string(), "r3");
        assert_eq!(Operand::Imm(42).to_string(), "#42");
        assert_eq!(
            Operand::Shifted {
                rm: Reg::R1,
                kind: ShiftKind::Lsl,
                amount: 2
            }
            .to_string(),
            "r1, lsl #2"
        );
        assert_eq!(
            Operand::Mem(MemAddr::BaseImm {
                base: Reg::R2,
                offset: -4
            })
            .to_string(),
            "[r2, #-4]"
        );
        assert_eq!(
            Operand::Mem(MemAddr::BaseImm {
                base: Reg::R2,
                offset: 0
            })
            .to_string(),
            "[r2]"
        );
        assert_eq!(Operand::Target(-8).to_string(), ".-8");
        assert_eq!(Operand::Target(12).to_string(), ".+12");
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg::R1), Operand::Reg(Reg::R1));
        assert_eq!(Operand::from(7u32), Operand::Imm(7));
    }
}
