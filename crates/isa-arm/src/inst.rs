//! Guest instruction set: opcodes, the instruction struct, shape
//! validation, and the classification metadata (paper §IV-A) the
//! parameterization framework consumes.

use crate::operand::{MemAddr, Operand};
use crate::reg::{Reg, RegList};
use pdbt_isa::{Cond, DataType, EncodingFormat, ExecError, FlagSet, OpCategory, Width};
use std::fmt;

/// A guest opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // the mnemonics are their own documentation
pub enum Op {
    // Data-processing, three-operand (rd, rn, op2).
    And,
    Eor,
    Sub,
    Rsb,
    Add,
    Adc,
    Sbc,
    Rsc,
    Orr,
    Bic,
    // Shifts as three-operand ops (rd, rn, op2 = amount reg/imm).
    Lsl,
    Lsr,
    Asr,
    Ror,
    // Data-processing, two-operand (rd, op2).
    Mov,
    Mvn,
    // Multiply family.
    Mul,
    Mla,
    Umull,
    Umlal,
    // Count leading zeros.
    Clz,
    // Compare family (rn, op2) — flag-only.
    Cmp,
    Cmn,
    Tst,
    Teq,
    // Loads and stores (rt, mem).
    Ldr,
    Ldrb,
    Ldrh,
    Str,
    Strb,
    Strh,
    // Stack.
    Push,
    Pop,
    // Branches.
    B,
    Bl,
    Bx,
    // Supervisor call (0 = exit, 1 = emit r0 to the output stream).
    Svc,
    // Scalar floating point.
    Vadd,
    Vsub,
    Vmul,
    Vdiv,
    Vmov,
    Vcmp,
    Vldr,
    Vstr,
}

/// The operand-shape class of an opcode, used for validation, encoding
/// and interpretation dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// `op rd, rn, <op2>` — three-operand data processing.
    Dp3,
    /// `op rd, <op2>` — two-operand data processing (`mov`, `mvn`).
    Dp2,
    /// `op rd, rm` — `clz`.
    Unary2,
    /// `op rd, rm, rs` — `mul`.
    Mul3,
    /// `op rd, rm, rs, ra` / `op rdlo, rdhi, rm, rs` — `mla`, `umull`, `umlal`.
    Mul4,
    /// `op rn, <op2>` — compares.
    Cmp2,
    /// `op rt, <mem>` — loads and stores.
    LdSt,
    /// `op {list}` — `push`/`pop`.
    Stack,
    /// `op <target>` — `b`, `bl`.
    Branch,
    /// `op rm` — `bx`.
    BranchReg,
    /// `op #imm` — `svc`.
    Sys,
    /// `op sd, sn, sm` — VFP three-operand.
    Vfp3,
    /// `op sd, sm` — VFP two-operand (`vmov`, `vcmp`).
    Vfp2,
    /// `op sd, <mem>` — VFP load/store.
    VfpLdSt,
}

impl Op {
    /// All opcodes, in encoding order.
    pub const ALL: [Op; 45] = [
        Op::And,
        Op::Eor,
        Op::Sub,
        Op::Rsb,
        Op::Add,
        Op::Adc,
        Op::Sbc,
        Op::Rsc,
        Op::Orr,
        Op::Bic,
        Op::Lsl,
        Op::Lsr,
        Op::Asr,
        Op::Ror,
        Op::Mov,
        Op::Mvn,
        Op::Mul,
        Op::Mla,
        Op::Umull,
        Op::Umlal,
        Op::Clz,
        Op::Cmp,
        Op::Cmn,
        Op::Tst,
        Op::Teq,
        Op::Ldr,
        Op::Ldrb,
        Op::Ldrh,
        Op::Str,
        Op::Strb,
        Op::Strh,
        Op::Push,
        Op::Pop,
        Op::B,
        Op::Bl,
        Op::Bx,
        Op::Svc,
        Op::Vadd,
        Op::Vsub,
        Op::Vmul,
        Op::Vdiv,
        Op::Vmov,
        Op::Vcmp,
        Op::Vldr,
        Op::Vstr,
    ];

    /// Encoding index.
    #[must_use]
    pub fn index(self) -> u8 {
        Op::ALL.iter().position(|o| *o == self).unwrap() as u8
    }

    /// Inverse of [`Op::index`].
    #[must_use]
    pub fn from_index(i: u8) -> Option<Op> {
        Op::ALL.get(i as usize).copied()
    }

    /// The operand-shape class.
    #[must_use]
    pub fn shape(self) -> Shape {
        use Op::*;
        match self {
            And | Eor | Sub | Rsb | Add | Adc | Sbc | Rsc | Orr | Bic | Lsl | Lsr | Asr | Ror => {
                Shape::Dp3
            }
            Mov | Mvn => Shape::Dp2,
            Clz => Shape::Unary2,
            Mul => Shape::Mul3,
            Mla | Umull | Umlal => Shape::Mul4,
            Cmp | Cmn | Tst | Teq => Shape::Cmp2,
            Ldr | Ldrb | Ldrh | Str | Strb | Strh => Shape::LdSt,
            Push | Pop => Shape::Stack,
            B | Bl => Shape::Branch,
            Bx => Shape::BranchReg,
            Svc => Shape::Sys,
            Vadd | Vsub | Vmul | Vdiv => Shape::Vfp3,
            Vmov | Vcmp => Shape::Vfp2,
            Vldr | Vstr => Shape::VfpLdSt,
        }
    }

    /// Data type for subgroup classification (paper §IV-A axis 1).
    #[must_use]
    pub fn data_type(self) -> DataType {
        use Op::*;
        match self {
            Vadd | Vsub | Vmul | Vdiv | Vmov | Vcmp | Vldr | Vstr => DataType::Float,
            _ => DataType::Int,
        }
    }

    /// Operation category (paper §IV-A axis 2, guideline 2 — the five ARM
    /// subgroups of the paper).
    #[must_use]
    pub fn category(self) -> OpCategory {
        use Op::*;
        match self {
            And | Eor | Sub | Rsb | Add | Adc | Sbc | Rsc | Orr | Bic | Lsl | Lsr | Asr | Ror
            | Mul | Mla | Umull | Umlal | Clz | Vadd | Vsub | Vmul | Vdiv => OpCategory::ArithLogic,
            Mov | Mvn | Ldr | Ldrb | Ldrh | Vmov | Vldr => OpCategory::LoadToReg,
            Str | Strb | Strh | Vstr => OpCategory::StoreToMem,
            Cmp | Cmn | Tst | Teq | Vcmp => OpCategory::Compare,
            Push | Pop | B | Bl | Bx | Svc => OpCategory::Other,
        }
    }

    /// Encoding format (paper §IV-A axis 2, guideline 1).
    #[must_use]
    pub fn format(self) -> EncodingFormat {
        use Op::*;
        match self {
            And | Eor | Sub | Rsb | Add | Adc | Sbc | Rsc | Orr | Bic | Lsl | Lsr | Asr | Ror
            | Mov | Mvn | Cmp | Cmn | Tst | Teq => EncodingFormat::GuestDp,
            Mul | Mla | Umull | Umlal => EncodingFormat::GuestMul,
            Clz | Push | Pop | Svc => EncodingFormat::GuestMisc,
            Ldr | Ldrb | Ldrh | Str | Strb | Strh => EncodingFormat::GuestLdSt,
            B | Bl | Bx => EncodingFormat::GuestBranch,
            Vadd | Vsub | Vmul | Vdiv | Vmov | Vcmp => EncodingFormat::GuestVfp,
            Vldr | Vstr => EncodingFormat::GuestVfp,
        }
    }

    /// Whether the `s` (set-flags) suffix is accepted.
    #[must_use]
    pub fn supports_s(self) -> bool {
        use Op::*;
        matches!(
            self,
            And | Eor
                | Sub
                | Rsb
                | Add
                | Adc
                | Sbc
                | Rsc
                | Orr
                | Bic
                | Lsl
                | Lsr
                | Asr
                | Ror
                | Mov
                | Mvn
                | Mul
                | Mla
        )
    }

    /// Flags this opcode *always* sets (compares), ignoring the `s` bit.
    #[must_use]
    pub fn intrinsic_flag_defs(self) -> FlagSet {
        use Op::*;
        match self {
            Cmp | Cmn => FlagSet::NZCV,
            Tst | Teq => FlagSet::NZ,
            Vcmp => FlagSet::NZCV,
            _ => FlagSet::EMPTY,
        }
    }

    /// Flags set when the `s` suffix is present.
    #[must_use]
    pub fn s_flag_defs(self) -> FlagSet {
        use Op::*;
        match self {
            Add | Adc | Sub | Sbc | Rsb | Rsc => FlagSet::NZCV,
            And | Orr | Eor | Bic | Mov | Mvn => FlagSet::NZ,
            Lsl | Lsr | Asr | Ror => FlagSet::NZC,
            Mul | Mla => FlagSet::NZ,
            _ => FlagSet::EMPTY,
        }
    }

    /// Flags this opcode reads (beyond any condition predicate).
    #[must_use]
    pub fn flag_uses(self) -> FlagSet {
        use pdbt_isa::Flag;
        match self {
            Op::Adc | Op::Sbc | Op::Rsc => FlagSet::single(Flag::C),
            _ => FlagSet::EMPTY,
        }
    }

    /// Whether the two source operands commute (paper §IV-C1: `add` is
    /// commutative, `sub` is not; the verifier drops swapped derivations
    /// for non-commutative opcodes).
    #[must_use]
    pub fn is_commutative(self) -> bool {
        use Op::*;
        matches!(
            self,
            And | Eor | Add | Adc | Orr | Mul | Cmn | Tst | Teq | Vadd | Vmul
        )
    }

    /// The "simple" partner of a complex opcode, with the transformation
    /// the complex one applies to its last source operand (paper §IV-C1,
    /// Fig 7: `bic` is `and` with an inverted operand; `mvn` is `mov` with
    /// an inverted operand; `rsb` is `sub` with swapped sources).
    #[must_use]
    pub fn complex_pair(self) -> Option<(Op, OperandTransform)> {
        match self {
            Op::Bic => Some((Op::And, OperandTransform::InvertLastSource)),
            Op::Mvn => Some((Op::Mov, OperandTransform::InvertLastSource)),
            Op::Rsb => Some((Op::Sub, OperandTransform::SwapSources)),
            Op::Rsc => Some((Op::Sbc, OperandTransform::SwapSources)),
            Op::Cmn => Some((Op::Cmp, OperandTransform::NegateLastSource)),
            _ => None,
        }
    }

    /// Memory access width for load/store opcodes.
    #[must_use]
    pub fn access_width(self) -> Option<Width> {
        use Op::*;
        match self {
            Ldr | Str | Vldr | Vstr => Some(Width::B32),
            Ldrh | Strh => Some(Width::B16),
            Ldrb | Strb => Some(Width::B8),
            _ => None,
        }
    }

    /// Whether this is a load (memory → register).
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self, Op::Ldr | Op::Ldrb | Op::Ldrh | Op::Vldr | Op::Pop)
    }

    /// Whether this is a store (register → memory).
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self, Op::Str | Op::Strb | Op::Strh | Op::Vstr | Op::Push)
    }

    /// The mnemonic text (without `s`/condition suffixes).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use Op::*;
        match self {
            And => "and",
            Eor => "eor",
            Sub => "sub",
            Rsb => "rsb",
            Add => "add",
            Adc => "adc",
            Sbc => "sbc",
            Rsc => "rsc",
            Orr => "orr",
            Bic => "bic",
            Lsl => "lsl",
            Lsr => "lsr",
            Asr => "asr",
            Ror => "ror",
            Mov => "mov",
            Mvn => "mvn",
            Mul => "mul",
            Mla => "mla",
            Umull => "umull",
            Umlal => "umlal",
            Clz => "clz",
            Cmp => "cmp",
            Cmn => "cmn",
            Tst => "tst",
            Teq => "teq",
            Ldr => "ldr",
            Ldrb => "ldrb",
            Ldrh => "ldrh",
            Str => "str",
            Strb => "strb",
            Strh => "strh",
            Push => "push",
            Pop => "pop",
            B => "b",
            Bl => "bl",
            Bx => "bx",
            Svc => "svc",
            Vadd => "vadd.f32",
            Vsub => "vsub.f32",
            Vmul => "vmul.f32",
            Vdiv => "vdiv.f32",
            Vmov => "vmov.f32",
            Vcmp => "vcmp.f32",
            Vldr => "vldr",
            Vstr => "vstr",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// How a complex opcode transforms its operands relative to its simple
/// partner (see [`Op::complex_pair`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandTransform {
    /// The last source operand is bitwise-inverted before use.
    InvertLastSource,
    /// The last source operand is arithmetically negated before use.
    NegateLastSource,
    /// The two source operands are exchanged.
    SwapSources,
}

/// A guest instruction: opcode, set-flags bit, condition predicate, and
/// positional operands.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The opcode.
    pub op: Op,
    /// Set-flags suffix (`adds` vs `add`).
    pub s: bool,
    /// Condition predicate (`Al` = unconditional).
    pub cond: Cond,
    /// Positional operands; the valid shape is dictated by [`Op::shape`].
    pub operands: Vec<Operand>,
}

impl Inst {
    /// Creates an unconditional, non-flag-setting instruction and
    /// validates its operand shape.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::MalformedInstruction`] if the operands do not
    /// match the opcode's shape.
    pub fn new(op: Op, operands: Vec<Operand>) -> Result<Inst, ExecError> {
        let inst = Inst {
            op,
            s: false,
            cond: Cond::Al,
            operands,
        };
        inst.validate()?;
        Ok(inst)
    }

    /// Sets the `s` (set-flags) bit. Panics if the opcode does not
    /// support it.
    #[must_use]
    pub fn with_s(mut self) -> Inst {
        assert!(
            self.op.supports_s(),
            "{} does not support the s suffix",
            self.op
        );
        self.s = true;
        self
    }

    /// Sets the condition predicate.
    #[must_use]
    pub fn with_cond(mut self, cond: Cond) -> Inst {
        self.cond = cond;
        self
    }

    /// Validates the operand shape against the opcode.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::MalformedInstruction`] on any shape violation.
    pub fn validate(&self) -> Result<(), ExecError> {
        let bad = |detail: String| Err(ExecError::MalformedInstruction { detail });
        let ops = &self.operands;
        let is_reg = |o: &Operand| matches!(o, Operand::Reg(_));
        let is_flex = |o: &Operand| {
            matches!(
                o,
                Operand::Reg(_) | Operand::Imm(_) | Operand::Shifted { .. }
            )
        };
        let is_mem = |o: &Operand| matches!(o, Operand::Mem(_));
        let is_freg = |o: &Operand| matches!(o, Operand::FReg(_));
        let ok = match self.op.shape() {
            Shape::Dp3 => ops.len() == 3 && is_reg(&ops[0]) && is_reg(&ops[1]) && is_flex(&ops[2]),
            Shape::Dp2 => ops.len() == 2 && is_reg(&ops[0]) && is_flex(&ops[1]),
            Shape::Unary2 => ops.len() == 2 && is_reg(&ops[0]) && is_reg(&ops[1]),
            Shape::Mul3 => ops.len() == 3 && ops.iter().all(is_reg),
            Shape::Mul4 => ops.len() == 4 && ops.iter().all(is_reg),
            Shape::Cmp2 => ops.len() == 2 && is_reg(&ops[0]) && is_flex(&ops[1]),
            Shape::LdSt => ops.len() == 2 && is_reg(&ops[0]) && is_mem(&ops[1]),
            Shape::Stack => ops.len() == 1 && matches!(ops[0], Operand::RegList(_)),
            Shape::Branch => ops.len() == 1 && matches!(ops[0], Operand::Target(_)),
            Shape::BranchReg => ops.len() == 1 && is_reg(&ops[0]),
            Shape::Sys => ops.len() == 1 && matches!(ops[0], Operand::Imm(_)),
            Shape::Vfp3 => ops.len() == 3 && ops.iter().all(is_freg),
            Shape::Vfp2 => ops.len() == 2 && ops.iter().all(is_freg),
            Shape::VfpLdSt => ops.len() == 2 && is_freg(&ops[0]) && is_mem(&ops[1]),
        };
        if !ok {
            return bad(format!("operand shape mismatch for {self}"));
        }
        if self.s && !self.op.supports_s() {
            return bad(format!("{} does not support the s suffix", self.op));
        }
        if let Operand::Imm(v) = &ops[ops.len() - 1] {
            if self.op != Op::Svc && *v > crate::encode::MAX_IMM {
                return bad(format!("immediate {v} exceeds encodable range"));
            }
        }
        if let Some(Operand::Mem(MemAddr::BaseImm { offset, .. })) = ops.iter().find(|o| is_mem(o))
        {
            if offset.unsigned_abs() > crate::encode::MAX_MEM_OFFSET {
                return bad(format!("memory offset {offset} exceeds encodable range"));
            }
        }
        if matches!(self.op.shape(), Shape::Stack) {
            if let Operand::RegList(l) = ops[0] {
                if l.is_empty() {
                    return bad("empty register list".to_string());
                }
            }
        }
        Ok(())
    }

    /// The general-purpose registers written by this instruction.
    pub fn defs(&self) -> Vec<Reg> {
        use Shape::*;
        let mut out = match self.op.shape() {
            Dp3 | Dp2 | Unary2 | Mul3 => self.operands[0].as_reg().into_iter().collect(),
            Mul4 => match self.op {
                // mla rd, rm, rs, ra → writes rd. umull/umlal write lo and hi.
                Op::Mla => self.operands[0].as_reg().into_iter().collect(),
                _ => self.operands[..2]
                    .iter()
                    .filter_map(Operand::as_reg)
                    .collect(),
            },
            Cmp2 | Branch | Sys | Vfp3 | Vfp2 => vec![],
            LdSt => {
                if self.op.is_load() {
                    self.operands[0].as_reg().into_iter().collect()
                } else {
                    vec![]
                }
            }
            VfpLdSt => vec![],
            Stack => {
                let mut v = vec![Reg::Sp];
                if self.op == Op::Pop {
                    if let Operand::RegList(l) = self.operands[0] {
                        v.extend(l.iter());
                    }
                }
                v
            }
            BranchReg => vec![],
        };
        if self.op == Op::Bl {
            out.push(Reg::Lr);
        }
        out
    }

    /// The general-purpose registers read by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        use Shape::*;
        let mut out: Vec<Reg> = match self.op.shape() {
            Dp3 => {
                let mut v = self.operands[1].uses();
                v.extend(self.operands[2].uses());
                v
            }
            Dp2 => self.operands[1].uses(),
            Unary2 => self.operands[1].uses(),
            Mul3 => self.operands[1..].iter().flat_map(Operand::uses).collect(),
            Mul4 => match self.op {
                Op::Mla => self.operands[1..].iter().flat_map(Operand::uses).collect(),
                Op::Umlal => self.operands.iter().flat_map(Operand::uses).collect(),
                _ => self.operands[2..].iter().flat_map(Operand::uses).collect(),
            },
            Cmp2 => self.operands.iter().flat_map(Operand::uses).collect(),
            LdSt => {
                let mut v = self.operands[1].uses();
                if self.op.is_store() {
                    v.extend(self.operands[0].uses());
                }
                v
            }
            VfpLdSt => self.operands[1].uses(),
            Stack => {
                let mut v = vec![Reg::Sp];
                if self.op == Op::Push {
                    if let Operand::RegList(l) = self.operands[0] {
                        v.extend(l.iter());
                    }
                }
                v
            }
            Branch | Sys => vec![],
            BranchReg => self.operands[0].uses(),
            Vfp3 | Vfp2 => vec![],
        };
        out.dedup();
        out
    }

    /// Flags defined by this instruction.
    #[must_use]
    pub fn flag_defs(&self) -> FlagSet {
        let mut set = self.op.intrinsic_flag_defs();
        if self.s {
            set |= self.op.s_flag_defs();
        }
        set
    }

    /// Flags read by this instruction (carry-in opcodes and the condition
    /// predicate).
    #[must_use]
    pub fn flag_uses(&self) -> FlagSet {
        let mut set = self.op.flag_uses();
        if self.cond != Cond::Al {
            set |= FlagSet::NZCV;
        }
        set
    }

    /// Whether control flow may leave the fall-through path
    /// (`svc #0` terminates; other system calls fall through).
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(self.op, Op::B | Op::Bl | Op::Bx)
            || (self.op == Op::Svc && self.operands[0].as_imm() == Some(0))
            || self.defs().contains(&Reg::Pc)
    }

    /// Whether this instruction ends a basic block for translation
    /// purposes.
    #[must_use]
    pub fn ends_block(&self) -> bool {
        self.is_branch()
    }

    /// The push/pop register list, if any.
    #[must_use]
    pub fn reg_list(&self) -> Option<RegList> {
        match self.operands.first() {
            Some(Operand::RegList(l)) => Some(*l),
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            self.op,
            if self.s { "s" } else { "" },
            self.cond
        )?;
        let mut first = true;
        for o in &self.operands {
            if first {
                write!(f, " {o}")?;
                first = false;
            } else {
                write!(f, ", {o}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::*;

    #[test]
    fn opcode_index_roundtrip() {
        for op in Op::ALL {
            assert_eq!(Op::from_index(op.index()), Some(op));
        }
        assert_eq!(Op::from_index(45), None);
    }

    #[test]
    fn classification_axes() {
        assert_eq!(Op::Add.category(), OpCategory::ArithLogic);
        assert_eq!(Op::Mov.category(), OpCategory::LoadToReg);
        assert_eq!(Op::Str.category(), OpCategory::StoreToMem);
        assert_eq!(Op::Cmp.category(), OpCategory::Compare);
        assert_eq!(Op::B.category(), OpCategory::Other);
        assert_eq!(Op::Vadd.data_type(), DataType::Float);
        assert_eq!(Op::Add.data_type(), DataType::Int);
        assert_eq!(Op::Add.format(), EncodingFormat::GuestDp);
        assert_eq!(Op::Mul.format(), EncodingFormat::GuestMul);
        assert_eq!(Op::Clz.format(), EncodingFormat::GuestMisc);
    }

    #[test]
    fn commutativity() {
        assert!(Op::Add.is_commutative());
        assert!(Op::Eor.is_commutative());
        assert!(!Op::Sub.is_commutative());
        assert!(!Op::Bic.is_commutative());
        assert!(!Op::Lsl.is_commutative());
    }

    #[test]
    fn complex_pairs() {
        assert_eq!(
            Op::Bic.complex_pair(),
            Some((Op::And, OperandTransform::InvertLastSource))
        );
        assert_eq!(
            Op::Mvn.complex_pair(),
            Some((Op::Mov, OperandTransform::InvertLastSource))
        );
        assert_eq!(
            Op::Rsb.complex_pair(),
            Some((Op::Sub, OperandTransform::SwapSources))
        );
        assert_eq!(Op::Add.complex_pair(), None);
    }

    #[test]
    fn shape_validation_accepts_good_shapes() {
        assert!(add(Reg::R0, Reg::R1, Operand::Imm(5)).validate().is_ok());
        assert!(ldr(
            Reg::R0,
            MemAddr::BaseImm {
                base: Reg::R1,
                offset: 8
            }
        )
        .validate()
        .is_ok());
        assert!(cmp(Reg::R0, Operand::Reg(Reg::R1)).validate().is_ok());
        assert!(b(Cond::Ne, -8).validate().is_ok());
    }

    #[test]
    fn shape_validation_rejects_bad_shapes() {
        // add with a memory operand is not a valid guest shape.
        let bad = Inst {
            op: Op::Add,
            s: false,
            cond: Cond::Al,
            operands: vec![
                Operand::Reg(Reg::R0),
                Operand::Reg(Reg::R1),
                Operand::Mem(MemAddr::BaseImm {
                    base: Reg::R2,
                    offset: 0,
                }),
            ],
        };
        assert!(bad.validate().is_err());
        // str needs a memory operand.
        let bad = Inst {
            op: Op::Str,
            s: false,
            cond: Cond::Al,
            operands: vec![Operand::Reg(Reg::R0), Operand::Reg(Reg::R1)],
        };
        assert!(bad.validate().is_err());
        // Immediate out of encodable range.
        let bad = Inst::new(
            Op::Add,
            vec![
                Operand::Reg(Reg::R0),
                Operand::Reg(Reg::R1),
                Operand::Imm(1 << 20),
            ],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn defs_uses_dataproc() {
        let i = add(Reg::R0, Reg::R1, Operand::Reg(Reg::R2));
        assert_eq!(i.defs(), vec![Reg::R0]);
        assert_eq!(i.uses(), vec![Reg::R1, Reg::R2]);
    }

    #[test]
    fn defs_uses_memory() {
        let i = str_(
            Reg::R0,
            MemAddr::BaseReg {
                base: Reg::R1,
                index: Reg::R2,
            },
        );
        assert!(i.defs().is_empty());
        assert_eq!(i.uses(), vec![Reg::R1, Reg::R2, Reg::R0]);
        let i = ldr(
            Reg::R0,
            MemAddr::BaseImm {
                base: Reg::R1,
                offset: 4,
            },
        );
        assert_eq!(i.defs(), vec![Reg::R0]);
        assert_eq!(i.uses(), vec![Reg::R1]);
    }

    #[test]
    fn defs_uses_stack_and_mul() {
        let i = push([Reg::R4, Reg::Lr]);
        assert_eq!(i.defs(), vec![Reg::Sp]);
        assert!(i.uses().contains(&Reg::R4) && i.uses().contains(&Reg::Sp));
        let i = pop([Reg::R4, Reg::Pc]);
        assert!(i.defs().contains(&Reg::Pc) && i.defs().contains(&Reg::Sp));
        let i = mla(Reg::R0, Reg::R1, Reg::R2, Reg::R3);
        assert_eq!(i.defs(), vec![Reg::R0]);
        assert_eq!(i.uses(), vec![Reg::R1, Reg::R2, Reg::R3]);
        let i = umull(Reg::R0, Reg::R1, Reg::R2, Reg::R3);
        assert_eq!(i.defs(), vec![Reg::R0, Reg::R1]);
        assert_eq!(i.uses(), vec![Reg::R2, Reg::R3]);
    }

    #[test]
    fn flags_metadata() {
        assert_eq!(
            add(Reg::R0, Reg::R0, Operand::Imm(1)).flag_defs(),
            FlagSet::EMPTY
        );
        assert_eq!(
            add(Reg::R0, Reg::R0, Operand::Imm(1)).with_s().flag_defs(),
            FlagSet::NZCV
        );
        assert_eq!(
            and(Reg::R0, Reg::R0, Operand::Imm(1)).with_s().flag_defs(),
            FlagSet::NZ
        );
        assert_eq!(cmp(Reg::R0, Operand::Imm(0)).flag_defs(), FlagSet::NZCV);
        assert!(!adc(Reg::R0, Reg::R0, Operand::Imm(0))
            .flag_uses()
            .is_empty());
        assert_eq!(b(Cond::Eq, 8).flag_uses(), FlagSet::NZCV);
        assert_eq!(b(Cond::Al, 8).flag_uses(), FlagSet::EMPTY);
    }

    #[test]
    fn branch_detection() {
        assert!(b(Cond::Al, 4).is_branch());
        assert!(bx(Reg::Lr).is_branch());
        assert!(pop([Reg::Pc]).is_branch());
        assert!(!add(Reg::R0, Reg::R0, Operand::Imm(1)).is_branch());
        // Writing pc via mov is a branch.
        let i = mov(Reg::Pc, Operand::Reg(Reg::Lr));
        assert!(i.is_branch());
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            add(Reg::R0, Reg::R1, Operand::Imm(5)).to_string(),
            "add r0, r1, #5"
        );
        assert_eq!(
            add(Reg::R0, Reg::R1, Operand::Reg(Reg::R2))
                .with_s()
                .to_string(),
            "adds r0, r1, r2"
        );
        assert_eq!(b(Cond::Ne, -12).to_string(), "bne .-12");
        assert_eq!(
            ldr(
                Reg::R3,
                MemAddr::BaseImm {
                    base: Reg::Sp,
                    offset: 16
                }
            )
            .to_string(),
            "ldr r3, [sp, #16]"
        );
        assert_eq!(push([Reg::R4, Reg::Lr]).to_string(), "push {r4, lr}");
        assert_eq!(svc(0).to_string(), "svc #0");
    }

    #[test]
    #[should_panic(expected = "does not support the s suffix")]
    fn with_s_panics_on_unsupported() {
        let _ = cmp(Reg::R0, Operand::Imm(0)).with_s();
    }
}
