//! Guest CPU state.

use crate::reg::{FReg, Reg};
use pdbt_isa::{Addr, Flags, Memory};

/// The architectural state of the guest CPU.
///
/// `regs[15]` (the PC) holds the address of the *current* instruction;
/// reading the PC as an operand yields that address **plus 8**, matching
/// the ARM pipeline convention the paper's Fig 9 relies on.
#[derive(Debug, Clone, Default)]
pub struct Cpu {
    /// General-purpose registers (`r0`–`r12`, `sp`, `lr`, `pc`).
    pub regs: [u32; 16],
    /// Single-precision floating-point registers.
    pub fregs: [f32; 16],
    /// Condition flags (`CPSR.NZCV`).
    pub flags: Flags,
    /// Guest memory.
    pub mem: Memory,
    /// Values emitted by `svc #1` — the observable output stream used to
    /// compare DBT configurations against the reference interpreter.
    pub output: Vec<u32>,
}

impl Cpu {
    /// Creates a CPU with zeroed registers and empty memory.
    #[must_use]
    pub fn new() -> Cpu {
        Cpu::default()
    }

    /// Reads a register *as an operand*: the PC reads as the current
    /// instruction address plus 8.
    #[must_use]
    pub fn read(&self, r: Reg) -> u32 {
        if r.is_pc() {
            self.regs[15].wrapping_add(8)
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes a register. Writing the PC is allowed; the interpreter
    /// turns it into a control transfer.
    pub fn write(&mut self, r: Reg, v: u32) {
        self.regs[r.index()] = v;
    }

    /// Reads a floating-point register.
    #[must_use]
    pub fn read_f(&self, r: FReg) -> f32 {
        self.fregs[r.index()]
    }

    /// Writes a floating-point register.
    pub fn write_f(&mut self, r: FReg, v: f32) {
        self.fregs[r.index()] = v;
    }

    /// Current program counter (address of the instruction being
    /// executed).
    #[must_use]
    pub fn pc(&self) -> Addr {
        self.regs[15]
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: Addr) {
        self.regs[15] = pc;
    }

    /// Stack pointer.
    #[must_use]
    pub fn sp(&self) -> Addr {
        self.regs[Reg::Sp.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_reads_plus_eight() {
        let mut cpu = Cpu::new();
        cpu.set_pc(0x1000);
        assert_eq!(cpu.read(Reg::Pc), 0x1008);
        assert_eq!(cpu.pc(), 0x1000);
    }

    #[test]
    fn plain_registers_read_back() {
        let mut cpu = Cpu::new();
        cpu.write(Reg::R3, 42);
        assert_eq!(cpu.read(Reg::R3), 42);
        cpu.write_f(FReg::new(2), 1.5);
        assert_eq!(cpu.read_f(FReg::new(2)), 1.5);
    }
}
