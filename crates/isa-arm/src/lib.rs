//! The guest machine model: an ARM-flavoured 32-bit RISC ISA.
//!
//! This crate is the guest side of the DBT: instruction definitions with
//! the classification metadata the parameterizer needs ([`Op::category`],
//! [`Op::format`], [`Op::data_type`], [`Op::is_commutative`],
//! [`Op::complex_pair`]), a reference interpreter ([`step`], [`run`]),
//! a fixed-width binary encoding ([`encode`]/[`decode`]), and a tiny
//! assembler ([`parse_listing`]).
//!
//! The ISA is a *model*, not real ARM — but it preserves every property
//! the paper's mechanisms depend on: a regular encoding split into
//! opcode/addressing-mode fields, optional flag-setting (`s`) variants,
//! flexible second operands with a barrel shifter, PC readable as a
//! general-purpose register (+8 pipeline convention), condition flags with
//! ARM borrow semantics, and the seven instructions the paper found
//! unlearnable (`push`, `pop`, `bl`, `b`, `mla`, `umlal`, `clz`).
//!
//! # Example
//!
//! ```
//! use pdbt_isa_arm::{builders::*, Cpu, Program, Reg, Operand};
//! use pdbt_isa::Cond;
//!
//! // Sum 1..=5, emit the result, exit.
//! let program = Program::new(0x1000, vec![
//!     mov(Reg::R0, Operand::Imm(5)),
//!     mov(Reg::R1, Operand::Imm(0)),
//!     add(Reg::R1, Reg::R1, Operand::Reg(Reg::R0)),
//!     sub(Reg::R0, Reg::R0, Operand::Imm(1)).with_s(),
//!     b(Cond::Ne, -8),
//!     mov(Reg::R0, Operand::Reg(Reg::R1)),
//!     svc(1),
//!     svc(0),
//! ]);
//! let mut cpu = Cpu::new();
//! pdbt_isa_arm::run(&mut cpu, &program, 1_000).unwrap();
//! assert_eq!(cpu.output, vec![15]);
//! ```

pub mod builders;
mod encode;
mod inst;
mod interp;
mod operand;
mod parse;
mod program;
mod reg;
mod state;

pub use encode::{decode, encode, DecodeError, EncodeError, MAX_BRANCH, MAX_IMM, MAX_MEM_OFFSET};
pub use inst::{Inst, Op, OperandTransform, Shape};
pub use interp::step;
pub use operand::{MemAddr, Operand, ShiftKind};
pub use parse::{parse_listing, ParseError};
pub use program::{run, Program, RunStats, INST_SIZE};
pub use reg::{FReg, Reg, RegList};
pub use state::Cpu;
