//! Guest program container and the reference execution loop.

use crate::inst::Inst;
use crate::interp;
use crate::state::Cpu;
use pdbt_isa::{Addr, Control, ExecError};

/// Size of one encoded guest instruction in bytes.
pub const INST_SIZE: u32 = 4;

/// A guest text section: a base address and a sequence of instructions.
#[derive(Debug, Clone, Default)]
pub struct Program {
    base: Addr,
    insts: Vec<Inst>,
}

impl Program {
    /// Creates a program at `base` from an instruction sequence.
    #[must_use]
    pub fn new(base: Addr, insts: Vec<Inst>) -> Program {
        Program { base, insts }
    }

    /// The base (entry) address.
    #[must_use]
    pub fn base(&self) -> Addr {
        self.base
    }

    /// The instructions.
    #[must_use]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The address of instruction `index`.
    #[must_use]
    pub fn addr_of(&self, index: usize) -> Addr {
        self.base + (index as u32) * INST_SIZE
    }

    /// One past the last instruction address.
    #[must_use]
    pub fn end(&self) -> Addr {
        self.addr_of(self.insts.len())
    }

    /// Fetches the instruction at `pc`.
    ///
    /// # Errors
    ///
    /// [`ExecError::BadPc`] if `pc` is outside the text section or
    /// unaligned.
    pub fn fetch(&self, pc: Addr) -> Result<&Inst, ExecError> {
        if pc < self.base || !pc.is_multiple_of(INST_SIZE) {
            return Err(ExecError::BadPc { pc });
        }
        let idx = ((pc - self.base) / INST_SIZE) as usize;
        self.insts.get(idx).ok_or(ExecError::BadPc { pc })
    }

    /// Iterates over `(address, instruction)` pairs.
    pub fn iter_with_addr(&self) -> impl Iterator<Item = (Addr, &Inst)> {
        self.insts
            .iter()
            .enumerate()
            .map(|(i, inst)| (self.addr_of(i), inst))
    }

    /// Pretty disassembly listing.
    #[must_use]
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (addr, inst) in self.iter_with_addr() {
            out.push_str(&format!("{addr:#010x}:  {inst}\n"));
        }
        out
    }

    /// A stable 64-bit fingerprint of the image: seeded FNV-1a over the
    /// base address and each instruction's binary encoding, finished
    /// with a splitmix64 avalanche. Unlike `DefaultHasher` this is
    /// pinned by the ISA's encoding layout, not by the standard
    /// library's hasher-of-the-day — the value survives rebuilds and
    /// toolchain upgrades, so it can key persisted translation
    /// artifacts and partition guest images across daemon restarts.
    /// Instructions outside the encodable envelope (oversized
    /// immediates) hash their display form instead, which the assembler
    /// round-trips just as losslessly.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h
        }
        let mut h = fnv(FNV_OFFSET, &self.base.to_le_bytes());
        for inst in &self.insts {
            h = match crate::encode::encode(inst) {
                Ok(word) => fnv(h, &word.to_le_bytes()),
                Err(_) => fnv(h, inst.to_string().as_bytes()),
            };
        }
        // splitmix64 finalizer: avalanches the FNV state so nearby
        // images land far apart in partition space.
        h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }
}

/// Statistics of one reference-interpreter run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of guest instructions retired (including predicated-false).
    pub executed: u64,
}

/// Runs `program` on `cpu` until it halts or exhausts `budget`
/// instructions. This is the golden reference every DBT configuration is
/// compared against.
///
/// # Errors
///
/// Any interpreter error, or [`ExecError::Timeout`] if the budget runs
/// out before the guest exits.
pub fn run(cpu: &mut Cpu, program: &Program, budget: u64) -> Result<RunStats, ExecError> {
    cpu.set_pc(program.base());
    let mut stats = RunStats::default();
    loop {
        if stats.executed >= budget {
            return Err(ExecError::Timeout { budget });
        }
        let pc = cpu.pc();
        let inst = program.fetch(pc)?;
        let ctl = interp::step(cpu, inst)?;
        stats.executed += 1;
        match ctl {
            Control::Next => cpu.set_pc(pc + INST_SIZE),
            Control::Jump(t) => cpu.set_pc(t),
            Control::Call { target, .. } => cpu.set_pc(target),
            Control::Halt => return Ok(stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::*;
    use crate::operand::Operand;
    use crate::reg::Reg;
    use pdbt_isa::Cond;

    #[test]
    fn fetch_and_addresses() {
        let p = Program::new(0x1000, vec![mov(Reg::R0, Operand::Imm(1)), svc(0)]);
        assert_eq!(p.addr_of(1), 0x1004);
        assert_eq!(p.end(), 0x1008);
        assert!(p.fetch(0x1004).is_ok());
        assert!(matches!(p.fetch(0x1008), Err(ExecError::BadPc { .. })));
        assert!(matches!(p.fetch(0x1002), Err(ExecError::BadPc { .. })));
        assert!(matches!(p.fetch(0xfff), Err(ExecError::BadPc { .. })));
    }

    #[test]
    fn run_countdown_loop() {
        // r0 = 5; loop: r1 += r0; r0 -= 1 (flags); bne loop; output r1; exit.
        let p = Program::new(
            0x1000,
            vec![
                mov(Reg::R0, Operand::Imm(5)),
                mov(Reg::R1, Operand::Imm(0)),
                add(Reg::R1, Reg::R1, Operand::Reg(Reg::R0)),
                sub(Reg::R0, Reg::R0, Operand::Imm(1)).with_s(),
                b(Cond::Ne, -8),
                mov(Reg::R0, Operand::Reg(Reg::R1)),
                svc(1),
                svc(0),
            ],
        );
        let mut cpu = Cpu::new();
        let stats = run(&mut cpu, &p, 1000).unwrap();
        assert_eq!(cpu.output, vec![15]);
        // 2 + 5 * 3 + 3 = 20 retired instructions.
        assert_eq!(stats.executed, 20);
    }

    #[test]
    fn run_times_out() {
        let p = Program::new(0, vec![b(Cond::Al, 0)]);
        let mut cpu = Cpu::new();
        assert!(matches!(
            run(&mut cpu, &p, 10),
            Err(ExecError::Timeout { budget: 10 })
        ));
    }

    #[test]
    fn call_and_return() {
        // main: bl f; svc0 / f: mov r0, #7; svc 1; bx lr
        let p = Program::new(
            0,
            vec![
                bl(8),                         // 0x0 → f at 0x8
                svc(0),                        // 0x4
                mov(Reg::R0, Operand::Imm(7)), // 0x8
                svc(1),                        // 0xc
                bx(Reg::Lr),                   // 0x10 → 0x4
            ],
        );
        let mut cpu = Cpu::new();
        run(&mut cpu, &p, 100).unwrap();
        assert_eq!(cpu.output, vec![7]);
    }

    #[test]
    fn fingerprint_depends_on_base_and_every_instruction() {
        let insts = || {
            vec![
                mov(Reg::R0, Operand::Imm(41)),
                add(Reg::R0, Reg::R0, Operand::Imm(1)),
                svc(1),
                svc(0),
            ]
        };
        let p = Program::new(0x1000, insts());
        assert_eq!(p.fingerprint(), Program::new(0x1000, insts()).fingerprint());
        assert_ne!(
            p.fingerprint(),
            Program::new(0x2000, insts()).fingerprint(),
            "base must feed the fingerprint"
        );
        let mut tweaked = insts();
        tweaked[0] = mov(Reg::R0, Operand::Imm(42));
        assert_ne!(
            p.fingerprint(),
            Program::new(0x1000, tweaked).fingerprint(),
            "one immediate flip must change the fingerprint"
        );
    }

    #[test]
    fn disassemble_listing() {
        let p = Program::new(0x400, vec![mov(Reg::R0, Operand::Imm(3)), svc(0)]);
        let text = p.disassemble();
        assert!(text.contains("0x00000400:  mov r0, #3"));
        assert!(text.contains("0x00000404:  svc #0"));
    }
}
