//! Property tests: every valid guest instruction survives the binary
//! encode/decode and the text assemble/disassemble roundtrips.

use pdbt_isa::Cond;
use pdbt_isa_arm::{
    builders as g, decode, encode, FReg, Inst, MemAddr, Operand, Reg, RegList, ShiftKind,
};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0usize..16).prop_map(|i| Reg::from_index(i).unwrap())
}

fn freg() -> impl Strategy<Value = FReg> {
    (0u8..16).prop_map(FReg::new)
}

fn op2() -> impl Strategy<Value = Operand> {
    prop_oneof![
        reg().prop_map(Operand::Reg),
        (0u32..=pdbt_isa_arm::MAX_IMM).prop_map(Operand::Imm),
        (reg(), 0usize..4, 1u8..32).prop_map(|(rm, k, amount)| Operand::Shifted {
            rm,
            kind: ShiftKind::ALL[k],
            amount,
        }),
    ]
}

fn mem() -> impl Strategy<Value = MemAddr> {
    prop_oneof![
        (
            reg(),
            -(pdbt_isa_arm::MAX_MEM_OFFSET as i32)..=(pdbt_isa_arm::MAX_MEM_OFFSET as i32)
        )
            .prop_map(|(base, offset)| MemAddr::BaseImm { base, offset }),
        (reg(), reg()).prop_map(|(base, index)| MemAddr::BaseReg { base, index }),
    ]
}

fn cond() -> impl Strategy<Value = Cond> {
    (0usize..15).prop_map(|i| Cond::ALL[i])
}

fn inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (0usize..14, reg(), reg(), op2(), any::<bool>()).prop_map(|(opi, rd, rn, op2, s)| {
            type B = fn(Reg, Reg, Operand) -> Inst;
            const OPS: [B; 14] = [
                g::add,
                g::sub,
                g::and,
                g::orr,
                g::eor,
                g::bic,
                g::rsb,
                g::adc,
                g::sbc,
                g::rsc,
                g::lsl,
                g::lsr,
                g::asr,
                g::ror,
            ];
            let i = OPS[opi](rd, rn, op2);
            if s {
                i.with_s()
            } else {
                i
            }
        }),
        (reg(), op2(), any::<bool>(), cond()).prop_map(|(rd, op2, s, c)| {
            let i = g::mov(rd, op2);
            let i = if s { i.with_s() } else { i };
            i.with_cond(c)
        }),
        (reg(), op2()).prop_map(|(rd, op2)| g::mvn(rd, op2)),
        (reg(), reg()).prop_map(|(rd, rm)| g::clz(rd, rm)),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| g::mul(a, b, c)),
        (reg(), reg(), reg(), reg()).prop_map(|(a, b, c, d)| g::mla(a, b, c, d)),
        (reg(), reg(), reg(), reg()).prop_map(|(a, b, c, d)| g::umull(a, b, c, d)),
        (reg(), reg(), reg(), reg()).prop_map(|(a, b, c, d)| g::umlal(a, b, c, d)),
        (reg(), op2()).prop_map(|(rn, op2)| g::cmp(rn, op2)),
        (reg(), op2()).prop_map(|(rn, op2)| g::teq(rn, op2)),
        (reg(), mem()).prop_map(|(rt, m)| g::ldr(rt, m)),
        (reg(), mem()).prop_map(|(rt, m)| g::ldrb(rt, m)),
        (reg(), mem()).prop_map(|(rt, m)| g::strh(rt, m)),
        (reg(), mem()).prop_map(|(rt, m)| g::str_(rt, m)),
        proptest::collection::vec(reg(), 1..8).prop_map(|rs| g::push(rs)),
        proptest::collection::vec(reg(), 1..8).prop_map(|rs| g::pop(rs)),
        (cond(), -1000i32..1000).prop_map(|(c, d)| g::b(c, d * 4)),
        (-1000i32..1000).prop_map(|d| g::bl(d * 4)),
        reg().prop_map(g::bx),
        (0u32..2).prop_map(g::svc),
        (freg(), freg(), freg()).prop_map(|(a, b, c)| g::vadd(a, b, c)),
        (freg(), freg()).prop_map(|(a, b)| g::vcmp(a, b)),
        (freg(), mem()).prop_map(|(a, m)| g::vldr(a, m)),
        (freg(), mem()).prop_map(|(a, m)| g::vstr(a, m)),
    ]
}

proptest! {
    #[test]
    fn binary_roundtrip(i in inst()) {
        let word = encode(&i).expect("valid instructions encode");
        let back = decode(word).expect("encoded words decode");
        prop_assert_eq!(back, i);
    }

    #[test]
    fn text_roundtrip(i in inst()) {
        let text = i.to_string();
        let back: Inst = text.parse().unwrap_or_else(|e| panic!("parse `{text}`: {e}"));
        prop_assert_eq!(back, i);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn reglist_roundtrip(bits in any::<u16>()) {
        let l = RegList::from_bits(bits);
        prop_assert_eq!(l.bits(), bits);
        prop_assert_eq!(l.iter().count(), l.len());
    }
}
