//! Randomized tests: every valid guest instruction survives the binary
//! encode/decode and the text assemble/disassemble roundtrips.
//!
//! Originally written with `proptest`; the offline build environment has
//! no crates.io access, so the strategies are hand-rolled samplers over
//! the deterministic in-tree PRNG (`pdbt-rng`, aliased as `rand`).

use pdbt_isa::Cond;
use pdbt_isa_arm::{
    builders as g, decode, encode, FReg, Inst, MemAddr, Operand, Reg, RegList, ShiftKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cases() -> usize {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(512)
}

fn reg(rng: &mut StdRng) -> Reg {
    Reg::from_index(rng.gen_range(0..16)).unwrap()
}

fn freg(rng: &mut StdRng) -> FReg {
    FReg::new(rng.gen_range(0u8..16))
}

fn op2(rng: &mut StdRng) -> Operand {
    match rng.gen_range(0..3) {
        0 => Operand::Reg(reg(rng)),
        1 => Operand::Imm(rng.gen_range(0..=pdbt_isa_arm::MAX_IMM)),
        _ => Operand::Shifted {
            rm: reg(rng),
            kind: ShiftKind::ALL[rng.gen_range(0..4)],
            amount: rng.gen_range(1u8..32),
        },
    }
}

fn mem(rng: &mut StdRng) -> MemAddr {
    if rng.gen_bool(0.5) {
        let max = pdbt_isa_arm::MAX_MEM_OFFSET as i32;
        MemAddr::BaseImm {
            base: reg(rng),
            offset: rng.gen_range(-max..=max),
        }
    } else {
        MemAddr::BaseReg {
            base: reg(rng),
            index: reg(rng),
        }
    }
}

fn cond(rng: &mut StdRng) -> Cond {
    Cond::ALL[rng.gen_range(0..15)]
}

fn reg_vec(rng: &mut StdRng) -> Vec<Reg> {
    (0..rng.gen_range(1..8)).map(|_| reg(rng)).collect()
}

fn inst(rng: &mut StdRng) -> Inst {
    match rng.gen_range(0..24) {
        0 => {
            type B = fn(Reg, Reg, Operand) -> Inst;
            const OPS: [B; 14] = [
                g::add,
                g::sub,
                g::and,
                g::orr,
                g::eor,
                g::bic,
                g::rsb,
                g::adc,
                g::sbc,
                g::rsc,
                g::lsl,
                g::lsr,
                g::asr,
                g::ror,
            ];
            let i = OPS[rng.gen_range(0..14)](reg(rng), reg(rng), op2(rng));
            if rng.gen_bool(0.5) {
                i.with_s()
            } else {
                i
            }
        }
        1 => {
            let i = g::mov(reg(rng), op2(rng));
            let i = if rng.gen_bool(0.5) { i.with_s() } else { i };
            i.with_cond(cond(rng))
        }
        2 => g::mvn(reg(rng), op2(rng)),
        3 => g::clz(reg(rng), reg(rng)),
        4 => g::mul(reg(rng), reg(rng), reg(rng)),
        5 => g::mla(reg(rng), reg(rng), reg(rng), reg(rng)),
        6 => g::umull(reg(rng), reg(rng), reg(rng), reg(rng)),
        7 => g::umlal(reg(rng), reg(rng), reg(rng), reg(rng)),
        8 => g::cmp(reg(rng), op2(rng)),
        9 => g::teq(reg(rng), op2(rng)),
        10 => g::ldr(reg(rng), mem(rng)),
        11 => g::ldrb(reg(rng), mem(rng)),
        12 => g::strh(reg(rng), mem(rng)),
        13 => g::str_(reg(rng), mem(rng)),
        14 => g::push(reg_vec(rng)),
        15 => g::pop(reg_vec(rng)),
        16 => g::b(cond(rng), rng.gen_range(-1000..1000) * 4),
        17 => g::bl(rng.gen_range(-1000..1000) * 4),
        18 => g::bx(reg(rng)),
        19 => g::svc(rng.gen_range(0u32..2)),
        20 => g::vadd(freg(rng), freg(rng), freg(rng)),
        21 => g::vcmp(freg(rng), freg(rng)),
        22 => g::vldr(freg(rng), mem(rng)),
        _ => g::vstr(freg(rng), mem(rng)),
    }
}

#[test]
fn binary_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xA51);
    for _ in 0..cases() {
        let i = inst(&mut rng);
        let word = encode(&i).expect("valid instructions encode");
        let back = decode(word).expect("encoded words decode");
        assert_eq!(back, i);
    }
}

#[test]
fn text_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xA52);
    for _ in 0..cases() {
        let i = inst(&mut rng);
        let text = i.to_string();
        let back: Inst = text
            .parse()
            .unwrap_or_else(|e| panic!("parse `{text}`: {e}"));
        assert_eq!(back, i);
    }
}

#[test]
fn decode_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xA53);
    for _ in 0..cases() * 8 {
        let word: u32 = rng.gen();
        let _ = decode(word);
    }
}

#[test]
fn reglist_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xA54);
    for _ in 0..cases() {
        let bits: u16 = rng.gen_range(0..=u16::MAX);
        let l = RegList::from_bits(bits);
        assert_eq!(l.bits(), bits);
        assert_eq!(l.iter().count(), l.len());
    }
}
