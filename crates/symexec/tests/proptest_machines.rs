//! Randomized tests for the symbolic machine evaluators: running a
//! random straight-line sequence symbolically and then evaluating the
//! result terms under a concrete assignment must agree with the concrete
//! interpreter started from the same state.
//!
//! This pins the verifier's semantic model to the reference
//! interpreters — the property that makes `check`'s verdicts
//! trustworthy.
//!
//! Originally written with `proptest`; the offline build environment has
//! no crates.io access, so the strategies are hand-rolled samplers over
//! the deterministic in-tree PRNG (`pdbt-rng`, aliased as `rand`).

use pdbt_isa::Flag;
use pdbt_symexec::machine::{guest, host};
use pdbt_symexec::{eval, Assignment, Sym, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MEM_BASE: u32 = 0x10_0000;

fn cases() -> usize {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96)
}

// ---------------------------------------------------------------------------
// Guest side
// ---------------------------------------------------------------------------

mod g {
    use super::*;
    use pdbt_isa_arm::{builders as gb, Cpu, Inst, MemAddr, Operand, Reg, ShiftKind};

    fn reg(rng: &mut StdRng) -> Reg {
        // r1 is reserved as the in-range memory base.
        Reg::from_index(rng.gen_range(4..12)).unwrap()
    }

    fn op2(rng: &mut StdRng) -> Operand {
        match rng.gen_range(0..3) {
            0 => Operand::Reg(reg(rng)),
            1 => Operand::Imm(rng.gen_range(0u32..2048)),
            _ => Operand::Shifted {
                rm: reg(rng),
                kind: ShiftKind::ALL[rng.gen_range(0..4)],
                amount: rng.gen_range(1u8..32),
            },
        }
    }

    pub fn inst(rng: &mut StdRng) -> Inst {
        match rng.gen_range(0..14) {
            0 => {
                type B = fn(Reg, Reg, Operand) -> Inst;
                const OPS: [B; 10] = [
                    gb::add,
                    gb::sub,
                    gb::and,
                    gb::orr,
                    gb::eor,
                    gb::bic,
                    gb::rsb,
                    gb::adc,
                    gb::sbc,
                    gb::rsc,
                ];
                let opi = rng.gen_range(0..10);
                let i = OPS[opi](reg(rng), reg(rng), op2(rng));
                if rng.gen_bool(0.5) && opi < 7 {
                    i.with_s()
                } else {
                    i
                }
            }
            1 => {
                let i = gb::mov(reg(rng), op2(rng));
                if rng.gen_bool(0.5) {
                    i.with_s()
                } else {
                    i
                }
            }
            2 => gb::mvn(reg(rng), op2(rng)),
            3 => gb::cmp(reg(rng), op2(rng)),
            4 => gb::cmn(reg(rng), op2(rng)),
            5 => gb::tst(reg(rng), op2(rng)),
            6 => gb::teq(reg(rng), op2(rng)),
            7 => gb::mul(reg(rng), reg(rng), reg(rng)),
            8 => gb::mla(reg(rng), reg(rng), reg(rng), reg(rng)),
            9 => gb::umull(reg(rng), reg(rng), reg(rng), reg(rng)),
            10 => gb::ldr(
                reg(rng),
                MemAddr::BaseImm {
                    base: Reg::R1,
                    offset: rng.gen_range(0i32..0xf0) & !3,
                },
            ),
            11 => gb::str_(
                reg(rng),
                MemAddr::BaseImm {
                    base: Reg::R1,
                    offset: rng.gen_range(0i32..0xf0) & !3,
                },
            ),
            12 => gb::ldrb(
                reg(rng),
                MemAddr::BaseImm {
                    base: Reg::R1,
                    offset: rng.gen_range(0i32..0xf0),
                },
            ),
            _ => gb::strb(
                reg(rng),
                MemAddr::BaseImm {
                    base: Reg::R1,
                    offset: rng.gen_range(0i32..0xf0),
                },
            ),
        }
    }

    /// Runs `seq` concretely from a seeded state.
    pub fn run_concrete(seq: &[Inst], seeds: &[u32], flags: u8, asg: &Assignment) -> Cpu {
        let mut cpu = Cpu::new();
        cpu.mem.map(MEM_BASE, 0x1000);
        cpu.write(Reg::R1, MEM_BASE);
        for (i, v) in seeds.iter().enumerate() {
            cpu.write(Reg::from_index(4 + i).unwrap(), *v);
        }
        cpu.flags.n = flags & 1 != 0;
        cpu.flags.z = flags & 2 != 0;
        cpu.flags.c = flags & 4 != 0;
        cpu.flags.v = flags & 8 != 0;
        // Pre-fill the touched memory window with the assignment's
        // deterministic initial-memory function, so the symbolic
        // memory's `Init` matches.
        for a in (MEM_BASE..MEM_BASE + 0x100).step_by(1) {
            cpu.mem
                .store(a, u32::from(asg.init_byte(a)), pdbt_isa::Width::B8)
                .unwrap();
        }
        for inst in seq {
            // The sampler never emits control flow.
            let _ = pdbt_isa_arm::step(&mut cpu, inst).expect("concrete step");
        }
        cpu
    }
}

#[test]
fn guest_symbolic_matches_interpreter() {
    let mut rng = StdRng::seed_from_u64(0x6E_01);
    for _ in 0..cases() {
        let seq: Vec<_> = (0..rng.gen_range(1..8))
            .map(|_| g::inst(&mut rng))
            .collect();
        let seeds: Vec<u32> = (0..8).map(|_| rng.gen_range(0u32..0xffff)).collect();
        let flags: u8 = rng.gen_range(0..=u8::MAX);
        // Symbolic run with every register a distinct symbol.
        let mut st = guest::State::init(|r| Term::sym(Sym::GuestReg(r.index() as u8)));
        if guest::run(&mut st, &seq).is_err() {
            // e.g. a flag-setting carry-chain op — outside the subset.
            continue;
        }
        // Bind the symbols to the concrete seeds.
        let mut asg = Assignment::new(0xfeed);
        use pdbt_isa_arm::Reg;
        // Bind every register: the concrete CPU starts zeroed except the
        // base and the seeded body registers.
        for r in Reg::ALL {
            asg.set(Sym::GuestReg(r.index() as u8), 0);
        }
        asg.set(Sym::GuestReg(Reg::R1.index() as u8), MEM_BASE);
        for (i, v) in seeds.iter().enumerate() {
            asg.set(Sym::GuestReg(4 + i as u8), *v);
        }
        asg.set(Sym::Flag(0), u32::from(flags & 1 != 0));
        asg.set(Sym::Flag(1), u32::from(flags & 2 != 0));
        asg.set(Sym::Flag(2), u32::from(flags & 4 != 0));
        asg.set(Sym::Flag(3), u32::from(flags & 8 != 0));
        let cpu = g::run_concrete(&seq, &seeds, flags, &asg);
        // Every register and flag must agree.
        for r in pdbt_isa_arm::Reg::ALL {
            if r == pdbt_isa_arm::Reg::Pc {
                continue;
            }
            let sym_val = eval(&st.regs[r.index()], &asg);
            assert_eq!(
                sym_val,
                cpu.read(r),
                "register {} after {:?}",
                r,
                seq.iter().map(|i| i.to_string()).collect::<Vec<_>>()
            );
        }
        for (i, f) in Flag::ALL.into_iter().enumerate() {
            let sym_val = eval(&st.flags[i], &asg) & 1;
            assert_eq!(
                sym_val != 0,
                cpu.flags.get(f),
                "flag {} after {:?}",
                f,
                seq.iter().map(|i| i.to_string()).collect::<Vec<_>>()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Host side
// ---------------------------------------------------------------------------

mod h {
    use super::*;
    use pdbt_isa_x86::{builders as hbb, Cpu, Inst, Mem, Operand, Reg};

    const REGS: [Reg; 6] = [Reg::Eax, Reg::Ecx, Reg::Edx, Reg::Ebx, Reg::Esi, Reg::Edi];

    fn reg(rng: &mut StdRng) -> Reg {
        // ebp is reserved as the in-range memory base.
        REGS[rng.gen_range(0..6)]
    }

    fn mem(rng: &mut StdRng) -> Mem {
        Mem::base_disp(Reg::Ebp, rng.gen_range(0i32..0xf0) & !3)
    }

    fn rmi(rng: &mut StdRng) -> Operand {
        match rng.gen_range(0..3) {
            0 => Operand::Reg(reg(rng)),
            1 => Operand::Imm(rng.gen_range(-2048i32..2048)),
            _ => Operand::Mem(mem(rng)),
        }
    }

    pub fn inst(rng: &mut StdRng) -> Inst {
        match rng.gen_range(0..8) {
            0 | 1 => {
                type B = fn(Operand, Operand) -> Inst;
                const OPS: [B; 13] = [
                    hbb::mov,
                    hbb::add,
                    hbb::adc,
                    hbb::sub,
                    hbb::sbb,
                    hbb::and,
                    hbb::or,
                    hbb::xor,
                    hbb::imul,
                    hbb::shl,
                    hbb::shr,
                    hbb::sar,
                    hbb::cmp,
                ];
                OPS[rng.gen_range(0..13)](Operand::Reg(reg(rng)), rmi(rng))
            }
            2 => {
                let m = mem(rng);
                match rmi(rng) {
                    Operand::Mem(_) => hbb::mov(Operand::Mem(m), Operand::Imm(7)),
                    other => hbb::mov(Operand::Mem(m), other),
                }
            }
            3 => hbb::not(Operand::Reg(reg(rng))),
            4 => hbb::neg(Operand::Reg(reg(rng))),
            5 => hbb::movzxb(Operand::Reg(reg(rng)), Operand::Mem(mem(rng))),
            6 => hbb::movb(Operand::Mem(mem(rng)), Operand::Reg(reg(rng))),
            _ => hbb::setcc(
                pdbt_isa_x86::Cc::ALL[rng.gen_range(0..14)],
                Operand::Reg(reg(rng)),
            ),
        }
    }

    pub fn run_concrete(seq: &[Inst], seeds: &[u32], flags: u8, asg: &Assignment) -> Cpu {
        let mut cpu = Cpu::new();
        cpu.mem.map(MEM_BASE, 0x1000);
        cpu.write(Reg::Ebp, MEM_BASE);
        for (r, v) in REGS.into_iter().zip(seeds) {
            cpu.write(r, *v);
        }
        cpu.flags.n = flags & 1 != 0;
        cpu.flags.z = flags & 2 != 0;
        cpu.flags.c = flags & 4 != 0;
        cpu.flags.v = flags & 8 != 0;
        for a in MEM_BASE..MEM_BASE + 0x100 {
            cpu.mem
                .store(a, u32::from(asg.init_byte(a)), pdbt_isa::Width::B8)
                .unwrap();
        }
        let (exit, _) = pdbt_isa_x86::exec_block(&mut cpu, seq, 10_000).expect("runs");
        assert_eq!(exit, pdbt_isa_x86::BlockExit::Fell);
        cpu
    }
}

#[test]
fn host_symbolic_matches_executor() {
    use pdbt_isa_x86::Reg;
    let mut rng = StdRng::seed_from_u64(0x6E_02);
    for _ in 0..cases() {
        let seq: Vec<_> = (0..rng.gen_range(1..8))
            .map(|_| h::inst(&mut rng))
            .collect();
        let seeds: Vec<u32> = (0..6).map(|_| rng.gen_range(0u32..0xffff)).collect();
        let flags: u8 = rng.gen_range(0..=u8::MAX);
        let mut st = host::State::init(|r| {
            if r == Reg::Ebp {
                Term::c(MEM_BASE)
            } else {
                Term::sym(Sym::HostReg(r.index() as u8))
            }
        });
        if host::run(&mut st, &seq).is_err() {
            continue;
        }
        let mut asg = Assignment::new(0xbeef);
        for (r, v) in [Reg::Eax, Reg::Ecx, Reg::Edx, Reg::Ebx, Reg::Esi, Reg::Edi]
            .into_iter()
            .zip(&seeds)
        {
            asg.set(Sym::HostReg(r.index() as u8), *v);
        }
        asg.set(Sym::HostFlag(0), u32::from(flags & 1 != 0));
        asg.set(Sym::HostFlag(1), u32::from(flags & 2 != 0));
        asg.set(Sym::HostFlag(2), u32::from(flags & 4 != 0));
        asg.set(Sym::HostFlag(3), u32::from(flags & 8 != 0));
        let cpu = h::run_concrete(&seq, &seeds, flags, &asg);
        for r in Reg::ALL {
            if matches!(r, Reg::Esp | Reg::Ebp) {
                continue;
            }
            let sym_val = eval(&st.regs[r.index()], &asg);
            assert_eq!(
                sym_val,
                cpu.read(r),
                "register {} after {:?}",
                r,
                seq.iter().map(|i| i.to_string()).collect::<Vec<_>>()
            );
        }
        // Flags: imul leaves them modelled-undefined in both, the rest
        // must agree.
        let any_undefined = seq.iter().any(|i| matches!(i.op, pdbt_isa_x86::Op::Imul));
        if !any_undefined {
            for (i, f) in Flag::ALL.into_iter().enumerate() {
                let sym_val = eval(&st.flags[i], &asg) & 1;
                assert_eq!(
                    sym_val != 0,
                    cpu.flags.get(f),
                    "flag {} after {:?}",
                    f,
                    seq.iter().map(|i| i.to_string()).collect::<Vec<_>>()
                );
            }
        }
    }
}
