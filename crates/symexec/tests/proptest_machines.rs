//! Property tests for the symbolic machine evaluators: running a random
//! straight-line sequence symbolically and then evaluating the result
//! terms under a concrete assignment must agree with the concrete
//! interpreter started from the same state.
//!
//! This pins the verifier's semantic model to the reference
//! interpreters — the property that makes `check`'s verdicts
//! trustworthy.

use pdbt_isa::Flag;
use pdbt_symexec::machine::{guest, host};
use pdbt_symexec::{eval, Assignment, Sym, Term};
use proptest::prelude::*;

const MEM_BASE: u32 = 0x10_0000;

// ---------------------------------------------------------------------------
// Guest side
// ---------------------------------------------------------------------------

mod g {
    use super::*;
    use pdbt_isa_arm::{builders as gb, Cpu, Inst, MemAddr, Operand, Reg, ShiftKind};

    fn reg() -> impl Strategy<Value = Reg> {
        // r1 is reserved as the in-range memory base.
        (4usize..12).prop_map(|i| Reg::from_index(i).unwrap())
    }

    fn op2() -> impl Strategy<Value = Operand> {
        prop_oneof![
            reg().prop_map(Operand::Reg),
            (0u32..2048).prop_map(Operand::Imm),
            (reg(), 0usize..4, 1u8..32).prop_map(|(rm, k, amount)| Operand::Shifted {
                rm,
                kind: ShiftKind::ALL[k],
                amount,
            }),
        ]
    }

    pub fn inst() -> impl Strategy<Value = Inst> {
        prop_oneof![
            (0usize..10, reg(), reg(), op2(), any::<bool>()).prop_map(|(opi, rd, rn, op2, s)| {
                type B = fn(Reg, Reg, Operand) -> Inst;
                const OPS: [B; 10] = [
                    gb::add,
                    gb::sub,
                    gb::and,
                    gb::orr,
                    gb::eor,
                    gb::bic,
                    gb::rsb,
                    gb::adc,
                    gb::sbc,
                    gb::rsc,
                ];
                let i = OPS[opi](rd, rn, op2);
                if s && opi < 7 {
                    i.with_s()
                } else {
                    i
                }
            }),
            (reg(), op2(), any::<bool>()).prop_map(|(rd, op2, s)| {
                let i = gb::mov(rd, op2);
                if s {
                    i.with_s()
                } else {
                    i
                }
            }),
            (reg(), op2()).prop_map(|(rd, op2)| gb::mvn(rd, op2)),
            (reg(), op2()).prop_map(|(rn, op2)| gb::cmp(rn, op2)),
            (reg(), op2()).prop_map(|(rn, op2)| gb::cmn(rn, op2)),
            (reg(), op2()).prop_map(|(rn, op2)| gb::tst(rn, op2)),
            (reg(), op2()).prop_map(|(rn, op2)| gb::teq(rn, op2)),
            (reg(), reg(), reg()).prop_map(|(a, b, c)| gb::mul(a, b, c)),
            (reg(), reg(), reg(), reg()).prop_map(|(a, b, c, d)| gb::mla(a, b, c, d)),
            (reg(), reg(), reg(), reg()).prop_map(|(a, b, c, d)| gb::umull(a, b, c, d)),
            (reg(), 0i32..0xf0).prop_map(|(rt, off)| {
                gb::ldr(
                    rt,
                    MemAddr::BaseImm {
                        base: Reg::R1,
                        offset: off & !3,
                    },
                )
            }),
            (reg(), 0i32..0xf0).prop_map(|(rt, off)| {
                gb::str_(
                    rt,
                    MemAddr::BaseImm {
                        base: Reg::R1,
                        offset: off & !3,
                    },
                )
            }),
            (reg(), 0i32..0xf0).prop_map(|(rt, off)| {
                gb::ldrb(
                    rt,
                    MemAddr::BaseImm {
                        base: Reg::R1,
                        offset: off,
                    },
                )
            }),
            (reg(), 0i32..0xf0).prop_map(|(rt, off)| {
                gb::strb(
                    rt,
                    MemAddr::BaseImm {
                        base: Reg::R1,
                        offset: off,
                    },
                )
            }),
        ]
    }

    /// Runs `seq` concretely from a seeded state.
    pub fn run_concrete(seq: &[Inst], seeds: &[u32], flags: u8, asg: &Assignment) -> Cpu {
        let mut cpu = Cpu::new();
        cpu.mem.map(MEM_BASE, 0x1000);
        cpu.write(Reg::R1, MEM_BASE);
        for (i, v) in seeds.iter().enumerate() {
            cpu.write(Reg::from_index(4 + i).unwrap(), *v);
        }
        cpu.flags.n = flags & 1 != 0;
        cpu.flags.z = flags & 2 != 0;
        cpu.flags.c = flags & 4 != 0;
        cpu.flags.v = flags & 8 != 0;
        // Pre-fill the touched memory window with the assignment's
        // deterministic initial-memory function, so the symbolic
        // memory's `Init` matches.
        for a in (MEM_BASE..MEM_BASE + 0x100).step_by(1) {
            cpu.mem
                .store(a, u32::from(asg.init_byte(a)), pdbt_isa::Width::B8)
                .unwrap();
        }
        for inst in seq {
            // The strategy never emits control flow.
            let _ = pdbt_isa_arm::step(&mut cpu, inst).expect("concrete step");
        }
        cpu
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn guest_symbolic_matches_interpreter(
        seq in proptest::collection::vec(g::inst(), 1..8),
        seeds in proptest::collection::vec(0u32..0xffff, 8),
        flags in any::<u8>(),
    ) {
        // Symbolic run with every register a distinct symbol.
        let mut st = guest::State::init(|r| Term::sym(Sym::GuestReg(r.index() as u8)));
        if guest::run(&mut st, &seq).is_err() {
            // e.g. a flag-setting carry-chain op — outside the subset.
            return Ok(());
        }
        // Bind the symbols to the concrete seeds.
        let mut asg = Assignment::new(0xfeed);
        use pdbt_isa_arm::Reg;
        // Bind every register: the concrete CPU starts zeroed except the
        // base and the seeded body registers.
        for r in Reg::ALL {
            asg.set(Sym::GuestReg(r.index() as u8), 0);
        }
        asg.set(Sym::GuestReg(Reg::R1.index() as u8), MEM_BASE);
        for (i, v) in seeds.iter().enumerate() {
            asg.set(Sym::GuestReg(4 + i as u8), *v);
        }
        asg.set(Sym::Flag(0), u32::from(flags & 1 != 0));
        asg.set(Sym::Flag(1), u32::from(flags & 2 != 0));
        asg.set(Sym::Flag(2), u32::from(flags & 4 != 0));
        asg.set(Sym::Flag(3), u32::from(flags & 8 != 0));
        let cpu = g::run_concrete(&seq, &seeds, flags, &asg);
        // Every register and flag must agree.
        for r in pdbt_isa_arm::Reg::ALL {
            if r == pdbt_isa_arm::Reg::Pc {
                continue;
            }
            let sym_val = eval(&st.regs[r.index()], &asg);
            prop_assert_eq!(sym_val, cpu.read(r), "register {} after {:?}", r, seq.iter().map(|i| i.to_string()).collect::<Vec<_>>());
        }
        for (i, f) in Flag::ALL.into_iter().enumerate() {
            let sym_val = eval(&st.flags[i], &asg) & 1;
            prop_assert_eq!(sym_val != 0, cpu.flags.get(f), "flag {} after {:?}", f, seq.iter().map(|i| i.to_string()).collect::<Vec<_>>());
        }
    }
}

// ---------------------------------------------------------------------------
// Host side
// ---------------------------------------------------------------------------

mod h {
    use super::*;
    use pdbt_isa_x86::{builders as hbb, Cpu, Inst, Mem, Operand, Reg};

    fn reg() -> impl Strategy<Value = Reg> {
        // ebp is reserved as the in-range memory base.
        prop_oneof![
            Just(Reg::Eax),
            Just(Reg::Ecx),
            Just(Reg::Edx),
            Just(Reg::Ebx),
            Just(Reg::Esi),
            Just(Reg::Edi),
        ]
    }

    fn mem() -> impl Strategy<Value = Mem> {
        (0i32..0xf0).prop_map(|off| Mem::base_disp(Reg::Ebp, off & !3))
    }

    fn rmi() -> impl Strategy<Value = Operand> {
        prop_oneof![
            reg().prop_map(Operand::Reg),
            (-2048i32..2048).prop_map(Operand::Imm),
            mem().prop_map(Operand::Mem),
        ]
    }

    pub fn inst() -> impl Strategy<Value = Inst> {
        prop_oneof![
            (0usize..13, reg(), rmi()).prop_map(|(opi, dst, src)| {
                type B = fn(Operand, Operand) -> Inst;
                const OPS: [B; 13] = [
                    hbb::mov,
                    hbb::add,
                    hbb::adc,
                    hbb::sub,
                    hbb::sbb,
                    hbb::and,
                    hbb::or,
                    hbb::xor,
                    hbb::imul,
                    hbb::shl,
                    hbb::shr,
                    hbb::sar,
                    hbb::cmp,
                ];
                OPS[opi](Operand::Reg(dst), src)
            }),
            (mem(), rmi()).prop_map(|(m, src)| match src {
                Operand::Mem(_) => hbb::mov(Operand::Mem(m), Operand::Imm(7)),
                other => hbb::mov(Operand::Mem(m), other),
            }),
            reg().prop_map(|r| hbb::not(Operand::Reg(r))),
            reg().prop_map(|r| hbb::neg(Operand::Reg(r))),
            (reg(), mem()).prop_map(|(d, m)| hbb::movzxb(Operand::Reg(d), Operand::Mem(m))),
            (mem(), reg()).prop_map(|(m, s)| hbb::movb(Operand::Mem(m), Operand::Reg(s))),
            (0usize..14, reg())
                .prop_map(|(cci, d)| { hbb::setcc(pdbt_isa_x86::Cc::ALL[cci], Operand::Reg(d)) }),
        ]
    }

    pub fn run_concrete(seq: &[Inst], seeds: &[u32], flags: u8, asg: &Assignment) -> Cpu {
        let mut cpu = Cpu::new();
        cpu.mem.map(MEM_BASE, 0x1000);
        cpu.write(Reg::Ebp, MEM_BASE);
        for (r, v) in [Reg::Eax, Reg::Ecx, Reg::Edx, Reg::Ebx, Reg::Esi, Reg::Edi]
            .into_iter()
            .zip(seeds)
        {
            cpu.write(r, *v);
        }
        cpu.flags.n = flags & 1 != 0;
        cpu.flags.z = flags & 2 != 0;
        cpu.flags.c = flags & 4 != 0;
        cpu.flags.v = flags & 8 != 0;
        for a in MEM_BASE..MEM_BASE + 0x100 {
            cpu.mem
                .store(a, u32::from(asg.init_byte(a)), pdbt_isa::Width::B8)
                .unwrap();
        }
        let (exit, _) = pdbt_isa_x86::exec_block(&mut cpu, seq, 10_000).expect("runs");
        assert_eq!(exit, pdbt_isa_x86::BlockExit::Fell);
        cpu
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn host_symbolic_matches_executor(
        seq in proptest::collection::vec(h::inst(), 1..8),
        seeds in proptest::collection::vec(0u32..0xffff, 6),
        flags in any::<u8>(),
    ) {
        use pdbt_isa_x86::Reg;
        let mut st = host::State::init(|r| {
            if r == Reg::Ebp {
                Term::c(MEM_BASE)
            } else {
                Term::sym(Sym::HostReg(r.index() as u8))
            }
        });
        if host::run(&mut st, &seq).is_err() {
            return Ok(());
        }
        let mut asg = Assignment::new(0xbeef);
        for (r, v) in [Reg::Eax, Reg::Ecx, Reg::Edx, Reg::Ebx, Reg::Esi, Reg::Edi]
            .into_iter()
            .zip(&seeds)
        {
            asg.set(Sym::HostReg(r.index() as u8), *v);
        }
        asg.set(Sym::HostFlag(0), u32::from(flags & 1 != 0));
        asg.set(Sym::HostFlag(1), u32::from(flags & 2 != 0));
        asg.set(Sym::HostFlag(2), u32::from(flags & 4 != 0));
        asg.set(Sym::HostFlag(3), u32::from(flags & 8 != 0));
        let cpu = h::run_concrete(&seq, &seeds, flags, &asg);
        for r in Reg::ALL {
            if matches!(r, Reg::Esp | Reg::Ebp) {
                continue;
            }
            let sym_val = eval(&st.regs[r.index()], &asg);
            prop_assert_eq!(sym_val, cpu.read(r), "register {} after {:?}", r, seq.iter().map(|i| i.to_string()).collect::<Vec<_>>());
        }
        // Flags: imul leaves them modelled-undefined in both, the rest
        // must agree.
        let any_undefined = seq.iter().any(|i| matches!(i.op, pdbt_isa_x86::Op::Imul));
        if !any_undefined {
            for (i, f) in Flag::ALL.into_iter().enumerate() {
                let sym_val = eval(&st.flags[i], &asg) & 1;
                prop_assert_eq!(sym_val != 0, cpu.flags.get(f), "flag {} after {:?}", f, seq.iter().map(|i| i.to_string()).collect::<Vec<_>>());
            }
        }
    }
}
