//! Property tests for the normalizing rewriter: simplification preserves
//! concrete meaning, is idempotent, and canonicalizes commutativity.

use pdbt_symexec::term::{BinOp, PredOp, Sym, Term, TermRef, UnOp};
use pdbt_symexec::{eval, simplify, Assignment};
use proptest::prelude::*;
use std::rc::Rc;

fn leaf() -> impl Strategy<Value = TermRef> {
    prop_oneof![
        any::<u32>().prop_map(Term::c),
        (0u8..4).prop_map(|i| Term::sym(Sym::Param(i))),
        (0u8..4).prop_map(|i| Term::sym(Sym::Flag(i))),
    ]
}

fn term() -> impl Strategy<Value = TermRef> {
    leaf().prop_recursive(4, 64, 3, |inner| {
        prop_oneof![
            (0usize..11, inner.clone(), inner.clone()).prop_map(|(opi, a, b)| {
                const OPS: [BinOp; 11] = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                    BinOp::Shl,
                    BinOp::Shr,
                    BinOp::Sar,
                    BinOp::Ror,
                    BinOp::Mul,
                    BinOp::MulhU,
                ];
                Term::bin(OPS[opi], a, b)
            }),
            (0usize..3, inner.clone()).prop_map(|(opi, a)| {
                const OPS: [UnOp; 3] = [UnOp::Not, UnOp::Neg, UnOp::Clz];
                Term::un(OPS[opi], a)
            }),
            (0usize..10, inner.clone(), inner.clone()).prop_map(|(opi, a, b)| {
                const OPS: [PredOp; 10] = [
                    PredOp::Eq,
                    PredOp::Ne,
                    PredOp::Ltu,
                    PredOp::Geu,
                    PredOp::Lts,
                    PredOp::Ges,
                    PredOp::Gts,
                    PredOp::Les,
                    PredOp::Gtu,
                    PredOp::Leu,
                ];
                Term::pred(OPS[opi], a, b)
            }),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Rc::new(Term::Ite(c, t, e))),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(a, b, c)| Rc::new(Term::CarryAdd(a, b, c))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(a, b, c)| Rc::new(Term::BorrowSub(a, b, c))),
        ]
    })
}

proptest! {
    #[test]
    fn simplify_preserves_meaning(t in term(), seed in any::<u64>()) {
        let s = simplify(&t);
        for k in 0..8u64 {
            let asg = Assignment::new(seed.wrapping_add(k));
            prop_assert_eq!(eval(&t, &asg), eval(&s, &asg), "term {} vs {}", t, s);
        }
    }

    #[test]
    fn simplify_is_idempotent(t in term()) {
        let once = simplify(&t);
        let twice = simplify(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn commutative_operands_canonicalize(a in leaf(), b in leaf()) {
        for op in [BinOp::Add, BinOp::And, BinOp::Or, BinOp::Xor, BinOp::Mul] {
            let ab = simplify(&Term::bin(op, a.clone(), b.clone()));
            let ba = simplify(&Term::bin(op, b.clone(), a.clone()));
            prop_assert_eq!(ab, ba);
        }
    }

    #[test]
    fn constant_terms_fold_completely(x in any::<u32>(), y in any::<u32>()) {
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Shr, BinOp::Ror] {
            let t = simplify(&Term::bin(op, Term::c(x), Term::c(y)));
            prop_assert!(matches!(&*t, Term::Const(_)), "{:?} did not fold", op);
        }
    }
}
