//! Randomized tests for the normalizing rewriter: simplification
//! preserves concrete meaning, is idempotent, and canonicalizes
//! commutativity.
//!
//! Originally written with `proptest`; the offline build environment has
//! no crates.io access, so the strategies are hand-rolled samplers over
//! the deterministic in-tree PRNG (`pdbt-rng`, aliased as `rand`).

use pdbt_symexec::term::{BinOp, PredOp, Sym, Term, TermRef, UnOp};
use pdbt_symexec::{eval, simplify, Assignment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

fn cases() -> usize {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

fn leaf(rng: &mut StdRng) -> TermRef {
    match rng.gen_range(0..3) {
        0 => Term::c(rng.gen()),
        1 => Term::sym(Sym::Param(rng.gen_range(0u8..4))),
        _ => Term::sym(Sym::Flag(rng.gen_range(0u8..4))),
    }
}

/// A random term of bounded depth (mirrors the old
/// `leaf().prop_recursive(4, …)` strategy).
fn term(rng: &mut StdRng, depth: usize) -> TermRef {
    if depth == 0 || rng.gen_bool(0.3) {
        return leaf(rng);
    }
    match rng.gen_range(0..6) {
        0 | 1 => {
            const OPS: [BinOp; 11] = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::And,
                BinOp::Or,
                BinOp::Xor,
                BinOp::Shl,
                BinOp::Shr,
                BinOp::Sar,
                BinOp::Ror,
                BinOp::Mul,
                BinOp::MulhU,
            ];
            Term::bin(
                OPS[rng.gen_range(0..11)],
                term(rng, depth - 1),
                term(rng, depth - 1),
            )
        }
        2 => {
            const OPS: [UnOp; 3] = [UnOp::Not, UnOp::Neg, UnOp::Clz];
            Term::un(OPS[rng.gen_range(0..3)], term(rng, depth - 1))
        }
        3 => {
            const OPS: [PredOp; 10] = [
                PredOp::Eq,
                PredOp::Ne,
                PredOp::Ltu,
                PredOp::Geu,
                PredOp::Lts,
                PredOp::Ges,
                PredOp::Gts,
                PredOp::Les,
                PredOp::Gtu,
                PredOp::Leu,
            ];
            Term::pred(
                OPS[rng.gen_range(0..10)],
                term(rng, depth - 1),
                term(rng, depth - 1),
            )
        }
        4 => Rc::new(Term::Ite(
            term(rng, depth - 1),
            term(rng, depth - 1),
            term(rng, depth - 1),
        )),
        _ => {
            let (a, b, c) = (
                term(rng, depth - 1),
                term(rng, depth - 1),
                term(rng, depth - 1),
            );
            if rng.gen_bool(0.5) {
                Rc::new(Term::CarryAdd(a, b, c))
            } else {
                Rc::new(Term::BorrowSub(a, b, c))
            }
        }
    }
}

#[test]
fn simplify_preserves_meaning() {
    let mut rng = StdRng::seed_from_u64(0x51_01);
    for _ in 0..cases() {
        let t = term(&mut rng, 4);
        let seed: u64 = rng.gen();
        let s = simplify(&t);
        for k in 0..8u64 {
            let asg = Assignment::new(seed.wrapping_add(k));
            assert_eq!(eval(&t, &asg), eval(&s, &asg), "term {t} vs {s}");
        }
    }
}

#[test]
fn simplify_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(0x51_02);
    for _ in 0..cases() {
        let t = term(&mut rng, 4);
        let once = simplify(&t);
        let twice = simplify(&once);
        assert_eq!(once, twice);
    }
}

#[test]
fn commutative_operands_canonicalize() {
    let mut rng = StdRng::seed_from_u64(0x51_03);
    for _ in 0..cases() {
        let a = leaf(&mut rng);
        let b = leaf(&mut rng);
        for op in [BinOp::Add, BinOp::And, BinOp::Or, BinOp::Xor, BinOp::Mul] {
            let ab = simplify(&Term::bin(op, a.clone(), b.clone()));
            let ba = simplify(&Term::bin(op, b.clone(), a.clone()));
            assert_eq!(ab, ba);
        }
    }
}

#[test]
fn constant_terms_fold_completely() {
    let mut rng = StdRng::seed_from_u64(0x51_04);
    for _ in 0..cases() {
        let x: u32 = rng.gen();
        let y: u32 = rng.gen();
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Shr, BinOp::Ror] {
            let t = simplify(&Term::bin(op, Term::c(x), Term::c(y)));
            assert!(matches!(&*t, Term::Const(_)), "{op:?} did not fold");
        }
    }
}
