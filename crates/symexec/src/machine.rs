//! Symbolic evaluators for the guest and host machine models.
//!
//! Both evaluators share the [`Term`] algebra and one symbolic memory
//! root (the DBT identity-maps guest memory into host memory), and use
//! the same carry/borrow/overflow primitives, so equivalent computations
//! normalize to equal terms.

use crate::term::{BinOp, PredOp, Sym, SymMem, Term, TermRef, UnOp};
use pdbt_isa::{Flag, Width};
use std::rc::Rc;

fn flag_index(f: Flag) -> u8 {
    match f {
        Flag::N => 0,
        Flag::Z => 1,
        Flag::C => 2,
        Flag::V => 3,
    }
}

/// An error raised when a sequence cannot be evaluated symbolically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymExecError {
    /// What was unsupported.
    pub detail: String,
}

impl std::fmt::Display for SymExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "symbolic execution unsupported: {}", self.detail)
    }
}

impl std::error::Error for SymExecError {}

fn unsupported<T>(detail: impl Into<String>) -> Result<T, SymExecError> {
    Err(SymExecError {
        detail: detail.into(),
    })
}

// ---------------------------------------------------------------------------
// Guest
// ---------------------------------------------------------------------------

pub mod guest {
    use super::*;
    use pdbt_isa::Cond;
    use pdbt_isa_arm::{FReg, Inst, MemAddr, Op, Operand, Reg, ShiftKind};

    /// Symbolic guest machine state.
    #[derive(Debug, Clone)]
    pub struct State {
        /// One term per general-purpose register.
        pub regs: [TermRef; 16],
        /// N, Z, C, V flag terms (0/1-valued).
        pub flags: [TermRef; 4],
        /// Float registers (bit patterns).
        pub fregs: [TermRef; 16],
        /// Symbolic memory.
        pub mem: Rc<SymMem>,
        /// Values emitted by `svc #1`.
        pub output: Vec<TermRef>,
    }

    impl State {
        /// Creates an initial state: register `r` is `init(r)` (so the
        /// caller chooses parameter vs. free symbols), flags are flag
        /// symbols, memory is the shared initial memory.
        pub fn init(init: impl Fn(Reg) -> TermRef) -> State {
            State {
                regs: std::array::from_fn(|i| init(Reg::from_index(i).unwrap())),
                flags: std::array::from_fn(|i| Term::sym(Sym::Flag(i as u8))),
                fregs: std::array::from_fn(|i| Term::sym(Sym::Free(0x80 + i as u16))),
                mem: Rc::new(SymMem::Init),
                output: Vec::new(),
            }
        }

        /// Reads a register (`pc` reads as the `pc + 8` symbol-based term).
        #[must_use]
        pub fn read(&self, r: Reg) -> TermRef {
            if r.is_pc() {
                Term::bin(BinOp::Add, Term::sym(Sym::Pc), Term::c(8))
            } else {
                self.regs[r.index()].clone()
            }
        }

        fn write(&mut self, r: Reg, t: TermRef) -> Result<(), SymExecError> {
            if r.is_pc() {
                return unsupported("write to pc");
            }
            self.regs[r.index()] = t;
            Ok(())
        }

        /// Reads a flag term.
        #[must_use]
        pub fn flag(&self, f: Flag) -> TermRef {
            self.flags[flag_index(f) as usize].clone()
        }

        fn set_flag(&mut self, f: Flag, t: TermRef) {
            self.flags[flag_index(f) as usize] = t;
        }

        fn set_nz(&mut self, res: &TermRef) {
            self.set_flag(Flag::N, Term::pred(PredOp::Lts, res.clone(), Term::c(0)));
            self.set_flag(Flag::Z, Term::pred(PredOp::Eq, res.clone(), Term::c(0)));
        }
    }

    fn eval_op2(st: &State, op2: &Operand) -> Result<TermRef, SymExecError> {
        match op2 {
            Operand::Reg(r) => Ok(st.read(*r)),
            Operand::Imm(v) => Ok(Term::c(*v)),
            Operand::Shifted { rm, kind, amount } => {
                let op = match kind {
                    ShiftKind::Lsl => BinOp::Shl,
                    ShiftKind::Lsr => BinOp::Shr,
                    ShiftKind::Asr => BinOp::Sar,
                    ShiftKind::Ror => BinOp::Ror,
                };
                Ok(Term::bin(op, st.read(*rm), Term::c(u32::from(*amount))))
            }
            other => unsupported(format!("op2 {other}")),
        }
    }

    fn mem_addr(st: &State, m: MemAddr) -> TermRef {
        match m {
            MemAddr::BaseImm { base, offset } => {
                Term::bin(BinOp::Add, st.read(base), Term::c(offset as u32))
            }
            MemAddr::BaseReg { base, index } => {
                Term::bin(BinOp::Add, st.read(base), st.read(index))
            }
        }
    }

    /// Symbolically executes one straight-line guest instruction.
    ///
    /// # Errors
    ///
    /// [`SymExecError`] for control flow, conditional execution, `pc`
    /// writes, and flag-setting variable shifts — the shapes the paper's
    /// verification also rejects (§II-B).
    pub fn step(st: &mut State, inst: &Inst) -> Result<(), SymExecError> {
        if inst.cond != Cond::Al {
            return unsupported("conditional execution");
        }
        use Op::*;
        match inst.op {
            B | Bl | Bx => unsupported(format!("control flow `{inst}`")),
            Push | Pop => unsupported(format!("ABI-coupled stack op `{inst}`")),
            Svc => {
                let imm = inst.operands[0].as_imm().expect("validated");
                if imm == 1 {
                    let v = st.read(Reg::R0);
                    st.output.push(v);
                    Ok(())
                } else {
                    unsupported(format!("svc #{imm}"))
                }
            }
            And | Eor | Sub | Rsb | Add | Adc | Sbc | Rsc | Orr | Bic | Lsl | Lsr | Asr | Ror => {
                let rd = inst.operands[0].as_reg().expect("validated");
                let a = st.read(inst.operands[1].as_reg().expect("validated"));
                let b = eval_op2(st, &inst.operands[2])?;
                let cin = st.flag(Flag::C);
                let not_c = Term::bin(BinOp::Xor, cin.clone(), Term::c(1));
                let res = match inst.op {
                    Add => Term::bin(BinOp::Add, a.clone(), b.clone()),
                    Sub => Term::bin(BinOp::Sub, a.clone(), b.clone()),
                    Rsb => Term::bin(BinOp::Sub, b.clone(), a.clone()),
                    And => Term::bin(BinOp::And, a.clone(), b.clone()),
                    Orr => Term::bin(BinOp::Or, a.clone(), b.clone()),
                    Eor => Term::bin(BinOp::Xor, a.clone(), b.clone()),
                    Bic => Term::bin(BinOp::And, a.clone(), Term::un(UnOp::Not, b.clone())),
                    Adc => Term::bin(
                        BinOp::Add,
                        Term::bin(BinOp::Add, a.clone(), b.clone()),
                        cin.clone(),
                    ),
                    Sbc => Term::bin(
                        BinOp::Sub,
                        Term::bin(BinOp::Sub, a.clone(), b.clone()),
                        not_c.clone(),
                    ),
                    Rsc => Term::bin(
                        BinOp::Sub,
                        Term::bin(BinOp::Sub, b.clone(), a.clone()),
                        not_c.clone(),
                    ),
                    Lsl => Term::bin(BinOp::Shl, a.clone(), masked_amount(&b)),
                    Lsr => Term::bin(BinOp::Shr, a.clone(), masked_amount(&b)),
                    Asr => Term::bin(BinOp::Sar, a.clone(), masked_amount(&b)),
                    Ror => Term::bin(BinOp::Ror, a.clone(), masked_amount(&b)),
                    _ => unreachable!(),
                };
                if inst.s {
                    match inst.op {
                        Add => {
                            st.set_nz(&res);
                            st.set_flag(
                                Flag::C,
                                Rc::new(Term::CarryAdd(a.clone(), b.clone(), Term::c(0))),
                            );
                            st.set_flag(
                                Flag::V,
                                Rc::new(Term::OverflowAdd(a.clone(), b.clone(), Term::c(0))),
                            );
                        }
                        Sub => {
                            st.set_nz(&res);
                            st.set_flag(
                                Flag::C,
                                Term::bin(
                                    BinOp::Xor,
                                    Rc::new(Term::BorrowSub(a.clone(), b.clone(), Term::c(0))),
                                    Term::c(1),
                                ),
                            );
                            st.set_flag(
                                Flag::V,
                                Rc::new(Term::OverflowSub(a.clone(), b.clone(), Term::c(0))),
                            );
                        }
                        Rsb => {
                            st.set_nz(&res);
                            st.set_flag(
                                Flag::C,
                                Term::bin(
                                    BinOp::Xor,
                                    Rc::new(Term::BorrowSub(b.clone(), a.clone(), Term::c(0))),
                                    Term::c(1),
                                ),
                            );
                            st.set_flag(
                                Flag::V,
                                Rc::new(Term::OverflowSub(b.clone(), a.clone(), Term::c(0))),
                            );
                        }
                        And | Orr | Eor | Bic => st.set_nz(&res),
                        Lsl | Lsr | Asr | Ror => {
                            let amount = match &inst.operands[2] {
                                Operand::Imm(v) if *v >= 1 && *v <= 31 => *v,
                                other => {
                                    return unsupported(format!(
                                        "flag-setting shift amount {other}"
                                    ))
                                }
                            };
                            st.set_nz(&res);
                            let carry_src = match inst.op {
                                Lsl => Term::bin(BinOp::Shr, a.clone(), Term::c(32 - amount)),
                                Lsr | Ror => Term::bin(BinOp::Shr, a.clone(), Term::c(amount - 1)),
                                Asr => Term::bin(BinOp::Sar, a.clone(), Term::c(amount - 1)),
                                _ => unreachable!(),
                            };
                            st.set_flag(Flag::C, Term::bin(BinOp::And, carry_src, Term::c(1)));
                        }
                        Adc | Sbc | Rsc => return unsupported("flag-setting carry-chain op"),
                        _ => unreachable!(),
                    }
                }
                st.write(rd, res)
            }
            Mov | Mvn => {
                let rd = inst.operands[0].as_reg().expect("validated");
                let v = eval_op2(st, &inst.operands[1])?;
                let res = if inst.op == Mvn {
                    Term::un(UnOp::Not, v)
                } else {
                    v
                };
                if inst.s {
                    st.set_nz(&res);
                }
                st.write(rd, res)
            }
            Clz => {
                let rd = inst.operands[0].as_reg().expect("validated");
                let a = st.read(inst.operands[1].as_reg().expect("validated"));
                st.write(rd, Term::un(UnOp::Clz, a))
            }
            Mul | Mla => {
                let rd = inst.operands[0].as_reg().expect("validated");
                let a = st.read(inst.operands[1].as_reg().expect("validated"));
                let b = st.read(inst.operands[2].as_reg().expect("validated"));
                let mut res = Term::bin(BinOp::Mul, a, b);
                if inst.op == Mla {
                    let acc = st.read(inst.operands[3].as_reg().expect("validated"));
                    res = Term::bin(BinOp::Add, res, acc);
                }
                if inst.s {
                    st.set_nz(&res);
                }
                st.write(rd, res)
            }
            Umull | Umlal => {
                let rdlo = inst.operands[0].as_reg().expect("validated");
                let rdhi = inst.operands[1].as_reg().expect("validated");
                let a = st.read(inst.operands[2].as_reg().expect("validated"));
                let b = st.read(inst.operands[3].as_reg().expect("validated"));
                let lo = Term::bin(BinOp::Mul, a.clone(), b.clone());
                let hi = Term::bin(BinOp::MulhU, a, b);
                let (lo, hi) = if inst.op == Umlal {
                    let old_lo = st.read(rdlo);
                    let old_hi = st.read(rdhi);
                    let nlo = Term::bin(BinOp::Add, old_lo.clone(), lo.clone());
                    let carry = Rc::new(Term::CarryAdd(old_lo, lo, Term::c(0)));
                    let nhi = Term::bin(BinOp::Add, Term::bin(BinOp::Add, old_hi, hi), carry);
                    (nlo, nhi)
                } else {
                    (lo, hi)
                };
                st.write(rdlo, lo)?;
                st.write(rdhi, hi)
            }
            Cmp | Cmn | Tst | Teq => {
                let a = st.read(inst.operands[0].as_reg().expect("validated"));
                let b = eval_op2(st, &inst.operands[1])?;
                match inst.op {
                    Cmp => {
                        let res = Term::bin(BinOp::Sub, a.clone(), b.clone());
                        st.set_nz(&res);
                        st.set_flag(
                            Flag::C,
                            Term::bin(
                                BinOp::Xor,
                                Rc::new(Term::BorrowSub(a.clone(), b.clone(), Term::c(0))),
                                Term::c(1),
                            ),
                        );
                        st.set_flag(Flag::V, Rc::new(Term::OverflowSub(a, b, Term::c(0))));
                    }
                    Cmn => {
                        let res = Term::bin(BinOp::Add, a.clone(), b.clone());
                        st.set_nz(&res);
                        st.set_flag(
                            Flag::C,
                            Rc::new(Term::CarryAdd(a.clone(), b.clone(), Term::c(0))),
                        );
                        st.set_flag(Flag::V, Rc::new(Term::OverflowAdd(a, b, Term::c(0))));
                    }
                    Tst => {
                        let res = Term::bin(BinOp::And, a, b);
                        st.set_nz(&res);
                    }
                    Teq => {
                        let res = Term::bin(BinOp::Xor, a, b);
                        st.set_nz(&res);
                    }
                    _ => unreachable!(),
                }
                Ok(())
            }
            Ldr | Ldrb | Ldrh => {
                let rt = inst.operands[0].as_reg().expect("validated");
                let addr = mem_addr(st, inst.operands[1].as_mem().expect("validated"));
                let width = inst.op.access_width().expect("load width");
                let v = Rc::new(Term::Read(st.mem.clone(), addr, width));
                st.write(rt, v)
            }
            Str | Strb | Strh => {
                let v = st.read(inst.operands[0].as_reg().expect("validated"));
                let addr = mem_addr(st, inst.operands[1].as_mem().expect("validated"));
                let width = inst.op.access_width().expect("store width");
                st.mem = Rc::new(SymMem::Store {
                    prev: st.mem.clone(),
                    addr,
                    val: v,
                    width,
                });
                Ok(())
            }
            Vadd | Vsub | Vmul | Vdiv => {
                let (Operand::FReg(sd), Operand::FReg(sn), Operand::FReg(sm)) =
                    (inst.operands[0], inst.operands[1], inst.operands[2])
                else {
                    unreachable!("validated")
                };
                let op = match inst.op {
                    Vadd => BinOp::FAdd,
                    Vsub => BinOp::FSub,
                    Vmul => BinOp::FMul,
                    _ => BinOp::FDiv,
                };
                let res = Term::bin(
                    op,
                    st.fregs[sn.index()].clone(),
                    st.fregs[sm.index()].clone(),
                );
                st.fregs[sd.index()] = res;
                Ok(())
            }
            Vmov => {
                let (Operand::FReg(sd), Operand::FReg(sm)) = (inst.operands[0], inst.operands[1])
                else {
                    unreachable!("validated")
                };
                st.fregs[sd.index()] = st.fregs[sm.index()].clone();
                Ok(())
            }
            Vcmp => {
                let (Operand::FReg(sd), Operand::FReg(sm)) = (inst.operands[0], inst.operands[1])
                else {
                    unreachable!("validated")
                };
                let a = st.fregs[sd.index()].clone();
                let b = st.fregs[sm.index()].clone();
                st.set_flag(Flag::N, Term::pred(PredOp::FLt, a.clone(), b.clone()));
                st.set_flag(Flag::Z, Term::pred(PredOp::FEq, a.clone(), b.clone()));
                st.set_flag(Flag::C, Term::pred(PredOp::FGe, a, b));
                st.set_flag(Flag::V, Term::c(0));
                Ok(())
            }
            Vldr => {
                let Operand::FReg(sd) = inst.operands[0] else {
                    unreachable!("validated")
                };
                let addr = mem_addr(st, inst.operands[1].as_mem().expect("validated"));
                st.fregs[sd.index()] = Rc::new(Term::Read(st.mem.clone(), addr, Width::B32));
                Ok(())
            }
            Vstr => {
                let Operand::FReg(sd) = inst.operands[0] else {
                    unreachable!("validated")
                };
                let addr = mem_addr(st, inst.operands[1].as_mem().expect("validated"));
                let v = st.fregs[sd.index()].clone();
                st.mem = Rc::new(SymMem::Store {
                    prev: st.mem.clone(),
                    addr,
                    val: v,
                    width: Width::B32,
                });
                Ok(())
            }
        }
    }

    fn masked_amount(b: &TermRef) -> TermRef {
        Term::bin(BinOp::And, b.clone(), Term::c(31))
    }

    /// Symbolically executes a straight-line sequence.
    ///
    /// # Errors
    ///
    /// See [`step`].
    pub fn run(st: &mut State, insts: &[Inst]) -> Result<(), SymExecError> {
        for i in insts {
            step(st, i)?;
        }
        Ok(())
    }

    #[allow(unused_imports)]
    pub use super::SymExecError as Error;

    // FReg import is used in pattern bindings above.
    #[allow(unused)]
    fn _freg_witness(_f: FReg) {}
}

// ---------------------------------------------------------------------------
// Host
// ---------------------------------------------------------------------------

pub mod host {
    use super::*;
    use pdbt_isa_x86::{Cc, Inst, Mem, Op, Operand, Reg, Xmm};

    /// Symbolic host machine state.
    #[derive(Debug, Clone)]
    pub struct State {
        /// One term per general-purpose register.
        pub regs: [TermRef; 8],
        /// SF, ZF, CF, OF flag terms (indices match guest N, Z, C, V).
        pub flags: [TermRef; 4],
        /// Scalar-float registers (bit patterns).
        pub xmm: [TermRef; 8],
        /// Symbolic memory (shared root with the guest side).
        pub mem: Rc<SymMem>,
        /// Values emitted by `out`.
        pub output: Vec<TermRef>,
    }

    impl State {
        /// Creates an initial state with the caller choosing each
        /// register's initial term.
        pub fn init(init: impl Fn(Reg) -> TermRef) -> State {
            State {
                regs: std::array::from_fn(|i| init(Reg::from_index(i).unwrap())),
                flags: std::array::from_fn(|i| Term::sym(Sym::HostFlag(i as u8))),
                xmm: std::array::from_fn(|i| Term::sym(Sym::Free(0x100 + i as u16))),
                mem: Rc::new(SymMem::Init),
                output: Vec::new(),
            }
        }

        /// Reads a register term.
        #[must_use]
        pub fn read(&self, r: Reg) -> TermRef {
            self.regs[r.index()].clone()
        }

        fn write(&mut self, r: Reg, t: TermRef) {
            self.regs[r.index()] = t;
        }

        /// Reads a flag term by guest-aligned index (N/SF, Z/ZF, C/CF,
        /// V/OF).
        #[must_use]
        pub fn flag(&self, f: Flag) -> TermRef {
            self.flags[flag_index(f) as usize].clone()
        }

        fn set_flag(&mut self, f: Flag, t: TermRef) {
            self.flags[flag_index(f) as usize] = t;
        }

        fn set_nz(&mut self, res: &TermRef) {
            self.set_flag(Flag::N, Term::pred(PredOp::Lts, res.clone(), Term::c(0)));
            self.set_flag(Flag::Z, Term::pred(PredOp::Eq, res.clone(), Term::c(0)));
        }
    }

    fn mem_addr(st: &State, m: Mem) -> TermRef {
        let mut t = Term::c(m.disp as u32);
        if let Some(b) = m.base {
            t = Term::bin(BinOp::Add, st.read(b), t);
        }
        if let Some(i) = m.index {
            t = Term::bin(BinOp::Add, t, st.read(i));
        }
        t
    }

    fn read_operand(st: &State, o: &Operand, width: Width) -> Result<TermRef, SymExecError> {
        match o {
            Operand::Reg(r) => Ok(st.read(*r)),
            Operand::Imm(v) => Ok(Term::c(*v as u32)),
            Operand::Mem(m) => Ok(Rc::new(Term::Read(st.mem.clone(), mem_addr(st, *m), width))),
            other => unsupported(format!("integer read of {other}")),
        }
    }

    fn write_operand(
        st: &mut State,
        o: &Operand,
        t: TermRef,
        width: Width,
    ) -> Result<(), SymExecError> {
        match o {
            Operand::Reg(r) => {
                st.write(*r, t);
                Ok(())
            }
            Operand::Mem(m) => {
                let addr = mem_addr(st, *m);
                st.mem = Rc::new(SymMem::Store {
                    prev: st.mem.clone(),
                    addr,
                    val: t,
                    width,
                });
                Ok(())
            }
            other => unsupported(format!("write to {other}")),
        }
    }

    fn cc_term(st: &State, cc: Cc) -> TermRef {
        let n = st.flag(Flag::N);
        let z = st.flag(Flag::Z);
        let c = st.flag(Flag::C);
        let v = st.flag(Flag::V);
        let not = |t: TermRef| Term::bin(BinOp::Xor, t, Term::c(1));
        match cc {
            Cc::E => z,
            Cc::Ne => not(z),
            Cc::B => c,
            Cc::Ae => not(c),
            Cc::A => Term::bin(BinOp::And, not(c), not(z)),
            Cc::Be => Term::bin(BinOp::Or, c, z),
            Cc::S => n,
            Cc::Ns => not(n),
            Cc::O => v,
            Cc::No => not(v),
            Cc::Ge => not(Term::bin(BinOp::Xor, n, v)),
            Cc::L => Term::bin(BinOp::Xor, n, v),
            Cc::G => {
                let ge = not(Term::bin(BinOp::Xor, n, v));
                Term::bin(BinOp::And, ge, not(z))
            }
            Cc::Le => {
                let l = Term::bin(BinOp::Xor, n, v);
                Term::bin(BinOp::Or, l, z)
            }
        }
    }

    /// Symbolically executes one straight-line host instruction.
    ///
    /// # Errors
    ///
    /// [`SymExecError`] for control flow and stack operations.
    pub fn step(st: &mut State, inst: &Inst) -> Result<(), SymExecError> {
        use Op::*;
        let ops = &inst.operands;
        match inst.op {
            Jmp | Jcc | Call | Ret | Hlt => unsupported(format!("control flow `{inst}`")),
            Push | Pop => unsupported(format!("stack op `{inst}`")),
            Mov => {
                let v = read_operand(st, &ops[1], Width::B32)?;
                write_operand(st, &ops[0], v, Width::B32)
            }
            MovB | MovW => {
                let v = read_operand(st, &ops[1], Width::B32)?;
                write_operand(st, &ops[0], v, inst.op.access_width())
            }
            MovzxB | MovzxW => {
                let v = read_operand(st, &ops[1], inst.op.access_width())?;
                write_operand(st, &ops[0], v, Width::B32)
            }
            Lea => {
                let m = ops[1].as_mem().ok_or_else(|| SymExecError {
                    detail: "lea needs memory".into(),
                })?;
                let a = mem_addr(st, m);
                write_operand(st, &ops[0], a, Width::B32)
            }
            Add | Adc | Sub | Sbb | Cmp => {
                let a = read_operand(st, &ops[0], Width::B32)?;
                let b = read_operand(st, &ops[1], Width::B32)?;
                let cin = st.flag(Flag::C);
                let (res, c, v) = match inst.op {
                    Add => (
                        Term::bin(BinOp::Add, a.clone(), b.clone()),
                        Rc::new(Term::CarryAdd(a.clone(), b.clone(), Term::c(0))),
                        Rc::new(Term::OverflowAdd(a.clone(), b.clone(), Term::c(0))),
                    ),
                    Adc => (
                        Term::bin(
                            BinOp::Add,
                            Term::bin(BinOp::Add, a.clone(), b.clone()),
                            cin.clone(),
                        ),
                        Rc::new(Term::CarryAdd(a.clone(), b.clone(), cin.clone())),
                        Rc::new(Term::OverflowAdd(a.clone(), b.clone(), cin.clone())),
                    ),
                    Sub | Cmp => (
                        Term::bin(BinOp::Sub, a.clone(), b.clone()),
                        Rc::new(Term::BorrowSub(a.clone(), b.clone(), Term::c(0))),
                        Rc::new(Term::OverflowSub(a.clone(), b.clone(), Term::c(0))),
                    ),
                    Sbb => (
                        Term::bin(
                            BinOp::Sub,
                            Term::bin(BinOp::Sub, a.clone(), b.clone()),
                            cin.clone(),
                        ),
                        Rc::new(Term::BorrowSub(a.clone(), b.clone(), cin.clone())),
                        Rc::new(Term::OverflowSub(a.clone(), b.clone(), cin.clone())),
                    ),
                    _ => unreachable!(),
                };
                st.set_nz(&res);
                st.set_flag(Flag::C, c);
                st.set_flag(Flag::V, v);
                if inst.op != Cmp {
                    write_operand(st, &ops[0], res, Width::B32)?;
                }
                Ok(())
            }
            And | Or | Xor | Test => {
                let a = read_operand(st, &ops[0], Width::B32)?;
                let b = read_operand(st, &ops[1], Width::B32)?;
                let op = match inst.op {
                    And | Test => BinOp::And,
                    Or => BinOp::Or,
                    Xor => BinOp::Xor,
                    _ => unreachable!(),
                };
                let res = Term::bin(op, a, b);
                st.set_nz(&res);
                st.set_flag(Flag::C, Term::c(0));
                st.set_flag(Flag::V, Term::c(0));
                if inst.op != Test {
                    write_operand(st, &ops[0], res, Width::B32)?;
                }
                Ok(())
            }
            Imul => {
                let a = read_operand(st, &ops[0], Width::B32)?;
                let b = read_operand(st, &ops[1], Width::B32)?;
                // Flags modelled as undefined: leave unchanged.
                write_operand(st, &ops[0], Term::bin(BinOp::Mul, a, b), Width::B32)
            }
            MulWide => {
                let a = st.read(Reg::Eax);
                let b = read_operand(st, &ops[0], Width::B32)?;
                let lo = Term::bin(BinOp::Mul, a.clone(), b.clone());
                let hi = Term::bin(BinOp::MulhU, a, b);
                st.write(Reg::Eax, lo);
                st.write(Reg::Edx, hi);
                Ok(())
            }
            Shl | Shr | Sar | Ror => {
                let a = read_operand(st, &ops[0], Width::B32)?;
                let amt_raw = read_operand(st, &ops[1], Width::B32)?;
                let amt = Term::bin(BinOp::And, amt_raw, Term::c(31));
                let (op, carry_src) = match inst.op {
                    Shl => (
                        BinOp::Shl,
                        Term::bin(
                            BinOp::Shr,
                            a.clone(),
                            Term::bin(BinOp::Sub, Term::c(32), amt.clone()),
                        ),
                    ),
                    Shr => (
                        BinOp::Shr,
                        Term::bin(
                            BinOp::Shr,
                            a.clone(),
                            Term::bin(BinOp::Sub, amt.clone(), Term::c(1)),
                        ),
                    ),
                    Sar => (
                        BinOp::Sar,
                        Term::bin(
                            BinOp::Sar,
                            a.clone(),
                            Term::bin(BinOp::Sub, amt.clone(), Term::c(1)),
                        ),
                    ),
                    Ror => (
                        BinOp::Ror,
                        Term::bin(
                            BinOp::Shr,
                            a.clone(),
                            Term::bin(BinOp::Sub, amt.clone(), Term::c(1)),
                        ),
                    ),
                    _ => unreachable!(),
                };
                let res = Term::bin(op, a, amt.clone());
                // A zero (masked) amount leaves every flag unchanged —
                // conditional flag terms keep the model faithful for
                // symbolic amounts.
                let nonzero = Term::pred(PredOp::Ne, amt, Term::c(0));
                let ite =
                    |new: TermRef, old: TermRef| Rc::new(Term::Ite(nonzero.clone(), new, old));
                if inst.op != Ror {
                    let n = Term::pred(PredOp::Lts, res.clone(), Term::c(0));
                    let z = Term::pred(PredOp::Eq, res.clone(), Term::c(0));
                    let old_n = st.flag(Flag::N);
                    let old_z = st.flag(Flag::Z);
                    st.set_flag(Flag::N, ite(n, old_n));
                    st.set_flag(Flag::Z, ite(z, old_z));
                }
                let c = Term::bin(BinOp::And, carry_src, Term::c(1));
                let old_c = st.flag(Flag::C);
                st.set_flag(Flag::C, ite(c, old_c));
                write_operand(st, &ops[0], res, Width::B32)
            }
            Not => {
                let a = read_operand(st, &ops[0], Width::B32)?;
                write_operand(st, &ops[0], Term::un(UnOp::Not, a), Width::B32)
            }
            Neg => {
                let a = read_operand(st, &ops[0], Width::B32)?;
                let res = Term::un(UnOp::Neg, a.clone());
                st.set_nz(&res);
                st.set_flag(
                    Flag::C,
                    Rc::new(Term::BorrowSub(Term::c(0), a.clone(), Term::c(0))),
                );
                st.set_flag(
                    Flag::V,
                    Rc::new(Term::OverflowSub(Term::c(0), a, Term::c(0))),
                );
                write_operand(st, &ops[0], res, Width::B32)
            }
            Bsr => unsupported("bsr (branchy clz emulation)"),
            Setcc => {
                let t = cc_term(st, inst.cc.expect("validated"));
                write_operand(st, &ops[0], t, Width::B32)
            }
            Out => {
                let v = st.read(Reg::Eax);
                st.output.push(v);
                Ok(())
            }
            Movss => {
                let v = match &ops[1] {
                    Operand::Xmm(x) => st.xmm[x.index()].clone(),
                    Operand::Mem(m) => {
                        Rc::new(Term::Read(st.mem.clone(), mem_addr(st, *m), Width::B32))
                    }
                    other => return unsupported(format!("movss source {other}")),
                };
                match &ops[0] {
                    Operand::Xmm(x) => {
                        st.xmm[x.index()] = v;
                        Ok(())
                    }
                    Operand::Mem(m) => {
                        let addr = mem_addr(st, *m);
                        st.mem = Rc::new(SymMem::Store {
                            prev: st.mem.clone(),
                            addr,
                            val: v,
                            width: Width::B32,
                        });
                        Ok(())
                    }
                    other => unsupported(format!("movss destination {other}")),
                }
            }
            Addss | Subss | Mulss | Divss => {
                let Operand::Xmm(x) = ops[0] else {
                    unreachable!("validated")
                };
                let a = st.xmm[x.index()].clone();
                let b = match &ops[1] {
                    Operand::Xmm(y) => st.xmm[y.index()].clone(),
                    Operand::Mem(m) => {
                        Rc::new(Term::Read(st.mem.clone(), mem_addr(st, *m), Width::B32))
                    }
                    other => return unsupported(format!("sse source {other}")),
                };
                let op = match inst.op {
                    Addss => BinOp::FAdd,
                    Subss => BinOp::FSub,
                    Mulss => BinOp::FMul,
                    _ => BinOp::FDiv,
                };
                st.xmm[x.index()] = Term::bin(op, a, b);
                Ok(())
            }
            Ucomiss => {
                let Operand::Xmm(x) = ops[0] else {
                    unreachable!("validated")
                };
                let a = st.xmm[x.index()].clone();
                let b = match &ops[1] {
                    Operand::Xmm(y) => st.xmm[y.index()].clone(),
                    Operand::Mem(m) => {
                        Rc::new(Term::Read(st.mem.clone(), mem_addr(st, *m), Width::B32))
                    }
                    other => return unsupported(format!("ucomiss source {other}")),
                };
                // ZF = (a == b), CF = (a < b), SF = OF = 0.
                st.set_flag(Flag::Z, Term::pred(PredOp::FEq, a.clone(), b.clone()));
                st.set_flag(Flag::C, Term::pred(PredOp::FLt, a, b));
                st.set_flag(Flag::N, Term::c(0));
                st.set_flag(Flag::V, Term::c(0));
                Ok(())
            }
        }
    }

    /// Symbolically executes a straight-line sequence.
    ///
    /// # Errors
    ///
    /// See [`step`].
    pub fn run(st: &mut State, insts: &[Inst]) -> Result<(), SymExecError> {
        for i in insts {
            step(st, i)?;
        }
        Ok(())
    }

    #[allow(unused)]
    fn _xmm_witness(_x: Xmm) {}
}
