//! The semantic-equivalence checker for rule candidates and derived
//! (parameterized) rules.
//!
//! Fast path: both sequences are evaluated symbolically and normalized;
//! structural equality of every mapped output decides equivalence.
//! Backstop: randomized differential evaluation refutes non-equivalent
//! pairs and classifies flag relationships. Structurally different but
//! differentially indistinguishable *data* results are rejected
//! (`Unproven`), keeping the checker sound for the runtime — the same
//! strictness the paper reports losing candidates to (§II-B).

use crate::eval::{eval, eval_mem_writes, Assignment};
use crate::machine::{guest, host, SymExecError};
use crate::simplify::{simplify, simplify_mem};
use crate::term::{BinOp, Sym, Term, TermRef};
use pdbt_isa::Flag;
use pdbt_isa_arm::{Inst as GInst, Reg as GReg};
use pdbt_isa_x86::{Inst as HInst, Reg as HReg};

/// How a guest flag relates to its host counterpart after the sequences
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagEquiv {
    /// Host flag equals the guest flag — delegation can use it directly.
    Exact,
    /// Host flag is the inverse (the carry-polarity case after
    /// subtraction) — delegation uses the inverted host condition.
    Inverted,
    /// No usable relationship — the translator must materialize the flag.
    Mismatch,
}

/// The verdict of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// All mapped registers, memory effects and outputs are equal; the
    /// per-flag report describes how guest flags map onto host flags.
    Equivalent {
        /// Relationship for each flag the guest sequence defines.
        flags: Vec<(Flag, FlagEquiv)>,
    },
    /// A differential witness distinguishes the sequences.
    NotEquivalent {
        /// Human-readable reason.
        reason: String,
    },
    /// Data results agree on every random trial but could not be proven
    /// structurally equal — rejected for soundness.
    Unproven {
        /// What failed to normalize equal.
        reason: String,
    },
    /// One side contains constructs outside the symbolic subset.
    Unsupported {
        /// What was unsupported.
        reason: String,
    },
}

impl Verdict {
    /// Whether the verdict accepts the rule.
    #[must_use]
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Verdict::Equivalent { .. })
    }
}

/// A guest-register ↔ host-register correspondence; pair `i` becomes
/// rule parameter `i`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Mapping {
    /// The ordered register pairs.
    pub pairs: Vec<(GReg, HReg)>,
}

impl Mapping {
    /// Creates a mapping from pairs.
    #[must_use]
    pub fn new(pairs: Vec<(GReg, HReg)>) -> Mapping {
        Mapping { pairs }
    }

    /// The parameter index of a guest register.
    #[must_use]
    pub fn param_of_guest(&self, g: GReg) -> Option<u8> {
        self.pairs
            .iter()
            .position(|(gg, _)| *gg == g)
            .map(|i| i as u8)
    }

    /// The parameter index of a host register.
    #[must_use]
    pub fn param_of_host(&self, h: HReg) -> Option<u8> {
        self.pairs
            .iter()
            .position(|(_, hh)| *hh == h)
            .map(|i| i as u8)
    }
}

/// Options for the checker.
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// Differential trials.
    pub trials: u32,
    /// RNG seed for the trials.
    pub seed: u64,
    /// Work budget for one `check` call, in abstract steps (symbolic
    /// instructions, term nodes visited by normalization, differential
    /// trials). On exhaustion the checker stops and returns
    /// [`Verdict::Unproven`] with a reason starting with
    /// [`FUEL_EXHAUSTED`] — a conservative *rejection*, never a wrong
    /// acceptance, so a starved checker costs coverage but not
    /// soundness. The default is far above what any in-tree rule
    /// needs; it exists so pathological candidates (or fault-injection
    /// harnesses) bound the checker instead of hanging derivation.
    pub fuel: u64,
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions {
            trials: 48,
            seed: 0x5eed_cafe,
            fuel: 1_000_000,
        }
    }
}

/// Prefix of the [`Verdict::Unproven`] reason produced when a check
/// runs out of fuel; callers (derivation statistics) match on it to
/// count fuel exhaustions separately from ordinary rejections.
pub const FUEL_EXHAUSTED: &str = "fuel exhausted";

/// The checker's work meter. Every unit of work is charged before it
/// happens, so a `false` return means "stop now" with the expensive
/// step not yet taken.
struct Fuel {
    left: u64,
}

impl Fuel {
    fn charge(&mut self, n: u64) -> bool {
        if n > self.left {
            self.left = 0;
            return false;
        }
        self.left -= n;
        true
    }
}

/// Term size with a cap: counts nodes but stops descending once `cap`
/// is reached. The cap matters beyond saving time — terms are
/// `Rc`-shared DAGs, so an uncapped tree walk could be exponential in
/// the DAG depth.
fn term_size(t: &Term, cap: u64) -> u64 {
    if cap == 0 {
        return 0;
    }
    let mut n = 1;
    let kids: &[&TermRef] = match t {
        Term::Const(_) | Term::Sym(_) => &[],
        Term::Un(_, a) | Term::Read(_, a, _) => &[a],
        Term::Bin(_, a, b) | Term::Pred(_, a, b) => &[a, b],
        Term::CarryAdd(a, b, c)
        | Term::BorrowSub(a, b, c)
        | Term::OverflowAdd(a, b, c)
        | Term::OverflowSub(a, b, c)
        | Term::Ite(a, b, c) => &[a, b, c],
    };
    for k in kids {
        if n >= cap {
            break;
        }
        n += term_size(k, cap - n);
    }
    n
}

fn sym_env(mapping: &Mapping) -> (guest::State, host::State) {
    let g = guest::State::init(|r| match mapping.param_of_guest(r) {
        Some(i) => Term::sym(Sym::Param(i)),
        None => Term::sym(Sym::GuestReg(r.index() as u8)),
    });
    let h = host::State::init(|r| match mapping.param_of_host(r) {
        Some(i) => Term::sym(Sym::Param(i)),
        None => Term::sym(Sym::HostReg(r.index() as u8)),
    });
    (g, h)
}

/// Differentially compares two terms; returns `(always_equal,
/// always_inverted)` over the trials.
fn diff_classify(a: &TermRef, b: &TermRef, opts: CheckOptions) -> (bool, bool) {
    let mut equal = true;
    let mut inverted = true;
    for trial in 0..opts.trials {
        let asg = Assignment::new(opts.seed.wrapping_add(u64::from(trial) * 0x9e37));
        let va = eval(a, &asg);
        let vb = eval(b, &asg);
        if va != vb {
            equal = false;
        }
        if va != (vb ^ 1) || va > 1 || vb > 1 {
            inverted = false;
        }
        if !equal && !inverted {
            break;
        }
    }
    (equal, inverted)
}

/// Checks semantic equivalence of a guest sequence and a host sequence
/// under a register mapping.
///
/// Work is bounded by [`CheckOptions::fuel`]; exhaustion degrades to a
/// conservative [`Verdict::Unproven`] whose reason starts with
/// [`FUEL_EXHAUSTED`]. Under an active fault plan (see `pdbt-faults`),
/// the `symexec` site may deterministically degrade a check to
/// `Unproven` the same way; the decision is keyed on the sequences and
/// mapping, not call order, so injection is schedule-independent.
#[must_use]
pub fn check(
    guest_seq: &[GInst],
    host_seq: &[HInst],
    mapping: &Mapping,
    opts: CheckOptions,
) -> Verdict {
    if pdbt_faults::hit_with(pdbt_faults::Site::Symexec, || {
        pdbt_faults::key_of(format!("{guest_seq:?}|{host_seq:?}|{mapping:?}").as_bytes())
    }) {
        return Verdict::Unproven {
            reason: "injected fault: symexec checker degraded".into(),
        };
    }
    let mut fuel = Fuel { left: opts.fuel };
    let fuel_out = |stage: &str| Verdict::Unproven {
        reason: format!("{FUEL_EXHAUSTED} during {stage}"),
    };
    /// Charges for normalizing a term (by its capped node count), then
    /// simplifies it; bails out of `check` with an `Unproven` fuel
    /// verdict if the budget is spent.
    macro_rules! simp {
        ($stage:expr, $t:expr) => {{
            let t = $t;
            if !fuel.charge(term_size(t, fuel.left.saturating_add(1))) {
                return fuel_out($stage);
            }
            simplify(t)
        }};
    }
    if !fuel.charge((guest_seq.len() + host_seq.len()) as u64) {
        return fuel_out("symbolic execution");
    }
    let (mut gst, mut hst) = sym_env(mapping);
    if let Err(SymExecError { detail }) = guest::run(&mut gst, guest_seq) {
        return Verdict::Unsupported {
            reason: format!("guest: {detail}"),
        };
    }
    if let Err(SymExecError { detail }) = host::run(&mut hst, host_seq) {
        return Verdict::Unsupported {
            reason: format!("host: {detail}"),
        };
    }

    // 1. Mapped registers must be structurally equal after normalization;
    //    a differential mismatch is a definite rejection, a differential
    //    match without structural equality is rejected as unproven.
    for (i, (g, h)) in mapping.pairs.iter().enumerate() {
        let ng = simp!("mapped-register normalization", &gst.regs[g.index()]);
        let nh = simp!("mapped-register normalization", &hst.regs[h.index()]);
        if ng != nh {
            if !fuel.charge(u64::from(opts.trials)) {
                return fuel_out("differential trials");
            }
            let (equal, _) = diff_classify(&ng, &nh, opts);
            if !equal {
                return Verdict::NotEquivalent {
                    reason: format!("parameter {i} ({g}↔{h}) differs: {ng} vs {nh}"),
                };
            }
            return Verdict::Unproven {
                reason: format!("parameter {i} ({g}↔{h}): {ng} vs {nh}"),
            };
        }
    }

    // 2. Guest registers outside the mapping must be untouched.
    for r in GReg::ALL {
        if r == GReg::Pc || mapping.param_of_guest(r).is_some() {
            continue;
        }
        let ng = simp!("unmapped-register normalization", &gst.regs[r.index()]);
        if *ng != Term::Sym(Sym::GuestReg(r.index() as u8)) {
            return Verdict::NotEquivalent {
                reason: format!("guest register {r} modified but not mapped"),
            };
        }
    }

    // 3. Outputs must match exactly.
    if gst.output.len() != hst.output.len() {
        return Verdict::NotEquivalent {
            reason: "output count differs".into(),
        };
    }
    for (a, b) in gst.output.iter().zip(&hst.output) {
        let na = simp!("output normalization", a);
        let nb = simp!("output normalization", b);
        if na != nb {
            return Verdict::NotEquivalent {
                reason: "output value differs".into(),
            };
        }
    }

    // 4. Memory effects: structural store-chain equality, with a
    //    differential fallback over evaluated byte maps.
    let gmem = simplify_mem(&gst.mem);
    let hmem = simplify_mem(&hst.mem);
    if gmem != hmem {
        if !fuel.charge(u64::from(opts.trials)) {
            return fuel_out("memory differential trials");
        }
        for trial in 0..opts.trials {
            let asg = Assignment::new(opts.seed.wrapping_add(u64::from(trial) * 0x51d7));
            if eval_mem_writes(&gmem, &asg) != eval_mem_writes(&hmem, &asg) {
                return Verdict::NotEquivalent {
                    reason: "memory effects differ".into(),
                };
            }
        }
        return Verdict::Unproven {
            reason: "memory effects not structurally equal".into(),
        };
    }

    // 5. Classify flags the guest sequence defines.
    let mut flag_defs = pdbt_isa::FlagSet::EMPTY;
    for inst in guest_seq {
        flag_defs |= inst.flag_defs();
    }
    let mut flags = Vec::new();
    for f in flag_defs.iter() {
        let ng = simp!("flag normalization", &gst.flag(f));
        let nh = simp!("flag normalization", &hst.flag(f));
        let verdict = if ng == nh {
            FlagEquiv::Exact
        } else if ng
            == simp!(
                "flag normalization",
                &Term::bin(BinOp::Xor, nh.clone(), Term::c(1))
            )
        {
            FlagEquiv::Inverted
        } else {
            if !fuel.charge(u64::from(opts.trials)) {
                return fuel_out("flag differential trials");
            }
            match diff_classify(&ng, &nh, opts) {
                (true, _) => FlagEquiv::Exact,
                (_, true) => FlagEquiv::Inverted,
                _ => FlagEquiv::Mismatch,
            }
        };
        flags.push((f, verdict));
    }

    Verdict::Equivalent { flags }
}

/// Proposes candidate register mappings between a guest and a host
/// sequence.
///
/// Registers are classified into *live-ins* (read before written) and
/// *pure outputs* (written but never live-in). Guest live-ins pair with
/// host live-ins (all permutations, positional order first), and guest
/// pure outputs pair with host written registers — which leaves host
/// scratch registers (written first, like the aux `movl` temporaries of
/// the paper's Fig 6) free to stay unmapped. The learning pipeline tries
/// the proposals in order until one verifies, standing in for the
/// original system's mapping inference during symbolic matching.
#[must_use]
pub fn propose_mappings(guest_seq: &[GInst], host_seq: &[HInst], max: usize) -> Vec<Mapping> {
    // Guest live-ins and defs.
    let mut g_livein: Vec<GReg> = Vec::new();
    let mut g_written: Vec<GReg> = Vec::new();
    for inst in guest_seq {
        for r in inst.uses() {
            if r != GReg::Pc && !g_written.contains(&r) && !g_livein.contains(&r) {
                g_livein.push(r);
            }
        }
        for r in inst.defs() {
            if r != GReg::Pc && !g_written.contains(&r) {
                g_written.push(r);
            }
        }
    }
    let g_outs: Vec<GReg> = g_written
        .iter()
        .copied()
        .filter(|r| !g_livein.contains(r))
        .collect();
    // Host live-ins and writes (ebp = environment/frame, esp = stack are
    // never rule parameters).
    let excluded = |r: HReg| matches!(r, HReg::Ebp | HReg::Esp);
    let mut h_livein: Vec<HReg> = Vec::new();
    let mut h_written: Vec<HReg> = Vec::new();
    for inst in host_seq {
        for r in inst.uses() {
            if !excluded(r) && !h_written.contains(&r) && !h_livein.contains(&r) {
                h_livein.push(r);
            }
        }
        for r in inst.defs() {
            if !excluded(r) && !h_written.contains(&r) {
                h_written.push(r);
            }
        }
    }
    let h_outs: Vec<HReg> = h_written
        .iter()
        .copied()
        .filter(|r| !h_livein.contains(r))
        .collect();
    if g_livein.len() != h_livein.len() || g_outs.len() > h_outs.len() {
        return Vec::new();
    }
    if g_livein.is_empty() && g_outs.is_empty() {
        return Vec::new();
    }
    let mut out: Vec<Mapping> = Vec::new();
    let mut livein_perms: Vec<Vec<HReg>> = Vec::new();
    permute(&mut h_livein.clone(), 0, &mut |p| {
        if livein_perms.len() < 24 {
            livein_perms.push(p.to_vec());
        }
    });
    if livein_perms.is_empty() {
        livein_perms.push(Vec::new());
    }
    let mut out_perms: Vec<Vec<HReg>> = Vec::new();
    permute(&mut h_outs.clone(), 0, &mut |p| {
        if out_perms.len() < 24 {
            out_perms.push(p[..g_outs.len().min(p.len())].to_vec());
        }
    });
    if out_perms.is_empty() {
        out_perms.push(Vec::new());
    }
    out_perms.dedup();
    for lp in &livein_perms {
        for op in &out_perms {
            if op.len() < g_outs.len() {
                continue;
            }
            let mut pairs: Vec<(GReg, HReg)> = Vec::new();
            // Preserve guest scan order: interleave live-ins and outs in
            // the order guest registers first appear overall.
            let mut li = 0;
            let mut oi = 0;
            let mut ordered: Vec<GReg> = Vec::new();
            for inst in guest_seq {
                for r in inst.uses().into_iter().chain(inst.defs()) {
                    if r != GReg::Pc && !ordered.contains(&r) {
                        ordered.push(r);
                    }
                }
            }
            let mut ok = true;
            for g in ordered {
                if g_livein.contains(&g) {
                    let idx = g_livein.iter().position(|x| *x == g).unwrap();
                    let _ = li;
                    li += 1;
                    pairs.push((g, lp[idx]));
                } else if g_outs.contains(&g) {
                    let idx = g_outs.iter().position(|x| *x == g).unwrap();
                    let _ = oi;
                    oi += 1;
                    match op.get(idx) {
                        Some(h) => pairs.push((g, *h)),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            // A host register may serve only one parameter.
            let mut seen: Vec<HReg> = Vec::new();
            for (_, h) in &pairs {
                if seen.contains(h) {
                    ok = false;
                    break;
                }
                seen.push(*h);
            }
            if ok
                && !pairs.is_empty()
                && !out.contains(&Mapping {
                    pairs: pairs.clone(),
                })
            {
                out.push(Mapping { pairs });
                if out.len() >= max {
                    return out;
                }
            }
        }
    }
    out
}

fn permute<T: Copy>(items: &mut [T], k: usize, f: &mut impl FnMut(&[T])) {
    if k == items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, f);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdbt_isa_arm::builders as g;
    use pdbt_isa_arm::{MemAddr, Operand as GOp};
    use pdbt_isa_x86::builders as h;
    use pdbt_isa_x86::{Mem, Operand as HOp};

    fn m(pairs: &[(GReg, HReg)]) -> Mapping {
        Mapping::new(pairs.to_vec())
    }

    fn opts() -> CheckOptions {
        CheckOptions::default()
    }

    #[test]
    fn add_reg_reg_equivalent() {
        // guest: add r0, r0, r1  /  host: addl ecx, ebx
        let verdict = check(
            &[g::add(GReg::R0, GReg::R0, GOp::Reg(GReg::R1))],
            &[h::add(HReg::Ecx.into(), HReg::Ebx.into())],
            &m(&[(GReg::R0, HReg::Ecx), (GReg::R1, HReg::Ebx)]),
            opts(),
        );
        assert!(verdict.is_equivalent(), "{verdict:?}");
    }

    #[test]
    fn three_address_needs_aux_move() {
        // guest: add r0, r1, r2 (r0 ≠ r1) / host two-address form needs the
        // aux move the paper's Fig 6 shows.
        let mapping = m(&[
            (GReg::R0, HReg::Ecx),
            (GReg::R1, HReg::Ebx),
            (GReg::R2, HReg::Esi),
        ]);
        let bad = check(
            &[g::add(GReg::R0, GReg::R1, GOp::Reg(GReg::R2))],
            &[h::add(HReg::Ecx.into(), HReg::Esi.into())],
            &mapping,
            opts(),
        );
        assert!(!bad.is_equivalent());
        let good = check(
            &[g::add(GReg::R0, GReg::R1, GOp::Reg(GReg::R2))],
            &[
                h::mov(HReg::Ecx.into(), HReg::Ebx.into()),
                h::add(HReg::Ecx.into(), HReg::Esi.into()),
            ],
            &mapping,
            opts(),
        );
        assert!(good.is_equivalent(), "{good:?}");
    }

    #[test]
    fn swapped_subtraction_rejected() {
        // sub is non-commutative: a host that computes b - a must be
        // refuted (paper §IV-C1).
        let mapping = m(&[(GReg::R0, HReg::Ecx), (GReg::R1, HReg::Ebx)]);
        let verdict = check(
            &[g::sub(GReg::R0, GReg::R0, GOp::Reg(GReg::R1))],
            &[
                // ecx = ebx - ecx (wrong order)
                h::mov(HReg::Esi.into(), HReg::Ebx.into()),
                h::sub(HReg::Esi.into(), HReg::Ecx.into()),
                h::mov(HReg::Ecx.into(), HReg::Esi.into()),
            ],
            &mapping,
            opts(),
        );
        assert!(
            matches!(verdict, Verdict::NotEquivalent { .. }),
            "{verdict:?}"
        );
    }

    #[test]
    fn flags_exact_after_add_inverted_after_cmp() {
        // adds ↔ addl: carries agree → C Exact.
        let verdict = check(
            &[g::add(GReg::R0, GReg::R0, GOp::Reg(GReg::R1)).with_s()],
            &[h::add(HReg::Ecx.into(), HReg::Ebx.into())],
            &m(&[(GReg::R0, HReg::Ecx), (GReg::R1, HReg::Ebx)]),
            opts(),
        );
        let Verdict::Equivalent { flags } = &verdict else {
            panic!("{verdict:?}");
        };
        assert!(flags.contains(&(Flag::C, FlagEquiv::Exact)), "{flags:?}");
        assert!(flags.contains(&(Flag::Z, FlagEquiv::Exact)));
        // cmp ↔ cmpl: guest C = !borrow, host CF = borrow → Inverted.
        let verdict = check(
            &[g::cmp(GReg::R0, GOp::Reg(GReg::R1))],
            &[h::cmp(HReg::Ecx.into(), HReg::Ebx.into())],
            &m(&[(GReg::R0, HReg::Ecx), (GReg::R1, HReg::Ebx)]),
            opts(),
        );
        let Verdict::Equivalent { flags } = &verdict else {
            panic!("{verdict:?}");
        };
        assert!(flags.contains(&(Flag::C, FlagEquiv::Inverted)), "{flags:?}");
        assert!(flags.contains(&(Flag::N, FlagEquiv::Exact)));
        assert!(flags.contains(&(Flag::V, FlagEquiv::Exact)));
    }

    #[test]
    fn load_store_equivalent() {
        // guest: ldr r0, [r1, #8] / host: movl ecx, [ebx+8]
        let verdict = check(
            &[g::ldr(
                GReg::R0,
                MemAddr::BaseImm {
                    base: GReg::R1,
                    offset: 8,
                },
            )],
            &[h::mov(
                HReg::Ecx.into(),
                Mem::base_disp(HReg::Ebx, 8).into(),
            )],
            &m(&[(GReg::R0, HReg::Ecx), (GReg::R1, HReg::Ebx)]),
            opts(),
        );
        assert!(verdict.is_equivalent(), "{verdict:?}");
        // guest: str r0, [r1] / host: movl [ebx], ecx
        let verdict = check(
            &[g::str_(
                GReg::R0,
                MemAddr::BaseImm {
                    base: GReg::R1,
                    offset: 0,
                },
            )],
            &[h::mov(Mem::base(HReg::Ebx).into(), HReg::Ecx.into())],
            &m(&[(GReg::R0, HReg::Ecx), (GReg::R1, HReg::Ebx)]),
            opts(),
        );
        assert!(verdict.is_equivalent(), "{verdict:?}");
    }

    #[test]
    fn wrong_store_value_rejected() {
        let verdict = check(
            &[g::str_(
                GReg::R0,
                MemAddr::BaseImm {
                    base: GReg::R1,
                    offset: 0,
                },
            )],
            &[h::mov(Mem::base(HReg::Ebx).into(), HOp::Imm(0))],
            &m(&[(GReg::R0, HReg::Ecx), (GReg::R1, HReg::Ebx)]),
            opts(),
        );
        assert!(
            matches!(verdict, Verdict::NotEquivalent { .. }),
            "{verdict:?}"
        );
    }

    #[test]
    fn bic_needs_inversion_aux() {
        // guest: bic r0, r0, r1 / host andl with explicit not (Fig 7).
        let mapping = m(&[(GReg::R0, HReg::Ecx), (GReg::R1, HReg::Ebx)]);
        let plain_and = check(
            &[g::bic(GReg::R0, GReg::R0, GOp::Reg(GReg::R1))],
            &[h::and(HReg::Ecx.into(), HReg::Ebx.into())],
            &mapping,
            opts(),
        );
        assert!(!plain_and.is_equivalent());
        let with_aux = check(
            &[g::bic(GReg::R0, GReg::R0, GOp::Reg(GReg::R1))],
            &[
                h::mov(HReg::Eax.into(), HReg::Ebx.into()),
                h::not(HReg::Eax.into()),
                h::and(HReg::Ecx.into(), HReg::Eax.into()),
            ],
            &mapping,
            opts(),
        );
        assert!(with_aux.is_equivalent(), "{with_aux:?}");
    }

    #[test]
    fn scratch_clobber_is_allowed() {
        // The host may freely clobber eax/edx (dead between guest
        // instructions).
        let verdict = check(
            &[g::mov(GReg::R0, GOp::Imm(5))],
            &[
                h::mov(HReg::Eax.into(), HOp::Imm(99)),
                h::mov(HReg::Ecx.into(), HOp::Imm(5)),
            ],
            &m(&[(GReg::R0, HReg::Ecx)]),
            opts(),
        );
        assert!(verdict.is_equivalent(), "{verdict:?}");
    }

    #[test]
    fn unmapped_guest_write_rejected() {
        let verdict = check(
            &[g::mov(GReg::R5, GOp::Imm(1)), g::mov(GReg::R0, GOp::Imm(5))],
            &[h::mov(HReg::Ecx.into(), HOp::Imm(5))],
            &m(&[(GReg::R0, HReg::Ecx)]),
            opts(),
        );
        assert!(matches!(verdict, Verdict::NotEquivalent { .. }));
    }

    #[test]
    fn control_flow_unsupported() {
        let verdict = check(
            &[g::b(pdbt_isa::Cond::Al, 8)],
            &[h::mov(HReg::Ecx.into(), HOp::Imm(0))],
            &Mapping::default(),
            opts(),
        );
        assert!(matches!(verdict, Verdict::Unsupported { .. }));
        let verdict = check(
            &[g::push([GReg::R4])],
            &[h::push(HReg::Ecx.into())],
            &Mapping::default(),
            opts(),
        );
        assert!(matches!(verdict, Verdict::Unsupported { .. }));
    }

    #[test]
    fn multi_instruction_sequences() {
        // guest: add r0, r0, r1; lsl r0, r0, #2
        // host:  addl ecx, ebx; shll ecx, $2
        let verdict = check(
            &[
                g::add(GReg::R0, GReg::R0, GOp::Reg(GReg::R1)),
                g::lsl(GReg::R0, GReg::R0, GOp::Imm(2)),
            ],
            &[
                h::add(HReg::Ecx.into(), HReg::Ebx.into()),
                h::shl(HReg::Ecx.into(), HOp::Imm(2)),
            ],
            &m(&[(GReg::R0, HReg::Ecx), (GReg::R1, HReg::Ebx)]),
            opts(),
        );
        assert!(verdict.is_equivalent(), "{verdict:?}");
    }

    #[test]
    fn shifted_operand_equivalence() {
        // guest: add r0, r1, r2 lsl #2 / host: mov eax, esi; shl eax, 2;
        // mov ecx, ebx; add ecx, eax.
        let verdict = check(
            &[g::add(
                GReg::R0,
                GReg::R1,
                GOp::Shifted {
                    rm: GReg::R2,
                    kind: pdbt_isa_arm::ShiftKind::Lsl,
                    amount: 2,
                },
            )],
            &[
                h::mov(HReg::Eax.into(), HReg::Esi.into()),
                h::shl(HReg::Eax.into(), HOp::Imm(2)),
                h::mov(HReg::Ecx.into(), HReg::Ebx.into()),
                h::add(HReg::Ecx.into(), HReg::Eax.into()),
            ],
            &m(&[
                (GReg::R0, HReg::Ecx),
                (GReg::R1, HReg::Ebx),
                (GReg::R2, HReg::Esi),
            ]),
            opts(),
        );
        assert!(verdict.is_equivalent(), "{verdict:?}");
    }

    #[test]
    fn fuel_exhaustion_degrades_to_unproven() {
        let guest_seq = [g::add(GReg::R0, GReg::R0, GOp::Reg(GReg::R1))];
        let host_seq = [h::add(HReg::Ecx.into(), HReg::Ebx.into())];
        let mapping = m(&[(GReg::R0, HReg::Ecx), (GReg::R1, HReg::Ebx)]);
        // Zero fuel exhausts before symbolic execution even starts.
        let verdict = check(
            &guest_seq,
            &host_seq,
            &mapping,
            CheckOptions {
                fuel: 0,
                ..CheckOptions::default()
            },
        );
        let Verdict::Unproven { reason } = &verdict else {
            panic!("{verdict:?}");
        };
        assert!(reason.starts_with(FUEL_EXHAUSTED), "{reason}");
        // A budget that survives execution but not normalization still
        // degrades conservatively rather than mis-verdicting.
        let verdict = check(
            &guest_seq,
            &host_seq,
            &mapping,
            CheckOptions {
                fuel: 3,
                ..CheckOptions::default()
            },
        );
        assert!(
            matches!(&verdict, Verdict::Unproven { reason } if reason.starts_with(FUEL_EXHAUSTED)),
            "{verdict:?}"
        );
        // Default fuel is ample: the same inputs verify.
        assert!(check(&guest_seq, &host_seq, &mapping, opts()).is_equivalent());
    }

    #[test]
    fn propose_mappings_positional_first() {
        let guest_seq = [g::add(GReg::R0, GReg::R0, GOp::Reg(GReg::R1))];
        let host_seq = [h::add(HReg::Ecx.into(), HReg::Ebx.into())];
        let mappings = propose_mappings(&guest_seq, &host_seq, 24);
        assert!(!mappings.is_empty());
        assert_eq!(
            mappings[0].pairs,
            vec![(GReg::R0, HReg::Ecx), (GReg::R1, HReg::Ebx)]
        );
        // The first proposal verifies.
        assert!(check(&guest_seq, &host_seq, &mappings[0], opts()).is_equivalent());
    }

    #[test]
    fn mismatched_register_counts_propose_nothing() {
        let guest_seq = [g::add(GReg::R0, GReg::R1, GOp::Reg(GReg::R2))];
        let host_seq = [h::add(HReg::Ecx.into(), HReg::Ebx.into())];
        assert!(propose_mappings(&guest_seq, &host_seq, 24).is_empty());
    }
}
