//! Symbolic-execution-based verification for translation rules.
//!
//! The paper verifies rule candidates (and parameterized derivations) by
//! symbolic execution (§II-A, §IV-C). This crate is that verifier: a
//! 32-bit term algebra with carry/borrow/overflow primitives
//! ([`term`]), a normalizing rewriter ([`simplify`]), symbolic
//! evaluators for both machine models ([`machine`]), and the equivalence
//! checker ([`check`]) with a randomized differential backstop.
//!
//! The checker is a *semi-decision procedure* (see DESIGN.md §2): it
//! proves equivalence by normalization, refutes it by differential
//! witness, and rejects anything it cannot prove — strictly sound for
//! the DBT runtime, at the cost of losing some true rules, exactly the
//! trade-off the paper reports for its strict verifier (§II-B).
//!
//! # Example
//!
//! ```
//! use pdbt_symexec::{check, CheckOptions, Mapping};
//! use pdbt_isa_arm::{builders as g, Reg as GReg, Operand as GOp};
//! use pdbt_isa_x86::{builders as h, Reg as HReg};
//!
//! // `add r0, r0, r1` is equivalent to `addl ecx, ebx` under the
//! // mapping r0↔ecx, r1↔ebx.
//! let verdict = check(
//!     &[g::add(GReg::R0, GReg::R0, GOp::Reg(GReg::R1))],
//!     &[h::add(HReg::Ecx.into(), HReg::Ebx.into())],
//!     &Mapping::new(vec![(GReg::R0, HReg::Ecx), (GReg::R1, HReg::Ebx)]),
//!     CheckOptions::default(),
//! );
//! assert!(verdict.is_equivalent());
//! ```

pub mod batch;
mod equiv;
mod eval;
pub mod machine;
mod simplify;
pub mod term;

pub use batch::{check_batch, CheckCase};
pub use equiv::{
    check, propose_mappings, CheckOptions, FlagEquiv, Mapping, Verdict, FUEL_EXHAUSTED,
};
pub use eval::{eval, eval_mem_writes, Assignment};
pub use machine::SymExecError;
pub use simplify::{simplify, simplify_mem};
pub use term::{Sym, SymMem, Term, TermRef};
