//! Concrete evaluation of symbolic terms — the randomized differential
//! backstop of the equivalence checker.
//!
//! Initial memory is a deterministic pseudo-random function of the byte
//! address, so guest and host evaluations of the shared initial memory
//! agree without materializing it.

use crate::term::{Sym, SymMem, Term};
use std::collections::HashMap;

/// A concrete assignment of symbols (plus the initial-memory seed).
#[derive(Debug, Clone, Default)]
pub struct Assignment {
    map: HashMap<Sym, u32>,
    /// Seed mixed into the initial-memory byte function.
    pub mem_seed: u64,
}

impl Assignment {
    /// Creates an empty assignment.
    #[must_use]
    pub fn new(mem_seed: u64) -> Assignment {
        Assignment {
            map: HashMap::new(),
            mem_seed,
        }
    }

    /// Binds a symbol.
    pub fn set(&mut self, s: Sym, v: u32) {
        self.map.insert(s, v);
    }

    /// The value of a symbol (unbound symbols read as a hash of their
    /// identity and the seed, so evaluation is total and deterministic).
    #[must_use]
    pub fn get(&self, s: Sym) -> u32 {
        if let Some(v) = self.map.get(&s) {
            return *v;
        }
        // splitmix-style hash of (sym, seed).
        let tag = match s {
            Sym::Param(i) => 0x100 + u64::from(i),
            Sym::GuestReg(i) => 0x200 + u64::from(i),
            Sym::HostReg(i) => 0x300 + u64::from(i),
            Sym::Flag(i) => 0x400 + u64::from(i),
            Sym::HostFlag(i) => 0x500 + u64::from(i),
            Sym::Pc => 0x600,
            Sym::Free(i) => 0x700 + u64::from(i),
        };
        let mut x = tag ^ self.mem_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let v = (x ^ (x >> 31)) as u32;
        if matches!(s, Sym::Flag(_) | Sym::HostFlag(_)) {
            v & 1
        } else {
            v
        }
    }

    /// The initial value of the memory byte at `addr`.
    #[must_use]
    pub fn init_byte(&self, addr: u32) -> u8 {
        let mut x = u64::from(addr) ^ self.mem_seed.wrapping_mul(0xd1b5_4a32_d192_ed03);
        x = (x ^ (x >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
        (x ^ (x >> 33)) as u8
    }
}

/// Evaluates one byte of a symbolic memory.
fn eval_mem_byte(mem: &SymMem, addr: u32, asg: &Assignment) -> u8 {
    match mem {
        SymMem::Init => asg.init_byte(addr),
        SymMem::Store {
            prev,
            addr: saddr,
            val,
            width,
        } => {
            let sa = eval(saddr, asg);
            if addr.wrapping_sub(sa) < width.bytes() {
                let byte = addr.wrapping_sub(sa);
                (eval(val, asg) >> (8 * byte)) as u8
            } else {
                eval_mem_byte(prev, addr, asg)
            }
        }
    }
}

/// Evaluates all bytes a store chain touches, newest-store-wins, into an
/// address → byte map (used to compare memory effects differentially).
#[must_use]
pub fn eval_mem_writes(mem: &SymMem, asg: &Assignment) -> HashMap<u32, u8> {
    let mut touched = Vec::new();
    let mut cur = mem;
    while let SymMem::Store {
        prev, addr, width, ..
    } = cur
    {
        let a = eval(addr, asg);
        for i in 0..width.bytes() {
            touched.push(a.wrapping_add(i));
        }
        cur = prev;
    }
    touched
        .into_iter()
        .map(|a| (a, eval_mem_byte(mem, a, asg)))
        .collect()
}

/// Evaluates a term under an assignment.
#[must_use]
pub fn eval(t: &Term, asg: &Assignment) -> u32 {
    match t {
        Term::Const(v) => *v,
        Term::Sym(s) => asg.get(*s),
        Term::Bin(op, a, b) => op.eval(eval(a, asg), eval(b, asg)),
        Term::Un(op, a) => op.eval(eval(a, asg)),
        Term::Pred(op, a, b) => u32::from(op.eval(eval(a, asg), eval(b, asg))),
        Term::CarryAdd(a, b, c) => {
            let wide =
                u64::from(eval(a, asg)) + u64::from(eval(b, asg)) + u64::from(eval(c, asg) & 1);
            u32::from(wide > u64::from(u32::MAX))
        }
        Term::BorrowSub(a, b, c) => {
            let borrow =
                u64::from(eval(a, asg)) < u64::from(eval(b, asg)) + u64::from(eval(c, asg) & 1);
            u32::from(borrow)
        }
        Term::OverflowAdd(a, b, c) => {
            let (x, y, z) = (eval(a, asg), eval(b, asg), eval(c, asg) & 1);
            let r = x.wrapping_add(y).wrapping_add(z);
            u32::from((!(x ^ y) & (x ^ r)) & 0x8000_0000 != 0)
        }
        Term::OverflowSub(a, b, c) => {
            let (x, y, z) = (eval(a, asg), eval(b, asg), eval(c, asg) & 1);
            let r = x.wrapping_sub(y).wrapping_sub(z);
            u32::from(((x ^ y) & (x ^ r)) & 0x8000_0000 != 0)
        }
        Term::Ite(c, th, el) => {
            if eval(c, asg) != 0 {
                eval(th, asg)
            } else {
                eval(el, asg)
            }
        }
        Term::Read(mem, addr, width) => {
            let a = eval(addr, asg);
            let mut v = 0u32;
            for i in 0..width.bytes() {
                v |= u32::from(eval_mem_byte(mem, a.wrapping_add(i), asg)) << (8 * i);
            }
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{BinOp, PredOp};
    use pdbt_isa::Width;
    use std::rc::Rc;

    #[test]
    fn eval_is_deterministic() {
        let asg = Assignment::new(42);
        let t = Term::bin(
            BinOp::Add,
            Term::sym(Sym::Param(0)),
            Term::sym(Sym::Param(1)),
        );
        assert_eq!(eval(&t, &asg), eval(&t, &asg));
    }

    #[test]
    fn bound_symbols_read_back() {
        let mut asg = Assignment::new(0);
        asg.set(Sym::Param(0), 10);
        asg.set(Sym::Param(1), 32);
        let t = Term::bin(
            BinOp::Add,
            Term::sym(Sym::Param(0)),
            Term::sym(Sym::Param(1)),
        );
        assert_eq!(eval(&t, &asg), 42);
    }

    #[test]
    fn flags_are_boolean() {
        let asg = Assignment::new(7);
        for i in 0..4 {
            assert!(asg.get(Sym::Flag(i)) <= 1);
        }
    }

    #[test]
    fn memory_read_after_write() {
        let mut asg = Assignment::new(1);
        asg.set(Sym::Param(0), 0x1000);
        asg.set(Sym::Param(1), 0xdead_beef);
        let mem = Rc::new(SymMem::Store {
            prev: Rc::new(SymMem::Init),
            addr: Term::sym(Sym::Param(0)),
            val: Term::sym(Sym::Param(1)),
            width: Width::B32,
        });
        let read = Term::Read(mem.clone(), Term::c(0x1000), Width::B32);
        assert_eq!(eval(&read, &asg), 0xdead_beef);
        let read8 = Term::Read(mem.clone(), Term::c(0x1001), Width::B8);
        assert_eq!(eval(&read8, &asg), 0xbe);
        // Unwritten bytes come from the deterministic init function.
        let other = Term::Read(mem, Term::c(0x2000), Width::B8);
        assert_eq!(eval(&other, &asg), u32::from(asg.init_byte(0x2000)));
    }

    #[test]
    fn narrow_store_shadows_partially() {
        let mut asg = Assignment::new(3);
        asg.set(Sym::Param(0), 0x11223344);
        let m1 = Rc::new(SymMem::Store {
            prev: Rc::new(SymMem::Init),
            addr: Term::c(0x100),
            val: Term::sym(Sym::Param(0)),
            width: Width::B32,
        });
        let m2 = Rc::new(SymMem::Store {
            prev: m1,
            addr: Term::c(0x101),
            val: Term::c(0xaa),
            width: Width::B8,
        });
        let read = Term::Read(m2, Term::c(0x100), Width::B32);
        assert_eq!(eval(&read, &asg), 0x1122_aa44);
    }

    #[test]
    fn eval_mem_writes_collects_touched_bytes() {
        let asg = Assignment::new(5);
        let mem = Rc::new(SymMem::Store {
            prev: Rc::new(SymMem::Init),
            addr: Term::c(0x10),
            val: Term::c(0x0a0b_0c0d),
            width: Width::B32,
        });
        let writes = eval_mem_writes(&mem, &asg);
        assert_eq!(writes.len(), 4);
        assert_eq!(writes[&0x10], 0x0d);
        assert_eq!(writes[&0x13], 0x0a);
    }

    #[test]
    fn predicates_and_carries() {
        let asg = Assignment::new(0);
        let t = Term::pred(PredOp::Ltu, Term::c(1), Term::c(2));
        assert_eq!(eval(&t, &asg), 1);
        let t = Term::Bin(
            BinOp::FAdd,
            Term::c(1.5f32.to_bits()),
            Term::c(2.5f32.to_bits()),
        );
        assert_eq!(f32::from_bits(eval(&t, &asg)), 4.0);
        let carry = Term::CarryAdd(Term::c(u32::MAX), Term::c(1), Term::c(0));
        assert_eq!(eval(&carry, &asg), 1);
        let borrow = Term::BorrowSub(Term::c(3), Term::c(5), Term::c(0));
        assert_eq!(eval(&borrow, &asg), 1);
    }
}
