//! The symbolic term algebra.
//!
//! Terms are 32-bit bit-vector expressions over named symbols. Carry,
//! borrow and overflow are *primitive predicates* rather than derived
//! bit-twiddling, so that the guest and host symbolic evaluators produce
//! structurally aligned terms for semantically matching operations —
//! which is what lets the normalizing checker decide equivalence without
//! a full SMT solver (see DESIGN.md for the substitution rationale).

use pdbt_isa::Width;
use std::fmt;
use std::rc::Rc;

/// A reference-counted term.
pub type TermRef = Rc<Term>;

/// A named symbolic input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sym {
    /// The initial value of a *rule parameter* — the `i`-th mapped
    /// operand register pair.
    Param(u8),
    /// The initial value of an unmapped guest register.
    GuestReg(u8),
    /// The initial value of an unmapped host register.
    HostReg(u8),
    /// The initial value of a guest flag (N=0, Z=1, C=2, V=3); 0/1-valued.
    Flag(u8),
    /// The initial value of a host flag; 0/1-valued.
    HostFlag(u8),
    /// The guest program counter (for PC-relative rules).
    Pc,
    /// A free symbol.
    Free(u16),
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::Param(i) => write!(f, "p{i}"),
            Sym::GuestReg(i) => write!(f, "g{i}"),
            Sym::HostReg(i) => write!(f, "h{i}"),
            Sym::Flag(i) => write!(f, "f{i}"),
            Sym::HostFlag(i) => write!(f, "hf{i}"),
            Sym::Pc => write!(f, "pc"),
            Sym::Free(i) => write!(f, "s{i}"),
        }
    }
}

/// Binary bit-vector operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sar,
    Ror,
    Mul,
    MulhU,
    FAdd,
    FSub,
    FMul,
    FDiv,
}

impl BinOp {
    /// Whether the operator commutes.
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::Mul
                | BinOp::MulhU
                | BinOp::FAdd
                | BinOp::FMul
        )
    }

    /// Concrete evaluation.
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b & 31),
            BinOp::Shr => a.wrapping_shr(b & 31),
            BinOp::Sar => ((a as i32).wrapping_shr(b & 31)) as u32,
            BinOp::Ror => a.rotate_right(b & 31),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::MulhU => ((u64::from(a) * u64::from(b)) >> 32) as u32,
            BinOp::FAdd => (f32::from_bits(a) + f32::from_bits(b)).to_bits(),
            BinOp::FSub => (f32::from_bits(a) - f32::from_bits(b)).to_bits(),
            BinOp::FMul => (f32::from_bits(a) * f32::from_bits(b)).to_bits(),
            BinOp::FDiv => (f32::from_bits(a) / f32::from_bits(b)).to_bits(),
        }
    }
}

/// Unary bit-vector operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum UnOp {
    Not,
    Neg,
    Clz,
}

impl UnOp {
    /// Concrete evaluation.
    #[must_use]
    pub fn eval(self, a: u32) -> u32 {
        match self {
            UnOp::Not => !a,
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Clz => a.leading_zeros(),
        }
    }
}

/// Predicate operators (0/1-valued terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum PredOp {
    Eq,
    Ne,
    Ltu,
    Geu,
    Lts,
    Ges,
    Gts,
    Les,
    Gtu,
    Leu,
    FLt,
    FEq,
    FGe,
}

impl PredOp {
    /// Concrete evaluation.
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> bool {
        let (sa, sb) = (a as i32, b as i32);
        match self {
            PredOp::Eq => a == b,
            PredOp::Ne => a != b,
            PredOp::Ltu => a < b,
            PredOp::Geu => a >= b,
            PredOp::Lts => sa < sb,
            PredOp::Ges => sa >= sb,
            PredOp::Gts => sa > sb,
            PredOp::Les => sa <= sb,
            PredOp::Gtu => a > b,
            PredOp::Leu => a <= b,
            PredOp::FLt => f32::from_bits(a) < f32::from_bits(b),
            PredOp::FEq => f32::from_bits(a) == f32::from_bits(b),
            PredOp::FGe => f32::from_bits(a) >= f32::from_bits(b),
        }
    }
}

/// A symbolic memory: the initial memory plus a chain of symbolic stores.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SymMem {
    /// The initial memory state (shared by guest and host — the DBT
    /// identity-maps guest memory).
    Init,
    /// A store on top of `prev`.
    Store {
        /// The memory before this store.
        prev: Rc<SymMem>,
        /// Store address.
        addr: TermRef,
        /// Stored value (low `width` bits significant).
        val: TermRef,
        /// Store width.
        width: Width,
    },
}

impl SymMem {
    /// The store chain from oldest to newest.
    #[must_use]
    pub fn stores(&self) -> Vec<(&TermRef, &TermRef, Width)> {
        let mut out = Vec::new();
        let mut cur = self;
        while let SymMem::Store {
            prev,
            addr,
            val,
            width,
        } = cur
        {
            out.push((addr, val, *width));
            cur = prev;
        }
        out.reverse();
        out
    }
}

/// A 32-bit symbolic term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A constant.
    Const(u32),
    /// A symbolic input.
    Sym(Sym),
    /// A binary operation.
    Bin(BinOp, TermRef, TermRef),
    /// A unary operation.
    Un(UnOp, TermRef),
    /// A comparison predicate (0/1).
    Pred(PredOp, TermRef, TermRef),
    /// Carry out of `a + b + cin` (0/1).
    CarryAdd(TermRef, TermRef, TermRef),
    /// Borrow out of `a - b - bin` (0/1). The guest's subtraction carry
    /// is `1 - borrow`; the host's CF after `sub` is the borrow itself.
    BorrowSub(TermRef, TermRef, TermRef),
    /// Signed overflow of `a + b + cin` (0/1).
    OverflowAdd(TermRef, TermRef, TermRef),
    /// Signed overflow of `a - b - bin` (0/1).
    OverflowSub(TermRef, TermRef, TermRef),
    /// `if c != 0 then t else e`.
    Ite(TermRef, TermRef, TermRef),
    /// A memory read.
    Read(Rc<SymMem>, TermRef, Width),
}

impl Term {
    /// Constant constructor.
    #[must_use]
    pub fn c(v: u32) -> TermRef {
        Rc::new(Term::Const(v))
    }

    /// Symbol constructor.
    #[must_use]
    pub fn sym(s: Sym) -> TermRef {
        Rc::new(Term::Sym(s))
    }

    /// Binary-operation constructor (unnormalized).
    #[must_use]
    pub fn bin(op: BinOp, a: TermRef, b: TermRef) -> TermRef {
        Rc::new(Term::Bin(op, a, b))
    }

    /// Unary-operation constructor (unnormalized).
    #[must_use]
    pub fn un(op: UnOp, a: TermRef) -> TermRef {
        Rc::new(Term::Un(op, a))
    }

    /// Predicate constructor (unnormalized).
    #[must_use]
    pub fn pred(op: PredOp, a: TermRef, b: TermRef) -> TermRef {
        Rc::new(Term::Pred(op, a, b))
    }

    /// Whether the term is the constant `v`.
    #[must_use]
    pub fn is_const(&self, v: u32) -> bool {
        matches!(self, Term::Const(c) if *c == v)
    }

    /// All symbols appearing in the term.
    pub fn collect_syms(&self, out: &mut Vec<Sym>) {
        match self {
            Term::Const(_) => {}
            Term::Sym(s) => {
                if !out.contains(s) {
                    out.push(*s);
                }
            }
            Term::Bin(_, a, b) | Term::Pred(_, a, b) => {
                a.collect_syms(out);
                b.collect_syms(out);
            }
            Term::Un(_, a) => a.collect_syms(out),
            Term::CarryAdd(a, b, c)
            | Term::BorrowSub(a, b, c)
            | Term::OverflowAdd(a, b, c)
            | Term::OverflowSub(a, b, c)
            | Term::Ite(a, b, c) => {
                a.collect_syms(out);
                b.collect_syms(out);
                c.collect_syms(out);
            }
            Term::Read(mem, addr, _) => {
                addr.collect_syms(out);
                let mut cur: &SymMem = mem;
                while let SymMem::Store {
                    prev, addr, val, ..
                } = cur
                {
                    addr.collect_syms(out);
                    val.collect_syms(out);
                    cur = prev;
                }
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{v:#x}"),
            Term::Sym(s) => write!(f, "{s}"),
            Term::Bin(op, a, b) => write!(f, "({op:?} {a} {b})"),
            Term::Un(op, a) => write!(f, "({op:?} {a})"),
            Term::Pred(op, a, b) => write!(f, "({op:?} {a} {b})"),
            Term::CarryAdd(a, b, c) => write!(f, "(carry+ {a} {b} {c})"),
            Term::BorrowSub(a, b, c) => write!(f, "(borrow- {a} {b} {c})"),
            Term::OverflowAdd(a, b, c) => write!(f, "(ovf+ {a} {b} {c})"),
            Term::OverflowSub(a, b, c) => write!(f, "(ovf- {a} {b} {c})"),
            Term::Ite(c, t, e) => write!(f, "(ite {c} {t} {e})"),
            Term::Read(_, addr, w) => write!(f, "(read{w} {addr})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval() {
        assert_eq!(BinOp::Add.eval(u32::MAX, 1), 0);
        assert_eq!(BinOp::Sub.eval(3, 5), (-2i32) as u32);
        assert_eq!(BinOp::Sar.eval(0x8000_0000, 31), u32::MAX);
        assert_eq!(BinOp::MulhU.eval(u32::MAX, 0x10), 0xf);
        assert_eq!(BinOp::Ror.eval(1, 1), 0x8000_0000);
    }

    #[test]
    fn predop_eval() {
        assert!(PredOp::Ltu.eval(1, u32::MAX));
        assert!(!PredOp::Lts.eval(1, u32::MAX));
        assert!(PredOp::Ges.eval(0, u32::MAX));
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Clz.eval(0), 32);
        assert_eq!(UnOp::Neg.eval(1), u32::MAX);
    }

    #[test]
    fn collect_syms_dedups() {
        let t = Term::bin(
            BinOp::Add,
            Term::sym(Sym::Param(0)),
            Term::bin(
                BinOp::Xor,
                Term::sym(Sym::Param(0)),
                Term::sym(Sym::Param(1)),
            ),
        );
        let mut syms = Vec::new();
        t.collect_syms(&mut syms);
        assert_eq!(syms, vec![Sym::Param(0), Sym::Param(1)]);
    }

    #[test]
    fn store_chain_order() {
        let m0 = Rc::new(SymMem::Init);
        let m1 = Rc::new(SymMem::Store {
            prev: m0,
            addr: Term::c(4),
            val: Term::c(1),
            width: Width::B32,
        });
        let m2 = Rc::new(SymMem::Store {
            prev: m1,
            addr: Term::c(8),
            val: Term::c(2),
            width: Width::B32,
        });
        let stores = m2.stores();
        assert_eq!(stores.len(), 2);
        assert!(stores[0].0.is_const(4) && stores[1].0.is_const(8));
    }
}
