//! Batched equivalence checking over a worker pool.
//!
//! The derivation pipeline verifies tens of thousands of independent
//! `(guest, host, mapping)` instances (§IV-C: "instantiate all possible
//! derived rules … and verify each"); [`check`] is pure, so the
//! instances fan out across a [`Pool`] and the verdicts come back in
//! case order — the parallel result is indistinguishable from the
//! serial one.

use crate::equiv::{check, CheckOptions, Mapping, Verdict};
use pdbt_isa_arm::Inst as GInst;
use pdbt_isa_x86::Inst as HInst;
use pdbt_par::Pool;

/// One independent equivalence-check instance.
#[derive(Debug, Clone)]
pub struct CheckCase {
    /// The guest instruction sequence.
    pub guest: Vec<GInst>,
    /// The candidate host sequence.
    pub host: Vec<HInst>,
    /// The register correspondence under which they must agree.
    pub mapping: Mapping,
}

/// Checks every case over the pool, returning verdicts in case order.
///
/// Equivalent to `cases.iter().map(|c| check(..)).collect()` — the pool
/// only changes wall-clock time, never the verdict vector.
#[must_use]
pub fn check_batch(cases: &[CheckCase], opts: CheckOptions, pool: &Pool) -> Vec<Verdict> {
    pool.map(cases, |c| check(&c.guest, &c.host, &c.mapping, opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdbt_isa_arm::{builders as g, Operand as GOp, Reg as GReg};
    use pdbt_isa_x86::{builders as h, Reg as HReg};

    fn cases() -> Vec<CheckCase> {
        let m2 = || Mapping::new(vec![(GReg::R0, HReg::Ecx), (GReg::R1, HReg::Ebx)]);
        let mut v = Vec::new();
        // A mix of equivalent and non-equivalent pairs.
        for imm in [0u32, 1, 5, 255, 2047] {
            v.push(CheckCase {
                guest: vec![g::add(GReg::R0, GReg::R0, GOp::Imm(imm))],
                host: vec![h::add(
                    HReg::Ecx.into(),
                    pdbt_isa_x86::Operand::Imm(imm as i32),
                )],
                mapping: Mapping::new(vec![(GReg::R0, HReg::Ecx)]),
            });
            v.push(CheckCase {
                guest: vec![g::sub(GReg::R0, GReg::R0, GOp::Imm(imm))],
                host: vec![h::add(
                    HReg::Ecx.into(),
                    pdbt_isa_x86::Operand::Imm(imm as i32),
                )],
                mapping: Mapping::new(vec![(GReg::R0, HReg::Ecx)]),
            });
            v.push(CheckCase {
                guest: vec![g::eor(GReg::R0, GReg::R0, GOp::Reg(GReg::R1))],
                host: vec![h::xor(HReg::Ecx.into(), HReg::Ebx.into())],
                mapping: m2(),
            });
        }
        v
    }

    #[test]
    fn parallel_verdicts_match_serial() {
        let cases = cases();
        let opts = CheckOptions::default();
        let serial = check_batch(&cases, opts, &Pool::new(1));
        let parallel = check_batch(&cases, opts, &Pool::new(8));
        assert_eq!(serial.len(), cases.len());
        assert_eq!(serial, parallel);
        // And the mix is real: some accepted, some refuted.
        assert!(serial.iter().any(Verdict::is_equivalent));
        assert!(serial.iter().any(|v| !v.is_equivalent()));
    }
}
