//! The normalizing rewriter.
//!
//! Rewrites terms into a canonical form: constants folded, commutative
//! operands ordered, algebraic identities applied. Two semantically
//! matching sequences produced by the aligned guest/host evaluators
//! normalize to structurally equal terms, which is the fast path of the
//! equivalence checker.

use crate::term::{BinOp, PredOp, Sym, SymMem, Term, TermRef, UnOp};
use std::cmp::Ordering;
use std::rc::Rc;

/// A total structural order used to canonicalize commutative operands.
fn term_order(a: &Term, b: &Term) -> Ordering {
    rank(a)
        .cmp(&rank(b))
        .then_with(|| format!("{a}").cmp(&format!("{b}")))
}

fn rank(t: &Term) -> u8 {
    match t {
        // Constants sort last so canonical forms look like `x + c`,
        // which the constant-chain reassociation patterns rely on.
        Term::Const(_) => 11,
        Term::Sym(_) => 1,
        Term::Un(..) => 2,
        Term::Bin(..) => 3,
        Term::Pred(..) => 4,
        Term::CarryAdd(..) => 5,
        Term::BorrowSub(..) => 6,
        Term::OverflowAdd(..) => 7,
        Term::OverflowSub(..) => 8,
        Term::Ite(..) => 9,
        Term::Read(..) => 10,
    }
}

/// Normalizes a term.
#[must_use]
pub fn simplify(t: &TermRef) -> TermRef {
    match &**t {
        Term::Const(_) | Term::Sym(_) => t.clone(),
        Term::Un(op, a) => {
            let a = simplify(a);
            if let Term::Const(v) = &*a {
                return Term::c(op.eval(*v));
            }
            // not(not x) = x, neg(neg x) = x
            if let Term::Un(inner, x) = &*a {
                if inner == op && matches!(op, UnOp::Not | UnOp::Neg) {
                    return x.clone();
                }
            }
            Rc::new(Term::Un(*op, a))
        }
        Term::Bin(op, a, b) => {
            let mut a = simplify(a);
            let mut b = simplify(b);
            if let (Term::Const(x), Term::Const(y)) = (&*a, &*b) {
                return Term::c(op.eval(*x, *y));
            }
            if op.is_commutative() && term_order(&a, &b) == Ordering::Greater {
                std::mem::swap(&mut a, &mut b);
            }
            // Identities.
            match op {
                BinOp::Add => {
                    if a.is_const(0) {
                        return b;
                    }
                    if b.is_const(0) {
                        return a;
                    }
                }
                BinOp::Sub => {
                    if b.is_const(0) {
                        return a;
                    }
                    if a == b {
                        return Term::c(0);
                    }
                }
                BinOp::And => {
                    if a.is_const(0) || b.is_const(0) {
                        return Term::c(0);
                    }
                    if a.is_const(u32::MAX) {
                        return b;
                    }
                    if b.is_const(u32::MAX) {
                        return a;
                    }
                    if a == b {
                        return a;
                    }
                }
                BinOp::Or => {
                    if a.is_const(0) {
                        return b;
                    }
                    if b.is_const(0) {
                        return a;
                    }
                    if a == b {
                        return a;
                    }
                    if a.is_const(u32::MAX) || b.is_const(u32::MAX) {
                        return Term::c(u32::MAX);
                    }
                }
                BinOp::Xor => {
                    if a.is_const(0) {
                        return b;
                    }
                    if b.is_const(0) {
                        return a;
                    }
                    if a == b {
                        return Term::c(0);
                    }
                }
                BinOp::Shl | BinOp::Shr | BinOp::Sar | BinOp::Ror => {
                    if b.is_const(0) {
                        return a;
                    }
                    if a.is_const(0) && *op != BinOp::Sar {
                        return Term::c(0);
                    }
                }
                BinOp::Mul => {
                    if a.is_const(0) || b.is_const(0) {
                        return Term::c(0);
                    }
                    if a.is_const(1) {
                        return b;
                    }
                    if b.is_const(1) {
                        return a;
                    }
                }
                BinOp::MulhU => {
                    if a.is_const(0) || b.is_const(0) {
                        return Term::c(0);
                    }
                }
                // Float identities are not algebraically safe (NaN, -0.0);
                // float terms only fold when both operands are constant.
                BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv => {}
            }
            // Reassociate constant chains: (x + c1) + c2 → x + (c1+c2);
            // also (x - c1) - c2 and (x + c1) - c2 style mixes.
            if let Term::Const(c2) = &*b {
                if let Term::Bin(inner_op, x, c1) = &*a {
                    if let Term::Const(c1v) = &**c1 {
                        match (inner_op, op) {
                            (BinOp::Add, BinOp::Add) => {
                                return simplify(&Term::bin(
                                    BinOp::Add,
                                    x.clone(),
                                    Term::c(c1v.wrapping_add(*c2)),
                                ));
                            }
                            (BinOp::Add, BinOp::Sub) => {
                                return simplify(&Term::bin(
                                    BinOp::Add,
                                    x.clone(),
                                    Term::c(c1v.wrapping_sub(*c2)),
                                ));
                            }
                            (BinOp::Sub, BinOp::Sub) => {
                                return simplify(&Term::bin(
                                    BinOp::Sub,
                                    x.clone(),
                                    Term::c(c1v.wrapping_add(*c2)),
                                ));
                            }
                            _ => {}
                        }
                    }
                }
            }
            // Canonicalize x - c → x + (-c) so add/sub chains merge.
            if *op == BinOp::Sub {
                if let Term::Const(c) = &*b {
                    return simplify(&Term::bin(BinOp::Add, a, Term::c(c.wrapping_neg())));
                }
            }
            Rc::new(Term::Bin(*op, a, b))
        }
        Term::Pred(op, a, b) => {
            let a = simplify(a);
            let b = simplify(b);
            if let (Term::Const(x), Term::Const(y)) = (&*a, &*b) {
                return Term::c(u32::from(op.eval(*x, *y)));
            }
            // Predicates over a 0/1-valued term against 0: `(p != 0)` is
            // `p`, `(p == 0)` is `1 - p` canonicalized as xor 1.
            if b.is_const(0) && is_boolean(&a) {
                match op {
                    PredOp::Ne => return a,
                    PredOp::Eq => {
                        return simplify(&Term::bin(BinOp::Xor, a, Term::c(1)));
                    }
                    _ => {}
                }
            }
            Rc::new(Term::Pred(*op, a, b))
        }
        Term::CarryAdd(a, b, c) => {
            let (a, b, c) = (simplify(a), simplify(b), simplify(c));
            if let (Term::Const(x), Term::Const(y), Term::Const(z)) = (&*a, &*b, &*c) {
                let wide = u64::from(*x) + u64::from(*y) + u64::from(*z & 1);
                return Term::c(u32::from(wide > u64::from(u32::MAX)));
            }
            let (a, b) = order_pair(a, b);
            Rc::new(Term::CarryAdd(a, b, c))
        }
        Term::BorrowSub(a, b, c) => {
            let (a, b, c) = (simplify(a), simplify(b), simplify(c));
            if let (Term::Const(x), Term::Const(y), Term::Const(z)) = (&*a, &*b, &*c) {
                let borrow = u64::from(*x) < u64::from(*y) + u64::from(*z & 1);
                return Term::c(u32::from(borrow));
            }
            Rc::new(Term::BorrowSub(a, b, c))
        }
        Term::OverflowAdd(a, b, c) => {
            let (a, b, c) = (simplify(a), simplify(b), simplify(c));
            if let (Term::Const(x), Term::Const(y), Term::Const(z)) = (&*a, &*b, &*c) {
                let r = x.wrapping_add(*y).wrapping_add(*z & 1);
                let v = (!(x ^ y) & (x ^ r)) & 0x8000_0000 != 0;
                return Term::c(u32::from(v));
            }
            let (a, b) = order_pair(a, b);
            Rc::new(Term::OverflowAdd(a, b, c))
        }
        Term::OverflowSub(a, b, c) => {
            let (a, b, c) = (simplify(a), simplify(b), simplify(c));
            if let (Term::Const(x), Term::Const(y), Term::Const(z)) = (&*a, &*b, &*c) {
                let r = x.wrapping_sub(*y).wrapping_sub(*z & 1);
                let v = ((x ^ y) & (x ^ r)) & 0x8000_0000 != 0;
                return Term::c(u32::from(v));
            }
            Rc::new(Term::OverflowSub(a, b, c))
        }
        Term::Ite(c, t, e) => {
            let c = simplify(c);
            let t = simplify(t);
            let e = simplify(e);
            if let Term::Const(v) = &*c {
                return if *v != 0 { t } else { e };
            }
            if t == e {
                return t;
            }
            Rc::new(Term::Ite(c, t, e))
        }
        Term::Read(mem, addr, width) => {
            let addr = simplify(addr);
            let mem = simplify_mem(mem);
            // Store-to-load forwarding for syntactically equal addresses
            // and widths (sound but incomplete: differing symbolic
            // addresses conservatively keep the read).
            let mut cur: &SymMem = &mem;
            while let SymMem::Store {
                prev,
                addr: saddr,
                val,
                width: sw,
            } = cur
            {
                if *saddr == addr && sw == width {
                    return if *width == pdbt_isa::Width::B32 {
                        val.clone()
                    } else {
                        simplify(&Term::bin(BinOp::And, val.clone(), Term::c(width.mask())))
                    };
                }
                // Distinct constant addresses cannot alias (width-aware).
                if let (Term::Const(sa), Term::Const(da)) = (&**saddr, &*addr) {
                    let no_alias =
                        sa.wrapping_add(sw.bytes()) <= *da || da.wrapping_add(width.bytes()) <= *sa;
                    if no_alias {
                        cur = prev;
                        continue;
                    }
                }
                break;
            }
            Rc::new(Term::Read(mem, addr, *width))
        }
    }
}

fn order_pair(a: TermRef, b: TermRef) -> (TermRef, TermRef) {
    if term_order(&a, &b) == Ordering::Greater {
        (b, a)
    } else {
        (a, b)
    }
}

/// Whether a term is known to be 0/1-valued.
fn is_boolean(t: &Term) -> bool {
    matches!(
        t,
        Term::Pred(..)
            | Term::CarryAdd(..)
            | Term::BorrowSub(..)
            | Term::OverflowAdd(..)
            | Term::OverflowSub(..)
    ) || matches!(t, Term::Const(v) if *v <= 1)
        || matches!(t, Term::Sym(Sym::Flag(_) | Sym::HostFlag(_)))
}

/// Normalizes a symbolic memory (simplifying store addresses/values).
#[must_use]
pub fn simplify_mem(m: &Rc<SymMem>) -> Rc<SymMem> {
    match &**m {
        SymMem::Init => m.clone(),
        SymMem::Store {
            prev,
            addr,
            val,
            width,
        } => Rc::new(SymMem::Store {
            prev: simplify_mem(prev),
            addr: simplify(addr),
            val: simplify(val),
            width: *width,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sym;

    fn p(i: u8) -> TermRef {
        Term::sym(Sym::Param(i))
    }

    #[test]
    fn constant_folding() {
        let t = Term::bin(BinOp::Add, Term::c(3), Term::c(4));
        assert!(simplify(&t).is_const(7));
        let t = Term::un(UnOp::Not, Term::c(0));
        assert!(simplify(&t).is_const(u32::MAX));
        let t = Term::pred(PredOp::Ltu, Term::c(1), Term::c(2));
        assert!(simplify(&t).is_const(1));
    }

    #[test]
    fn commutative_ordering_makes_equal() {
        let ab = simplify(&Term::bin(BinOp::Add, p(0), p(1)));
        let ba = simplify(&Term::bin(BinOp::Add, p(1), p(0)));
        assert_eq!(ab, ba);
        // Non-commutative must not reorder.
        let s1 = simplify(&Term::bin(BinOp::Sub, p(0), p(1)));
        let s2 = simplify(&Term::bin(BinOp::Sub, p(1), p(0)));
        assert_ne!(s1, s2);
    }

    #[test]
    fn identities() {
        assert_eq!(simplify(&Term::bin(BinOp::Add, p(0), Term::c(0))), p(0));
        assert!(simplify(&Term::bin(BinOp::Xor, p(0), p(0))).is_const(0));
        assert_eq!(simplify(&Term::bin(BinOp::And, p(0), p(0))), p(0));
        assert!(simplify(&Term::bin(BinOp::Mul, p(0), Term::c(0))).is_const(0));
        assert_eq!(
            simplify(&Term::un(UnOp::Not, Term::un(UnOp::Not, p(3)))),
            p(3)
        );
        assert!(simplify(&Term::bin(BinOp::Sub, p(2), p(2))).is_const(0));
    }

    #[test]
    fn constant_chain_reassociation() {
        // (p0 + 4) + 8 → p0 + 12
        let t = Term::bin(
            BinOp::Add,
            Term::bin(BinOp::Add, p(0), Term::c(4)),
            Term::c(8),
        );
        let expect = simplify(&Term::bin(BinOp::Add, p(0), Term::c(12)));
        assert_eq!(simplify(&t), expect);
        // (p0 - 4) - 8 → p0 - 12 ≡ p0 + (-12)
        let t = Term::bin(
            BinOp::Sub,
            Term::bin(BinOp::Sub, p(0), Term::c(4)),
            Term::c(8),
        );
        let expect = simplify(&Term::bin(BinOp::Add, p(0), Term::c(12u32.wrapping_neg())));
        assert_eq!(simplify(&t), expect);
    }

    #[test]
    fn sub_const_canonicalizes_to_add() {
        let sub = simplify(&Term::bin(BinOp::Sub, p(0), Term::c(1)));
        let add = simplify(&Term::bin(BinOp::Add, p(0), Term::c(1u32.wrapping_neg())));
        assert_eq!(sub, add);
    }

    #[test]
    fn boolean_predicates_collapse() {
        let carry = Rc::new(Term::CarryAdd(p(0), p(1), Term::c(0)));
        // (carry != 0) → carry
        let t = Term::pred(PredOp::Ne, carry.clone(), Term::c(0));
        assert_eq!(simplify(&t), simplify(&carry));
    }

    #[test]
    fn store_to_load_forwarding() {
        let mem = Rc::new(SymMem::Store {
            prev: Rc::new(SymMem::Init),
            addr: p(0),
            val: p(1),
            width: pdbt_isa::Width::B32,
        });
        let read = Rc::new(Term::Read(mem, p(0), pdbt_isa::Width::B32));
        assert_eq!(simplify(&read), p(1));
    }

    #[test]
    fn read_skips_non_aliasing_constant_store() {
        let mem = Rc::new(SymMem::Store {
            prev: Rc::new(SymMem::Store {
                prev: Rc::new(SymMem::Init),
                addr: Term::c(0x100),
                val: p(1),
                width: pdbt_isa::Width::B32,
            }),
            addr: Term::c(0x200),
            val: p(2),
            width: pdbt_isa::Width::B32,
        });
        let read = Rc::new(Term::Read(mem, Term::c(0x100), pdbt_isa::Width::B32));
        assert_eq!(simplify(&read), p(1));
    }

    #[test]
    fn ite_simplifies() {
        let t = Rc::new(Term::Ite(Term::c(1), p(0), p(1)));
        assert_eq!(simplify(&t), p(0));
        let t = Rc::new(Term::Ite(p(2), p(0), p(0)));
        assert_eq!(simplify(&t), p(0));
    }

    #[test]
    fn carry_is_commutative_in_addends() {
        let c1 = Rc::new(Term::CarryAdd(p(0), p(1), Term::c(0)));
        let c2 = Rc::new(Term::CarryAdd(p(1), p(0), Term::c(0)));
        assert_eq!(simplify(&c1), simplify(&c2));
    }
}
