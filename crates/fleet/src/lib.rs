//! `pdbt-fleet` — the replication plane behind `pdbt serve --peer`.
//!
//! PR 7 made warm translation state survive a restart (sealed `.pdba`
//! artifacts); this crate makes it survive a *fleet*: daemons advertise
//! the artifacts they hold (`ART_LIST`), stream them to each other
//! (`ART_PULL` / `ART_PUSH`), and write live cache growth back to disk
//! as a new generation on drain — so a hot image is translated once
//! per fleet, not once per node.
//!
//! The crate owns the replication-plane *policy*; the wire frames and
//! the daemon's accept-loop handlers live in `pdbt-serve`:
//!
//! * [`ArtifactVersion`] — the total order replication converges on:
//!   generation first, then the five section CRCs lexicographically.
//!   Taking the max over this order is arrival-order-independent, so
//!   any replication schedule reaches the same adopted state.
//! * [`artifact_file_name`] / [`parse_generation`] — the on-disk
//!   naming scheme that carries the generation *outside* the sealed
//!   bytes: `<fingerprint:016x>-g<N>.pdba`. The PDBA payload is
//!   untouched, so the canonical seal fixpoint and `FORMAT_VERSION`
//!   are preserved.
//! * [`dedupe_newest`] — the boot-scan rule: one artifact per
//!   fingerprint, newest version wins, losers are counted.
//! * [`seal_live`] — drain write-back: re-seal a live
//!   [`SharedTranslationState`] through the same canonical writer
//!   `pdbt compile` uses, so a written-back artifact is a byte-level
//!   seal fixpoint like any other.
//! * [`validate`] — the wire trust boundary: a transferred artifact is
//!   adopted only if it opens with *zero* quarantined sections and its
//!   content fingerprint matches the declared one. The wire is
//!   stricter than the disk scan (which salvages partial artifacts):
//!   a damaged transfer can always be re-pulled, so there is no reason
//!   to adopt a partial copy over a healthy partition.

use pdbt_artifact::{open_salvage, seal, section_table, Artifact, ArtifactError, Opened};
use pdbt_isa_arm::Program;
use pdbt_obs::json::Json;
use pdbt_runtime::SharedTranslationState;
use std::collections::BTreeMap;
use std::path::Path;

/// Chunk size for streaming a sealed artifact over the frame
/// transport: comfortably under the 16 MiB frame-payload cap, large
/// enough that small artifacts fit in one frame.
pub const CHUNK: usize = 4 * 1024 * 1024;

/// Upper bound on a transferred artifact (sanity cap on the declared
/// size before any allocation happens).
pub const MAX_ARTIFACT: u64 = 256 * 1024 * 1024;

/// How many `CHUNK`-sized data frames a `len`-byte artifact needs.
#[must_use]
pub fn chunk_count(len: usize) -> usize {
    len.div_ceil(CHUNK)
}

/// The replication order of one fingerprint's artifacts: generation
/// first, then the five section CRCs lexicographically as the
/// deterministic tie-break. The derived `Ord` is exactly that order
/// (field order matters), so `max` over any arrival order converges on
/// the same version — replication order never changes adopted state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct ArtifactVersion {
    /// Monotone per-fingerprint counter: bumped by one every time a
    /// node re-seals a partition whose live cache grew past its sealed
    /// artifact.
    pub generation: u64,
    /// The CRC-32 of each section payload in sealed order
    /// (META, GIMG, RULE, BLKS, TRCE); 0 for a section whose range
    /// falls outside the file.
    pub crcs: [u32; 5],
}

impl ArtifactVersion {
    /// Computes the version of a sealed artifact: the given generation
    /// (carried out-of-band, see [`parse_generation`]) plus the
    /// section CRCs read straight from the byte ranges the header
    /// declares.
    ///
    /// # Errors
    ///
    /// Whatever [`section_table`] rejects (bad magic/version/header).
    pub fn of_bytes(generation: u64, bytes: &[u8]) -> Result<ArtifactVersion, ArtifactError> {
        let mut crcs = [0u32; 5];
        for (i, (_, range)) in section_table(bytes)?.into_iter().enumerate().take(5) {
            crcs[i] = bytes.get(range).map_or(0, pdbt_artifact::bytes::crc32);
        }
        Ok(ArtifactVersion { generation, crcs })
    }
}

/// The canonical file name of a sealed artifact: the guest-image
/// fingerprint plus the generation, e.g. `00ab…cd-g3.pdba`. The
/// generation lives in the name, not the sealed bytes, so the PDBA
/// payload keeps its format version and seal-fixpoint property.
#[must_use]
pub fn artifact_file_name(fingerprint: u64, generation: u64) -> String {
    format!("{fingerprint:016x}-g{generation}.pdba")
}

/// The generation encoded in an artifact file name (`…-g<N>.pdba`).
/// A name without the suffix — e.g. a PR 7-era artifact — is
/// generation 0, so pre-fleet artifact dirs keep working unchanged.
#[must_use]
pub fn parse_generation(path: &Path) -> u64 {
    path.file_stem()
        .and_then(|s| s.to_str())
        .and_then(|s| s.rsplit_once("-g"))
        .and_then(|(_, g)| g.parse().ok())
        .unwrap_or(0)
}

/// The boot-scan dedupe rule: one winner per fingerprint, highest
/// [`ArtifactVersion`] wins, ties broken by the version's CRC order
/// (never by scan order). Returns the winners sorted by fingerprint
/// plus the number of losers — which the server counts as rejects
/// instead of silently shadowing them.
#[must_use]
pub fn dedupe_newest<T>(
    items: Vec<(u64, ArtifactVersion, T)>,
) -> (Vec<(u64, ArtifactVersion, T)>, u64) {
    let mut best: BTreeMap<u64, (ArtifactVersion, T)> = BTreeMap::new();
    let mut rejected = 0u64;
    for (fp, version, item) in items {
        match best.get(&fp) {
            Some((held, _)) if *held >= version => rejected += 1,
            Some(_) => {
                rejected += 1;
                best.insert(fp, (version, item));
            }
            None => {
                best.insert(fp, (version, item));
            }
        }
    }
    (
        best.into_iter().map(|(fp, (v, t))| (fp, v, t)).collect(),
        rejected,
    )
}

/// Re-seals a live translation state through the canonical artifact
/// writer: the partition's shared code cache becomes BLKS, its boot
/// trace library becomes TRCE, and its ruleset RULE. Because `seal` is
/// canonical (blocks sorted by address, traces by head), the result is
/// a byte-level seal fixpoint exactly like a `pdbt compile` product —
/// this is the drain write-back path.
#[must_use]
pub fn seal_live(label: &str, program: &Program, state: &SharedTranslationState) -> Vec<u8> {
    let blocks = state
        .cache()
        .snapshot()
        .into_iter()
        .map(|(_, b)| (*b).clone())
        .collect();
    seal(&Artifact {
        label: label.to_string(),
        program: program.clone(),
        rules: state.rules().cloned(),
        blocks,
        traces: state.library_traces(),
    })
}

/// The wire trust boundary: opens a transferred artifact and accepts
/// it only when (a) it opens at all, (b) *no* section was quarantined,
/// and (c) the content fingerprint matches what the sender declared.
/// Stricter than the disk scan's salvage semantics on purpose — a
/// partial artifact over the wire is a failed transfer, not a
/// best-effort boot source.
///
/// # Errors
///
/// A human-readable reason; the caller counts it as a reject.
pub fn validate(bytes: &[u8], declared_fingerprint: u64) -> Result<Opened, String> {
    let opened = open_salvage(bytes).map_err(|e| format!("artifact rejected: {e}"))?;
    if let Some(q) = opened.quarantined.first() {
        return Err(format!(
            "artifact section {} quarantined in transfer: {}",
            q.section, q.reason
        ));
    }
    let fp = opened.artifact.fingerprint();
    if fp != declared_fingerprint {
        return Err(format!(
            "artifact fingerprint {fp:016x} does not match the declared {declared_fingerprint:016x}"
        ));
    }
    Ok(opened)
}

/// One entry of an `ART_LIST` advertisement: everything a peer needs
/// to decide whether to pull — identity, version, and rough size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactAd {
    /// The guest-image fingerprint (partition key).
    pub fingerprint: u64,
    /// The advertised version.
    pub version: ArtifactVersion,
    /// Translated blocks in the sealed artifact.
    pub blocks: u64,
    /// Superblock traces in the sealed artifact.
    pub traces: u64,
    /// Sealed size in bytes.
    pub bytes: u64,
    /// Human-readable partition label.
    pub label: String,
}

impl ArtifactAd {
    /// The JSON wire form. Fingerprints travel as 16-digit hex strings
    /// (the JSON integers here are `i64`-backed); CRCs and generations
    /// fit in integers.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "fingerprint",
                Json::str(format!("{:016x}", self.fingerprint)),
            ),
            ("generation", Json::from(self.version.generation)),
            (
                "crcs",
                Json::arr(self.version.crcs.iter().map(|&c| Json::from(u64::from(c)))),
            ),
            ("blocks", Json::from(self.blocks)),
            ("traces", Json::from(self.traces)),
            ("bytes", Json::from(self.bytes)),
            ("label", Json::str(self.label.as_str())),
        ])
    }

    /// Parses the JSON wire form.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the missing or malformed field.
    pub fn from_json(json: &Json) -> Result<ArtifactAd, String> {
        let fingerprint = json
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or("advert needs a hex `fingerprint`")?;
        let generation = json
            .get("generation")
            .and_then(Json::as_u64)
            .ok_or("advert needs a `generation`")?;
        let crc_list = json
            .get("crcs")
            .and_then(Json::as_arr)
            .ok_or("advert needs a `crcs` array")?;
        if crc_list.len() != 5 {
            return Err(format!("advert has {} crcs, want 5", crc_list.len()));
        }
        let mut crcs = [0u32; 5];
        for (i, c) in crc_list.iter().enumerate() {
            crcs[i] = c
                .as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or("advert crc out of range")?;
        }
        Ok(ArtifactAd {
            fingerprint,
            version: ArtifactVersion { generation, crcs },
            blocks: json.get("blocks").and_then(Json::as_u64).unwrap_or(0),
            traces: json.get("traces").and_then(Json::as_u64).unwrap_or(0),
            bytes: json.get("bytes").and_then(Json::as_u64).unwrap_or(0),
            label: json
                .get("label")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdbt_artifact::compile;
    use pdbt_isa_arm::{builders as g, Operand as O, Reg};
    use pdbt_runtime::{EngineConfig, RunSetup};
    use std::path::PathBuf;

    fn sealed_fixture() -> Vec<u8> {
        let prog = Program::new(
            0x1000,
            vec![
                g::mov(Reg::R0, O::Imm(41)),
                g::add(Reg::R0, Reg::R0, O::Imm(1)),
                g::svc(1),
                g::svc(0),
            ],
        );
        let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        let artifact = compile(&prog, None, &setup, EngineConfig::default(), "fixture").unwrap();
        seal(&artifact)
    }

    #[test]
    fn version_order_is_generation_then_crc_lexicographic() {
        let lo = ArtifactVersion {
            generation: 1,
            crcs: [9, 9, 9, 9, 9],
        };
        let hi = ArtifactVersion {
            generation: 2,
            crcs: [0, 0, 0, 0, 0],
        };
        assert!(hi > lo, "generation dominates CRCs");
        let a = ArtifactVersion {
            generation: 2,
            crcs: [1, 0, 0, 0, 0],
        };
        let b = ArtifactVersion {
            generation: 2,
            crcs: [0, 9, 9, 9, 9],
        };
        assert!(a > b, "equal generations tie-break on the CRCs");
        assert_eq!(a.max(b), b.max(a), "max is arrival-order-independent");
    }

    #[test]
    fn of_bytes_reads_the_sealed_section_crcs() {
        let bytes = sealed_fixture();
        let v = ArtifactVersion::of_bytes(3, &bytes).unwrap();
        assert_eq!(v.generation, 3);
        assert!(v.crcs.iter().any(|&c| c != 0), "sections have content");
        // Flipping one payload byte must change exactly the damaged
        // section's CRC — that's what makes the tie-break see content.
        let mut mutated = bytes.clone();
        let last = mutated.len() - 1;
        mutated[last] ^= 0xFF;
        let w = ArtifactVersion::of_bytes(3, &mutated).unwrap();
        assert_ne!(v, w);
        assert_eq!(v.crcs[..4], w.crcs[..4], "only TRCE differs");
        // And the version is insensitive to anything but content.
        assert_eq!(v, ArtifactVersion::of_bytes(3, &bytes).unwrap());
        assert!(ArtifactVersion::of_bytes(0, b"junk").is_err());
    }

    #[test]
    fn file_names_roundtrip_the_generation() {
        let name = artifact_file_name(0xb22c_388e_f903_e5ae, 7);
        assert_eq!(name, "b22c388ef903e5ae-g7.pdba");
        assert_eq!(parse_generation(&PathBuf::from(name)), 7);
        // Pre-fleet names are generation 0.
        assert_eq!(parse_generation(&PathBuf::from("guest.pdba")), 0);
        assert_eq!(parse_generation(&PathBuf::from("weird-gx.pdba")), 0);
    }

    #[test]
    fn dedupe_keeps_the_newest_and_counts_losers() {
        let v = |generation, c0| ArtifactVersion {
            generation,
            crcs: [c0, 0, 0, 0, 0],
        };
        let items = vec![
            (7, v(1, 0), "old"),
            (7, v(2, 0), "new"),
            (7, v(2, 0), "dup"),
            (9, v(0, 5), "only"),
            (7, v(0, 9), "ancient"),
        ];
        let (kept, rejected) = dedupe_newest(items);
        assert_eq!(rejected, 3);
        assert_eq!(kept.len(), 2);
        assert_eq!((kept[0].0, kept[0].2), (7, "new"));
        assert_eq!((kept[1].0, kept[1].2), (9, "only"));
        // Scan order never matters: reversed input, same winners.
        let items = vec![
            (7, v(0, 9), "ancient"),
            (9, v(0, 5), "only"),
            (7, v(2, 0), "dup"),
            (7, v(2, 0), "new"),
            (7, v(1, 0), "old"),
        ];
        let (kept2, _) = dedupe_newest(items);
        assert_eq!(kept2[0].1, kept[0].1);
    }

    #[test]
    fn validate_rejects_damage_and_fingerprint_lies() {
        let bytes = sealed_fixture();
        let opened = validate(&bytes, open_salvage(&bytes).unwrap().artifact.fingerprint())
            .expect("healthy artifact validates");
        let fp = opened.artifact.fingerprint();
        // Declared fingerprint must match content.
        assert!(validate(&bytes, fp ^ 1).is_err());
        // A quarantinable section is a wire reject, not a salvage.
        let mut mutated = bytes.clone();
        let last = mutated.len() - 1;
        mutated[last] ^= 0xFF;
        assert!(open_salvage(&mutated).is_ok(), "disk scan would salvage");
        assert!(validate(&mutated, fp).is_err(), "wire rejects");
        assert!(validate(b"junk", fp).is_err());
    }

    #[test]
    fn adverts_roundtrip_through_json() {
        let ad = ArtifactAd {
            fingerprint: u64::MAX - 3, // above i64::MAX: must survive as hex
            version: ArtifactVersion {
                generation: 4,
                crcs: [1, 2, 3, u32::MAX, 5],
            },
            blocks: 12,
            traces: 2,
            bytes: 4096,
            label: "mcf/tiny".to_string(),
        };
        let json = Json::parse(&ad.to_json().to_string()).unwrap();
        assert_eq!(ArtifactAd::from_json(&json).unwrap(), ad);
        assert!(ArtifactAd::from_json(&Json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn chunking_covers_every_byte() {
        assert_eq!(chunk_count(0), 0);
        assert_eq!(chunk_count(1), 1);
        assert_eq!(chunk_count(CHUNK), 1);
        assert_eq!(chunk_count(CHUNK + 1), 2);
    }
}
