//! Lossless binary codec for [`TranslatedBlock`] and its host
//! instructions — the payload of the BLKS and TRCE sections.
//!
//! Every enum is encoded through its stable `index()` (host opcodes,
//! condition codes and registers all define one in encoding order), so
//! the byte layout is pinned by the ISA definition, not by Rust's enum
//! discriminants. Decoding validates as it goes: out-of-range indices,
//! malformed operand shapes and absurd lengths all surface as a
//! [`CodecError`], which the artifact loader turns into a quarantined
//! section — never a panic.

use crate::bytes::{err, CodecError, Reader, Writer};
use pdbt_isa_x86::{Cc, Inst, Mem, Op, Operand, Reg, Shape, Xmm};
use pdbt_runtime::{
    BlockSuccs, CodeClass, DelegOutcome, MemberMark, RuleAttribution, TranslatedBlock,
};

/// `Option<Reg>` as one byte: `0xFF` = none, else the register index.
fn write_opt_reg(w: &mut Writer, r: Option<Reg>) {
    w.u8(r.map_or(0xFF, |r| r.index() as u8));
}

fn read_opt_reg(r: &mut Reader) -> Result<Option<Reg>, CodecError> {
    match r.u8()? {
        0xFF => Ok(None),
        i => match Reg::from_index(i as usize) {
            Some(reg) => Ok(Some(reg)),
            None => err(format!("bad register index {i}")),
        },
    }
}

fn write_operand(w: &mut Writer, o: &Operand) {
    match o {
        Operand::Reg(r) => {
            w.u8(0);
            w.u8(r.index() as u8);
        }
        Operand::Imm(v) => {
            w.u8(1);
            w.i32(*v);
        }
        Operand::Mem(m) => {
            w.u8(2);
            write_opt_reg(w, m.base);
            write_opt_reg(w, m.index);
            w.i32(m.disp);
        }
        Operand::Xmm(x) => {
            w.u8(3);
            w.u8(x.index() as u8);
        }
        Operand::Target(d) => {
            w.u8(4);
            w.i32(*d);
        }
    }
}

fn read_operand(r: &mut Reader) -> Result<Operand, CodecError> {
    match r.u8()? {
        0 => {
            let i = r.u8()? as usize;
            match Reg::from_index(i) {
                Some(reg) => Ok(Operand::Reg(reg)),
                None => err(format!("bad register index {i}")),
            }
        }
        1 => Ok(Operand::Imm(r.i32()?)),
        2 => {
            let base = read_opt_reg(r)?;
            let index = read_opt_reg(r)?;
            let disp = r.i32()?;
            Ok(Operand::Mem(Mem { base, index, disp }))
        }
        3 => {
            let i = r.u8()?;
            if i >= 8 {
                return err(format!("bad xmm index {i}"));
            }
            Ok(Operand::Xmm(Xmm::new(i)))
        }
        4 => Ok(Operand::Target(r.i32()?)),
        t => err(format!("bad operand tag {t}")),
    }
}

fn write_inst(w: &mut Writer, inst: &Inst) {
    w.u8(inst.op.index());
    w.u8(inst.cc.map_or(0xFF, Cc::index));
    w.u8(inst.operands.len() as u8);
    for o in &inst.operands {
        write_operand(w, o);
    }
}

fn read_inst(r: &mut Reader) -> Result<Inst, CodecError> {
    let op = match Op::from_index(r.u8()?) {
        Some(op) => op,
        None => return err("bad opcode index"),
    };
    let cc = match r.u8()? {
        0xFF => None,
        i => match Cc::from_index(i) {
            Some(cc) => Some(cc),
            None => return err(format!("bad condition-code index {i}")),
        },
    };
    let n = r.u8()? as usize;
    let mut operands = Vec::with_capacity(n);
    for _ in 0..n {
        operands.push(read_operand(r)?);
    }
    // A conditional op without its condition code cannot even be
    // displayed, so reject it before `validate` formats an error.
    if matches!(op.shape(), Shape::CondBranch | Shape::SetCc) && cc.is_none() {
        return err(format!("{op:?} requires a condition code"));
    }
    let inst = Inst { op, cc, operands };
    // Shape validation keeps a corrupted-but-decodable section from
    // smuggling a malformed instruction into the executor.
    match inst.validate() {
        Ok(()) => Ok(inst),
        Err(e) => err(format!("malformed host instruction: {e}")),
    }
}

fn class_index(c: CodeClass) -> u8 {
    c.index() as u8
}

fn class_from_index(i: u8) -> Result<CodeClass, CodecError> {
    match i {
        0 => Ok(CodeClass::RuleCore),
        1 => Ok(CodeClass::QemuCore),
        2 => Ok(CodeClass::DataTransfer),
        3 => Ok(CodeClass::Control),
        _ => err(format!("bad code-class index {i}")),
    }
}

fn write_deleg(w: &mut Writer, d: Option<DelegOutcome>) {
    match d {
        None => w.u8(0),
        Some(DelegOutcome::Delegated(depth)) => {
            w.u8(1);
            w.u32(depth);
        }
        Some(DelegOutcome::EnvFallback) => w.u8(2),
    }
}

fn read_deleg(r: &mut Reader) -> Result<Option<DelegOutcome>, CodecError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(DelegOutcome::Delegated(r.u32()?))),
        2 => Ok(Some(DelegOutcome::EnvFallback)),
        t => err(format!("bad delegation tag {t}")),
    }
}

fn write_succ(w: &mut Writer, s: &BlockSuccs) {
    match s {
        BlockSuccs::None => w.u8(0),
        BlockSuccs::One(t) => {
            w.u8(1);
            w.u32(*t);
        }
        BlockSuccs::Two { taken, fall } => {
            w.u8(2);
            w.u32(*taken);
            w.u32(*fall);
        }
    }
}

fn read_succ(r: &mut Reader) -> Result<BlockSuccs, CodecError> {
    match r.u8()? {
        0 => Ok(BlockSuccs::None),
        1 => Ok(BlockSuccs::One(r.u32()?)),
        2 => Ok(BlockSuccs::Two {
            taken: r.u32()?,
            fall: r.u32()?,
        }),
        t => err(format!("bad successor tag {t}")),
    }
}

/// Serializes one translated block (plain or superblock).
pub fn write_block(w: &mut Writer, b: &TranslatedBlock) {
    w.u32(b.start);
    w.u32(b.guest_len);
    w.u32(b.rule_covered);
    write_deleg(w, b.deleg);
    write_succ(w, &b.succ);
    w.u32(b.code.len() as u32);
    for inst in &b.code {
        write_inst(w, inst);
    }
    w.u32(b.classes.len() as u32);
    for c in &b.classes {
        w.u8(class_index(*c));
    }
    w.u32(b.attributions.len() as u32);
    for a in &b.attributions {
        w.str(&a.label);
        w.str(&a.subgroup);
        w.u32(a.covered);
    }
    w.u32(b.lookup_misses.len() as u32);
    for m in &b.lookup_misses {
        w.str(m);
    }
    w.u32(b.member_marks.len() as u32);
    for m in &b.member_marks {
        w.u32(m.start);
        w.u32(m.anchor as u32);
        w.u32(m.guest_len);
        w.u32(m.rule_covered);
        w.u32(m.attr_range.0 as u32);
        w.u32(m.attr_range.1 as u32);
        write_deleg(w, m.deleg);
    }
}

/// Deserializes one translated block.
pub fn read_block(r: &mut Reader) -> Result<TranslatedBlock, CodecError> {
    let start = r.u32()?;
    let guest_len = r.u32()?;
    let rule_covered = r.u32()?;
    let deleg = read_deleg(r)?;
    let succ = read_succ(r)?;
    let n_code = r.count(3)?;
    let mut code = Vec::with_capacity(n_code);
    for _ in 0..n_code {
        code.push(read_inst(r)?);
    }
    let n_classes = r.count(1)?;
    if n_classes != n_code {
        return err(format!(
            "class count {n_classes} does not match code length {n_code}"
        ));
    }
    let mut classes = Vec::with_capacity(n_classes);
    for _ in 0..n_classes {
        classes.push(class_from_index(r.u8()?)?);
    }
    let n_attr = r.count(12)?;
    let mut attributions = Vec::with_capacity(n_attr);
    for _ in 0..n_attr {
        attributions.push(RuleAttribution {
            label: r.str()?,
            subgroup: r.str()?,
            covered: r.u32()?,
        });
    }
    let n_miss = r.count(4)?;
    let mut lookup_misses = Vec::with_capacity(n_miss);
    for _ in 0..n_miss {
        lookup_misses.push(r.str()?);
    }
    let n_marks = r.count(25)?;
    let mut member_marks = Vec::with_capacity(n_marks);
    for _ in 0..n_marks {
        member_marks.push(MemberMark {
            start: r.u32()?,
            anchor: r.u32()? as usize,
            guest_len: r.u32()?,
            rule_covered: r.u32()?,
            attr_range: (r.u32()? as usize, r.u32()? as usize),
            deleg: read_deleg(r)?,
        });
    }
    Ok(TranslatedBlock {
        start,
        code,
        classes,
        guest_len,
        rule_covered,
        attributions,
        lookup_misses,
        deleg,
        succ,
        member_marks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdbt_isa_arm::{builders as g, Operand as GOperand, Program, Reg as GReg};
    use pdbt_runtime::{translate_block, TranslateConfig};

    fn sample_blocks() -> Vec<TranslatedBlock> {
        // Real translator output, not hand-built shapes: a block per
        // branch target of a small loop program.
        let prog = Program::new(
            0x1000,
            vec![
                g::mov(GReg::R0, GOperand::Imm(5)),
                g::mov(GReg::R1, GOperand::Imm(0)),
                g::add(GReg::R1, GReg::R1, GOperand::Reg(GReg::R0)),
                g::sub(GReg::R0, GReg::R0, GOperand::Imm(1)).with_s(),
                g::b(pdbt_isa::Cond::Ne, -8),
                g::mov(GReg::R0, GOperand::Reg(GReg::R1)),
                g::svc(1),
                g::svc(0),
            ],
        );
        [0x1000u32, 0x1008, 0x1014]
            .iter()
            .map(|&pc| translate_block(&prog, pc, None, &TranslateConfig::default()).unwrap())
            .collect()
    }

    #[test]
    fn translated_blocks_roundtrip_byte_exactly() {
        for block in sample_blocks() {
            let mut w = Writer::new();
            write_block(&mut w, &block);
            let mut r = Reader::new(&w.buf);
            let back = read_block(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back, block);
            // Re-encoding the decoded block is the byte-level fixpoint
            // the artifact format builds on.
            let mut w2 = Writer::new();
            write_block(&mut w2, &back);
            assert_eq!(w2.buf, w.buf);
        }
    }

    #[test]
    fn corrupt_block_bytes_error_instead_of_panicking() {
        let block = sample_blocks().remove(0);
        let mut w = Writer::new();
        write_block(&mut w, &block);
        for i in 0..w.buf.len() {
            for bit in [0x01u8, 0x80] {
                let mut bytes = w.buf.clone();
                bytes[i] ^= bit;
                let mut r = Reader::new(&bytes);
                // Any outcome but a panic is acceptable; a silent
                // mutation may decode, but must stay a valid block.
                if let Ok(b) = read_block(&mut r) {
                    for inst in &b.code {
                        inst.validate().unwrap();
                    }
                }
            }
        }
    }
}
