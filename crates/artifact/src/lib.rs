//! Sealed translation artifacts: compile once, boot warm forever.
//!
//! This crate turns the in-memory products of a training/translation
//! run — the ruleset, the sharded code cache, and the superblock trace
//! library — into a single sealed, versioned, checksummed file (the
//! **PDBA** format), and turns such a file back into a warm
//! [`SharedTranslationState`] that a serving daemon can answer its
//! first request from with *zero* translate calls.
//!
//! The three layers:
//!
//! * [`bytes`]-level primitives (little-endian writer/reader, CRC-32),
//! * a lossless [`codec`] for [`TranslatedBlock`]s,
//! * the [`format`] container: header, section table, per-section CRCs,
//!   and the salvage loader ([`open_salvage`]) that quarantines exactly
//!   the damaged section and keeps the rest.
//!
//! Plus two pipeline helpers: [`compile`] (train → translate → capture)
//! and [`warm_state`] (opened artifact → warm shared state).
//!
//! # Example
//!
//! ```
//! use pdbt_artifact::{compile, open_salvage, seal, warm_state};
//! use pdbt_runtime::{Engine, EngineConfig, RunSetup};
//! use pdbt_isa_arm::{builders as g, Program, Reg, Operand as O};
//!
//! let prog = Program::new(0x1000, vec![
//!     g::mov(Reg::R0, O::Imm(41)),
//!     g::add(Reg::R0, Reg::R0, O::Imm(1)),
//!     g::svc(1),
//!     g::svc(0),
//! ]);
//! let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
//! let artifact = compile(&prog, None, &setup, EngineConfig::default(), "demo").unwrap();
//! let bytes = seal(&artifact);
//!
//! // ... later, possibly in another process ...
//! let opened = open_salvage(&bytes).unwrap();
//! assert!(opened.quarantined.is_empty());
//! let shared = std::sync::Arc::new(warm_state(&opened, None, 8, 4));
//! let mut engine = Engine::with_shared(shared, EngineConfig::default());
//! let report = engine.run(&prog, &setup).unwrap();
//! assert_eq!(report.output, vec![42]);
//! assert_eq!(report.server.translate_calls, 0); // fully warm
//! ```

pub mod bytes;
pub mod codec;
pub mod format;

pub use format::{
    open_salvage, seal, section_table, Artifact, ArtifactError, Opened, QuarantinedSection,
    FORMAT_VERSION, MAGIC, SECTIONS, TOOLCHAIN,
};

use pdbt_core::RuleSet;
use pdbt_isa_arm::Program;
use pdbt_obs::ArtifactCounters;
use pdbt_runtime::{Engine, EngineConfig, RunSetup, SharedTranslationState};

/// Runs the full translate pipeline over a guest image and captures
/// everything a warm boot needs: the translated blocks (prewarm covers
/// every discoverable block, the run itself covers the executed set),
/// the superblock traces the run formed, and the ruleset used.
///
/// The run is a real execution — compile is translate-and-verify, not
/// translate-and-hope: an image that cannot run cannot be sealed.
///
/// # Errors
///
/// A human-readable message when the verification run fails.
pub fn compile(
    prog: &Program,
    rules: Option<&RuleSet>,
    setup: &RunSetup,
    cfg: EngineConfig,
    label: &str,
) -> Result<Artifact, String> {
    let mut engine = Engine::new(rules.cloned(), cfg);
    engine.prewarm(prog);
    engine
        .run(prog, setup)
        .map_err(|e| format!("verification run failed: {e}"))?;
    let blocks = engine
        .cache()
        .snapshot()
        .into_iter()
        .map(|(_, b)| (*b).clone())
        .collect();
    let traces = engine.export_traces();
    Ok(Artifact {
        label: label.to_string(),
        program: prog.clone(),
        rules: rules.cloned(),
        blocks,
        traces,
    })
}

/// Builds a warm [`SharedTranslationState`] from an opened artifact:
/// the code cache is rehydrated from the BLKS section, the trace
/// library from TRCE, and the ruleset from RULE (falling back to
/// `fallback_rules` when the artifact carries none or the section was
/// quarantined). The partition key is the guest-image fingerprint.
#[must_use]
pub fn warm_state(
    opened: &Opened,
    fallback_rules: Option<&RuleSet>,
    cache_shards: usize,
    slots: usize,
) -> SharedTranslationState {
    let a = &opened.artifact;
    let counters = ArtifactCounters::loaded(
        a.blocks.len() as u64,
        a.traces.len() as u64,
        a.rules
            .as_ref()
            .map_or(0, |r| (r.len() + r.seq_len()) as u64),
        opened.quarantined.len() as u64,
    );
    let rules = a.rules.clone().or_else(|| fallback_rules.cloned());
    SharedTranslationState::warm(
        rules,
        cache_shards,
        slots,
        a.fingerprint(),
        a.blocks.clone(),
        a.traces.clone(),
        counters,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdbt_isa_arm::{builders as g, Operand as O, Reg};

    fn loop_program() -> Program {
        Program::new(
            0x1000,
            vec![
                g::mov(Reg::R0, O::Imm(5)),
                g::mov(Reg::R1, O::Imm(0)),
                g::add(Reg::R1, Reg::R1, O::Reg(Reg::R0)),
                g::sub(Reg::R0, Reg::R0, O::Imm(1)).with_s(),
                g::b(pdbt_isa::Cond::Ne, -8),
                g::mov(Reg::R0, O::Reg(Reg::R1)),
                g::svc(1),
                g::svc(0),
            ],
        )
    }

    #[test]
    fn seal_open_roundtrip_is_lossless_and_a_fixpoint() {
        let prog = loop_program();
        let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        let artifact = compile(&prog, None, &setup, EngineConfig::default(), "loop").unwrap();
        assert!(!artifact.blocks.is_empty());
        let bytes = seal(&artifact);
        let opened = open_salvage(&bytes).unwrap();
        assert!(opened.quarantined.is_empty());
        assert_eq!(opened.artifact.label, "loop");
        assert_eq!(opened.artifact.blocks, artifact.blocks);
        assert_eq!(opened.artifact.traces, artifact.traces);
        assert_eq!(opened.artifact.fingerprint(), artifact.fingerprint());
        // Re-sealing the opened artifact must reproduce the bytes.
        assert_eq!(seal(&opened.artifact), bytes);
    }

    #[test]
    fn warm_boot_answers_without_translating() {
        let prog = loop_program();
        let setup = RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000);
        let artifact = compile(&prog, None, &setup, EngineConfig::default(), "loop").unwrap();
        let cold = Engine::new(None, EngineConfig::default())
            .run(&prog, &setup)
            .unwrap();

        let opened = open_salvage(&seal(&artifact)).unwrap();
        let shared = std::sync::Arc::new(warm_state(&opened, None, 8, 4));
        let mut engine = Engine::with_shared(shared, EngineConfig::default());
        let warm = engine.run(&prog, &setup).unwrap();
        assert_eq!(warm.output, cold.output);
        assert_eq!(warm.server.translate_calls, 0);
        assert_eq!(warm.server.inserted, 0);
        assert!(warm.artifact.warm());
        assert_eq!(warm.artifact.loaded_blocks, artifact.blocks.len() as u64);
    }
}
