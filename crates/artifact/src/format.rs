//! The sealed PDBA container: header, section table, per-section
//! CRCs, and the salvage-mode loader.
//!
//! ## Layout (all little-endian, no alignment)
//!
//! ```text
//! magic            "PDBA"
//! format_version   u32            (must match exactly)
//! toolchain        str            (informational stamp, never a gate)
//! fingerprint      u64            (stable guest-image fingerprint)
//! section_count    u32
//! section table    tag [u8;4], offset u32, len u32, crc32 u32  × count
//! header_crc       u32            (CRC-32 of every byte above)
//! payload          concatenated section payloads
//! ```
//!
//! Section offsets are relative to the payload area and the table is
//! written in the fixed section order META, GIMG, RULE, BLKS, TRCE —
//! sealing is canonical (blocks sorted by address, traces by head), so
//! `seal(open(seal(a)))` is byte-identical to `seal(a)`.
//!
//! ## Salvage semantics
//!
//! The trust boundary is the header plus the guest image: damage to
//! the magic, version, table, header CRC, GIMG section, or a
//! fingerprint that does not match the image rejects the *whole*
//! artifact (an [`ArtifactError`]) — a warm boot keyed by an untrusted
//! fingerprint could hand one image's code to another. Damage inside
//! any other section quarantines exactly that section
//! ([`Opened::quarantined`]) and keeps the rest: a corrupted BLKS
//! still boots with the artifact's ruleset and traces, a corrupted
//! RULE falls back to the server's own rules, and so on — mirroring
//! the rule-store salvage loader, and never a panic.

use crate::bytes::{crc32, CodecError, Reader, Writer};
use crate::codec::{read_block, write_block};
use pdbt_core::{load_rules, save_rules, RuleSet};
use pdbt_isa_arm::{parse_listing, Program};
use pdbt_runtime::TranslatedBlock;
use std::fmt;
use std::ops::Range;

/// File magic.
pub const MAGIC: [u8; 4] = *b"PDBA";
/// Current format version. Bumped on any layout change; version
/// mismatches reject the artifact (cold fallback), never reinterpret.
pub const FORMAT_VERSION: u32 = 1;
/// Toolchain stamp sealed into every artifact. Informational: recorded
/// and surfaced, but never a compatibility gate — the format version
/// is the gate.
pub const TOOLCHAIN: &str = concat!("pdbt-", env!("CARGO_PKG_VERSION"));

/// Section tags, in sealed order.
pub const SECTIONS: [&str; 5] = ["META", "GIMG", "RULE", "BLKS", "TRCE"];

/// An unsealed translation artifact: everything `pdbt compile`
/// persists and a warm boot rehydrates.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Human-readable label (workload or program name).
    pub label: String,
    /// The guest image the translations belong to.
    pub program: Program,
    /// The ruleset the blocks were translated with (`None` = the pure
    /// QEMU-path baseline).
    pub rules: Option<RuleSet>,
    /// Pre-translated blocks (sorted by guest address when sealed).
    pub blocks: Vec<TranslatedBlock>,
    /// Superblock traces (sorted by head address when sealed); member
    /// lists are recoverable from each trace's `member_marks`.
    pub traces: Vec<TranslatedBlock>,
}

impl Artifact {
    /// The stable fingerprint of the guest image — the partition key
    /// a serving daemon maps this artifact to.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.program.fingerprint()
    }
}

/// A section the salvage loader had to drop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedSection {
    /// The section tag (`"RULE"`, `"BLKS"`, …).
    pub section: String,
    /// Why it was dropped.
    pub reason: String,
}

/// A successfully opened artifact plus its quarantine log.
#[derive(Debug)]
pub struct Opened {
    /// The salvaged artifact (quarantined sections emptied).
    pub artifact: Artifact,
    /// The toolchain stamp the artifact was sealed with.
    pub toolchain: String,
    /// Sections dropped by the salvage loader.
    pub quarantined: Vec<QuarantinedSection>,
}

/// A whole-artifact rejection: nothing salvageable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The file does not start with the PDBA magic.
    BadMagic,
    /// Sealed under a different format version.
    BadVersion {
        /// The version stamped in the header.
        found: u32,
    },
    /// The header or section table is cut short or self-inconsistent.
    Truncated(String),
    /// The header CRC does not cover the bytes present.
    HeaderCrc,
    /// The guest-image section is damaged or unparseable.
    BadImage(String),
    /// The image present does not hash to the declared fingerprint.
    FingerprintMismatch {
        /// The fingerprint stamped in the header.
        declared: u64,
        /// The fingerprint of the image actually present.
        computed: u64,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadMagic => f.write_str("not a PDBA artifact (bad magic)"),
            ArtifactError::BadVersion { found } => write!(
                f,
                "unsupported artifact format version {found} (this build reads {FORMAT_VERSION})"
            ),
            ArtifactError::Truncated(detail) => write!(f, "truncated artifact: {detail}"),
            ArtifactError::HeaderCrc => f.write_str("artifact header checksum mismatch"),
            ArtifactError::BadImage(detail) => write!(f, "damaged guest image: {detail}"),
            ArtifactError::FingerprintMismatch { declared, computed } => write!(
                f,
                "guest-image fingerprint mismatch: header says {declared:#018x}, image hashes to {computed:#018x}"
            ),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// One parsed section-table entry.
#[derive(Debug, Clone)]
struct TableEntry {
    tag: [u8; 4],
    offset: usize,
    len: usize,
    crc: u32,
}

/// Seals an artifact into PDBA bytes. Canonical: sections are written
/// in fixed order, blocks sorted by guest address, traces by head
/// address — sealing the same content twice yields identical bytes.
#[must_use]
pub fn seal(artifact: &Artifact) -> Vec<u8> {
    let mut meta = Writer::new();
    meta.str(&artifact.label);

    let mut gimg = Writer::new();
    gimg.u32(artifact.program.base());
    let listing: String = artifact
        .program
        .insts()
        .iter()
        .map(|i| format!("{i}\n"))
        .collect();
    gimg.str(&listing);

    let mut rule = Writer::new();
    match &artifact.rules {
        Some(rules) => {
            rule.u8(1);
            rule.str(&save_rules(rules));
        }
        None => rule.u8(0),
    }

    let mut blks = Writer::new();
    let mut sorted_blocks: Vec<&TranslatedBlock> = artifact.blocks.iter().collect();
    sorted_blocks.sort_by_key(|b| b.start);
    blks.u32(sorted_blocks.len() as u32);
    for b in sorted_blocks {
        write_block(&mut blks, b);
    }

    let mut trce = Writer::new();
    let mut sorted_traces: Vec<&TranslatedBlock> = artifact.traces.iter().collect();
    sorted_traces.sort_by_key(|t| t.start);
    trce.u32(sorted_traces.len() as u32);
    for t in sorted_traces {
        write_block(&mut trce, t);
    }

    let payloads = [meta.buf, gimg.buf, rule.buf, blks.buf, trce.buf];
    let mut header = Writer::new();
    header.bytes(&MAGIC);
    header.u32(FORMAT_VERSION);
    header.str(TOOLCHAIN);
    header.u64(artifact.fingerprint());
    header.u32(payloads.len() as u32);
    let mut offset = 0u32;
    for (tag, payload) in SECTIONS.iter().zip(&payloads) {
        header.bytes(tag.as_bytes());
        header.u32(offset);
        header.u32(payload.len() as u32);
        header.u32(crc32(payload));
        offset += payload.len() as u32;
    }
    let hcrc = crc32(&header.buf);
    header.u32(hcrc);
    let mut out = header.buf;
    for payload in &payloads {
        out.extend_from_slice(payload);
    }
    out
}

/// Parses the header and section table, verifying the header CRC.
/// Returns the table and the absolute offset of the payload area.
fn parse_header(bytes: &[u8]) -> Result<(u64, String, Vec<TableEntry>, usize), ArtifactError> {
    let mut r = Reader::new(bytes);
    let trunc = |e: CodecError| ArtifactError::Truncated(e.to_string());
    let magic = r.take(4).map_err(trunc)?;
    if magic != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let version = r.u32().map_err(trunc)?;
    if version != FORMAT_VERSION {
        return Err(ArtifactError::BadVersion { found: version });
    }
    let toolchain = r.str().map_err(trunc)?;
    let fingerprint = r.u64().map_err(trunc)?;
    let count = r.count(16).map_err(trunc)?;
    if count != SECTIONS.len() {
        return Err(ArtifactError::Truncated(format!(
            "expected {} sections, header declares {count}",
            SECTIONS.len()
        )));
    }
    let mut table = Vec::with_capacity(count);
    for expected_tag in SECTIONS {
        let tag: [u8; 4] = r.take(4).map_err(trunc)?.try_into().unwrap();
        if tag != *expected_tag.as_bytes() {
            return Err(ArtifactError::Truncated(format!(
                "section table out of order: expected {expected_tag}, found {:?}",
                String::from_utf8_lossy(&tag)
            )));
        }
        table.push(TableEntry {
            tag,
            offset: r.u32().map_err(trunc)? as usize,
            len: r.u32().map_err(trunc)? as usize,
            crc: r.u32().map_err(trunc)?,
        });
    }
    let header_len = bytes.len() - r.remaining();
    let declared = r.u32().map_err(trunc)?;
    if crc32(&bytes[..header_len]) != declared {
        return Err(ArtifactError::HeaderCrc);
    }
    Ok((fingerprint, toolchain, table, header_len + 4))
}

/// The absolute byte range of every section in a sealed artifact —
/// exposed so corruption tests (and forensics) can target payload
/// bytes precisely.
///
/// # Errors
///
/// [`ArtifactError`] when the header itself does not parse.
pub fn section_table(bytes: &[u8]) -> Result<Vec<(String, Range<usize>)>, ArtifactError> {
    let (_, _, table, payload_start) = parse_header(bytes)?;
    Ok(table
        .iter()
        .map(|e| {
            let start = payload_start + e.offset;
            (
                String::from_utf8_lossy(&e.tag).into_owned(),
                start..start + e.len,
            )
        })
        .collect())
}

/// Opens a sealed artifact in salvage mode.
///
/// # Errors
///
/// [`ArtifactError`] only for whole-artifact rejections (header,
/// guest image, fingerprint); per-section damage lands in
/// [`Opened::quarantined`] instead.
pub fn open_salvage(bytes: &[u8]) -> Result<Opened, ArtifactError> {
    let (fingerprint, toolchain, table, payload_start) = parse_header(bytes)?;
    let mut quarantined = Vec::new();
    // A section is healthy iff its range lies within the file AND its
    // CRC matches. Truncation cuts trailing sections' ranges short.
    let section = |e: &TableEntry| -> Result<&[u8], String> {
        let start = payload_start + e.offset;
        let end = start + e.len;
        if end > bytes.len() {
            return Err(format!(
                "section runs past end of file ({end} > {})",
                bytes.len()
            ));
        }
        let payload = &bytes[start..end];
        if crc32(payload) != e.crc {
            return Err("section checksum mismatch".to_string());
        }
        Ok(payload)
    };

    // GIMG is part of the trust boundary: no image, no artifact.
    let gimg = section(&table[1]).map_err(ArtifactError::BadImage)?;
    let program = {
        let mut r = Reader::new(gimg);
        let mut parse = || -> Result<Program, CodecError> {
            let base = r.u32()?;
            let listing = r.str()?;
            let insts = parse_listing(&listing)
                .map_err(|e| CodecError(format!("guest listing does not assemble: {e}")))?;
            Ok(Program::new(base, insts))
        };
        parse().map_err(|e| ArtifactError::BadImage(e.to_string()))?
    };
    let computed = program.fingerprint();
    if computed != fingerprint {
        return Err(ArtifactError::FingerprintMismatch {
            declared: fingerprint,
            computed,
        });
    }

    let mut quarantine = |tag: &str, reason: String| {
        quarantined.push(QuarantinedSection {
            section: tag.to_string(),
            reason,
        });
    };

    // META: label. Damage falls back to an empty label.
    let label = match section(&table[0]) {
        Ok(payload) => {
            let mut r = Reader::new(payload);
            match r.str().and_then(|s| r.finish().map(|()| s)) {
                Ok(label) => label,
                Err(e) => {
                    quarantine("META", e.to_string());
                    String::new()
                }
            }
        }
        Err(reason) => {
            quarantine("META", reason);
            String::new()
        }
    };

    // RULE: the embedded ruleset. Damage falls back to no rules (the
    // loader's caller supplies its own).
    let rules = match section(&table[2]) {
        Ok(payload) => {
            let mut r = Reader::new(payload);
            let mut parse = || -> Result<Option<RuleSet>, CodecError> {
                let present = r.u8()?;
                let rules = match present {
                    0 => None,
                    1 => {
                        let text = r.str()?;
                        Some(
                            load_rules(&text)
                                .map_err(|e| CodecError(format!("embedded ruleset: {e}")))?,
                        )
                    }
                    t => return Err(CodecError(format!("bad ruleset presence tag {t}"))),
                };
                r.finish()?;
                Ok(rules)
            };
            match parse() {
                Ok(rules) => rules,
                Err(e) => {
                    quarantine("RULE", e.to_string());
                    None
                }
            }
        }
        Err(reason) => {
            quarantine("RULE", reason);
            None
        }
    };

    // BLKS / TRCE: pre-translated code. Damage falls back to cold
    // translation.
    let mut read_blocks = |idx: usize, tag: &str| -> Vec<TranslatedBlock> {
        match section(&table[idx]) {
            Ok(payload) => {
                let mut r = Reader::new(payload);
                let mut parse = || -> Result<Vec<TranslatedBlock>, CodecError> {
                    let n = r.count(20)?;
                    let mut out = Vec::with_capacity(n);
                    for _ in 0..n {
                        out.push(read_block(&mut r)?);
                    }
                    r.finish()?;
                    Ok(out)
                };
                match parse() {
                    Ok(blocks) => blocks,
                    Err(e) => {
                        quarantine(tag, e.to_string());
                        Vec::new()
                    }
                }
            }
            Err(reason) => {
                quarantine(tag, reason);
                Vec::new()
            }
        }
    };
    let blocks = read_blocks(3, "BLKS");
    let traces = read_blocks(4, "TRCE");

    Ok(Opened {
        artifact: Artifact {
            label,
            program,
            rules,
            blocks,
            traces,
        },
        toolchain,
        quarantined,
    })
}
