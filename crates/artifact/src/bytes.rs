//! Little-endian byte-level primitives of the PDBA format: a growing
//! writer, a bounds-checked reader, and the CRC-32 every section is
//! sealed with.
//!
//! Everything is length-prefixed and little-endian; there is no
//! alignment, no varints, no compression — the format optimizes for
//! byte-exact reproducibility (`compile → load → compile` must be a
//! fixpoint), not for size.

use std::fmt;

/// A codec failure: the bytes do not decode as the expected shape.
/// Section-scoped — the artifact loader quarantines the section and
/// keeps the rest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Shorthand constructor used all over the decoders.
pub fn err<T>(detail: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(detail.into()))
}

/// IEEE CRC-32 (reflected, polynomial `0xEDB88320`) — the per-section
/// checksum. Bitwise, table-free: artifact sealing is not a hot path.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// An append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct Writer {
    /// The bytes written so far.
    pub buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.bytes(v.as_bytes());
    }
}

/// A bounds-checked little-endian reader over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed — trailing garbage means
    /// the section does not round-trip and must be quarantined.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            err(format!("{} trailing bytes after payload", self.remaining()))
        }
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return err(format!("need {n} bytes, {} left", self.remaining()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i32(&mut self) -> Result<i32, CodecError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(e) => err(format!("invalid utf-8 string: {e}")),
        }
    }

    /// A collection count, sanity-capped against the bytes actually
    /// left (`min_elem` = smallest possible element encoding) so a
    /// corrupted length cannot request a gigabyte allocation.
    pub fn count(&mut self, min_elem: usize) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem.max(1)) > self.remaining() {
            return err(format!(
                "count {n} exceeds remaining payload ({} bytes)",
                self.remaining()
            ));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i32(-42);
        w.str("héllo");
        let mut r = Reader::new(&w.buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i32().unwrap(), -42);
        assert_eq!(r.str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_overruns_and_bad_counts() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32().is_err());
        let mut w = Writer::new();
        w.u32(1_000_000);
        let mut r = Reader::new(&w.buf);
        assert!(r.count(4).is_err(), "absurd count must be rejected");
        let mut r = Reader::new(&w.buf);
        r.u8().unwrap();
        assert!(r.finish().is_err(), "trailing bytes must be flagged");
    }
}
