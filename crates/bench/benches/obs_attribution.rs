//! Observability deep-dive: which parameterized rules actually supply
//! the coverage, suite-wide. Runs every benchmark under the full system
//! (`para.`), merges the per-run observability records, and prints the
//! aggregate metrics table, the heaviest-hitting rules, coverage by
//! guest subgroup, and the block-shape / delegation histograms.

use pdbt_bench::{Config, Experiment};
use pdbt_workloads::Scale;

fn main() {
    let exp = Experiment::new(Scale::full());
    let (metrics, obs) = exp.run_suite(Config::Para);

    println!("=== suite aggregate (para. config, all 12 benchmarks) ===");
    println!("{metrics}");

    println!("\n=== top 20 rules by dynamic coverage ===");
    println!(
        "  {:<44} {:<24} {:>8} {:>12}",
        "rule", "subgroup", "hits", "covered"
    );
    for r in obs.rules.rows_by_coverage().into_iter().take(20) {
        println!(
            "  {:<44} {:<24} {:>8} {:>12}",
            r.label, r.subgroup, r.static_hits, r.dyn_covered
        );
    }
    let shown: u64 = obs
        .rules
        .rows_by_coverage()
        .iter()
        .take(20)
        .map(|r| r.dyn_covered)
        .sum();
    println!(
        "  (top 20 of {} rules supply {:.1}% of covered instructions)",
        obs.rules.rows().len(),
        100.0 * shown as f64 / obs.rules.total_covered().max(1) as f64
    );

    println!("\n=== coverage by guest subgroup ===");
    for (subgroup, covered) in obs.rules.coverage_by_subgroup() {
        println!(
            "  {subgroup:<28} {covered:>12}  ({:.1}%)",
            100.0 * covered as f64 / metrics.rule_covered.max(1) as f64
        );
    }

    println!("\n=== host instructions per block execution ===");
    println!("{}", obs.block_host_len);

    println!("\n=== flag-delegation window depth (catch-all = env fallback) ===");
    println!("{}", obs.deleg_depth);

    // The invariant the attribution pipeline maintains end to end.
    assert_eq!(obs.rules.total_covered(), metrics.rule_covered);
    println!(
        "\nattribution exact: {} covered instructions fully decomposed",
        metrics.rule_covered
    );
}
