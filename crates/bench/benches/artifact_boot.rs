//! Artifact boot: what a sealed translation artifact is worth at startup.
//!
//! Compiles `mcf/tiny` into a PDBA artifact with `pdbt_artifact::compile`,
//! then drives two real `pdbt-serve` daemons over loopback TCP: one cold
//! (empty cache) and one booted with `--artifact-dir` pointing at the
//! sealed artifact. Each server answers exactly one first request for the
//! image, and translation work is metered with the server-lifetime
//! `translate_calls` counter — the number of actual `translate_block`
//! executions, which is exactly the work a warm boot exists to remove.
//!
//! Correctness is asserted, not sampled: both servers must return
//! identical guest output, and the warm server must report the artifact
//! partition as loaded before the request arrives.
//!
//! The acceptance gate is the warm-boot claim itself: the artifact-booted
//! server must answer its first request with ≥ 90% fewer translate calls
//! than the cold server (in practice the reduction is 100% — a sealed
//! artifact rehydrates every block and trace, so nothing translates).
//!
//! Emits `BENCH_artifact.json`. `PDBT_BENCH_SMOKE=1` is recorded in the
//! artifact so CI trend lines can be told apart from dev runs; the phases
//! are identical either way (tiny scale is already CI-sized, and the
//! translate-call gate is scheduling-independent, unlike wall-clock,
//! which is informational only).

use pdbt_obs::json::Json;
use pdbt_runtime::EngineConfig;
use pdbt_serve::{ping, shutdown, submit, ServeConfig, Server};
use pdbt_workloads::{build, Benchmark, Scale};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(300);
const JOBS: usize = 2;

fn spawn_server(artifact_dir: Option<PathBuf>) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            jobs: JOBS,
            artifact_dir,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        server.serve().expect("serve");
    });
    (addr, handle)
}

/// Submits the mcf/tiny request, returning wall-clock ns and guest output.
fn first_request(addr: SocketAddr, id: u64) -> (u128, Json) {
    let req = Json::obj([
        ("id", Json::from(id)),
        ("workload", Json::str("mcf")),
        ("scale", Json::str("tiny")),
    ]);
    let start = Instant::now();
    let resp = submit(addr, &req, TIMEOUT).expect("submit");
    let elapsed = start.elapsed().as_nanos();
    assert_eq!(
        resp.get("outcome").and_then(Json::as_str),
        Some("completed"),
        "request {id} did not complete: {resp}"
    );
    let output = resp
        .get("report")
        .and_then(|r| r.get("output"))
        .expect("report.output")
        .clone();
    (elapsed, output)
}

/// Server-lifetime translate-call count, via PING.
fn translate_calls(addr: SocketAddr) -> u64 {
    ping(addr, TIMEOUT)
        .expect("ping")
        .get("server")
        .and_then(|s| s.get("translate_calls"))
        .and_then(Json::as_u64)
        .expect("server.translate_calls")
}

fn main() {
    let smoke = std::env::var("PDBT_BENCH_SMOKE").is_ok_and(|v| v != "0");

    // Seal mcf/tiny into an artifact on disk.
    let w = build(Benchmark::Mcf, Scale::tiny());
    let seal_start = Instant::now();
    let artifact = pdbt_artifact::compile(
        &w.pair.guest.program,
        None,
        &w.setup(),
        EngineConfig::default(),
        "mcf/tiny",
    )
    .expect("compile artifact");
    let bytes = pdbt_artifact::seal(&artifact);
    let seal_ns = seal_start.elapsed().as_nanos();
    let (blocks, traces, size) = (artifact.blocks.len(), artifact.traces.len(), bytes.len());
    let dir = std::env::temp_dir().join(format!("pdbt-bench-artifact-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    std::fs::write(dir.join("mcf.pdba"), &bytes).expect("write artifact");

    // Cold server: first request pays full translation.
    let (cold_addr, cold_handle) = spawn_server(None);
    let (cold_ns, cold_out) = first_request(cold_addr, 0);
    let cold_tc = translate_calls(cold_addr);
    shutdown(cold_addr, TIMEOUT).expect("shutdown");
    cold_handle.join().unwrap();
    assert!(cold_tc > 0, "cold server translated nothing — vacuous");

    // Artifact-booted server: the partition must exist before any
    // request, and the first request must translate (almost) nothing.
    let boot_start = Instant::now();
    let (warm_addr, warm_handle) = spawn_server(Some(dir.clone()));
    let boot_ns = boot_start.elapsed().as_nanos();
    let pong = ping(warm_addr, TIMEOUT).expect("ping");
    let arts = pong.get("artifacts").expect("artifacts section");
    assert_eq!(
        arts.get("loaded").and_then(Json::as_u64),
        Some(1),
        "artifact not loaded at boot: {pong}"
    );
    assert_eq!(arts.get("rejected").and_then(Json::as_u64), Some(0));
    let (warm_ns, warm_out) = first_request(warm_addr, 1);
    let warm_tc = translate_calls(warm_addr);
    shutdown(warm_addr, TIMEOUT).expect("shutdown");
    warm_handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    // Correctness gate: both boots produced identical guest output.
    assert_eq!(cold_out, warm_out, "guest output diverged between boots");

    let reduction = 1.0 - warm_tc as f64 / cold_tc as f64;

    println!("\n=== pdbt artifact boot: cold vs sealed-artifact first request (mcf/tiny) ===");
    println!("artifact: {size} bytes, {blocks} blocks, {traces} traces, sealed in {seal_ns} ns");
    println!("{:<24}{:>16}{:>16}", "phase", "translate_calls", "wall ns");
    println!(
        "{:<24}{:>16}{:>16}",
        "cold, first request", cold_tc, cold_ns
    );
    println!(
        "{:<24}{:>16}{:>16}",
        "warm, first request", warm_tc, warm_ns
    );
    println!("{:<24}{:>16}{:>16}", "warm, server boot", "-", boot_ns);
    println!(
        "\nartifact boot uses {:.1}% fewer first-request translate calls than cold",
        reduction * 100.0
    );

    let json = Json::obj([
        ("bench", Json::str("artifact_boot")),
        ("smoke", Json::from(u64::from(smoke))),
        ("workload", Json::str("mcf/tiny")),
        ("artifact_bytes", Json::from(size as u64)),
        ("artifact_blocks", Json::from(blocks as u64)),
        ("artifact_traces", Json::from(traces as u64)),
        ("seal_ns", Json::from(seal_ns as u64)),
        ("boot_ns", Json::from(boot_ns as u64)),
        ("cold_translate_calls", Json::from(cold_tc)),
        ("cold_first_request_ns", Json::from(cold_ns as u64)),
        ("warm_translate_calls", Json::from(warm_tc)),
        ("warm_first_request_ns", Json::from(warm_ns as u64)),
        ("translate_reduction", Json::from(reduction)),
        ("outputs_identical", Json::from(true)),
    ]);
    std::fs::write("BENCH_artifact.json", format!("{json}\n")).expect("write BENCH_artifact.json");
    println!("wrote BENCH_artifact.json");

    // The acceptance gate (ISSUE 7): an artifact boot must remove ≥ 90%
    // of first-request translate calls. A sealed artifact should hit
    // 100% — zero live translation — and the serve tests pin that
    // exactly; 90% is the floor this bench enforces under any drift.
    assert!(
        warm_tc == 0,
        "artifact-booted first request still translated {warm_tc} blocks"
    );
    assert!(
        reduction >= 0.90,
        "artifact boot only reduced translate calls by {:.1}% (< 90% floor)",
        reduction * 100.0
    );
}
