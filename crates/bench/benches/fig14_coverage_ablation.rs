//! Figure 14 — dynamic-coverage contribution of each parameterization
//! factor: opcode, addressing mode, condition-flag delegation.

use pdbt_bench::{header, row, Config, Experiment};
use pdbt_workloads::{Benchmark, Scale};

fn main() {
    let exp = Experiment::new(Scale::full());
    header(
        "Fig 14: coverage by factor",
        &["w/o para.", "opcode", "addr-mode", "condition"],
    );
    let mut means = [0.0f64; 4];
    let configs = [
        Config::WoPara,
        Config::Opcode,
        Config::OpcodeAddr,
        Config::Para,
    ];
    for b in Benchmark::ALL {
        let cov: Vec<f64> = configs
            .iter()
            .map(|c| exp.run(*c, b).coverage() * 100.0)
            .collect();
        println!(
            "{}",
            row(
                b.name(),
                &cov.iter().map(|c| format!("{c:.1}%")).collect::<Vec<_>>()
            )
        );
        for (m, c) in means.iter_mut().zip(&cov) {
            *m += c;
        }
    }
    let n = Benchmark::ALL.len() as f64;
    println!(
        "{}",
        row(
            "mean",
            &means
                .iter()
                .map(|m| format!("{:.1}%", m / n))
                .collect::<Vec<_>>()
        )
    );
    println!("\npaper: 69.7 → 79.8 → 87.0 → 95.5");
}
