//! Figure 16 — dynamic coverage as the training set shrinks: randomly
//! selected 1–8 training benchmarks, applied to the remaining ones,
//! averaged over 5 repetitions (paper §V-C).

use pdbt_bench::{Config, Experiment};
use pdbt_core::derive::{derive, DeriveConfig};
use pdbt_core::RuleSet;
use pdbt_symexec::CheckOptions;
use pdbt_workloads::{run_dbt, Benchmark, Scale};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let exp = Experiment::new(Scale::full());
    let _ = Config::ALL; // context shared with the other harnesses
    println!("\n=== Fig 16: coverage vs training-set size (5 reps) ===");
    println!("{:<6}{:>14}{:>14}", "size", "w/o para.", "para.");
    for size in 1..=8usize {
        let (mut wo_acc, mut pa_acc, mut n) = (0.0f64, 0.0f64, 0u32);
        for rep in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(0xf16 + rep * 97 + size as u64);
            let mut order: Vec<usize> = (0..12).collect();
            order.shuffle(&mut rng);
            let (train, test) = order.split_at(size);
            let mut learned = RuleSet::new();
            for i in train {
                learned.merge(exp.per_rules[*i].clone());
            }
            let (full, _) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
            for i in test {
                let w = &exp.suite[*i];
                let wo = run_dbt(w, Some(learned.clone()), false).expect("runs");
                let pa = run_dbt(w, Some(full.clone()), true).expect("runs");
                wo_acc += wo.metrics.coverage() * 100.0;
                pa_acc += pa.metrics.coverage() * 100.0;
                n += 1;
            }
        }
        println!(
            "{:<6}{:>13.1}%{:>13.1}%",
            size,
            wo_acc / f64::from(n),
            pa_acc / f64::from(n)
        );
    }
    let _ = Benchmark::ALL;
    println!("\npaper shape: para. always above w/o para.; both saturate around 6 programs");
}
