//! Table III — rule-count comparison: learned rules, parameterized-rule
//! classes after each dimension, and the total applicable (instantiated)
//! rules; plus the instructions that remain uncoverable (§V-B2).

use pdbt_bench::Experiment;
use pdbt_core::derive::{derive, DeriveConfig};
use pdbt_core::RuleSet;
use pdbt_symexec::CheckOptions;
use pdbt_workloads::Scale;
use std::collections::BTreeSet;

fn main() {
    let exp = Experiment::new(Scale::full());
    // Union over the whole suite, as the paper reports for Table III.
    let mut learned = RuleSet::new();
    for r in &exp.per_rules {
        learned.merge(r.clone());
    }
    let (full, stats) = derive(&learned, DeriveConfig::full(), CheckOptions::default());
    println!("\n=== Table III: rule number comparison ===");
    println!("{:<44}{:>10}", "Orig. learned rules", stats.learned);
    println!(
        "{:<44}{:>10}",
        "  + learned sequence rules (not param.)",
        learned.seq_len()
    );
    println!(
        "{:<44}{:>10}",
        "Opcode para. (rule classes)", stats.opcode_param_rules
    );
    println!(
        "{:<44}{:>10}",
        "Addressing mode para. (rule classes)", stats.addrmode_param_rules
    );
    println!(
        "{:<44}{:>10}",
        "Instantiated (applicable) rules", stats.instantiated
    );
    println!(
        "{:<44}{:>10}",
        "  derived by parameterization", stats.derived
    );
    println!(
        "{:<44}{:>10}",
        "  derivations rejected by verification", stats.rejected
    );
    println!("\npaper: 2724 learned → 2401 opcode → 1805 addr-mode; 86423 instantiated");

    // Statically scan the suite for instructions no rule can cover.
    let mut uncovered: BTreeSet<&'static str> = BTreeSet::new();
    for w in &exp.suite {
        for inst in w.pair.guest.program.insts() {
            if full.lookup(inst).is_none() {
                uncovered.insert(inst.op.mnemonic());
            }
        }
    }
    println!("\nstatic uncoverable opcodes across the suite:");
    let list: Vec<&str> = uncovered.into_iter().collect();
    println!("  {}", list.join(", "));
    println!("paper: push, pop, bl, b, mla, umla, clz (b partially via delegation)");
}
