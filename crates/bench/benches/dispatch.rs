//! Dispatch hot-path wall-clock: chained dispatch (direct-mapped jump
//! cache + block chaining + hot-trace superblocks) versus unchained
//! dispatch versus the pure reference interpreter, over a hot-loop
//! guest whose blocks are short enough that dispatch overhead matters.
//!
//! Unlike the figure/table harnesses this one measures *wall-clock*,
//! not the host-instruction proxy: chaining does not change how many
//! host instructions retire per guest instruction, it removes the
//! dispatcher's per-block hash probe, lock, and metric folding between
//! them. Correctness is asserted, not sampled: both engine
//! configurations must produce identical guest output and identical
//! `guest_retired`, and both must match the reference interpreter.
//!
//! Emits `BENCH_dispatch.json` (machine-readable) next to the printed
//! table. `PDBT_BENCH_SMOKE=1` shrinks the workload for CI smoke runs.

use pdbt_isa_arm::{builders as g, Cpu as GuestCpu, Operand as O, Program, Reg};
use pdbt_obs::json::Json;
use pdbt_runtime::{Engine, EngineConfig, Report, RunSetup};
use std::time::Instant;

/// Timed batches per configuration; the fastest is reported.
const BATCHES: usize = 5;

/// A two-level loop whose inner body spans three short chained blocks
/// (the unconditional branch splits the body), so steady-state
/// execution crosses a block boundary on every handful of guest
/// instructions — the worst case for dispatcher overhead and the best
/// case for chaining and trace promotion.
fn hot_loop_program(base: u32, shift: u32) -> Program {
    Program::new(
        0x1000,
        vec![
            // r0 = outer counter (base << shift — the immediate field
            // is byte-sized), r2 = accumulator.
            g::mov(Reg::R0, O::Imm(base)),
            g::lsl(Reg::R0, Reg::R0, O::Imm(shift)),
            g::mov(Reg::R2, O::Imm(0)),
            // outer head: r1 = inner counter.
            g::mov(Reg::R1, O::Imm(50)),
            // inner head (block 1): accumulate, then a block-splitting jump.
            g::add(Reg::R2, Reg::R2, O::Reg(Reg::R1)),
            g::b(pdbt_isa::Cond::Al, 4),
            // block 2: mix in more ALU work, then fall into the latch.
            g::eor(Reg::R3, Reg::R2, O::Imm(0x55)),
            g::add(Reg::R2, Reg::R2, O::Imm(1)),
            g::b(pdbt_isa::Cond::Al, 4),
            // block 3 (latch): count down and loop.
            g::sub(Reg::R1, Reg::R1, O::Imm(1)).with_s(),
            g::b(pdbt_isa::Cond::Ne, -24),
            // outer latch.
            g::sub(Reg::R0, Reg::R0, O::Imm(1)).with_s(),
            g::b(pdbt_isa::Cond::Ne, -36),
            g::mov(Reg::R0, O::Reg(Reg::R2)),
            g::svc(1),
            g::svc(0),
        ],
    )
}

fn setup() -> RunSetup {
    RunSetup::basic(0x10_0000, 0x1000, 0x8_0000, 0x1000)
}

/// Best-of-batches wall clock for one engine configuration, plus the
/// last run's report. A fresh engine per run: translation cost is part
/// of dispatch reality, and the jump cache / trace table must be cold.
fn time_engine(prog: &Program, chaining: bool, traces: bool) -> (u128, Report) {
    let cfg = EngineConfig {
        chaining,
        traces,
        ..EngineConfig::default()
    };
    let mut best = u128::MAX;
    let mut report = None;
    for _ in 0..BATCHES {
        let mut engine = Engine::new(None, cfg);
        let start = Instant::now();
        let r = engine.run(prog, &setup()).expect("hot loop runs");
        best = best.min(start.elapsed().as_nanos());
        report = Some(r);
    }
    (best, report.unwrap())
}

/// Best-of-batches wall clock for the reference interpreter, plus its
/// output and retired-instruction count.
fn time_interp(prog: &Program) -> (u128, Vec<u32>, u64) {
    let mut best = u128::MAX;
    let mut out = (Vec::new(), 0);
    for _ in 0..BATCHES {
        let mut cpu = GuestCpu::new();
        let start = Instant::now();
        let stats = pdbt_isa_arm::run(&mut cpu, prog, u64::MAX).expect("reference runs");
        best = best.min(start.elapsed().as_nanos());
        out = (cpu.output, stats.executed);
    }
    (best, out.0, out.1)
}

fn main() {
    let smoke = std::env::var("PDBT_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let (base, shift) = if smoke { (200, 0) } else { (250, 4) };
    let outer = base << shift;
    let prog = hot_loop_program(base, shift);

    let (interp_ns, interp_out, interp_retired) = time_interp(&prog);
    let (unchained_ns, unchained) = time_engine(&prog, false, false);
    let (chained_ns, chained) = time_engine(&prog, true, true);

    // Correctness gates: bit-identical architectural results across all
    // three executions.
    assert_eq!(chained.output, unchained.output, "guest output diverged");
    assert_eq!(chained.output, interp_out, "DBT diverged from reference");
    assert_eq!(
        chained.metrics.guest_retired, unchained.metrics.guest_retired,
        "guest_retired diverged"
    );
    assert_eq!(
        chained.metrics.guest_retired, interp_retired,
        "guest_retired diverged from reference"
    );
    let d = &chained.obs.dispatch;
    assert!(d.chain_followed > 0, "chaining never engaged");
    assert!(d.traces_formed > 0, "no superblock formed");
    assert!(d.trace_execs > 0, "superblock never executed");

    let reduction = 1.0 - chained_ns as f64 / unchained_ns as f64;
    println!("\n=== Dispatch hot path: wall-clock (hot loop, outer={outer}) ===");
    println!("{:<24}{:>14}  notes", "config", "ns (best)");
    println!("{:<24}{:>14}", "interpreter", interp_ns);
    println!("{:<24}{:>14}", "dbt/unchained", unchained_ns);
    println!(
        "{:<24}{:>14}  {:.1}% faster, {} chains followed, {} traces, {} superblock execs",
        "dbt/chained",
        chained_ns,
        reduction * 100.0,
        d.chain_followed,
        d.traces_formed,
        d.trace_execs
    );

    let json = Json::obj([
        ("bench", Json::str("dispatch")),
        ("smoke", Json::from(u64::from(smoke))),
        ("outer_iters", Json::from(u64::from(outer))),
        ("guest_retired", Json::from(chained.metrics.guest_retired)),
        ("interp_ns", Json::from(interp_ns as u64)),
        ("unchained_ns", Json::from(unchained_ns as u64)),
        ("chained_ns", Json::from(chained_ns as u64)),
        ("reduction", Json::from(reduction)),
        (
            "outputs_identical",
            Json::from(u64::from(chained.output == unchained.output)),
        ),
        ("jump_cache_hits", Json::from(d.jump_cache_hits)),
        ("chain_followed", Json::from(d.chain_followed)),
        ("traces_formed", Json::from(d.traces_formed)),
        ("trace_execs", Json::from(d.trace_execs)),
    ]);
    std::fs::write("BENCH_dispatch.json", format!("{json}\n")).expect("write BENCH_dispatch.json");
    println!("\nwrote BENCH_dispatch.json");

    // The acceptance gate: ≥ 20% wall-clock reduction. Smoke mode still
    // requires a win but tolerates CI timer noise on the tiny workload.
    let floor = if smoke { 0.0 } else { 0.20 };
    assert!(
        reduction >= floor,
        "chained dispatch reduced wall-clock by {:.1}% (< {:.0}% floor)",
        reduction * 100.0,
        floor * 100.0
    );
}
