//! Figure 13 — host instructions executed per guest instruction under
//! qemu4.1, the learning baseline, and the parameterized system.

use pdbt_bench::{geomean, header, row, Config, Experiment};
use pdbt_workloads::{Benchmark, Scale};

fn main() {
    let exp = Experiment::new(Scale::full());
    header(
        "Fig 13: host instrs per guest instr",
        &["qemu4.1", "w/o para.", "para."],
    );
    let (mut q, mut w, mut p) = (Vec::new(), Vec::new(), Vec::new());
    for b in Benchmark::ALL {
        let rq = exp.run(Config::Qemu, b).total_ratio();
        let rw = exp.run(Config::WoPara, b).total_ratio();
        let rp = exp.run(Config::Para, b).total_ratio();
        println!(
            "{}",
            row(
                b.name(),
                &[format!("{rq:.2}"), format!("{rw:.2}"), format!("{rp:.2}")]
            )
        );
        q.push(rq);
        w.push(rw);
        p.push(rp);
    }
    println!(
        "{}",
        row(
            "geomean",
            &[
                format!("{:.2}", geomean(&q)),
                format!("{:.2}", geomean(&w)),
                format!("{:.2}", geomean(&p)),
            ]
        )
    );
    println!("\npaper averages: qemu 8.18, w/o para 7.51, para 5.66");
}
