//! Figure 15 — speedup contribution of each parameterization factor.

use pdbt_bench::{geomean, header, row, speedup, Config, Experiment};
use pdbt_workloads::{Benchmark, Scale};

fn main() {
    let exp = Experiment::new(Scale::full());
    header(
        "Fig 15: speedup over qemu4.1 by factor",
        &["w/o para.", "opcode", "addr-mode", "condition"],
    );
    let configs = [
        Config::WoPara,
        Config::Opcode,
        Config::OpcodeAddr,
        Config::Para,
    ];
    let mut all: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for b in Benchmark::ALL {
        let q = exp.run(Config::Qemu, b);
        let sp: Vec<f64> = configs
            .iter()
            .map(|c| speedup(&q, &exp.run(*c, b)))
            .collect();
        println!(
            "{}",
            row(
                b.name(),
                &sp.iter().map(|s| format!("{s:.2}")).collect::<Vec<_>>()
            )
        );
        for (acc, s) in all.iter_mut().zip(&sp) {
            acc.push(*s);
        }
    }
    println!(
        "{}",
        row(
            "geomean",
            &all.iter()
                .map(|v| format!("{:.2}", geomean(v)))
                .collect::<Vec<_>>()
        )
    );
    println!("\npaper: 1.04 → 1.13 → 1.22 → 1.29");
}
