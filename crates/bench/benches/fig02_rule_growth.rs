//! Figure 2 — number of learned rules as training benchmarks are added
//! one at a time (perlbench first, as in the paper's footnote 2).

use pdbt_bench::Experiment;
use pdbt_core::RuleSet;
use pdbt_workloads::Scale;

fn main() {
    let exp = Experiment::new(Scale::full());
    println!("\n=== Fig 2: learned-rule growth with training-set size ===");
    println!("{:<6}{:>14}{:>12}", "n", "benchmark", "rules");
    let mut merged = RuleSet::new();
    for (i, (w, rules)) in exp.suite.iter().zip(&exp.per_rules).enumerate() {
        merged.merge(rules.clone());
        println!("{:<6}{:>14}{:>12}", i + 1, w.bench.name(), merged.len());
    }
    println!("\npaper shape: growth slows sharply after ~6 benchmarks");
}
