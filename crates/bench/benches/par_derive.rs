//! Derive-phase wall-clock: `derive_jobs` at `jobs=1` (serial) versus
//! `jobs=4` over the full tiny-suite learned set, plus engine prewarm
//! timing at both worker counts.
//!
//! The point of this harness is the *equivalence* column, not the
//! speedup one: the parallel pipeline must produce a byte-identical
//! serialized rule set and identical funnel stats. Timings are reported
//! for inspection only — CI machines may expose a single hardware
//! thread, where `jobs=4` legitimately costs slightly more than serial.

use pdbt_bench::{header, row, Experiment};
use pdbt_core::{derive_jobs, save_rules, DeriveConfig, RuleSet};
use pdbt_runtime::{Engine, EngineConfig};
use pdbt_symexec::CheckOptions;
use pdbt_workloads::Scale;
use std::time::Instant;

/// Timed batches per configuration; the fastest is reported.
const BATCHES: usize = 3;

fn time_derive(learned: &RuleSet, jobs: usize) -> (u128, RuleSet) {
    let mut best = u128::MAX;
    let mut out = None;
    for _ in 0..BATCHES {
        let start = Instant::now();
        let (rules, _) = derive_jobs(learned, DeriveConfig::full(), CheckOptions::default(), jobs);
        best = best.min(start.elapsed().as_micros());
        out = Some(rules);
    }
    (best, out.unwrap())
}

fn time_prewarm(rules: &RuleSet, jobs: usize) -> (u128, usize) {
    let exp = Experiment::new(Scale::tiny());
    let mut best = u128::MAX;
    let mut blocks = 0;
    for _ in 0..BATCHES {
        let mut total = 0u128;
        blocks = 0;
        for w in &exp.suite {
            let cfg = EngineConfig {
                jobs,
                ..EngineConfig::default()
            };
            let mut engine = Engine::new(Some(rules.clone()), cfg);
            let start = Instant::now();
            blocks += engine.prewarm(&w.pair.guest.program);
            total += start.elapsed().as_micros();
        }
        best = best.min(total);
    }
    (best, blocks)
}

fn main() {
    let exp = Experiment::new(Scale::tiny());
    let mut learned = RuleSet::new();
    for r in &exp.per_rules {
        learned.merge(r.clone());
    }

    let (serial_us, serial_rules) = time_derive(&learned, 1);
    let (par_us, par_rules) = time_derive(&learned, 4);
    let identical = save_rules(&serial_rules) == save_rules(&par_rules);
    assert!(identical, "jobs=4 derive diverged from jobs=1");

    let (warm1_us, blocks1) = time_prewarm(&serial_rules, 1);
    let (warm4_us, blocks4) = time_prewarm(&serial_rules, 4);
    assert_eq!(blocks1, blocks4, "prewarm block count depends on jobs");

    header(
        "Parallel pipeline: derive + prewarm wall-clock (tiny suite)",
        &["jobs=1 us", "jobs=4 us", "identical"],
    );
    println!(
        "{}",
        row(
            "derive (parameterize+verify)",
            &[
                serial_us.to_string(),
                par_us.to_string(),
                String::from("yes"),
            ],
        )
    );
    println!(
        "{}",
        row(
            &format!("prewarm ({blocks1} blocks)"),
            &[
                warm1_us.to_string(),
                warm4_us.to_string(),
                String::from("yes"),
            ],
        )
    );
    println!(
        "\n{} applicable rules; timings are best of {BATCHES} batches and \
         depend on hardware thread count — equivalence is the invariant.",
        serial_rules.len()
    );
}
