//! Fleet sync: what peer replication is worth to a follower's first
//! request.
//!
//! Drives two real `pdbt-serve` daemons over loopback TCP. The leader
//! starts cold and is warmed by one `mcf/tiny` request — paying the
//! full translation cost, metered with the server-lifetime
//! `translate_calls` counter. A follower then boots with
//! `peers = [leader]`: its boot pull streams the leader's sealed
//! partition over `ART_LIST`/`ART_PULL`, and its own first request for
//! the same image must translate (almost) nothing.
//!
//! Correctness is asserted, not sampled: leader and follower must
//! return identical guest output, and the follower must report the
//! partition pulled and adopted before its request arrives.
//!
//! The acceptance gate is the replication claim itself: the follower
//! must answer its first request with ≥ 90% fewer translate calls than
//! the cold leader did (in practice 100% — a pulled artifact
//! rehydrates every block and trace).
//!
//! Emits `BENCH_fleet.json`. `PDBT_BENCH_SMOKE=1` is recorded in the
//! artifact so CI trend lines can be told apart from dev runs; the
//! phases are identical either way (tiny scale is already CI-sized,
//! and the translate-call gate is scheduling-independent, unlike
//! wall-clock, which is informational only).

use pdbt_obs::json::Json;
use pdbt_serve::{ping, shutdown, submit, ServeConfig, Server};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(300);
const JOBS: usize = 2;

fn spawn_server(peers: Vec<String>) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            jobs: JOBS,
            peers,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        server.serve().expect("serve");
    });
    (addr, handle)
}

/// Submits the mcf/tiny request, returning wall-clock ns and guest output.
fn first_request(addr: SocketAddr, id: u64) -> (u128, Json) {
    let req = Json::obj([
        ("id", Json::from(id)),
        ("workload", Json::str("mcf")),
        ("scale", Json::str("tiny")),
    ]);
    let start = Instant::now();
    let resp = submit(addr, &req, TIMEOUT).expect("submit");
    let elapsed = start.elapsed().as_nanos();
    assert_eq!(
        resp.get("outcome").and_then(Json::as_str),
        Some("completed"),
        "request {id} did not complete: {resp}"
    );
    let output = resp
        .get("report")
        .and_then(|r| r.get("output"))
        .expect("report.output")
        .clone();
    (elapsed, output)
}

/// Server-lifetime translate-call count, via PING.
fn translate_calls(addr: SocketAddr) -> u64 {
    ping(addr, TIMEOUT)
        .expect("ping")
        .get("server")
        .and_then(|s| s.get("translate_calls"))
        .and_then(Json::as_u64)
        .expect("server.translate_calls")
}

fn main() {
    let smoke = std::env::var("PDBT_BENCH_SMOKE").is_ok_and(|v| v != "0");

    // Leader: cold boot, warmed by one first request that pays the
    // full translation cost.
    let (leader, leader_handle) = spawn_server(Vec::new());
    let (cold_ns, leader_out) = first_request(leader, 0);
    let cold_tc = translate_calls(leader);
    assert!(cold_tc > 0, "leader translated nothing — vacuous");

    // Follower: `bind` runs the boot pull before returning, so the
    // boot wall-clock below includes the whole transfer + adoption.
    let boot_start = Instant::now();
    let (follower, follower_handle) = spawn_server(vec![leader.to_string()]);
    let boot_ns = boot_start.elapsed().as_nanos();
    let pong = ping(follower, TIMEOUT).expect("ping");
    let fleet = pong.get("fleet").expect("fleet section");
    let f = |name: &str| fleet.get(name).and_then(Json::as_u64).expect(name);
    assert_eq!(f("pulled"), 1, "follower did not pull at boot: {pong}");
    assert_eq!(f("adopted"), 1, "follower did not adopt at boot: {pong}");
    assert_eq!(f("rejected"), 0);
    let transfer_bytes = f("bytes");

    let (warm_ns, follower_out) = first_request(follower, 1);
    let warm_tc = translate_calls(follower);

    shutdown(follower, TIMEOUT).expect("shutdown follower");
    follower_handle.join().unwrap();
    shutdown(leader, TIMEOUT).expect("shutdown leader");
    leader_handle.join().unwrap();

    // Correctness gate: the replicated partition served the same guest
    // answers the leader computed.
    assert_eq!(
        leader_out, follower_out,
        "guest output diverged between leader and follower"
    );

    let reduction = 1.0 - warm_tc as f64 / cold_tc as f64;

    println!(
        "\n=== pdbt fleet sync: cold leader vs replicated follower first request (mcf/tiny) ==="
    );
    println!("transfer: {transfer_bytes} bytes pulled and adopted at follower boot");
    println!("{:<28}{:>16}{:>16}", "phase", "translate_calls", "wall ns");
    println!(
        "{:<28}{:>16}{:>16}",
        "leader, first request", cold_tc, cold_ns
    );
    println!(
        "{:<28}{:>16}{:>16}",
        "follower, first request", warm_tc, warm_ns
    );
    println!(
        "{:<28}{:>16}{:>16}",
        "follower, boot incl. pull", "-", boot_ns
    );
    println!(
        "\npeer replication removes {:.1}% of the follower's first-request translate calls",
        reduction * 100.0
    );

    let json = Json::obj([
        ("bench", Json::str("fleet_sync")),
        ("smoke", Json::from(u64::from(smoke))),
        ("workload", Json::str("mcf/tiny")),
        ("transfer_bytes", Json::from(transfer_bytes)),
        ("boot_ns", Json::from(boot_ns as u64)),
        ("cold_translate_calls", Json::from(cold_tc)),
        ("cold_first_request_ns", Json::from(cold_ns as u64)),
        ("warm_translate_calls", Json::from(warm_tc)),
        ("warm_first_request_ns", Json::from(warm_ns as u64)),
        ("translate_reduction", Json::from(reduction)),
        ("outputs_identical", Json::from(true)),
    ]);
    std::fs::write("BENCH_fleet.json", format!("{json}\n")).expect("write BENCH_fleet.json");
    println!("wrote BENCH_fleet.json");

    // The acceptance gate (ISSUE 10): replication must remove ≥ 90% of
    // the follower's first-request translate calls. A pulled artifact
    // should hit 100% — zero live translation — and `tests/fleet.rs`
    // pins that exactly; 90% is the floor this bench enforces under
    // any drift.
    assert!(
        warm_tc == 0,
        "replicated follower still translated {warm_tc} blocks on its first request"
    );
    assert!(
        reduction >= 0.90,
        "replication only reduced translate calls by {:.1}% (< 90% floor)",
        reduction * 100.0
    );
}
