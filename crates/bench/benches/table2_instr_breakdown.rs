//! Table II — where executed host instructions go: rule-translated core,
//! QEMU-translated core, guest-register data transfer, and control
//! stubs, per guest instruction.

use pdbt_bench::{class_ratios, header, row, Config, Experiment};
use pdbt_workloads::{Benchmark, Scale};

fn main() {
    let exp = Experiment::new(Scale::full());
    header(
        "Table II: host instructions per guest instruction (para. config)",
        &["rule", "qemu", "data", "control", "rule tot", "qemu tot"],
    );
    let mut sums = [0.0f64; 6];
    for b in Benchmark::ALL {
        let p = exp.run(Config::Para, b);
        let q = exp.run(Config::Qemu, b);
        let [rc, qc, dt, ct] = class_ratios(&p);
        let ptotal = p.total_ratio();
        let qtotal = q.total_ratio();
        println!(
            "{}",
            row(
                b.name(),
                &[
                    format!("{rc:.2}"),
                    format!("{qc:.2}"),
                    format!("{dt:.2}"),
                    format!("{ct:.2}"),
                    format!("{ptotal:.2}"),
                    format!("{qtotal:.2}"),
                ]
            )
        );
        for (s, v) in sums.iter_mut().zip([rc, qc, dt, ct, ptotal, qtotal]) {
            *s += v;
        }
    }
    let n = Benchmark::ALL.len() as f64;
    println!(
        "{}",
        row(
            "Average",
            &sums
                .iter()
                .map(|s| format!("{:.2}", s / n))
                .collect::<Vec<_>>()
        )
    );
    println!("\npaper averages: rule 0.97, qemu 3.49, data 2.02, control 2.68, totals 5.66 / 8.18");
}
