//! Figure 11 — speedup over QEMU 4.1: learning baseline (`w/o para.`)
//! vs the parameterized system (`para.`).

use pdbt_bench::{geomean, header, row, speedup, Config, Experiment};
use pdbt_workloads::{Benchmark, Scale};

fn main() {
    let exp = Experiment::new(Scale::full());
    header("Fig 11: speedup over qemu4.1", &["w/o para.", "para."]);
    let mut wo = Vec::new();
    let mut pa = Vec::new();
    for b in Benchmark::ALL {
        let q = exp.run(Config::Qemu, b);
        let w = exp.run(Config::WoPara, b);
        let p = exp.run(Config::Para, b);
        let (sw, sp) = (speedup(&q, &w), speedup(&q, &p));
        println!(
            "{}",
            row(b.name(), &[format!("{sw:.2}"), format!("{sp:.2}")])
        );
        wo.push(sw);
        pa.push(sp);
    }
    println!(
        "{}",
        row(
            "geomean",
            &[
                format!("{:.2}", geomean(&wo)),
                format!("{:.2}", geomean(&pa))
            ]
        )
    );
    println!(
        "\npara/wo-para geomean: {:.2}  (paper: w/o 1.04x, para 1.29x, ratio 1.24x)",
        geomean(&pa) / geomean(&wo)
    );
}
