//! Design-choice ablation — the condition-flag delegation window
//! (paper §IV-D fixes it at 3 host-side instructions; we sweep it).

use pdbt_bench::{speedup, Config, Experiment};
use pdbt_runtime::{Engine, EngineConfig};
use pdbt_workloads::{Benchmark, Scale};

fn main() {
    let exp = Experiment::new(Scale::full());
    println!("\n=== Ablation: delegation window size ===");
    println!("{:<8}{:>12}{:>12}", "window", "coverage", "speedup");
    let target = Benchmark::Libquantum; // the flag-coupled benchmark
    let q = exp.run(Config::Qemu, target);
    for window in [0usize, 1, 3, 8] {
        let (rules, _) = exp.rules_for(Config::Para, target);
        let mut cfg = EngineConfig::default();
        cfg.translate.flag_delegation = true;
        cfg.translate.window = window;
        let mut engine = Engine::new(rules, cfg);
        let w = exp.suite.iter().find(|w| w.bench == target).unwrap();
        let report = engine.run(&w.pair.guest.program, &w.setup()).expect("runs");
        println!(
            "{:<8}{:>11.1}%{:>12.2}",
            window,
            report.metrics.coverage() * 100.0,
            speedup(&q, &report.metrics)
        );
    }
    println!("\nexpectation: window 0 loses the delegated branches; ≥1 captures the");
    println!("adjacent producer idiom; larger windows add little (paper fixes 3)");
}
