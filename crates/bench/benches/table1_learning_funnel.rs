//! Table I — the learning funnel: statements → candidates → learned →
//! unique rules, per benchmark (paper §II-B).

use pdbt_bench::{header, row, Experiment};
use pdbt_workloads::Scale;

fn main() {
    let exp = Experiment::new(Scale::full());
    header(
        "Table I: rules from the enhanced learning approach",
        &["statement", "candidate", "learned", "unique"],
    );
    let (mut ts, mut tc, mut tl, mut tu) = (0usize, 0usize, 0usize, 0usize);
    for (bench, s) in &exp.funnels {
        println!(
            "{}",
            row(
                bench.name(),
                &[
                    s.statements.to_string(),
                    s.candidates.to_string(),
                    s.learned.to_string(),
                    s.unique.to_string(),
                ]
            )
        );
        ts += s.statements;
        tc += s.candidates;
        tl += s.learned;
        tu += s.unique;
    }
    let n = exp.funnels.len();
    println!(
        "{}",
        row(
            "Avg.",
            &[
                (ts / n).to_string(),
                (tc / n).to_string(),
                (tl / n).to_string(),
                (tu / n).to_string(),
            ]
        )
    );
    println!(
        "{}",
        row(
            "Percent%",
            &[
                "100%".to_string(),
                format!("{:.1}%", 100.0 * tc as f64 / ts as f64),
                format!("{:.1}%", 100.0 * tl as f64 / ts as f64),
                format!("{:.1}%", 100.0 * tu as f64 / ts as f64),
            ]
        )
    );
    println!("\npaper: 100% → 53.8% candidates → 22.6% learned → 1.3% unique");
}
