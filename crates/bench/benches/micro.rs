//! Criterion micro-benchmarks: translation throughput per path, rule
//! lookup + instantiation cost (the paper's §IV-D claim that the two
//! extra steps "incur very little additional overhead"), and symbolic
//! verification cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pdbt_bench::{Config, Experiment};
use pdbt_core::emit::emit_for;
use pdbt_core::key::parameterize;
use pdbt_core::ruleset::verify_combo;
use pdbt_core::HostLoc;
use pdbt_isa_arm::builders as g;
use pdbt_isa_arm::{Operand as O, Reg};
use pdbt_runtime::{translate_block, TranslateConfig};
use pdbt_symexec::CheckOptions;
use pdbt_workloads::{Benchmark, Scale};
use std::hint::black_box;

fn bench_translation(c: &mut Criterion) {
    let exp = Experiment::new(Scale::tiny());
    let w = exp
        .suite
        .iter()
        .find(|w| w.bench == Benchmark::Mcf)
        .unwrap();
    let prog = &w.pair.guest.program;
    let (rules, _) = exp.rules_for(Config::Para, Benchmark::Mcf);
    let rules = rules.unwrap();
    let cfg = TranslateConfig::default();
    c.bench_function("translate_block/qemu_path", |b| {
        b.iter(|| black_box(translate_block(prog, prog.base(), None, &cfg).unwrap()))
    });
    c.bench_function("translate_block/rule_path", |b| {
        b.iter(|| black_box(translate_block(prog, prog.base(), Some(&rules), &cfg).unwrap()))
    });
}

fn bench_lookup_instantiate(c: &mut Criterion) {
    let exp = Experiment::new(Scale::tiny());
    let (rules, _) = exp.rules_for(Config::Para, Benchmark::Mcf);
    let rules = rules.unwrap();
    let inst = g::add(Reg::R4, Reg::R4, O::Imm(5));
    c.bench_function("rule/parameterize_guest", |b| {
        b.iter(|| black_box(parameterize(black_box(&inst))))
    });
    c.bench_function("rule/hash_lookup", |b| {
        b.iter(|| black_box(rules.lookup(black_box(&inst))))
    });
    let locs = [HostLoc::Reg(pdbt_isa_x86::Reg::Ecx)];
    c.bench_function("rule/lookup_and_instantiate", |b| {
        b.iter_batched(
            || rules.lookup(&inst).unwrap(),
            |m| black_box(rules.instantiate_match(&m, &locs).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_verification(c: &mut Criterion) {
    let p = parameterize(&g::add(Reg::R4, Reg::R5, O::Reg(Reg::R6))).unwrap();
    let template = emit_for(&p.key).unwrap();
    c.bench_function("verify/derived_combo", |b| {
        b.iter(|| black_box(verify_combo(&p.key, &template, CheckOptions::default()).unwrap()))
    });
}

fn bench_lookup_scaling(c: &mut Criterion) {
    // Hash-table lookup cost vs rule-set size — the design choice behind
    // the paper's "hash algorithm is used to retrieve the translation
    // rules" (§V-A): lookup stays flat as the store grows from the
    // learned corpus to the fully parameterized one.
    let exp = Experiment::new(Scale::tiny());
    let learned = exp.learned_excluding(Benchmark::Mcf);
    let (full, _) = pdbt_core::derive::derive(
        &learned,
        pdbt_core::derive::DeriveConfig::full(),
        CheckOptions::default(),
    );
    let inst = g::eor(Reg::R4, Reg::R4, O::Reg(Reg::R5));
    let mut group = c.benchmark_group("lookup_scaling");
    group.bench_function(format!("learned_{}_rules", learned.len()), |b| {
        b.iter(|| black_box(learned.lookup(black_box(&inst))))
    });
    group.bench_function(format!("parameterized_{}_rules", full.len()), |b| {
        b.iter(|| black_box(full.lookup(black_box(&inst))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_translation,
    bench_lookup_instantiate,
    bench_verification,
    bench_lookup_scaling
);
criterion_main!(benches);
