//! Micro-benchmarks: translation throughput per path, rule lookup +
//! instantiation cost (the paper's §IV-D claim that the two extra
//! steps "incur very little additional overhead"), and symbolic
//! verification cost.
//!
//! Hand-rolled harness (`harness = false`): each benchmark is timed in
//! batches of iterations; we report the fastest batch (least noise) and
//! the mean, in ns per operation.

use pdbt_bench::{Config, Experiment};
use pdbt_core::emit::emit_for;
use pdbt_core::key::parameterize;
use pdbt_core::ruleset::verify_combo;
use pdbt_core::HostLoc;
use pdbt_isa_arm::builders as g;
use pdbt_isa_arm::{Operand as O, Reg};
use pdbt_runtime::{translate_block, TranslateConfig};
use pdbt_symexec::CheckOptions;
use pdbt_workloads::{Benchmark, Scale};
use std::hint::black_box;
use std::time::Instant;

/// Number of timed batches per benchmark.
const BATCHES: usize = 12;

/// Times `f` over `iters` calls per batch, after one warm-up batch.
/// Prints min / mean ns per call.
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    for _ in 0..iters {
        f();
    }
    let mut samples = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = start.elapsed().as_nanos() as u64 / u64::from(iters);
        samples.push(ns);
    }
    let min = samples.iter().copied().min().unwrap();
    let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
    println!("{name:<44} {min:>10} ns/op (min)  {mean:>12.1} ns/op (mean)");
}

fn bench_translation() {
    let exp = Experiment::new(Scale::tiny());
    let w = exp
        .suite
        .iter()
        .find(|w| w.bench == Benchmark::Mcf)
        .unwrap();
    let prog = &w.pair.guest.program;
    let (rules, _) = exp.rules_for(Config::Para, Benchmark::Mcf);
    let rules = rules.unwrap();
    let cfg = TranslateConfig::default();
    bench("translate_block/qemu_path", 2_000, || {
        black_box(translate_block(prog, prog.base(), None, &cfg).unwrap());
    });
    bench("translate_block/rule_path", 2_000, || {
        black_box(translate_block(prog, prog.base(), Some(&rules), &cfg).unwrap());
    });
}

fn bench_lookup_instantiate() {
    let exp = Experiment::new(Scale::tiny());
    let (rules, _) = exp.rules_for(Config::Para, Benchmark::Mcf);
    let rules = rules.unwrap();
    let inst = g::add(Reg::R4, Reg::R4, O::Imm(5));
    bench("rule/parameterize_guest", 200_000, || {
        black_box(parameterize(black_box(&inst)));
    });
    bench("rule/hash_lookup", 200_000, || {
        black_box(rules.lookup(black_box(&inst)));
    });
    let locs = [HostLoc::Reg(pdbt_isa_x86::Reg::Ecx)];
    bench("rule/lookup_and_instantiate", 100_000, || {
        let m = rules.lookup(&inst).unwrap();
        black_box(rules.instantiate_match(&m, &locs).unwrap());
    });
}

fn bench_verification() {
    let p = parameterize(&g::add(Reg::R4, Reg::R5, O::Reg(Reg::R6))).unwrap();
    let template = emit_for(&p.key).unwrap();
    bench("verify/derived_combo", 2_000, || {
        black_box(verify_combo(&p.key, &template, CheckOptions::default()).unwrap());
    });
}

fn bench_lookup_scaling() {
    // Hash-table lookup cost vs rule-set size — the design choice behind
    // the paper's "hash algorithm is used to retrieve the translation
    // rules" (§V-A): lookup stays flat as the store grows from the
    // learned corpus to the fully parameterized one.
    let exp = Experiment::new(Scale::tiny());
    let learned = exp.learned_excluding(Benchmark::Mcf);
    let (full, _) = pdbt_core::derive::derive(
        &learned,
        pdbt_core::derive::DeriveConfig::full(),
        CheckOptions::default(),
    );
    let inst = g::eor(Reg::R4, Reg::R4, O::Reg(Reg::R5));
    bench(
        &format!("lookup_scaling/learned_{}_rules", learned.len()),
        200_000,
        || {
            black_box(learned.lookup(black_box(&inst)));
        },
    );
    bench(
        &format!("lookup_scaling/parameterized_{}_rules", full.len()),
        200_000,
        || {
            black_box(full.lookup(black_box(&inst)));
        },
    );
}

fn main() {
    println!("micro-benchmarks ({BATCHES} batches, min and mean per op)");
    bench_translation();
    bench_lookup_instantiate();
    bench_verification();
    bench_lookup_scaling();
}
