//! Figure 12 — dynamic coverage with and without parameterization.

use pdbt_bench::{header, row, Config, Experiment};
use pdbt_workloads::{Benchmark, Scale};

fn main() {
    let exp = Experiment::new(Scale::full());
    header("Fig 12: dynamic coverage", &["w/o para.", "para."]);
    let (mut sw, mut sp) = (0.0, 0.0);
    for b in Benchmark::ALL {
        let w = exp.run(Config::WoPara, b).coverage() * 100.0;
        let p = exp.run(Config::Para, b).coverage() * 100.0;
        println!(
            "{}",
            row(b.name(), &[format!("{w:.1}%"), format!("{p:.1}%")])
        );
        sw += w;
        sp += p;
    }
    let n = Benchmark::ALL.len() as f64;
    println!(
        "{}",
        row(
            "mean",
            &[format!("{:.1}%", sw / n), format!("{:.1}%", sp / n)]
        )
    );
    println!("\npaper: 69.7% → 95.5%");
}
