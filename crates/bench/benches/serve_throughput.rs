//! Service throughput: what one warm shared code cache is worth.
//!
//! Drives a real `pdbt-serve` daemon over loopback TCP through four
//! phases — one cold session, one warm session, eight concurrent warm
//! sessions, and eight concurrent sessions against a second, cold
//! server — and meters translation work with the server-lifetime
//! counters (`translate_calls` is the number of actual
//! `translate_block` executions, so it is exactly the work the shared
//! cache exists to remove).
//!
//! Correctness is asserted, not sampled: every session must complete
//! with guest output identical to the cold phase-1 session.
//!
//! The acceptance gate is the amortization claim itself: a warm
//! session must retire its guest instructions with ≥ 30% fewer
//! translate calls than a cold session (in practice the reduction is
//! 100% — a fully warm cache translates nothing).
//!
//! Emits `BENCH_serve.json`. `PDBT_BENCH_SMOKE=1` is recorded in the
//! artifact so CI trend lines can be told apart from dev runs; the
//! phases are identical either way (tiny scale is already CI-sized,
//! and the translate-call gate is scheduling-independent, unlike
//! wall-clock, which is informational only).

use pdbt_obs::json::Json;
use pdbt_serve::{ping, shutdown, submit, ServeConfig, Server};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(300);
const SESSIONS: u64 = 8;

fn spawn_server(jobs: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            jobs,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        server.serve().expect("serve");
    });
    (addr, handle)
}

fn request(id: u64) -> Json {
    Json::obj([
        ("id", Json::from(id)),
        ("workload", Json::str("mcf")),
        ("scale", Json::str("tiny")),
    ])
}

/// Server-lifetime translate-call count, via PING.
fn translate_calls(addr: SocketAddr) -> u64 {
    ping(addr, TIMEOUT)
        .expect("ping")
        .get("server")
        .and_then(|s| s.get("translate_calls"))
        .and_then(Json::as_u64)
        .expect("server.translate_calls")
}

/// Submits `n` concurrent sessions, returning wall-clock ns and each
/// session's guest output.
fn run_sessions(addr: SocketAddr, n: u64, id_base: u64) -> (u128, Vec<Json>) {
    let start = Instant::now();
    let outputs: Vec<Json> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                s.spawn(move || {
                    let resp = submit(addr, &request(id_base + i), TIMEOUT).expect("submit");
                    assert_eq!(
                        resp.get("outcome").and_then(Json::as_str),
                        Some("completed"),
                        "session {i} did not complete: {resp}"
                    );
                    resp.get("report")
                        .and_then(|r| r.get("output"))
                        .expect("report.output")
                        .clone()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    (start.elapsed().as_nanos(), outputs)
}

fn main() {
    let smoke = std::env::var("PDBT_BENCH_SMOKE").is_ok_and(|v| v != "0");

    // Warm-path server: cold single, warm single, warm fleet.
    let (addr, handle) = spawn_server(SESSIONS as usize);
    let (cold1_ns, cold_out) = run_sessions(addr, 1, 0);
    let cold1_tc = translate_calls(addr);
    assert!(cold1_tc > 0, "cold session translated nothing — vacuous");

    let (warm1_ns, warm1_out) = run_sessions(addr, 1, 100);
    let warm1_tc = translate_calls(addr) - cold1_tc;

    let (warm8_ns, warm8_out) = run_sessions(addr, SESSIONS, 200);
    let warm8_tc = translate_calls(addr) - cold1_tc - warm1_tc;
    shutdown(addr, TIMEOUT).expect("shutdown");
    handle.join().unwrap();

    // Cold-fleet server: eight sessions racing a cold cache.
    let (addr2, handle2) = spawn_server(SESSIONS as usize);
    let (cold8_ns, cold8_out) = run_sessions(addr2, SESSIONS, 300);
    let cold8_tc = translate_calls(addr2);
    shutdown(addr2, TIMEOUT).expect("shutdown");
    handle2.join().unwrap();

    // Correctness gates: every session, warm or cold, produced the
    // same guest output as the cold oracle session.
    let oracle = &cold_out[0];
    for out in warm1_out.iter().chain(&warm8_out).chain(&cold8_out) {
        assert_eq!(out, oracle, "guest output diverged between sessions");
    }

    // Per-session translation work, cold vs warm.
    let cold_per_session = cold1_tc as f64;
    let warm_per_session = warm8_tc as f64 / SESSIONS as f64;
    let reduction = 1.0 - warm_per_session / cold_per_session;

    println!("\n=== pdbt-serve throughput: shared-cache amortization (mcf/tiny) ===");
    println!(
        "{:<28}{:>10}{:>16}{:>14}",
        "phase", "sessions", "translate_calls", "wall ns"
    );
    println!(
        "{:<28}{:>10}{:>16}{:>14}",
        "cold, single", 1, cold1_tc, cold1_ns
    );
    println!(
        "{:<28}{:>10}{:>16}{:>14}",
        "warm, single", 1, warm1_tc, warm1_ns
    );
    println!(
        "{:<28}{:>10}{:>16}{:>14}",
        "warm, concurrent", SESSIONS, warm8_tc, warm8_ns
    );
    println!(
        "{:<28}{:>10}{:>16}{:>14}",
        "cold, concurrent", SESSIONS, cold8_tc, cold8_ns
    );
    println!(
        "\nwarm sessions use {:.1}% fewer translate calls per session than cold",
        reduction * 100.0
    );

    let json = Json::obj([
        ("bench", Json::str("serve_throughput")),
        ("smoke", Json::from(u64::from(smoke))),
        ("workload", Json::str("mcf/tiny")),
        ("sessions", Json::from(SESSIONS)),
        ("cold1_translate_calls", Json::from(cold1_tc)),
        ("cold1_wall_ns", Json::from(cold1_ns as u64)),
        ("warm1_translate_calls", Json::from(warm1_tc)),
        ("warm1_wall_ns", Json::from(warm1_ns as u64)),
        ("warm8_translate_calls", Json::from(warm8_tc)),
        ("warm8_wall_ns", Json::from(warm8_ns as u64)),
        ("cold8_translate_calls", Json::from(cold8_tc)),
        ("cold8_wall_ns", Json::from(cold8_ns as u64)),
        ("translate_reduction", Json::from(reduction)),
        ("outputs_identical", Json::from(true)),
    ]);
    std::fs::write("BENCH_serve.json", format!("{json}\n")).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");

    // The acceptance gate (ISSUE 5): warm sessions must need ≥ 30%
    // fewer translate calls than cold ones. A fully warm cache should
    // hit 100%; 30% is the floor under any scheduling.
    assert!(
        reduction >= 0.30,
        "warm sessions only reduced translate calls by {:.1}% (< 30% floor)",
        reduction * 100.0
    );
}
