//! Host-backend wall-clock: the model interpreter (re-matching every
//! `Inst` on each execution) versus the threaded-code executor
//! (compile once per block, then run a dense array of pre-resolved op
//! structs), over the full synthetic workload suite.
//!
//! Like `dispatch.rs` this measures *wall-clock*, not the
//! host-instruction proxy: both backends retire exactly the same host
//! instructions — the threaded backend removes the per-instruction
//! decode, operand `match` and flag-kind dispatch between them. The
//! compared quantity is host-execution time: each run's wall-clock
//! minus its measured `translate_ns` (translation is backend-neutral),
//! with the threaded backend's one-off compile time left *in* — the
//! speedup is honest about its setup cost.
//!
//! Correctness is asserted, not sampled: per workload, both backends
//! must produce identical guest output, `guest_retired` and
//! `host_executed`.
//!
//! Emits `BENCH_backend.json` next to the printed table.
//! `PDBT_BENCH_SMOKE=1` shrinks to the tiny suite for CI smoke runs.

use pdbt_obs::json::Json;
use pdbt_runtime::{BackendKind, Engine, EngineConfig, Report};
use pdbt_workloads::{suite, Scale, Workload};
use std::time::Instant;

/// Timed batches per (workload, backend); the fastest is reported.
const BATCHES: usize = 5;

/// Best-of-batches host-execution time for one backend on one
/// workload: run wall-clock minus the run's own translate time. A
/// fresh engine per batch, so the threaded backend pays its per-block
/// compile inside the measurement.
fn time_backend(w: &Workload, backend: BackendKind) -> (u64, Report) {
    let cfg = EngineConfig {
        backend,
        ..EngineConfig::default()
    };
    let mut best = u64::MAX;
    let mut report = None;
    for _ in 0..BATCHES {
        let mut engine = Engine::new(None, cfg);
        let start = Instant::now();
        let r = engine.run(&w.pair.guest.program, &w.setup()).expect("runs");
        let run_ns = start.elapsed().as_nanos() as u64;
        best = best.min(run_ns.saturating_sub(r.obs.translate_ns.sum()));
        report = Some(r);
    }
    (best, report.unwrap())
}

fn main() {
    let smoke = std::env::var("PDBT_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let scale = if smoke { Scale::tiny() } else { Scale::full() };
    let workloads = suite(scale);

    println!("\n=== Host backend: execution wall-clock (workload suite) ===");
    println!(
        "{:<12}{:>14}{:>14}{:>10}  compiled",
        "benchmark", "model ns", "threaded ns", "faster"
    );
    let (mut model_total, mut threaded_total) = (0u64, 0u64);
    let mut rows = Vec::new();
    for w in &workloads {
        let (model_ns, model) = time_backend(w, BackendKind::Model);
        let (threaded_ns, threaded) = time_backend(w, BackendKind::Threaded);
        // Identity gates: same architectural run under both backends.
        assert_eq!(
            model.output,
            threaded.output,
            "{}: guest output diverged",
            w.bench.name()
        );
        assert_eq!(
            model.metrics.guest_retired,
            threaded.metrics.guest_retired,
            "{}: guest_retired diverged",
            w.bench.name()
        );
        assert_eq!(
            model.metrics.host_executed(),
            threaded.metrics.host_executed(),
            "{}: host_executed diverged",
            w.bench.name()
        );
        assert_eq!(model.obs.dispatch.compiled_blocks, 0);
        assert!(
            threaded.obs.dispatch.compiled_blocks > 0,
            "{}: nothing compiled",
            w.bench.name()
        );
        let faster = 1.0 - threaded_ns as f64 / model_ns as f64;
        println!(
            "{:<12}{:>14}{:>14}{:>9.1}%  {}",
            w.bench.name(),
            model_ns,
            threaded_ns,
            faster * 100.0,
            threaded.obs.dispatch.compiled_blocks
        );
        model_total += model_ns;
        threaded_total += threaded_ns;
        rows.push(Json::obj([
            ("benchmark", Json::str(w.bench.name())),
            ("model_ns", Json::from(model_ns)),
            ("threaded_ns", Json::from(threaded_ns)),
            ("reduction", Json::from(faster)),
            ("host_executed", Json::from(model.metrics.host_executed())),
            (
                "compiled_blocks",
                Json::from(threaded.obs.dispatch.compiled_blocks),
            ),
        ]));
    }

    let reduction = 1.0 - threaded_total as f64 / model_total as f64;
    println!(
        "{:<12}{:>14}{:>14}{:>9.1}%",
        "total",
        model_total,
        threaded_total,
        reduction * 100.0
    );

    let json = Json::obj([
        ("bench", Json::str("backend_exec")),
        ("smoke", Json::from(u64::from(smoke))),
        ("batches", Json::from(BATCHES as u64)),
        ("model_ns", Json::from(model_total)),
        ("threaded_ns", Json::from(threaded_total)),
        ("reduction", Json::from(reduction)),
        ("outputs_identical", Json::from(1u64)),
        ("workloads", Json::Arr(rows)),
    ]);
    std::fs::write("BENCH_backend.json", format!("{json}\n")).expect("write BENCH_backend.json");
    println!("\nwrote BENCH_backend.json");

    // The acceptance gate: ≥ 25% host-execution wall-clock reduction.
    // Smoke mode still runs the identity asserts but tolerates CI
    // timer noise on the tiny suite.
    let floor = if smoke { 0.0 } else { 0.25 };
    assert!(
        reduction >= floor,
        "threaded backend reduced host-execution wall-clock by {:.1}% (< {:.0}% floor)",
        reduction * 100.0,
        floor * 100.0
    );
}
