//! The experiment harness: shared context and configuration runners for
//! regenerating every table and figure of the paper's evaluation
//! (§V). Each `[[bench]]` target prints one paper artifact; see
//! DESIGN.md §5 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured records.

use pdbt_core::derive::{derive, DeriveConfig};
use pdbt_core::learning::{learn_into, FunnelStats, LearnConfig};
use pdbt_core::RuleSet;
use pdbt_runtime::{CodeClass, Metrics, Report, RunObs};
use pdbt_symexec::CheckOptions;
use pdbt_workloads::{run_dbt, suite, Benchmark, Scale, Workload};

/// The five system configurations of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// QEMU 4.1 baseline (pure lift/lower).
    Qemu,
    /// Enhanced learning-based DBT, no parameterization (`w/o para.`).
    WoPara,
    /// + opcode parameterization (Fig 14/15 stage 1).
    Opcode,
    /// + addressing-mode parameterization (stage 2).
    OpcodeAddr,
    /// + condition-flag delegation — the full system (`para.`).
    Para,
}

impl Config {
    /// All configurations in ablation order.
    pub const ALL: [Config; 5] = [
        Config::Qemu,
        Config::WoPara,
        Config::Opcode,
        Config::OpcodeAddr,
        Config::Para,
    ];

    /// The label used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Config::Qemu => "qemu4.1",
            Config::WoPara => "w/o para.",
            Config::Opcode => "opcode",
            Config::OpcodeAddr => "addr-mode",
            Config::Para => "para.",
        }
    }
}

/// Shared experiment state: the suite plus independently learned
/// per-benchmark rule sets (merged per leave-one-out target).
pub struct Experiment {
    /// The twelve workloads.
    pub suite: Vec<Workload>,
    /// Rules learned from each workload independently.
    pub per_rules: Vec<RuleSet>,
    /// Per-benchmark funnel statistics (Table I).
    pub funnels: Vec<(Benchmark, FunnelStats)>,
}

impl Experiment {
    /// Builds the suite and learns every benchmark's rules once.
    #[must_use]
    pub fn new(scale: Scale) -> Experiment {
        let suite = suite(scale);
        let mut per_rules = Vec::new();
        let mut funnels = Vec::new();
        for w in &suite {
            let mut rules = RuleSet::new();
            let stats = learn_into(&mut rules, &w.pair, &w.debug, LearnConfig::default());
            funnels.push((w.bench, stats));
            per_rules.push(rules);
        }
        Experiment {
            suite,
            per_rules,
            funnels,
        }
    }

    /// The merged learned rules of every benchmark except `exclude`
    /// (leave-one-out, §V-A).
    #[must_use]
    pub fn learned_excluding(&self, exclude: Benchmark) -> RuleSet {
        let mut out = RuleSet::new();
        for (w, r) in self.suite.iter().zip(&self.per_rules) {
            if w.bench != exclude {
                out.merge(r.clone());
            }
        }
        out
    }

    /// The rule set and delegation flag for one configuration targeting
    /// one benchmark.
    #[must_use]
    pub fn rules_for(&self, cfg: Config, target: Benchmark) -> (Option<RuleSet>, bool) {
        let check = CheckOptions::default();
        match cfg {
            Config::Qemu => (None, true),
            Config::WoPara => (Some(self.learned_excluding(target)), false),
            Config::Opcode => {
                let learned = self.learned_excluding(target);
                let (r, _) = derive(&learned, DeriveConfig::opcode_only(), check);
                (Some(r), false)
            }
            Config::OpcodeAddr => {
                let learned = self.learned_excluding(target);
                let (r, _) = derive(&learned, DeriveConfig::opcode_addrmode(), check);
                (Some(r), false)
            }
            Config::Para => {
                let learned = self.learned_excluding(target);
                let (r, _) = derive(&learned, DeriveConfig::full(), check);
                (Some(r), true)
            }
        }
    }

    /// Runs one benchmark under one configuration.
    #[must_use]
    pub fn run(&self, cfg: Config, target: Benchmark) -> Metrics {
        self.run_full(cfg, target).metrics
    }

    /// Runs one benchmark under one configuration and keeps the whole
    /// report — metrics plus the observability record (per-rule
    /// attribution, timing histograms).
    #[must_use]
    pub fn run_full(&self, cfg: Config, target: Benchmark) -> Report {
        let w = self
            .suite
            .iter()
            .find(|w| w.bench == target)
            .expect("benchmark in suite");
        let (rules, delegation) = self.rules_for(cfg, target);
        run_dbt(w, rules, delegation).expect("workload runs")
    }

    /// Runs the whole suite under one configuration and folds the
    /// results into a single aggregate: summed [`Metrics`] (via
    /// [`Metrics::merge`]) and merged observability counters.
    #[must_use]
    pub fn run_suite(&self, cfg: Config) -> (Metrics, RunObs) {
        let mut metrics = Metrics::default();
        let mut obs = RunObs::default();
        for w in &self.suite {
            let report = self.run_full(cfg, w.bench);
            metrics.merge(&report.metrics);
            obs.merge(&report.obs);
        }
        (metrics, obs)
    }
}

/// Geometric mean.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    let logs: f64 = xs.iter().map(|x| x.ln()).sum();
    (logs / xs.len() as f64).exp()
}

/// Formats one row of a fixed-width table.
#[must_use]
pub fn row(name: &str, cells: &[String]) -> String {
    let mut out = format!("{name:<12}");
    for c in cells {
        out.push_str(&format!("{c:>12}"));
    }
    out
}

/// Prints a table header.
pub fn header(title: &str, cols: &[&str]) {
    println!("\n=== {title} ===");
    let cells: Vec<String> = cols.iter().map(|c| (*c).to_string()).collect();
    println!("{}", row("benchmark", &cells));
}

/// Speedup of `cfg` over QEMU for a set of runs (host-instruction
/// proxy: lower executed count = proportionally faster, §V-B1).
#[must_use]
pub fn speedup(qemu: &Metrics, cfg: &Metrics) -> f64 {
    qemu.host_executed() as f64 / cfg.host_executed() as f64
}

/// The four Table II class ratios for a metrics record.
#[must_use]
pub fn class_ratios(m: &Metrics) -> [f64; 4] {
    [
        m.ratio(CodeClass::RuleCore),
        m.ratio(CodeClass::QemuCore),
        m.ratio(CodeClass::DataTransfer),
        m.ratio(CodeClass::Control),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn suite_aggregate_folds_attribution() {
        let exp = Experiment::new(Scale::tiny());
        let (metrics, obs) = exp.run_suite(Config::Para);
        // The merged counters decompose the merged coverage exactly.
        assert_eq!(obs.rules.total_covered(), metrics.rule_covered);
        assert_eq!(obs.block_host_len.count(), metrics.blocks_executed);
        assert_eq!(obs.block_host_len.sum(), metrics.host_retired);
        assert!(metrics.coverage() > 0.5);
    }

    #[test]
    fn experiment_runs_smallest_benchmark() {
        let exp = Experiment::new(Scale::tiny());
        assert_eq!(exp.suite.len(), 12);
        let q = exp.run(Config::Qemu, Benchmark::Mcf);
        let p = exp.run(Config::Para, Benchmark::Mcf);
        assert!(p.coverage() > 0.5);
        assert!(speedup(&q, &p) > 1.0);
    }
}
