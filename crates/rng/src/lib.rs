//! A self-contained deterministic PRNG exposing the subset of the
//! `rand` 0.8 API this workspace uses (`StdRng`, [`SeedableRng`],
//! [`Rng`], [`seq::SliceRandom`]).
//!
//! The build environment has no access to crates.io, so the workspace
//! aliases its `rand` dependency to this crate (see the root
//! `Cargo.toml`: `rand = { path = "crates/rng", package = "pdbt-rng" }`)
//! and every `use rand::…` keeps compiling unchanged. The generator is
//! xoshiro256++ seeded through SplitMix64 — a different stream than
//! `rand`'s ChaCha12-based `StdRng`, but workload generation only
//! relies on determinism per seed, never on a specific stream.

/// Seedable generators (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// The random-value interface (the subset of `rand::Rng` used here).
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value over a range, e.g. `rng.gen_range(0..10)`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (panics unless `0 ≤ p ≤ 1`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        self.gen::<f64>() < p
    }

    /// A random value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

/// Types producible uniformly from raw generator output
/// (the `Standard` distribution of `rand`).
pub trait Standard {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types [`Rng::gen_range`] can sample.
pub trait UniformInt: Copy + PartialOrd {
    /// Widens to the sampling domain.
    fn to_u64(self) -> u64;
    /// Narrows back after sampling.
    fn from_u64(v: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                // Order-preserving map into u64 (offset shifts signed
                // values into the unsigned domain).
                (self as i64).wrapping_sub(<$t>::MIN as i64) as u64
            }
            fn from_u64(v: u64) -> $t {
                (v as i64).wrapping_add(<$t>::MIN as i64) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, i32, i64, u64, usize, i8, i16);

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, n)` by rejection-free multiply-shift
/// (Lemire); bias is negligible for the small ranges used here, and a
/// widening multiply keeps it exact for ranges below 2^32.
fn below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    if n <= u64::from(u32::MAX) {
        ((u128::from(rng.next_u64() >> 32) * u128::from(n)) >> 32) as u64
    } else {
        rng.next_u64() % n
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "gen_range: empty range");
        T::from_u64(lo + below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "gen_range: empty range");
        let width = hi - lo;
        if width == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + below(rng, width + 1))
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded via SplitMix64. Deterministic, fast, and good
    /// enough statistically for workload synthesis and fuzz loops.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl Rng for &mut StdRng {
        fn next_u64(&mut self) -> u64 {
            (**self).next_u64()
        }
    }
}

/// Slice utilities (the subset of `rand::seq` used here).
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` on an empty slice).
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Everything a typical consumer imports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&w));
            let x: u8 = rng.gen_range(1..32);
            assert!((1..32).contains(&x));
            let y: u64 = rng.gen_range(0..=3);
            assert!(y <= 3);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
