//! A zero-dependency scoped worker pool for the embarrassingly parallel
//! stages of the pipeline (derived-rule verification, block
//! pre-translation).
//!
//! The build environment is offline, so this is a minimal in-tree
//! substitute for the usual data-parallelism crates, built on
//! [`std::thread::scope`]:
//!
//! * **Deterministic result ordering** — [`Pool::map`] returns results
//!   in item order regardless of which worker ran which item, so a
//!   parallel stage composes into a byte-identical pipeline as long as
//!   the mapped function is pure.
//! * **Work stealing by atomic index** — workers claim items from a
//!   shared atomic counter, so skewed per-item costs (symbolic
//!   verification ranges over orders of magnitude) still balance.
//! * **Inline serial path** — `jobs <= 1` (or a single item) runs on
//!   the calling thread with no spawn, keeping one code path for the
//!   `jobs=1` baseline the determinism tests compare against.
//!
//! Scoped threads may borrow from the caller, so mapped closures can
//! capture rule sets and programs by reference.
//!
//! # Panic semantics
//!
//! Two disciplines are offered, and the choice is part of each call
//! site's failure model:
//!
//! * **Fail-fast** — [`Pool::map`] / [`Pool::map_util`]: a panic in any
//!   worker propagates to the caller (workers are joined, so no work is
//!   leaked, but the whole map is lost). Right for stages where a panic
//!   means the pipeline's own invariants are broken.
//! * **Panic isolation** — [`Pool::map_catch`] / [`Pool::map_catch_util`]:
//!   each item runs under [`std::panic::catch_unwind`]; a panicking item
//!   yields `None` in its output slot while every other item completes,
//!   and utilization counters still count the panicked item as claimed
//!   work. Right for stages mapping over *untrusted or fault-injected*
//!   inputs (rule-combo verification), where one bad item must degrade
//!   to a counted quarantine, not an abort. The serial path catches
//!   identically, so `jobs=1` and `jobs=N` stay bit-identical even in
//!   the presence of panics.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A worker pool of fixed width.
///
/// The pool spawns scoped threads per [`Pool::map`] call rather than
/// keeping them parked: the mapped stages here are long (milliseconds
/// to seconds), so spawn cost is noise, and scoped spawning is what
/// lets closures borrow the caller's data without `Arc` plumbing.
#[derive(Debug)]
pub struct Pool {
    jobs: usize,
    /// Cumulative items completed per worker slot, across all `map`
    /// calls — the utilization signal surfaced through `pdbt-obs`.
    completed: Vec<AtomicU64>,
}

impl Pool {
    /// Creates a pool of `jobs` workers; `0` and `1` both mean serial
    /// (`0` is clamped to `1` rather than treated as "auto" — use
    /// [`Pool::auto`] for hardware-width pools), so `Pool::new(n)` for
    /// any `n` yields a usable pool with `jobs() >= 1`.
    #[must_use]
    pub fn new(jobs: usize) -> Pool {
        let jobs = jobs.max(1);
        Pool {
            jobs,
            completed: (0..jobs).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// A pool as wide as the hardware reports.
    #[must_use]
    pub fn auto() -> Pool {
        Pool::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Cumulative items completed per worker slot (index = worker).
    /// Serial maps attribute everything to slot 0.
    #[must_use]
    pub fn utilization(&self) -> Vec<u64> {
        self.completed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Maps `f` over `items`, returning results in item order.
    ///
    /// `f` must be pure for the ordering guarantee to make the output
    /// deterministic. A panic in any worker propagates to the caller.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_util(items, f).0
    }

    /// Like [`Pool::map`], additionally returning this call's items
    /// completed per worker slot (the utilization delta).
    pub fn map_util<T, R, F>(&self, items: &[T], f: F) -> (Vec<R>, Vec<u64>)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            let out: Vec<R> = items.iter().map(&f).collect();
            let n = out.len() as u64;
            self.completed[0].fetch_add(n, Ordering::Relaxed);
            let mut util = vec![0u64; self.jobs];
            util[0] = n;
            return (out, util);
        }
        let next = AtomicUsize::new(0);
        let f = &f;
        // Each worker claims items off the shared counter and collects
        // `(index, result)` pairs locally; the merge below restores item
        // order, making the output independent of scheduling.
        let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    s.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            local.push((i, f(&items[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        });
        let mut util = vec![0u64; self.jobs];
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (w, local) in per_worker.into_iter().enumerate() {
            util[w] = local.len() as u64;
            self.completed[w].fetch_add(util[w], Ordering::Relaxed);
            for (i, r) in local {
                slots[i] = Some(r);
            }
        }
        let out = slots
            .into_iter()
            .map(|r| r.expect("every item claimed exactly once"))
            .collect();
        (out, util)
    }

    /// Maps `f` over `items` with per-item panic isolation: a panicking
    /// item yields `None` in its slot, every other item completes. See
    /// the crate docs' *Panic semantics* for when to prefer this over
    /// the fail-fast [`Pool::map`].
    pub fn map_catch<T, R, F>(&self, items: &[T], f: F) -> Vec<Option<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_catch_util(items, f).0
    }

    /// Like [`Pool::map_catch`], additionally returning this call's
    /// items completed per worker slot. A panicked item still counts as
    /// completed work for its worker — the worker claimed and finished
    /// it, just without a usable result.
    pub fn map_catch_util<T, R, F>(&self, items: &[T], f: F) -> (Vec<Option<R>>, Vec<u64>)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        // Delegating keeps one scheduling implementation: the serial
        // inline path catches exactly like the threaded path, which is
        // what preserves jobs=1 vs jobs=N bit-identity under panics.
        self.map_util(items, |item| {
            catch_unwind(AssertUnwindSafe(|| f(item))).ok()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<u64> = (0..257).collect();
        let pool = Pool::new(8);
        let out = pool.map(&items, |&x| x * x);
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn parallel_matches_serial_with_skewed_costs() {
        let items: Vec<u64> = (0..100).collect();
        // Skew per-item cost so slow items interleave with fast ones.
        let work = |&x: &u64| {
            let mut acc = x;
            for _ in 0..(x % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        };
        let serial = Pool::new(1).map(&items, work);
        let parallel = Pool::new(8).map(&items, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.jobs(), 1);
        let tid = std::thread::current().id();
        let out = pool.map(&[1, 2, 3], |&x| {
            assert_eq!(std::thread::current().id(), tid, "inline on the caller");
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.jobs(), 1);
        assert_eq!(pool.map(&[5], |&x: &i32| x), vec![5]);
    }

    #[test]
    fn utilization_sums_to_item_count() {
        let items: Vec<u32> = (0..64).collect();
        let pool = Pool::new(4);
        let (_, util) = pool.map_util(&items, |&x| x);
        assert_eq!(util.len(), 4);
        assert_eq!(util.iter().sum::<u64>(), 64);
        // Cumulative counters agree after a second call.
        pool.map(&items, |&x| x);
        assert_eq!(pool.utilization().iter().sum::<u64>(), 128);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let pool = Pool::new(4);
        let out: Vec<u8> = pool.map(&[] as &[u8], |&x| x);
        assert!(out.is_empty());
    }

    /// Runs `f` with the default panic-to-stderr hook silenced, so
    /// intentional panics don't pollute test output.
    fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn panicking_worker_is_quarantined_not_fatal() {
        let items: Vec<u32> = (0..64).collect();
        let pool = Pool::new(4);
        let (out, util) = quiet_panics(|| {
            pool.map_catch_util(&items, |&x| {
                assert!(x % 9 != 0, "injected");
                x * 2
            })
        });
        for (i, slot) in out.iter().enumerate() {
            if i % 9 == 0 {
                assert_eq!(*slot, None, "item {i} should be quarantined");
            } else {
                assert_eq!(*slot, Some(i as u32 * 2));
            }
        }
        // Panicked items still count as claimed work: utilization
        // deltas and cumulative counters cover all 64 items.
        assert_eq!(util.iter().sum::<u64>(), 64);
        assert_eq!(pool.utilization().iter().sum::<u64>(), 64);
    }

    #[test]
    fn catch_variant_is_identical_serial_and_parallel() {
        let items: Vec<u32> = (0..100).collect();
        let f = |&x: &u32| {
            assert!(x % 7 != 3, "injected");
            x + 1
        };
        let serial = quiet_panics(|| Pool::new(1).map_catch(&items, f));
        let parallel = quiet_panics(|| Pool::new(8).map_catch(&items, f));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn workers_can_borrow_caller_state() {
        let table: Vec<u64> = (0..32).map(|i| i * 10).collect();
        let pool = Pool::new(4);
        let idx: Vec<usize> = (0..32).collect();
        let out = pool.map(&idx, |&i| table[i]);
        assert_eq!(out, table);
    }
}
