//! A zero-dependency scoped worker pool for the embarrassingly parallel
//! stages of the pipeline (derived-rule verification, block
//! pre-translation).
//!
//! The build environment is offline, so this is a minimal in-tree
//! substitute for the usual data-parallelism crates, built on
//! [`std::thread::scope`]:
//!
//! * **Deterministic result ordering** — [`Pool::map`] returns results
//!   in item order regardless of which worker ran which item, so a
//!   parallel stage composes into a byte-identical pipeline as long as
//!   the mapped function is pure.
//! * **Work stealing by atomic index** — workers claim items from a
//!   shared atomic counter, so skewed per-item costs (symbolic
//!   verification ranges over orders of magnitude) still balance.
//! * **Inline serial path** — `jobs <= 1` (or a single item) runs on
//!   the calling thread with no spawn, keeping one code path for the
//!   `jobs=1` baseline the determinism tests compare against.
//!
//! Scoped threads may borrow from the caller, so mapped closures can
//! capture rule sets and programs by reference.
//!
//! # Panic semantics
//!
//! Two disciplines are offered, and the choice is part of each call
//! site's failure model:
//!
//! * **Fail-fast** — [`Pool::map`] / [`Pool::map_util`]: a panic in any
//!   worker propagates to the caller (workers are joined, so no work is
//!   leaked, but the whole map is lost). Right for stages where a panic
//!   means the pipeline's own invariants are broken.
//! * **Panic isolation** — [`Pool::map_catch`] / [`Pool::map_catch_util`]:
//!   each item runs under [`std::panic::catch_unwind`]; a panicking item
//!   yields `None` in its output slot while every other item completes,
//!   and utilization counters still count the panicked item as claimed
//!   work. Right for stages mapping over *untrusted or fault-injected*
//!   inputs (rule-combo verification), where one bad item must degrade
//!   to a counted quarantine, not an abort. The serial path catches
//!   identically, so `jobs=1` and `jobs=N` stay bit-identical even in
//!   the presence of panics.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A worker pool of fixed width.
///
/// The pool spawns scoped threads per [`Pool::map`] call rather than
/// keeping them parked: the mapped stages here are long (milliseconds
/// to seconds), so spawn cost is noise, and scoped spawning is what
/// lets closures borrow the caller's data without `Arc` plumbing.
#[derive(Debug)]
pub struct Pool {
    jobs: usize,
    /// Cumulative items completed per worker slot, across all `map`
    /// calls — the utilization signal surfaced through `pdbt-obs`.
    completed: Vec<AtomicU64>,
}

impl Pool {
    /// Creates a pool of `jobs` workers; `0` and `1` both mean serial
    /// (`0` is clamped to `1` rather than treated as "auto" — use
    /// [`Pool::auto`] for hardware-width pools), so `Pool::new(n)` for
    /// any `n` yields a usable pool with `jobs() >= 1`.
    #[must_use]
    pub fn new(jobs: usize) -> Pool {
        let jobs = jobs.max(1);
        Pool {
            jobs,
            completed: (0..jobs).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// A pool as wide as the hardware reports.
    #[must_use]
    pub fn auto() -> Pool {
        Pool::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Cumulative items completed per worker slot (index = worker).
    /// Serial maps attribute everything to slot 0.
    #[must_use]
    pub fn utilization(&self) -> Vec<u64> {
        self.completed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Maps `f` over `items`, returning results in item order.
    ///
    /// `f` must be pure for the ordering guarantee to make the output
    /// deterministic. A panic in any worker propagates to the caller.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_util(items, f).0
    }

    /// Like [`Pool::map`], additionally returning this call's items
    /// completed per worker slot (the utilization delta).
    pub fn map_util<T, R, F>(&self, items: &[T], f: F) -> (Vec<R>, Vec<u64>)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            let out: Vec<R> = items.iter().map(&f).collect();
            let n = out.len() as u64;
            self.completed[0].fetch_add(n, Ordering::Relaxed);
            let mut util = vec![0u64; self.jobs];
            util[0] = n;
            return (out, util);
        }
        let next = AtomicUsize::new(0);
        let f = &f;
        // Each worker claims items off the shared counter and collects
        // `(index, result)` pairs locally; the merge below restores item
        // order, making the output independent of scheduling.
        let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    s.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            local.push((i, f(&items[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        });
        let mut util = vec![0u64; self.jobs];
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (w, local) in per_worker.into_iter().enumerate() {
            util[w] = local.len() as u64;
            self.completed[w].fetch_add(util[w], Ordering::Relaxed);
            for (i, r) in local {
                slots[i] = Some(r);
            }
        }
        let out = slots
            .into_iter()
            .map(|r| r.expect("every item claimed exactly once"))
            .collect();
        (out, util)
    }

    /// Maps `f` over `items` with per-item panic isolation: a panicking
    /// item yields `None` in its slot, every other item completes. See
    /// the crate docs' *Panic semantics* for when to prefer this over
    /// the fail-fast [`Pool::map`].
    pub fn map_catch<T, R, F>(&self, items: &[T], f: F) -> Vec<Option<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_catch_util(items, f).0
    }

    /// Like [`Pool::map_catch`], additionally returning this call's
    /// items completed per worker slot. A panicked item still counts as
    /// completed work for its worker — the worker claimed and finished
    /// it, just without a usable result.
    pub fn map_catch_util<T, R, F>(&self, items: &[T], f: F) -> (Vec<Option<R>>, Vec<u64>)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        // Delegating keeps one scheduling implementation: the serial
        // inline path catches exactly like the threaded path, which is
        // what preserves jobs=1 vs jobs=N bit-identity under panics.
        self.map_util(items, |item| {
            catch_unwind(AssertUnwindSafe(|| f(item))).ok()
        })
    }
}

/// A queued unit of work.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Shared queue state behind the mutex.
struct QueueState {
    tasks: VecDeque<Task>,
    /// Intake open: `submit` enqueues while true; `drain`/drop close it.
    open: bool,
    /// Tasks currently executing on workers.
    active: usize,
    /// Largest `tasks.len() + active` ever observed at submit time —
    /// the queue's high-water depth, a saturation signal.
    high_water: usize,
}

struct QueueInner {
    state: Mutex<QueueState>,
    /// Signaled on enqueue and close (wakes workers) and on task
    /// completion (wakes `drain`/`wait_idle`).
    cv: Condvar,
    /// Tasks completed per worker slot (utilization, like [`Pool`]).
    completed: Vec<AtomicU64>,
    /// Wall-clock nanoseconds each worker slot spent executing tasks
    /// (busy ticks; the complement of time parked on the condvar).
    busy_ns: Vec<AtomicU64>,
    /// Tasks that panicked; the panic is caught and counted, never
    /// propagated — one poisoned request must not take the queue down.
    panicked: AtomicU64,
}

thread_local! {
    /// The [`TaskQueue`] worker slot the current thread runs as, if
    /// any; lets task closures attribute work (e.g. per-worker
    /// telemetry slots) without threading an index through every call.
    static WORKER_SLOT: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// The [`TaskQueue`] worker slot of the calling thread, or `None` when
/// not running inside a queue worker.
#[must_use]
pub fn current_worker_slot() -> Option<usize> {
    WORKER_SLOT.with(|s| s.get())
}

/// A long-lived task queue: `jobs` parked worker threads pulling
/// submitted closures until the queue is drained or dropped.
///
/// [`Pool`] covers the *scoped fan-out* shape — map a pure function
/// over a slice, join before returning. A translation server needs the
/// opposite shape: work arrives over time from many connections, tasks
/// own their data (`'static`), and the workers outlive any one call.
/// `TaskQueue` is that long-lived mode:
///
/// * **Panic isolation** — a panicking task is caught and counted
///   ([`TaskQueue::panicked`]); the worker survives and takes the next
///   task. Matches `Pool::map_catch`'s discipline for untrusted input.
/// * **Graceful drain** — [`TaskQueue::drain`] closes intake, waits for
///   the backlog *and* in-flight tasks to finish, and joins the
///   workers. Dropping the queue drains it the same way (so a server
///   shutdown can't leak running sessions).
/// * **Utilization** — per-worker completed-task counters, surfaced the
///   same way as [`Pool::utilization`].
pub struct TaskQueue {
    inner: Arc<QueueInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for TaskQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskQueue")
            .field("jobs", &self.workers.len())
            .finish_non_exhaustive()
    }
}

/// Error returned by [`TaskQueue::submit`] after intake closed; the
/// rejected task is handed back so the caller can run or report it.
pub struct QueueClosed(pub Task);

impl std::fmt::Debug for QueueClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("QueueClosed(..)")
    }
}

impl std::fmt::Display for QueueClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("task queue closed")
    }
}

impl TaskQueue {
    /// Spawns a queue with `jobs` workers (`0` clamps to 1, like
    /// [`Pool::new`]).
    #[must_use]
    pub fn new(jobs: usize) -> TaskQueue {
        let jobs = jobs.max(1);
        let inner = Arc::new(QueueInner {
            state: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                open: true,
                active: 0,
                high_water: 0,
            }),
            cv: Condvar::new(),
            completed: (0..jobs).map(|_| AtomicU64::new(0)).collect(),
            busy_ns: (0..jobs).map(|_| AtomicU64::new(0)).collect(),
            panicked: AtomicU64::new(0),
        });
        let workers = (0..jobs)
            .map(|slot| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("pdbt-queue-{slot}"))
                    .spawn(move || Self::worker(&inner, slot))
                    .expect("spawn queue worker")
            })
            .collect();
        TaskQueue { inner, workers }
    }

    fn worker(inner: &QueueInner, slot: usize) {
        WORKER_SLOT.with(|s| s.set(Some(slot)));
        loop {
            let task = {
                let mut state = inner.state.lock().expect("queue lock");
                loop {
                    if let Some(t) = state.tasks.pop_front() {
                        state.active += 1;
                        break t;
                    }
                    if !state.open {
                        return;
                    }
                    state = inner.cv.wait(state).expect("queue lock");
                }
            };
            let started = std::time::Instant::now();
            if catch_unwind(AssertUnwindSafe(task)).is_err() {
                inner.panicked.fetch_add(1, Ordering::Relaxed);
            }
            inner.busy_ns[slot].fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            inner.completed[slot].fetch_add(1, Ordering::Relaxed);
            let mut state = inner.state.lock().expect("queue lock");
            state.active -= 1;
            drop(state);
            // Completion may unblock `drain`, and `notify_all` on
            // enqueue may have been consumed by another worker; wake
            // everyone and let the predicate sort it out.
            inner.cv.notify_all();
        }
    }

    /// The worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a task.
    ///
    /// # Errors
    ///
    /// [`QueueClosed`] (returning the task) once [`TaskQueue::drain`]
    /// has closed intake.
    pub fn submit(&self, task: impl FnOnce() + Send + 'static) -> Result<(), QueueClosed> {
        let mut state = self.inner.state.lock().expect("queue lock");
        if !state.open {
            return Err(QueueClosed(Box::new(task)));
        }
        state.tasks.push_back(Box::new(task));
        let depth = state.tasks.len() + state.active;
        state.high_water = state.high_water.max(depth);
        drop(state);
        self.inner.cv.notify_all();
        Ok(())
    }

    /// Tasks waiting plus tasks executing right now.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        let state = self.inner.state.lock().expect("queue lock");
        state.tasks.len() + state.active
    }

    /// Tasks whose closure panicked (caught and isolated).
    #[must_use]
    pub fn panicked(&self) -> u64 {
        self.inner.panicked.load(Ordering::Relaxed)
    }

    /// Cumulative tasks completed per worker slot.
    #[must_use]
    pub fn utilization(&self) -> Vec<u64> {
        self.inner
            .completed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Largest queue depth (waiting + executing) observed at any
    /// submit over the queue's lifetime.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.inner.state.lock().expect("queue lock").high_water
    }

    /// Wall-clock nanoseconds each worker slot has spent executing
    /// tasks (as opposed to parked waiting for work).
    #[must_use]
    pub fn busy_ns(&self) -> Vec<u64> {
        self.inner
            .busy_ns
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Blocks until no task is queued or executing, without closing
    /// intake — a barrier for callers that want to observe a quiescent
    /// queue and keep using it.
    pub fn wait_idle(&self) {
        let mut state = self.inner.state.lock().expect("queue lock");
        while !state.tasks.is_empty() || state.active > 0 {
            state = self.inner.cv.wait(state).expect("queue lock");
        }
    }

    /// Graceful shutdown: closes intake, runs every already-queued
    /// task to completion, and joins the workers. Returns the number
    /// of panicked tasks over the queue's lifetime.
    pub fn drain(mut self) -> u64 {
        self.close_and_join();
        self.panicked()
    }

    fn close_and_join(&mut self) {
        {
            let mut state = self.inner.state.lock().expect("queue lock");
            state.open = false;
        }
        self.inner.cv.notify_all();
        for w in self.workers.drain(..) {
            w.join()
                .expect("queue worker never panics (tasks are caught)");
        }
    }
}

impl Drop for TaskQueue {
    /// Dropping drains: intake closes, queued and in-flight tasks
    /// finish, workers join. Explicit [`TaskQueue::drain`] is the same
    /// thing with the panic count returned.
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.close_and_join();
        }
    }
}

#[cfg(test)]
mod queue_tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn tasks_run_and_drain_completes_backlog() {
        let q = TaskQueue::new(4);
        assert_eq!(q.jobs(), 4);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let hits = Arc::clone(&hits);
            q.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        let panicked = q.drain();
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        assert_eq!(panicked, 0);
    }

    #[test]
    fn zero_jobs_clamps_and_drop_drains() {
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let q = TaskQueue::new(0);
            assert_eq!(q.jobs(), 1);
            for _ in 0..8 {
                let hits = Arc::clone(&hits);
                q.submit(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
            }
            // Dropped without an explicit drain.
        }
        assert_eq!(hits.load(Ordering::Relaxed), 8, "drop drained the backlog");
    }

    #[test]
    fn panicking_task_is_isolated() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let q = TaskQueue::new(2);
        let ok = Arc::new(AtomicUsize::new(0));
        for i in 0..32 {
            let ok = Arc::clone(&ok);
            q.submit(move || {
                assert!(i % 8 != 0, "injected");
                ok.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        q.wait_idle();
        let panicked = q.drain();
        std::panic::set_hook(hook);
        assert_eq!(ok.load(Ordering::Relaxed), 28);
        assert_eq!(panicked, 4);
    }

    #[test]
    fn submit_after_drain_is_rejected_with_task_returned() {
        let q = TaskQueue::new(2);
        // Close intake via the internal path by draining a clone-less
        // queue, then verify a fresh queue's closed behavior through
        // wait_idle + drop ordering instead: drain consumes the queue,
        // so closed-submit is only observable from another thread.
        let q2 = TaskQueue::new(1);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        // Block the single worker so the close happens with a task in
        // flight.
        q2.submit(move || {
            rx.recv().ok();
        })
        .unwrap();
        let q2 = Arc::new(Mutex::new(Some(q2)));
        let q2c = Arc::clone(&q2);
        let closer = std::thread::spawn(move || {
            let q = q2c.lock().unwrap().take().unwrap();
            q.drain()
        });
        // Let the closer reach the join, then release the worker.
        std::thread::sleep(std::time::Duration::from_millis(50));
        tx.send(()).unwrap();
        assert_eq!(closer.join().unwrap(), 0);
        // And the plain-queue sanity: outstanding drains to zero.
        q.wait_idle();
        assert_eq!(q.outstanding(), 0);
        drop(q);
    }

    #[test]
    fn utilization_covers_all_tasks() {
        let q = TaskQueue::new(3);
        for _ in 0..30 {
            q.submit(|| {
                std::hint::black_box(0u64);
            })
            .unwrap();
        }
        q.wait_idle();
        assert_eq!(q.utilization().iter().sum::<u64>(), 30);
        assert_eq!(q.utilization().len(), 3);
        q.drain();
    }

    #[test]
    fn high_water_records_peak_depth_under_a_blocked_worker() {
        let q = TaskQueue::new(1);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        // Block the single worker, then stack 5 tasks behind it: the
        // peak depth at submit time is 1 in flight + 5 waiting.
        q.submit(move || {
            rx.recv().ok();
        })
        .unwrap();
        for _ in 0..5 {
            q.submit(|| {}).unwrap();
        }
        assert!(
            q.high_water() >= 5,
            "high water {} too low for 6 stacked tasks",
            q.high_water()
        );
        tx.send(()).unwrap();
        q.wait_idle();
        // Draining does not reset the high-water mark.
        assert!(q.high_water() >= 5);
        q.drain();
    }

    #[test]
    fn busy_ns_accrues_while_tasks_execute() {
        let q = TaskQueue::new(2);
        for _ in 0..4 {
            q.submit(|| {
                std::thread::sleep(std::time::Duration::from_millis(5));
            })
            .unwrap();
        }
        q.wait_idle();
        let busy = q.busy_ns();
        assert_eq!(busy.len(), 2);
        // 4 × 5ms across 2 workers: at least 10ms of busy time total.
        assert!(
            busy.iter().sum::<u64>() >= 10_000_000,
            "busy {busy:?} too low"
        );
        q.drain();
    }

    #[test]
    fn worker_slot_is_visible_inside_tasks_and_absent_outside() {
        assert_eq!(current_worker_slot(), None);
        let q = TaskQueue::new(3);
        let seen = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..12 {
            let seen = Arc::clone(&seen);
            q.submit(move || {
                let slot = current_worker_slot().expect("inside a queue worker");
                seen.lock().unwrap().push(slot);
            })
            .unwrap();
        }
        q.wait_idle();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 12);
        assert!(seen.iter().all(|&s| s < 3));
        assert_eq!(current_worker_slot(), None);
    }

    #[test]
    fn wait_idle_sees_in_flight_tasks() {
        let q = TaskQueue::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let done = Arc::clone(&done);
            q.submit(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        q.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<u64> = (0..257).collect();
        let pool = Pool::new(8);
        let out = pool.map(&items, |&x| x * x);
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn parallel_matches_serial_with_skewed_costs() {
        let items: Vec<u64> = (0..100).collect();
        // Skew per-item cost so slow items interleave with fast ones.
        let work = |&x: &u64| {
            let mut acc = x;
            for _ in 0..(x % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        };
        let serial = Pool::new(1).map(&items, work);
        let parallel = Pool::new(8).map(&items, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.jobs(), 1);
        let tid = std::thread::current().id();
        let out = pool.map(&[1, 2, 3], |&x| {
            assert_eq!(std::thread::current().id(), tid, "inline on the caller");
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.jobs(), 1);
        assert_eq!(pool.map(&[5], |&x: &i32| x), vec![5]);
    }

    #[test]
    fn utilization_sums_to_item_count() {
        let items: Vec<u32> = (0..64).collect();
        let pool = Pool::new(4);
        let (_, util) = pool.map_util(&items, |&x| x);
        assert_eq!(util.len(), 4);
        assert_eq!(util.iter().sum::<u64>(), 64);
        // Cumulative counters agree after a second call.
        pool.map(&items, |&x| x);
        assert_eq!(pool.utilization().iter().sum::<u64>(), 128);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let pool = Pool::new(4);
        let out: Vec<u8> = pool.map(&[] as &[u8], |&x| x);
        assert!(out.is_empty());
    }

    /// Runs `f` with the default panic-to-stderr hook silenced, so
    /// intentional panics don't pollute test output.
    fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn panicking_worker_is_quarantined_not_fatal() {
        let items: Vec<u32> = (0..64).collect();
        let pool = Pool::new(4);
        let (out, util) = quiet_panics(|| {
            pool.map_catch_util(&items, |&x| {
                assert!(x % 9 != 0, "injected");
                x * 2
            })
        });
        for (i, slot) in out.iter().enumerate() {
            if i % 9 == 0 {
                assert_eq!(*slot, None, "item {i} should be quarantined");
            } else {
                assert_eq!(*slot, Some(i as u32 * 2));
            }
        }
        // Panicked items still count as claimed work: utilization
        // deltas and cumulative counters cover all 64 items.
        assert_eq!(util.iter().sum::<u64>(), 64);
        assert_eq!(pool.utilization().iter().sum::<u64>(), 64);
    }

    #[test]
    fn catch_variant_is_identical_serial_and_parallel() {
        let items: Vec<u32> = (0..100).collect();
        let f = |&x: &u32| {
            assert!(x % 7 != 3, "injected");
            x + 1
        };
        let serial = quiet_panics(|| Pool::new(1).map_catch(&items, f));
        let parallel = quiet_panics(|| Pool::new(8).map_catch(&items, f));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn workers_can_borrow_caller_state() {
        let table: Vec<u64> = (0..32).map(|i| i * 10).collect();
        let pool = Pool::new(4);
        let idx: Vec<usize> = (0..32).collect();
        let out = pool.map(&idx, |&i| table[i]);
        assert_eq!(out, table);
    }
}
