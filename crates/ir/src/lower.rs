//! IR → host lowering.
//!
//! Temporaries live in environment spill slots with a one-register
//! forwarding window through `eax` (TCG-quality local codegen: no global
//! allocation, no cross-instruction value tracking). Guest registers
//! resolve through the block's [`RegMap`]: either a cached host register
//! or an in-environment memory operand.

use crate::env::{self, RegMap};
use crate::op::{BinOp, Dst, FBinOp, IrCc, IrOp, Tmp, UnOp, Val};
use pdbt_isa::{Flag, Width};
use pdbt_isa_x86::builders as hb;
use pdbt_isa_x86::{Cc, Inst as HInst, Mem, Operand as HOp, Reg as HReg, Xmm};

const SCRATCH_A: HReg = HReg::Eax;
const SCRATCH_B: HReg = HReg::Edx;

/// Maps an IR comparison to the host condition that holds after
/// `cmpl a, b`.
#[must_use]
pub fn host_cc(cc: IrCc) -> Cc {
    match cc {
        IrCc::Eq => Cc::E,
        IrCc::Ne => Cc::Ne,
        IrCc::Ltu => Cc::B,
        IrCc::Leu => Cc::Be,
        IrCc::Gtu => Cc::A,
        IrCc::Geu => Cc::Ae,
        IrCc::Lts => Cc::L,
        IrCc::Les => Cc::Le,
        IrCc::Gts => Cc::G,
        IrCc::Ges => Cc::Ge,
    }
}

struct Ctx<'a> {
    map: &'a RegMap,
    out: Vec<HInst>,
    /// The temporary whose value currently sits in `eax`.
    fwd: Option<Tmp>,
    /// For each tmp index: the op indices that read it.
    reads: Vec<Vec<usize>>,
}

impl<'a> Ctx<'a> {
    fn emit(&mut self, i: HInst) {
        self.out.push(i);
    }

    fn greg(&self, g: pdbt_isa_arm::Reg) -> HOp {
        match self.map.loc(g) {
            env::Loc::Host(h) => HOp::Reg(h),
            env::Loc::Env => HOp::Mem(env::reg_mem(g)),
        }
    }

    fn resolve(&self, v: Val) -> HOp {
        match v {
            Val::Reg(g) => self.greg(g),
            Val::Const(c) => HOp::Imm(c as i32),
            Val::Tmp(t) => {
                if self.fwd == Some(t) {
                    HOp::Reg(SCRATCH_A)
                } else {
                    HOp::Mem(env::spill_mem(t.0 as usize))
                }
            }
        }
    }

    /// Loads `v` into `eax` (no-op when it is already forwarded there).
    #[allow(clippy::wrong_self_convention)]
    fn to_eax(&mut self, v: Val) {
        let op = self.resolve(v);
        if op != HOp::Reg(SCRATCH_A) {
            self.emit(hb::mov(HOp::Reg(SCRATCH_A), op));
        }
        self.fwd = None;
    }

    /// Resolves `v` for use as a *second* source while `eax` is being
    /// repurposed: a value forwarded in `eax` is first saved to `edx`.
    fn resolve_second(&mut self, v: Val) -> HOp {
        let op = self.resolve(v);
        if op == HOp::Reg(SCRATCH_A) {
            self.emit(hb::mov(HOp::Reg(SCRATCH_B), HOp::Reg(SCRATCH_A)));
            self.fwd = None;
            HOp::Reg(SCRATCH_B)
        } else {
            op
        }
    }

    /// Writes the value in `eax` to `d`, spilling temporaries unless
    /// their only read is the next op (pure forwarding).
    fn write_from_eax(&mut self, d: Dst, op_index: usize) {
        match d {
            Dst::Reg(g) => {
                let loc = self.greg(g);
                self.emit(hb::mov(loc, HOp::Reg(SCRATCH_A)));
                self.fwd = None;
            }
            Dst::Tmp(t) => {
                let reads = &self.reads[t.0 as usize];
                let forward_only = reads.len() == 1 && reads[0] == op_index + 1;
                if !forward_only {
                    self.emit(hb::mov(
                        HOp::Mem(env::spill_mem(t.0 as usize)),
                        HOp::Reg(SCRATCH_A),
                    ));
                }
                self.fwd = Some(t);
            }
        }
    }

    /// Materializes a memory address `base + off` into a host memory
    /// operand, using `edx` when the base is not already in a register.
    fn mem_operand(&mut self, addr: Val, off: i32) -> Mem {
        match self.resolve(addr) {
            HOp::Reg(r) => {
                self.fwd = None; // the address may be the forwarded value
                Mem::base_disp(r, off)
            }
            HOp::Imm(v) => Mem::abs(v.wrapping_add(off)),
            HOp::Mem(_) => {
                let src = self.resolve(addr);
                self.emit(hb::mov(HOp::Reg(SCRATCH_B), src));
                Mem::base_disp(SCRATCH_B, off)
            }
            HOp::Xmm(_) | HOp::Target(_) => unreachable!("address operands are integers"),
        }
    }
}

fn tmp_reads(ops: &[IrOp]) -> Vec<Vec<usize>> {
    let mut reads: Vec<Vec<usize>> = vec![Vec::new(); 64];
    let note = |v: &Val, i: usize, reads: &mut Vec<Vec<usize>>| {
        if let Val::Tmp(t) = v {
            reads[t.0 as usize].push(i);
        }
    };
    for (i, op) in ops.iter().enumerate() {
        match op {
            IrOp::Mov { s, .. } => note(s, i, &mut reads),
            IrOp::Bin { a, b, .. } | IrOp::Setc { a, b, .. } => {
                note(a, i, &mut reads);
                note(b, i, &mut reads);
            }
            IrOp::Un { a, .. } => note(a, i, &mut reads),
            IrOp::SetFlag { s, .. } => note(s, i, &mut reads),
            IrOp::Load { addr, .. } | IrOp::FLoad { addr, .. } => note(addr, i, &mut reads),
            IrOp::Store { s, addr, .. } => {
                note(s, i, &mut reads);
                note(addr, i, &mut reads);
            }
            IrOp::FStore { addr, .. } => note(addr, i, &mut reads),
            IrOp::Output { s } => note(s, i, &mut reads),
            IrOp::GetFlag { .. }
            | IrOp::FBin { .. }
            | IrOp::FMov { .. }
            | IrOp::FCmpFlags { .. } => {}
        }
    }
    reads
}

fn alu_builder(op: BinOp) -> fn(HOp, HOp) -> HInst {
    match op {
        BinOp::Add => hb::add,
        BinOp::Sub => hb::sub,
        BinOp::And => hb::and,
        BinOp::Or => hb::or,
        BinOp::Xor => hb::xor,
        BinOp::Shl => hb::shl,
        BinOp::Shr => hb::shr,
        BinOp::Sar => hb::sar,
        BinOp::Ror => hb::ror,
        BinOp::Mul => hb::imul,
        BinOp::MulhU => unreachable!("handled separately"),
    }
}

fn lower_op(ctx: &mut Ctx<'_>, op: &IrOp, i: usize) {
    match op {
        IrOp::Mov { d, s } => {
            match (d, ctx.resolve(*s)) {
                // Register-to-register / imm-to-anything moves can go
                // direct when no mem-mem conflict arises.
                (Dst::Reg(g), src) => {
                    let dst = ctx.greg(*g);
                    if matches!(dst, HOp::Mem(_)) && matches!(src, HOp::Mem(_)) {
                        ctx.to_eax(*s);
                        ctx.write_from_eax(Dst::Reg(*g), i);
                    } else {
                        ctx.emit(hb::mov(dst, src));
                        if src == HOp::Reg(SCRATCH_A) {
                            ctx.fwd = None;
                        }
                    }
                }
                (Dst::Tmp(_), _) => {
                    ctx.to_eax(*s);
                    ctx.write_from_eax(*d, i);
                }
            }
        }
        IrOp::Bin {
            op: BinOp::MulhU,
            d,
            a,
            b,
        } => {
            // edx:eax = eax * src; keep the high half.
            let b_op = ctx.resolve_second(*b);
            let b_op = match b_op {
                HOp::Imm(_) => {
                    ctx.emit(hb::mov(HOp::Reg(SCRATCH_B), b_op));
                    HOp::Reg(SCRATCH_B)
                }
                other => other,
            };
            ctx.to_eax(*a);
            ctx.emit(hb::mul_wide(b_op));
            ctx.emit(hb::mov(HOp::Reg(SCRATCH_A), HOp::Reg(SCRATCH_B)));
            ctx.write_from_eax(*d, i);
        }
        IrOp::Bin { op, d, a, b } => {
            let b_op = ctx.resolve_second(*b);
            ctx.to_eax(*a);
            ctx.emit(alu_builder(*op)(HOp::Reg(SCRATCH_A), b_op));
            ctx.write_from_eax(*d, i);
        }
        IrOp::Un {
            op: UnOp::Clz,
            d,
            a,
        } => {
            ctx.to_eax(*a);
            ctx.emit(hb::bsr(HOp::Reg(SCRATCH_B), HOp::Reg(SCRATCH_A)));
            ctx.emit(hb::jcc(Cc::E, 3));
            ctx.emit(hb::mov(HOp::Reg(SCRATCH_A), HOp::Imm(31)));
            ctx.emit(hb::sub(HOp::Reg(SCRATCH_A), HOp::Reg(SCRATCH_B)));
            ctx.emit(hb::jmp_rel(1));
            ctx.emit(hb::mov(HOp::Reg(SCRATCH_A), HOp::Imm(32)));
            ctx.write_from_eax(*d, i);
        }
        IrOp::Un { op, d, a } => {
            ctx.to_eax(*a);
            match op {
                UnOp::Not => ctx.emit(hb::not(HOp::Reg(SCRATCH_A))),
                UnOp::Neg => ctx.emit(hb::neg(HOp::Reg(SCRATCH_A))),
                UnOp::Clz => unreachable!(),
            }
            ctx.write_from_eax(*d, i);
        }
        IrOp::Setc { d, cc, a, b } => {
            let b_op = ctx.resolve_second(*b);
            ctx.to_eax(*a);
            ctx.emit(hb::cmp(HOp::Reg(SCRATCH_A), b_op));
            ctx.emit(hb::setcc(host_cc(*cc), HOp::Reg(SCRATCH_A)));
            ctx.write_from_eax(*d, i);
        }
        IrOp::GetFlag { d, f } => {
            ctx.emit(hb::mov(HOp::Reg(SCRATCH_A), HOp::Mem(env::flag_mem(*f))));
            ctx.fwd = None;
            ctx.write_from_eax(*d, i);
        }
        IrOp::SetFlag { f, s } => {
            let src = ctx.resolve(*s);
            if matches!(src, HOp::Mem(_)) {
                ctx.to_eax(*s);
                ctx.emit(hb::mov(HOp::Mem(env::flag_mem(*f)), HOp::Reg(SCRATCH_A)));
            } else {
                ctx.emit(hb::mov(HOp::Mem(env::flag_mem(*f)), src));
                if src == HOp::Reg(SCRATCH_A) {
                    // eax still holds the forwarded value; keep it.
                }
            }
        }
        IrOp::Load {
            d,
            addr,
            off,
            width,
        } => {
            let mem = ctx.mem_operand(*addr, *off);
            let load = match *width {
                Width::B32 => hb::mov(HOp::Reg(SCRATCH_A), HOp::Mem(mem)),
                Width::B16 => hb::movzxw(HOp::Reg(SCRATCH_A), HOp::Mem(mem)),
                Width::B8 => hb::movzxb(HOp::Reg(SCRATCH_A), HOp::Mem(mem)),
            };
            ctx.emit(load);
            ctx.fwd = None;
            ctx.write_from_eax(*d, i);
        }
        IrOp::Store {
            s,
            addr,
            off,
            width,
        } => {
            let mut mem = ctx.mem_operand(*addr, *off);
            // The store value may need to travel through eax; if the
            // address was forwarded there, rebase it onto edx first.
            if mem.base == Some(SCRATCH_A) {
                ctx.emit(hb::mov(HOp::Reg(SCRATCH_B), HOp::Reg(SCRATCH_A)));
                mem = Mem {
                    base: Some(SCRATCH_B),
                    ..mem
                };
            }
            let src = ctx.resolve(*s);
            match width {
                Width::B32 => {
                    if matches!(src, HOp::Mem(_)) {
                        ctx.to_eax(*s);
                        ctx.emit(hb::mov(HOp::Mem(mem), HOp::Reg(SCRATCH_A)));
                    } else {
                        ctx.emit(hb::mov(HOp::Mem(mem), src));
                    }
                }
                narrow => {
                    if !matches!(src, HOp::Reg(_)) {
                        ctx.to_eax(*s);
                    } else if src != HOp::Reg(SCRATCH_A) {
                        ctx.emit(hb::mov(HOp::Reg(SCRATCH_A), src));
                        ctx.fwd = None;
                    }
                    let store = if *narrow == Width::B8 {
                        hb::movb(HOp::Mem(mem), HOp::Reg(SCRATCH_A))
                    } else {
                        hb::movw(HOp::Mem(mem), HOp::Reg(SCRATCH_A))
                    };
                    ctx.emit(store);
                }
            }
        }
        IrOp::FBin { op, d, a, b } => {
            ctx.emit(hb::movss(
                HOp::Xmm(Xmm::new(0)),
                HOp::Mem(env::freg_mem(*a)),
            ));
            let src = HOp::Mem(env::freg_mem(*b));
            let alu = match op {
                FBinOp::Add => hb::addss(Xmm::new(0), src),
                FBinOp::Sub => hb::subss(Xmm::new(0), src),
                FBinOp::Mul => hb::mulss(Xmm::new(0), src),
                FBinOp::Div => hb::divss(Xmm::new(0), src),
            };
            ctx.emit(alu);
            ctx.emit(hb::movss(
                HOp::Mem(env::freg_mem(*d)),
                HOp::Xmm(Xmm::new(0)),
            ));
        }
        IrOp::FMov { d, s } => {
            ctx.emit(hb::movss(
                HOp::Xmm(Xmm::new(0)),
                HOp::Mem(env::freg_mem(*s)),
            ));
            ctx.emit(hb::movss(
                HOp::Mem(env::freg_mem(*d)),
                HOp::Xmm(Xmm::new(0)),
            ));
        }
        IrOp::FCmpFlags { a, b } => {
            ctx.emit(hb::movss(
                HOp::Xmm(Xmm::new(0)),
                HOp::Mem(env::freg_mem(*a)),
            ));
            ctx.emit(hb::ucomiss(Xmm::new(0), HOp::Mem(env::freg_mem(*b))));
            // ARM FP flags: N = a<b, Z = a==b, C = a>=b, V = 0 (ordered
            // inputs; the synthetic workloads do not produce NaNs).
            ctx.emit(hb::setcc(Cc::B, HOp::Reg(SCRATCH_A)));
            ctx.emit(hb::mov(
                HOp::Mem(env::flag_mem(Flag::N)),
                HOp::Reg(SCRATCH_A),
            ));
            ctx.emit(hb::setcc(Cc::E, HOp::Reg(SCRATCH_A)));
            ctx.emit(hb::mov(
                HOp::Mem(env::flag_mem(Flag::Z)),
                HOp::Reg(SCRATCH_A),
            ));
            ctx.emit(hb::setcc(Cc::Ae, HOp::Reg(SCRATCH_A)));
            ctx.emit(hb::mov(
                HOp::Mem(env::flag_mem(Flag::C)),
                HOp::Reg(SCRATCH_A),
            ));
            ctx.emit(hb::mov(HOp::Mem(env::flag_mem(Flag::V)), HOp::Imm(0)));
            ctx.fwd = None;
        }
        IrOp::FLoad { d, addr, off } => {
            let mem = ctx.mem_operand(*addr, *off);
            ctx.emit(hb::movss(HOp::Xmm(Xmm::new(0)), HOp::Mem(mem)));
            ctx.emit(hb::movss(
                HOp::Mem(env::freg_mem(*d)),
                HOp::Xmm(Xmm::new(0)),
            ));
        }
        IrOp::FStore { s, addr, off } => {
            let mem = ctx.mem_operand(*addr, *off);
            ctx.emit(hb::movss(
                HOp::Xmm(Xmm::new(0)),
                HOp::Mem(env::freg_mem(*s)),
            ));
            ctx.emit(hb::movss(HOp::Mem(mem), HOp::Xmm(Xmm::new(0))));
        }
        IrOp::Output { s } => {
            ctx.to_eax(*s);
            ctx.emit(hb::out());
        }
    }
}

/// Lowers a straight-line IR body to host instructions under the block
/// register map.
#[must_use]
pub fn lower_ops(ops: &[IrOp], map: &RegMap) -> Vec<HInst> {
    let mut ctx = Ctx {
        map,
        out: Vec::new(),
        fwd: None,
        reads: tmp_reads(ops),
    };
    for (i, op) in ops.iter().enumerate() {
        lower_op(&mut ctx, op, i);
    }
    ctx.out
}

/// Lowers a branch condition `(cc, a, b)`: emits the compare and returns
/// the host condition the caller's stub should branch on.
#[must_use]
pub fn lower_branch_cond(cc: IrCc, a: Val, b: Val, map: &RegMap) -> (Vec<HInst>, Cc) {
    let mut ctx = Ctx {
        map,
        out: Vec::new(),
        fwd: None,
        reads: vec![Vec::new(); 64],
    };
    let b_op = ctx.resolve_second(b);
    ctx.to_eax(a);
    ctx.emit(hb::cmp(HOp::Reg(SCRATCH_A), b_op));
    (ctx.out, host_cc(cc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lift::lift;
    use pdbt_isa_arm::builders::*;
    use pdbt_isa_arm::{Operand, Reg as GReg};

    fn all_env() -> RegMap {
        RegMap::all_env()
    }

    #[test]
    fn plain_add_lowers_small() {
        let l = lift(&add(GReg::R0, GReg::R1, Operand::Reg(GReg::R2)), 0).unwrap();
        let host = lower_ops(&l.body, &all_env());
        // mov eax, [r1]; add eax, [r2]; mov [r0], eax.
        assert_eq!(host.len(), 3, "{host:?}");
    }

    #[test]
    fn cached_registers_shrink_code() {
        let l = lift(&add(GReg::R0, GReg::R0, Operand::Imm(1)), 0).unwrap();
        let map = RegMap::allocate(&[GReg::R0]);
        let host = lower_ops(&l.body, &map);
        // With r0 in ecx: mov eax, ecx; add eax, $1; mov ecx, eax.
        assert_eq!(host.len(), 3);
        assert!(host.iter().all(|i| i
            .operands
            .iter()
            .all(|o| !matches!(o, HOp::Mem(m) if m.base == Some(HReg::Ebp)))));
    }

    #[test]
    fn adds_lowers_much_larger_than_add() {
        let plain = lower_ops(
            &lift(&add(GReg::R0, GReg::R1, Operand::Imm(1)), 0)
                .unwrap()
                .body,
            &all_env(),
        );
        let flags = lower_ops(
            &lift(&add(GReg::R0, GReg::R1, Operand::Imm(1)).with_s(), 0)
                .unwrap()
                .body,
            &all_env(),
        );
        assert!(
            flags.len() >= plain.len() * 3,
            "{} vs {}",
            flags.len(),
            plain.len()
        );
    }

    #[test]
    fn lowered_blocks_execute_correctly() {
        // Differential test: run `adds r0, r1, r2` through lift+lower on a
        // host CPU and through the guest interpreter; compare results.
        use pdbt_isa_x86::Cpu as HCpu;
        let guest_inst = add(GReg::R0, GReg::R1, Operand::Reg(GReg::R2)).with_s();
        for (a, b) in [(1u32, 2u32), (u32::MAX, 1), (0x7fff_ffff, 1), (0, 0)] {
            // Host side.
            let mut h = HCpu::new();
            h.mem.map(0, env::ENV_SIZE);
            h.write(HReg::Ebp, 0);
            h.mem.store32(env::reg_offset(GReg::R1) as u32, a).unwrap();
            h.mem.store32(env::reg_offset(GReg::R2) as u32, b).unwrap();
            let l = lift(&guest_inst, 0).unwrap();
            let host = lower_ops(&l.body, &all_env());
            pdbt_isa_x86::exec_block(&mut h, &host, 1000).unwrap();
            // Guest side.
            let mut g = pdbt_isa_arm::Cpu::new();
            g.write(GReg::R1, a);
            g.write(GReg::R2, b);
            pdbt_isa_arm::step(&mut g, &guest_inst).unwrap();
            let host_r0 = h.mem.load32(env::reg_offset(GReg::R0) as u32).unwrap();
            assert_eq!(host_r0, g.read(GReg::R0), "result for {a:#x}+{b:#x}");
            for f in Flag::ALL {
                let hf = h.mem.load32(env::flag_offset(f) as u32).unwrap() != 0;
                assert_eq!(hf, g.flags.get(f), "flag {f} for {a:#x}+{b:#x}");
            }
        }
    }

    #[test]
    fn clz_lowering_executes() {
        use pdbt_isa_x86::Cpu as HCpu;
        for v in [0u32, 1, 0x10, 0x8000_0000, u32::MAX] {
            let mut h = HCpu::new();
            h.mem.map(0, env::ENV_SIZE);
            h.write(HReg::Ebp, 0);
            h.mem.store32(env::reg_offset(GReg::R1) as u32, v).unwrap();
            let l = lift(&clz(GReg::R0, GReg::R1), 0).unwrap();
            let host = lower_ops(&l.body, &all_env());
            pdbt_isa_x86::exec_block(&mut h, &host, 1000).unwrap();
            let r0 = h.mem.load32(env::reg_offset(GReg::R0) as u32).unwrap();
            assert_eq!(r0, v.leading_zeros(), "clz({v:#x})");
        }
    }

    #[test]
    fn branch_cond_lowering() {
        let (insts, cc) = lower_branch_cond(IrCc::Ne, Val::Tmp(Tmp(0)), Val::Const(0), &all_env());
        assert_eq!(cc, Cc::Ne);
        assert!(insts.iter().any(|i| i.op == pdbt_isa_x86::Op::Cmp));
    }

    #[test]
    fn umull_lowering_executes() {
        use pdbt_isa_x86::Cpu as HCpu;
        let mut h = HCpu::new();
        h.mem.map(0, env::ENV_SIZE);
        h.write(HReg::Ebp, 0);
        h.mem
            .store32(env::reg_offset(GReg::R2) as u32, 0xffff_ffff)
            .unwrap();
        h.mem
            .store32(env::reg_offset(GReg::R3) as u32, 0x10)
            .unwrap();
        let l = lift(&umull(GReg::R0, GReg::R1, GReg::R2, GReg::R3), 0).unwrap();
        let host = lower_ops(&l.body, &all_env());
        pdbt_isa_x86::exec_block(&mut h, &host, 1000).unwrap();
        assert_eq!(
            h.mem.load32(env::reg_offset(GReg::R0) as u32).unwrap(),
            0xffff_fff0
        );
        assert_eq!(h.mem.load32(env::reg_offset(GReg::R1) as u32).unwrap(), 0xf);
    }
}

#[cfg(test)]
mod regression_tests {
    use super::*;
    use crate::lift::{lift, lift_omit};
    use pdbt_isa::{Flag, FlagSet};
    use pdbt_isa_arm::builders::*;
    use pdbt_isa_arm::{MemAddr, Operand, Reg as GReg};
    use pdbt_isa_x86::{Cpu as HCpu, Reg as HReg};

    /// Regression: a `push` whose stored value lives in the environment
    /// must not clobber the store address forwarded in `eax`
    /// (found by the workload integration tests).
    #[test]
    fn store_address_survives_value_materialization() {
        let mut h = HCpu::new();
        h.mem.map(0, env::ENV_SIZE);
        h.mem.map(0x8_0000, 0x1000);
        h.write(HReg::Ebp, 0);
        // Guest sp = 0x81000, r4/r6 in env (nothing cached).
        h.mem
            .store32(env::reg_offset(GReg::Sp) as u32, 0x8_1000)
            .unwrap();
        h.mem
            .store32(env::reg_offset(GReg::R4) as u32, 0xaaaa)
            .unwrap();
        h.mem
            .store32(env::reg_offset(GReg::R6) as u32, 0xbbbb)
            .unwrap();
        let l = lift(&push([GReg::R4, GReg::R6]), 0).unwrap();
        let host = lower_ops(&l.body, &RegMap::all_env());
        pdbt_isa_x86::exec_block(&mut h, &host, 1000).unwrap();
        // Values pushed at the right addresses, sp updated.
        assert_eq!(
            h.mem.load32(env::reg_offset(GReg::Sp) as u32).unwrap(),
            0x8_0ff8
        );
        assert_eq!(h.mem.load32(0x8_0ff8).unwrap(), 0xaaaa);
        assert_eq!(h.mem.load32(0x8_0ffc).unwrap(), 0xbbbb);
    }

    /// Dead flag computations are eliminated entirely.
    #[test]
    fn lift_omit_removes_dead_flag_work() {
        let inst = add(GReg::R0, GReg::R1, Operand::Imm(1)).with_s();
        let full = lift(&inst, 0).unwrap().body.len();
        let none = lift_omit(&inst, 0, FlagSet::NZCV).unwrap().body.len();
        let partial = lift_omit(&inst, 0, FlagSet::NZCV - FlagSet::single(Flag::Z))
            .unwrap()
            .body
            .len();
        assert!(none < partial, "{none} < {partial}");
        assert!(partial < full, "{partial} < {full}");
        // With everything omitted, adds degenerates to plain add.
        let plain = lift(&add(GReg::R0, GReg::R1, Operand::Imm(1)), 0)
            .unwrap()
            .body
            .len();
        assert_eq!(none, plain);
    }

    /// DCE never removes memory operations.
    #[test]
    fn dce_preserves_stores_and_loads() {
        let l = lift_omit(
            &str_(
                GReg::R0,
                MemAddr::BaseImm {
                    base: GReg::R1,
                    offset: 4,
                },
            ),
            0,
            FlagSet::NZCV,
        )
        .unwrap();
        assert!(l.body.iter().any(|op| matches!(op, IrOp::Store { .. })));
        let l = lift_omit(
            &ldr(
                GReg::R0,
                MemAddr::BaseImm {
                    base: GReg::R1,
                    offset: 4,
                },
            ),
            0,
            FlagSet::NZCV,
        )
        .unwrap();
        assert!(l.body.iter().any(|op| matches!(op, IrOp::Load { .. })));
    }

    /// Cross-check: lowered code equals interpreter over a batch of
    /// states for every DP opcode with env-resident registers.
    #[test]
    fn lowered_dp_ops_match_interpreter_in_env_mode() {
        type B = fn(GReg, GReg, Operand) -> pdbt_isa_arm::Inst;
        const OPS: [B; 11] = [add, sub, and, orr, eor, bic, rsb, lsl, lsr, asr, ror];
        for op in OPS {
            for (a, b) in [(5u32, 3u32), (0, 0), (u32::MAX, 1), (0x8000_0000, 31)] {
                let inst = op(GReg::R0, GReg::R1, Operand::Reg(GReg::R2));
                // Host side.
                let mut h = HCpu::new();
                h.mem.map(0, env::ENV_SIZE);
                h.write(HReg::Ebp, 0);
                h.mem.store32(env::reg_offset(GReg::R1) as u32, a).unwrap();
                h.mem.store32(env::reg_offset(GReg::R2) as u32, b).unwrap();
                let l = lift(&inst, 0).unwrap();
                let host = lower_ops(&l.body, &RegMap::all_env());
                pdbt_isa_x86::exec_block(&mut h, &host, 1000).unwrap();
                // Guest side.
                let mut g = pdbt_isa_arm::Cpu::new();
                g.write(GReg::R1, a);
                g.write(GReg::R2, b);
                pdbt_isa_arm::step(&mut g, &inst).unwrap();
                let got = h.mem.load32(env::reg_offset(GReg::R0) as u32).unwrap();
                assert_eq!(got, g.read(GReg::R0), "{inst} with {a:#x},{b:#x}");
            }
        }
    }
}
