//! Guest → IR lifting.
//!
//! Each guest instruction becomes straight-line IR plus an optional
//! terminator. Flag side effects are materialized *eagerly* into the
//! guest environment (`SetFlag`), matching how QEMU's ARM front end
//! stores NF/ZF/CF/VF in the CPU state — this is exactly the per-flag
//! work the learned-rule path avoids through condition-flag delegation.

use crate::op::{BinOp, Dst, FBinOp, IrCc, IrOp, Lifted, Terminator, Tmp, UnOp, Val};
use pdbt_isa::{Addr, Cond, Flag, FlagSet};
use pdbt_isa_arm::{Inst, MemAddr, Op, Operand, Reg, ShiftKind};
use std::fmt;

/// An error raised when a guest instruction cannot be lifted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiftError {
    /// What was unsupported.
    pub detail: String,
}

impl fmt::Display for LiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot lift: {}", self.detail)
    }
}

impl std::error::Error for LiftError {}

/// Incremental IR builder with temporary allocation.
struct Builder {
    ops: Vec<IrOp>,
    next_tmp: u8,
    /// Flags whose materialization the caller proved unnecessary
    /// (dead, or folded into a following branch — TCG's flag-liveness
    /// optimization).
    omit: FlagSet,
}

impl Builder {
    fn new(omit: FlagSet) -> Builder {
        Builder {
            ops: Vec::new(),
            next_tmp: 0,
            omit,
        }
    }

    fn tmp(&mut self) -> Tmp {
        let t = Tmp(self.next_tmp);
        self.next_tmp += 1;
        t
    }

    fn push(&mut self, op: IrOp) {
        self.ops.push(op);
    }

    fn bin(&mut self, op: BinOp, a: Val, b: Val) -> Val {
        let d = self.tmp();
        self.push(IrOp::Bin {
            op,
            d: Dst::Tmp(d),
            a,
            b,
        });
        Val::Tmp(d)
    }

    fn setc(&mut self, cc: IrCc, a: Val, b: Val) -> Val {
        let d = self.tmp();
        self.push(IrOp::Setc {
            d: Dst::Tmp(d),
            cc,
            a,
            b,
        });
        Val::Tmp(d)
    }

    fn get_flag(&mut self, f: Flag) -> Val {
        let d = self.tmp();
        self.push(IrOp::GetFlag { d: Dst::Tmp(d), f });
        Val::Tmp(d)
    }

    fn set_flag(&mut self, f: Flag, s: Val) {
        if !self.omit.contains(f) {
            self.push(IrOp::SetFlag { f, s });
        }
    }

    fn set_nz(&mut self, result: Val) {
        if !self.omit.contains(Flag::N) {
            let n = self.setc(IrCc::Lts, result, Val::Const(0));
            self.set_flag(Flag::N, n);
        }
        if !self.omit.contains(Flag::Z) {
            let z = self.setc(IrCc::Eq, result, Val::Const(0));
            self.set_flag(Flag::Z, z);
        }
    }

    /// Overflow of `a + b = res` (invert `b` first for subtraction).
    fn set_v_add(&mut self, a: Val, b: Val, res: Val) {
        if self.omit.contains(Flag::V) {
            return;
        }
        let t1 = self.bin(BinOp::Xor, a, res);
        let t2 = self.bin(BinOp::Xor, a, b);
        let t2n = {
            let d = self.tmp();
            self.push(IrOp::Un {
                op: UnOp::Not,
                d: Dst::Tmp(d),
                a: t2,
            });
            Val::Tmp(d)
        };
        let t3 = self.bin(BinOp::And, t1, t2n);
        let v = self.bin(BinOp::Shr, t3, Val::Const(31));
        self.set_flag(Flag::V, v);
    }
}

/// Reads a guest register as a value; `pc` reads as the ARM-pipeline
/// `addr + 8` constant.
fn reg_val(r: Reg, addr: Addr) -> Val {
    if r.is_pc() {
        Val::Const(addr.wrapping_add(8))
    } else {
        Val::Reg(r)
    }
}

fn shift_binop(kind: ShiftKind) -> BinOp {
    match kind {
        ShiftKind::Lsl => BinOp::Shl,
        ShiftKind::Lsr => BinOp::Shr,
        ShiftKind::Asr => BinOp::Sar,
        ShiftKind::Ror => BinOp::Ror,
    }
}

/// Evaluates a flexible second operand into a value.
fn eval_op2(b: &mut Builder, op2: &Operand, addr: Addr) -> Result<Val, LiftError> {
    match op2 {
        Operand::Reg(r) => Ok(reg_val(*r, addr)),
        Operand::Imm(v) => Ok(Val::Const(*v)),
        Operand::Shifted { rm, kind, amount } => Ok(b.bin(
            shift_binop(*kind),
            reg_val(*rm, addr),
            Val::Const(u32::from(*amount)),
        )),
        other => Err(LiftError {
            detail: format!("operand {other} as op2"),
        }),
    }
}

/// Evaluates a memory operand into `(base value, constant offset)`.
fn eval_mem(b: &mut Builder, mem: MemAddr, addr: Addr) -> (Val, i32) {
    match mem {
        MemAddr::BaseImm { base, offset } => (reg_val(base, addr), offset),
        MemAddr::BaseReg { base, index } => {
            let v = b.bin(BinOp::Add, reg_val(base, addr), reg_val(index, addr));
            (v, 0)
        }
    }
}

/// Writes `val` to guest register `rd`; writing `pc` produces an indirect
/// branch terminator instead.
fn write_reg(b: &mut Builder, rd: Reg, val: Val) -> Option<Terminator> {
    if rd.is_pc() {
        Some(Terminator::BrInd { target: val })
    } else {
        b.push(IrOp::Mov {
            d: Dst::Reg(rd),
            s: val,
        });
        None
    }
}

/// Builds the terminator for a conditional direct branch by evaluating
/// the guest condition over the stored flags.
fn cond_branch(b: &mut Builder, cond: Cond, taken: Addr, fallthrough: Addr) -> Terminator {
    let c = |b: &mut Builder, f| b.get_flag(f);
    let cond_val: Option<(IrCc, Val, Val)> = match cond {
        Cond::Al => None,
        Cond::Eq => Some((IrCc::Ne, c(b, Flag::Z), Val::Const(0))),
        Cond::Ne => Some((IrCc::Eq, c(b, Flag::Z), Val::Const(0))),
        Cond::Cs => Some((IrCc::Ne, c(b, Flag::C), Val::Const(0))),
        Cond::Cc => Some((IrCc::Eq, c(b, Flag::C), Val::Const(0))),
        Cond::Mi => Some((IrCc::Ne, c(b, Flag::N), Val::Const(0))),
        Cond::Pl => Some((IrCc::Eq, c(b, Flag::N), Val::Const(0))),
        Cond::Vs => Some((IrCc::Ne, c(b, Flag::V), Val::Const(0))),
        Cond::Vc => Some((IrCc::Eq, c(b, Flag::V), Val::Const(0))),
        Cond::Hi => {
            // C && !Z
            let cf = c(b, Flag::C);
            let zf = c(b, Flag::Z);
            let nz = b.setc(IrCc::Eq, zf, Val::Const(0));
            let t = b.bin(BinOp::And, cf, nz);
            Some((IrCc::Ne, t, Val::Const(0)))
        }
        Cond::Ls => {
            // !C || Z
            let cf = c(b, Flag::C);
            let zf = c(b, Flag::Z);
            let nc = b.setc(IrCc::Eq, cf, Val::Const(0));
            let t = b.bin(BinOp::Or, nc, zf);
            Some((IrCc::Ne, t, Val::Const(0)))
        }
        Cond::Ge => {
            let n = c(b, Flag::N);
            let v = c(b, Flag::V);
            let t = b.bin(BinOp::Xor, n, v);
            Some((IrCc::Eq, t, Val::Const(0)))
        }
        Cond::Lt => {
            let n = c(b, Flag::N);
            let v = c(b, Flag::V);
            let t = b.bin(BinOp::Xor, n, v);
            Some((IrCc::Ne, t, Val::Const(0)))
        }
        Cond::Gt => {
            // !Z && (N == V)
            let n = c(b, Flag::N);
            let v = c(b, Flag::V);
            let eq = {
                let x = b.bin(BinOp::Xor, n, v);
                b.setc(IrCc::Eq, x, Val::Const(0))
            };
            let z = c(b, Flag::Z);
            let nz = b.setc(IrCc::Eq, z, Val::Const(0));
            let t = b.bin(BinOp::And, eq, nz);
            Some((IrCc::Ne, t, Val::Const(0)))
        }
        Cond::Le => {
            // Z || (N != V)
            let n = c(b, Flag::N);
            let v = c(b, Flag::V);
            let ne = b.bin(BinOp::Xor, n, v);
            let z = c(b, Flag::Z);
            let t = b.bin(BinOp::Or, ne, z);
            Some((IrCc::Ne, t, Val::Const(0)))
        }
    };
    Terminator::Br {
        cond: cond_val,
        taken,
        fallthrough,
    }
}

/// Lifts one guest instruction at `addr` into IR.
///
/// # Errors
///
/// [`LiftError`] for shapes outside the supported guest subset
/// (conditional execution of non-branch instructions, flag-setting
/// variable-amount shifts) — the synthetic compiler never emits these.
pub fn lift(inst: &Inst, addr: Addr) -> Result<Lifted, LiftError> {
    lift_omit(inst, addr, FlagSet::EMPTY)
}

/// Like [`lift`], but skips materializing the given flags into the
/// environment — TCG's flag-liveness optimization: the block translator
/// passes the flags it proved dead (or folded into an adjacent
/// conditional branch), and the dead flag computations are eliminated.
///
/// # Errors
///
/// See [`lift`].
pub fn lift_omit(inst: &Inst, addr: Addr, omit: FlagSet) -> Result<Lifted, LiftError> {
    if inst.cond != Cond::Al && inst.op != Op::B {
        return Err(LiftError {
            detail: format!("conditional execution of non-branch `{inst}`"),
        });
    }
    let mut b = Builder::new(omit);
    let next = addr.wrapping_add(4);
    use Op::*;
    let term: Option<Terminator> = match inst.op {
        // ---- data processing ------------------------------------------------
        And | Eor | Sub | Rsb | Add | Adc | Sbc | Rsc | Orr | Bic | Lsl | Lsr | Asr | Ror => {
            let rd = inst.operands[0].as_reg().expect("validated");
            let rn = reg_val(inst.operands[1].as_reg().expect("validated"), addr);
            let op2 = eval_op2(&mut b, &inst.operands[2], addr)?;
            let res = match inst.op {
                Add => b.bin(BinOp::Add, rn, op2),
                Sub => b.bin(BinOp::Sub, rn, op2),
                Rsb => b.bin(BinOp::Sub, op2, rn),
                And => b.bin(BinOp::And, rn, op2),
                Orr => b.bin(BinOp::Or, rn, op2),
                Eor => b.bin(BinOp::Xor, rn, op2),
                Bic => {
                    let inv = {
                        let d = b.tmp();
                        b.push(IrOp::Un {
                            op: UnOp::Not,
                            d: Dst::Tmp(d),
                            a: op2,
                        });
                        Val::Tmp(d)
                    };
                    b.bin(BinOp::And, rn, inv)
                }
                Adc => {
                    let c = b.get_flag(Flag::C);
                    let t = b.bin(BinOp::Add, rn, op2);
                    b.bin(BinOp::Add, t, c)
                }
                Sbc => {
                    let c = b.get_flag(Flag::C);
                    let nb = b.setc(IrCc::Eq, c, Val::Const(0)); // 1 - C
                    let t = b.bin(BinOp::Sub, rn, op2);
                    b.bin(BinOp::Sub, t, nb)
                }
                Rsc => {
                    let c = b.get_flag(Flag::C);
                    let nb = b.setc(IrCc::Eq, c, Val::Const(0));
                    let t = b.bin(BinOp::Sub, op2, rn);
                    b.bin(BinOp::Sub, t, nb)
                }
                Lsl | Lsr | Asr | Ror => {
                    let kind = match inst.op {
                        Lsl => ShiftKind::Lsl,
                        Lsr => ShiftKind::Lsr,
                        Asr => ShiftKind::Asr,
                        _ => ShiftKind::Ror,
                    };
                    let amt = b.bin(BinOp::And, op2, Val::Const(31));
                    b.bin(shift_binop(kind), rn, amt)
                }
                _ => unreachable!(),
            };
            if inst.s {
                match inst.op {
                    Add => {
                        b.set_nz(res);
                        let c = b.setc(IrCc::Ltu, res, rn);
                        b.set_flag(Flag::C, c);
                        b.set_v_add(rn, op2, res);
                    }
                    Sub => {
                        b.set_nz(res);
                        let c = b.setc(IrCc::Geu, rn, op2);
                        b.set_flag(Flag::C, c);
                        let nb = {
                            let d = b.tmp();
                            b.push(IrOp::Un {
                                op: UnOp::Not,
                                d: Dst::Tmp(d),
                                a: op2,
                            });
                            Val::Tmp(d)
                        };
                        b.set_v_add(rn, nb, res);
                    }
                    Rsb => {
                        b.set_nz(res);
                        let c = b.setc(IrCc::Geu, op2, rn);
                        b.set_flag(Flag::C, c);
                        let nb = {
                            let d = b.tmp();
                            b.push(IrOp::Un {
                                op: UnOp::Not,
                                d: Dst::Tmp(d),
                                a: rn,
                            });
                            Val::Tmp(d)
                        };
                        b.set_v_add(op2, nb, res);
                    }
                    And | Orr | Eor | Bic => b.set_nz(res),
                    Lsl | Lsr | Asr | Ror => {
                        // Flag-setting shifts are supported only with a
                        // constant, nonzero amount.
                        let amount = match &inst.operands[2] {
                            Operand::Imm(v) if *v >= 1 && *v <= 31 => *v,
                            other => {
                                return Err(LiftError {
                                    detail: format!("flag-setting shift with amount `{other}`"),
                                })
                            }
                        };
                        b.set_nz(res);
                        let carry = match inst.op {
                            Lsl => {
                                let t = b.bin(BinOp::Shr, rn, Val::Const(32 - amount));
                                b.bin(BinOp::And, t, Val::Const(1))
                            }
                            Lsr | Ror => {
                                let t = b.bin(BinOp::Shr, rn, Val::Const(amount - 1));
                                b.bin(BinOp::And, t, Val::Const(1))
                            }
                            Asr => {
                                let t = b.bin(BinOp::Sar, rn, Val::Const(amount - 1));
                                b.bin(BinOp::And, t, Val::Const(1))
                            }
                            _ => unreachable!(),
                        };
                        b.set_flag(Flag::C, carry);
                    }
                    Adc | Sbc | Rsc => {
                        return Err(LiftError {
                            detail: format!("flag-setting carry-chain op `{inst}`"),
                        })
                    }
                    _ => unreachable!(),
                }
            }
            write_reg(&mut b, rd, res)
        }
        Mov | Mvn => {
            let rd = inst.operands[0].as_reg().expect("validated");
            let op2 = eval_op2(&mut b, &inst.operands[1], addr)?;
            let res = if inst.op == Mvn {
                let d = b.tmp();
                b.push(IrOp::Un {
                    op: UnOp::Not,
                    d: Dst::Tmp(d),
                    a: op2,
                });
                Val::Tmp(d)
            } else {
                op2
            };
            if inst.s {
                b.set_nz(res);
            }
            write_reg(&mut b, rd, res)
        }
        Clz => {
            let rd = inst.operands[0].as_reg().expect("validated");
            let rm = reg_val(inst.operands[1].as_reg().expect("validated"), addr);
            let d = b.tmp();
            b.push(IrOp::Un {
                op: UnOp::Clz,
                d: Dst::Tmp(d),
                a: rm,
            });
            write_reg(&mut b, rd, Val::Tmp(d))
        }
        // ---- multiplies ------------------------------------------------------
        Mul | Mla => {
            let rd = inst.operands[0].as_reg().expect("validated");
            let rm = reg_val(inst.operands[1].as_reg().expect("validated"), addr);
            let rs = reg_val(inst.operands[2].as_reg().expect("validated"), addr);
            let mut res = b.bin(BinOp::Mul, rm, rs);
            if inst.op == Mla {
                let ra = reg_val(inst.operands[3].as_reg().expect("validated"), addr);
                res = b.bin(BinOp::Add, res, ra);
            }
            if inst.s {
                b.set_nz(res);
            }
            write_reg(&mut b, rd, res)
        }
        Umull | Umlal => {
            let rdlo = inst.operands[0].as_reg().expect("validated");
            let rdhi = inst.operands[1].as_reg().expect("validated");
            let rm = reg_val(inst.operands[2].as_reg().expect("validated"), addr);
            let rs = reg_val(inst.operands[3].as_reg().expect("validated"), addr);
            let lo = b.bin(BinOp::Mul, rm, rs);
            let hi = b.bin(BinOp::MulhU, rm, rs);
            let (lo, hi) = if inst.op == Umlal {
                let new_lo = b.bin(BinOp::Add, Val::Reg(rdlo), lo);
                let carry = b.setc(IrCc::Ltu, new_lo, Val::Reg(rdlo));
                let h1 = b.bin(BinOp::Add, Val::Reg(rdhi), hi);
                let h2 = b.bin(BinOp::Add, h1, carry);
                (new_lo, h2)
            } else {
                (lo, hi)
            };
            b.push(IrOp::Mov {
                d: Dst::Reg(rdlo),
                s: lo,
            });
            b.push(IrOp::Mov {
                d: Dst::Reg(rdhi),
                s: hi,
            });
            None
        }
        // ---- compares ---------------------------------------------------------
        Cmp | Cmn | Tst | Teq => {
            let rn = reg_val(inst.operands[0].as_reg().expect("validated"), addr);
            let op2 = eval_op2(&mut b, &inst.operands[1], addr)?;
            match inst.op {
                Cmp => {
                    let res = b.bin(BinOp::Sub, rn, op2);
                    b.set_nz(res);
                    let c = b.setc(IrCc::Geu, rn, op2);
                    b.set_flag(Flag::C, c);
                    let nb = {
                        let d = b.tmp();
                        b.push(IrOp::Un {
                            op: UnOp::Not,
                            d: Dst::Tmp(d),
                            a: op2,
                        });
                        Val::Tmp(d)
                    };
                    b.set_v_add(rn, nb, res);
                }
                Cmn => {
                    let res = b.bin(BinOp::Add, rn, op2);
                    b.set_nz(res);
                    let c = b.setc(IrCc::Ltu, res, rn);
                    b.set_flag(Flag::C, c);
                    b.set_v_add(rn, op2, res);
                }
                Tst => {
                    let res = b.bin(BinOp::And, rn, op2);
                    b.set_nz(res);
                }
                Teq => {
                    let res = b.bin(BinOp::Xor, rn, op2);
                    b.set_nz(res);
                }
                _ => unreachable!(),
            }
            None
        }
        // ---- loads and stores ---------------------------------------------------
        Ldr | Ldrb | Ldrh => {
            let rt = inst.operands[0].as_reg().expect("validated");
            let (base, off) = eval_mem(&mut b, inst.operands[1].as_mem().expect("validated"), addr);
            let width = inst.op.access_width().expect("load width");
            let d = b.tmp();
            b.push(IrOp::Load {
                d: Dst::Tmp(d),
                addr: base,
                off,
                width,
            });
            write_reg(&mut b, rt, Val::Tmp(d))
        }
        Str | Strb | Strh => {
            let rt = reg_val(inst.operands[0].as_reg().expect("validated"), addr);
            let (base, off) = eval_mem(&mut b, inst.operands[1].as_mem().expect("validated"), addr);
            let width = inst.op.access_width().expect("store width");
            b.push(IrOp::Store {
                s: rt,
                addr: base,
                off,
                width,
            });
            None
        }
        // ---- stack ------------------------------------------------------------------
        Push => {
            let list = inst.reg_list().expect("validated");
            let regs: Vec<Reg> = list.iter().collect();
            let total = (regs.len() as u32) * 4;
            let base = b.bin(BinOp::Sub, Val::Reg(Reg::Sp), Val::Const(total));
            for (i, r) in regs.iter().enumerate() {
                b.push(IrOp::Store {
                    s: reg_val(*r, addr),
                    addr: base,
                    off: (i as i32) * 4,
                    width: pdbt_isa::Width::B32,
                });
            }
            b.push(IrOp::Mov {
                d: Dst::Reg(Reg::Sp),
                s: base,
            });
            None
        }
        Pop => {
            let list = inst.reg_list().expect("validated");
            let regs: Vec<Reg> = list.iter().collect();
            let mut jump: Option<Val> = None;
            let old_sp = b.tmp();
            b.push(IrOp::Mov {
                d: Dst::Tmp(old_sp),
                s: Val::Reg(Reg::Sp),
            });
            for (i, r) in regs.iter().enumerate() {
                let d = b.tmp();
                b.push(IrOp::Load {
                    d: Dst::Tmp(d),
                    addr: Val::Tmp(old_sp),
                    off: (i as i32) * 4,
                    width: pdbt_isa::Width::B32,
                });
                if r.is_pc() {
                    jump = Some(Val::Tmp(d));
                } else {
                    b.push(IrOp::Mov {
                        d: Dst::Reg(*r),
                        s: Val::Tmp(d),
                    });
                }
            }
            let new_sp = b.bin(
                BinOp::Add,
                Val::Tmp(old_sp),
                Val::Const((regs.len() as u32) * 4),
            );
            b.push(IrOp::Mov {
                d: Dst::Reg(Reg::Sp),
                s: new_sp,
            });
            jump.map(|target| Terminator::BrInd { target })
        }
        // ---- branches ---------------------------------------------------------------
        B => {
            let Operand::Target(d) = inst.operands[0] else {
                unreachable!("validated")
            };
            let taken = addr.wrapping_add(d as u32);
            Some(cond_branch(&mut b, inst.cond, taken, next))
        }
        Bl => {
            let Operand::Target(d) = inst.operands[0] else {
                unreachable!("validated")
            };
            b.push(IrOp::Mov {
                d: Dst::Reg(Reg::Lr),
                s: Val::Const(next),
            });
            Some(Terminator::Br {
                cond: None,
                taken: addr.wrapping_add(d as u32),
                fallthrough: next,
            })
        }
        Bx => {
            let rm = reg_val(inst.operands[0].as_reg().expect("validated"), addr);
            Some(Terminator::BrInd { target: rm })
        }
        Svc => {
            let imm = inst.operands[0].as_imm().expect("validated");
            match imm {
                0 => Some(Terminator::Exit),
                1 => {
                    b.push(IrOp::Output {
                        s: Val::Reg(Reg::R0),
                    });
                    None
                }
                other => {
                    return Err(LiftError {
                        detail: format!("svc #{other}"),
                    })
                }
            }
        }
        // ---- floating point ------------------------------------------------------------
        Vadd | Vsub | Vmul | Vdiv => {
            let (Operand::FReg(sd), Operand::FReg(sn), Operand::FReg(sm)) =
                (inst.operands[0], inst.operands[1], inst.operands[2])
            else {
                unreachable!("validated")
            };
            let op = match inst.op {
                Vadd => FBinOp::Add,
                Vsub => FBinOp::Sub,
                Vmul => FBinOp::Mul,
                _ => FBinOp::Div,
            };
            b.push(IrOp::FBin {
                op,
                d: sd,
                a: sn,
                b: sm,
            });
            None
        }
        Vmov => {
            let (Operand::FReg(sd), Operand::FReg(sm)) = (inst.operands[0], inst.operands[1])
            else {
                unreachable!("validated")
            };
            b.push(IrOp::FMov { d: sd, s: sm });
            None
        }
        Vcmp => {
            let (Operand::FReg(sd), Operand::FReg(sm)) = (inst.operands[0], inst.operands[1])
            else {
                unreachable!("validated")
            };
            b.push(IrOp::FCmpFlags { a: sd, b: sm });
            None
        }
        Vldr => {
            let Operand::FReg(sd) = inst.operands[0] else {
                unreachable!("validated")
            };
            let (base, off) = eval_mem(&mut b, inst.operands[1].as_mem().expect("validated"), addr);
            b.push(IrOp::FLoad {
                d: sd,
                addr: base,
                off,
            });
            None
        }
        Vstr => {
            let Operand::FReg(sd) = inst.operands[0] else {
                unreachable!("validated")
            };
            let (base, off) = eval_mem(&mut b, inst.operands[1].as_mem().expect("validated"), addr);
            b.push(IrOp::FStore {
                s: sd,
                addr: base,
                off,
            });
            None
        }
    };
    let body = eliminate_dead(b.ops, term.as_ref());
    Ok(match term {
        Some(t) => Lifted::terminated(body, t),
        None => Lifted::body(body),
    })
}

/// Removes pure IR operations whose temporary results are never read
/// (downstream or by the terminator).
fn eliminate_dead(ops: Vec<IrOp>, term: Option<&Terminator>) -> Vec<IrOp> {
    let mut live = [false; 64];
    let mark = |v: &Val, live: &mut [bool; 64]| {
        if let Val::Tmp(t) = v {
            live[t.0 as usize] = true;
        }
    };
    if let Some(Terminator::Br {
        cond: Some((_, a, b)),
        ..
    }) = term
    {
        mark(a, &mut live);
        mark(b, &mut live);
    }
    if let Some(Terminator::BrInd { target }) = term {
        mark(target, &mut live);
    }
    let mut keep = vec![true; ops.len()];
    for (i, op) in ops.iter().enumerate().rev() {
        let (dst, pure) = match op {
            IrOp::Mov { d, .. }
            | IrOp::Bin { d, .. }
            | IrOp::Un { d, .. }
            | IrOp::Setc { d, .. }
            | IrOp::GetFlag { d, .. } => (Some(*d), true),
            IrOp::Load { d, .. } => (Some(*d), true),
            _ => (None, false),
        };
        let dead = match (dst, pure) {
            (Some(Dst::Tmp(t)), true) => !live[t.0 as usize],
            _ => false,
        };
        if dead {
            keep[i] = false;
            continue;
        }
        // This op survives: its sources become live.
        match op {
            IrOp::Mov { s, .. } | IrOp::SetFlag { s, .. } | IrOp::Output { s } => {
                mark(s, &mut live)
            }
            IrOp::Bin { a, b, .. } | IrOp::Setc { a, b, .. } => {
                mark(a, &mut live);
                mark(b, &mut live);
            }
            IrOp::Un { a, .. } => mark(a, &mut live),
            IrOp::Load { addr, .. } | IrOp::FLoad { addr, .. } => mark(addr, &mut live),
            IrOp::Store { s, addr, .. } => {
                mark(s, &mut live);
                mark(addr, &mut live);
            }
            IrOp::FStore { addr, .. } => mark(addr, &mut live),
            IrOp::GetFlag { .. }
            | IrOp::FBin { .. }
            | IrOp::FMov { .. }
            | IrOp::FCmpFlags { .. } => {}
        }
    }
    ops.into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(op, _)| op)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdbt_isa_arm::builders::*;
    use pdbt_isa_arm::{MemAddr, Operand};

    #[test]
    fn plain_add_is_small() {
        let l = lift(&add(Reg::R0, Reg::R1, Operand::Reg(Reg::R2)), 0x1000).unwrap();
        assert!(l.term.is_none());
        // bin + mov into rd.
        assert_eq!(l.body.len(), 2);
    }

    #[test]
    fn adds_materializes_all_four_flags() {
        let l = lift(&add(Reg::R0, Reg::R1, Operand::Imm(1)).with_s(), 0x1000).unwrap();
        let set_flags: Vec<Flag> = l
            .body
            .iter()
            .filter_map(|op| match op {
                IrOp::SetFlag { f, .. } => Some(*f),
                _ => None,
            })
            .collect();
        assert_eq!(set_flags, vec![Flag::N, Flag::Z, Flag::C, Flag::V]);
        // The eager flag materialization is the expansion the paper's
        // delegation avoids: ≥10 IR ops for one guest adds.
        assert!(l.body.len() >= 10, "adds lifted to {} ops", l.body.len());
    }

    #[test]
    fn logical_s_sets_only_nz() {
        let l = lift(&and(Reg::R0, Reg::R1, Operand::Imm(3)).with_s(), 0).unwrap();
        let set: Vec<Flag> = l
            .body
            .iter()
            .filter_map(|op| match op {
                IrOp::SetFlag { f, .. } => Some(*f),
                _ => None,
            })
            .collect();
        assert_eq!(set, vec![Flag::N, Flag::Z]);
    }

    #[test]
    fn pc_reads_as_plus_8_constant() {
        let l = lift(&add(Reg::R0, Reg::Pc, Operand::Imm(4)), 0x2000).unwrap();
        assert!(l.body.iter().any(|op| matches!(
            op,
            IrOp::Bin {
                a: Val::Const(0x2008),
                ..
            }
        )));
    }

    #[test]
    fn conditional_branch_reads_flags() {
        let l = lift(&b(Cond::Ge, 16), 0x1000).unwrap();
        assert!(matches!(
            l.term,
            Some(Terminator::Br {
                taken: 0x1010,
                fallthrough: 0x1004,
                cond: Some(_)
            })
        ));
        assert!(l
            .body
            .iter()
            .any(|op| matches!(op, IrOp::GetFlag { f: Flag::N, .. })));
        assert!(l
            .body
            .iter()
            .any(|op| matches!(op, IrOp::GetFlag { f: Flag::V, .. })));
    }

    #[test]
    fn unconditional_branch_has_no_cond() {
        let l = lift(&b(Cond::Al, -8), 0x1000).unwrap();
        assert_eq!(
            l.term,
            Some(Terminator::Br {
                cond: None,
                taken: 0xff8,
                fallthrough: 0x1004
            })
        );
        assert!(l.body.is_empty());
    }

    #[test]
    fn bl_links_and_branches() {
        let l = lift(&bl(0x100), 0x1000).unwrap();
        assert!(l.body.iter().any(|op| matches!(
            op,
            IrOp::Mov {
                d: Dst::Reg(Reg::Lr),
                s: Val::Const(0x1004)
            }
        )));
        assert!(matches!(l.term, Some(Terminator::Br { taken: 0x1100, .. })));
    }

    #[test]
    fn mov_pc_is_indirect_branch() {
        let l = lift(&mov(Reg::Pc, Operand::Reg(Reg::Lr)), 0).unwrap();
        assert!(matches!(
            l.term,
            Some(Terminator::BrInd {
                target: Val::Reg(Reg::Lr)
            })
        ));
    }

    #[test]
    fn pop_pc_is_indirect_branch() {
        let l = lift(&pop([Reg::R4, Reg::Pc]), 0).unwrap();
        assert!(matches!(l.term, Some(Terminator::BrInd { .. })));
        // r4 loaded, sp adjusted.
        assert!(l.body.iter().any(|op| matches!(
            op,
            IrOp::Mov {
                d: Dst::Reg(Reg::R4),
                ..
            }
        )));
        assert!(l.body.iter().any(|op| matches!(
            op,
            IrOp::Mov {
                d: Dst::Reg(Reg::Sp),
                ..
            }
        )));
    }

    #[test]
    fn svc_semantics() {
        assert!(matches!(
            lift(&svc(0), 0).unwrap().term,
            Some(Terminator::Exit)
        ));
        let l = lift(&svc(1), 0).unwrap();
        assert!(l.term.is_none());
        assert!(matches!(
            l.body[0],
            IrOp::Output {
                s: Val::Reg(Reg::R0)
            }
        ));
    }

    #[test]
    fn unsupported_shapes_error() {
        assert!(lift(&mov(Reg::R0, Operand::Imm(1)).with_cond(Cond::Eq), 0).is_err());
        assert!(lift(&lsl(Reg::R0, Reg::R1, Operand::Reg(Reg::R2)).with_s(), 0).is_err());
        assert!(lift(&adc(Reg::R0, Reg::R1, Operand::Imm(0)).with_s(), 0).is_err());
    }

    #[test]
    fn memory_modes() {
        let l = lift(
            &ldr(
                Reg::R0,
                MemAddr::BaseImm {
                    base: Reg::R1,
                    offset: 8,
                },
            ),
            0,
        )
        .unwrap();
        assert!(l.body.iter().any(|op| matches!(
            op,
            IrOp::Load {
                addr: Val::Reg(Reg::R1),
                off: 8,
                ..
            }
        )));
        let l = lift(
            &str_(
                Reg::R0,
                MemAddr::BaseReg {
                    base: Reg::R1,
                    index: Reg::R2,
                },
            ),
            0,
        )
        .unwrap();
        // base+index computed by an add, then stored with offset 0.
        assert!(l
            .body
            .iter()
            .any(|op| matches!(op, IrOp::Bin { op: BinOp::Add, .. })));
        assert!(l
            .body
            .iter()
            .any(|op| matches!(op, IrOp::Store { off: 0, .. })));
    }

    #[test]
    fn umlal_accumulates_with_carry() {
        let l = lift(&umlal(Reg::R0, Reg::R1, Reg::R2, Reg::R3), 0).unwrap();
        // mul, mulhu, add-lo, carry setc, two hi adds, two final movs.
        assert!(l.body.len() >= 8);
        assert!(l.body.iter().any(|op| matches!(
            op,
            IrOp::Bin {
                op: BinOp::MulhU,
                ..
            }
        )));
        assert!(l
            .body
            .iter()
            .any(|op| matches!(op, IrOp::Setc { cc: IrCc::Ltu, .. })));
    }
}
