//! The QEMU-baseline translation pipeline: a TCG-like IR, a guest → IR
//! lifter, and an IR → host lowering.
//!
//! This crate reproduces the paper's baseline. QEMU translates each guest
//! instruction into one or more IR pseudo-instructions and each IR
//! pseudo-instruction into one or more host instructions — the
//! "multiplying effect" (§II-A) that costs the baseline 3.49 core host
//! instructions per guest instruction (Table II). The learned-rule path
//! (`pdbt-core`) bypasses this pipeline entirely.
//!
//! # Example
//!
//! ```
//! use pdbt_ir::{lift, lower_ops, RegMap};
//! use pdbt_isa_arm::builders::*;
//! use pdbt_isa_arm::{Operand, Reg};
//!
//! let guest = add(Reg::R0, Reg::R1, Operand::Imm(1)).with_s();
//! let lifted = lift(&guest, 0x1000).unwrap();
//! let host = lower_ops(&lifted.body, &RegMap::all_env());
//! // Flag materialization makes the QEMU path expensive:
//! assert!(host.len() > 10);
//! ```

pub mod env;
mod lift;
mod lower;
mod op;

pub use env::{Loc, RegMap, ALLOCATABLE, SCRATCH};
pub use lift::{lift, lift_omit, LiftError};
pub use lower::{host_cc, lower_branch_cond, lower_ops};
pub use op::{BinOp, Dst, FBinOp, IrCc, IrOp, Lifted, Terminator, Tmp, UnOp, Val};
