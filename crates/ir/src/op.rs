//! The TCG-like intermediate representation.
//!
//! Each guest instruction lifts to one or more IR operations; each IR
//! operation lowers to one or more host instructions. That two-stage
//! expansion is QEMU's "multiplying effect" (paper §II-A), which the
//! learned rules avoid by translating guest → host directly.

use pdbt_isa::{Addr, Flag, Width};
use pdbt_isa_arm::{FReg, Reg as GReg};
use std::fmt;

/// An IR temporary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tmp(pub u8);

impl fmt::Display for Tmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A value read by an IR operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Val {
    /// A guest register (resolved by the block register map at lowering).
    Reg(GReg),
    /// An IR temporary.
    Tmp(Tmp),
    /// A constant.
    Const(u32),
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Reg(r) => write!(f, "{r}"),
            Val::Tmp(t) => write!(f, "{t}"),
            Val::Const(c) => write!(f, "{c:#x}"),
        }
    }
}

impl From<GReg> for Val {
    fn from(r: GReg) -> Val {
        Val::Reg(r)
    }
}

impl From<Tmp> for Val {
    fn from(t: Tmp) -> Val {
        Val::Tmp(t)
    }
}

impl From<u32> for Val {
    fn from(c: u32) -> Val {
        Val::Const(c)
    }
}

/// A location written by an IR operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dst {
    /// A guest register.
    Reg(GReg),
    /// An IR temporary.
    Tmp(Tmp),
}

impl Dst {
    /// This destination read as a value.
    #[must_use]
    pub fn as_val(self) -> Val {
        match self {
            Dst::Reg(r) => Val::Reg(r),
            Dst::Tmp(t) => Val::Tmp(t),
        }
    }
}

impl fmt::Display for Dst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dst::Reg(r) => write!(f, "{r}"),
            Dst::Tmp(t) => write!(f, "{t}"),
        }
    }
}

/// Binary IR operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sar,
    Ror,
    Mul,
    /// Upper 32 bits of the unsigned 64-bit product.
    MulhU,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Sar => "sar",
            BinOp::Ror => "ror",
            BinOp::Mul => "mul",
            BinOp::MulhU => "mulhu",
        };
        f.write_str(s)
    }
}

/// Unary IR operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Not,
    Neg,
    Clz,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Not => "not",
            UnOp::Neg => "neg",
            UnOp::Clz => "clz",
        })
    }
}

/// IR comparison conditions (operate on values, not flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IrCc {
    Eq,
    Ne,
    Ltu,
    Leu,
    Gtu,
    Geu,
    Lts,
    Les,
    Gts,
    Ges,
}

impl IrCc {
    /// Evaluates the comparison on concrete values.
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> bool {
        let (sa, sb) = (a as i32, b as i32);
        match self {
            IrCc::Eq => a == b,
            IrCc::Ne => a != b,
            IrCc::Ltu => a < b,
            IrCc::Leu => a <= b,
            IrCc::Gtu => a > b,
            IrCc::Geu => a >= b,
            IrCc::Lts => sa < sb,
            IrCc::Les => sa <= sb,
            IrCc::Gts => sa > sb,
            IrCc::Ges => sa >= sb,
        }
    }
}

impl fmt::Display for IrCc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IrCc::Eq => "eq",
            IrCc::Ne => "ne",
            IrCc::Ltu => "ltu",
            IrCc::Leu => "leu",
            IrCc::Gtu => "gtu",
            IrCc::Geu => "geu",
            IrCc::Lts => "lts",
            IrCc::Les => "les",
            IrCc::Gts => "gts",
            IrCc::Ges => "ges",
        };
        f.write_str(s)
    }
}

/// Float binary IR operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FBinOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// One IR operation (non-terminal).
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum IrOp {
    /// `d = s`
    Mov { d: Dst, s: Val },
    /// `d = a <op> b`
    Bin { op: BinOp, d: Dst, a: Val, b: Val },
    /// `d = <op> a`
    Un { op: UnOp, d: Dst, a: Val },
    /// `d = (a <cc> b) ? 1 : 0`
    Setc { d: Dst, cc: IrCc, a: Val, b: Val },
    /// `d = guest_flag(f)` as 0/1
    GetFlag { d: Dst, f: Flag },
    /// `guest_flag(f) = (s != 0)`
    SetFlag { f: Flag, s: Val },
    /// `d = mem[a + off]` (zero-extended)
    Load {
        d: Dst,
        addr: Val,
        off: i32,
        width: Width,
    },
    /// `mem[a + off] = s` (narrowed)
    Store {
        s: Val,
        addr: Val,
        off: i32,
        width: Width,
    },
    /// `fd = fa <op> fb`
    FBin {
        op: FBinOp,
        d: FReg,
        a: FReg,
        b: FReg,
    },
    /// `fd = fs`
    FMov { d: FReg, s: FReg },
    /// Sets guest flags from an ARM-style float compare of `a ? b`.
    FCmpFlags { a: FReg, b: FReg },
    /// `fd = mem[a + off]` (bit pattern)
    FLoad { d: FReg, addr: Val, off: i32 },
    /// `mem[a + off] = fs`
    FStore { s: FReg, addr: Val, off: i32 },
    /// Emit `s` to the guest output stream.
    Output { s: Val },
}

/// How a lifted guest instruction transfers control.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Conditional or unconditional direct branch. `cond == None` means
    /// always taken.
    Br {
        /// Branch condition over IR values, if any.
        cond: Option<(IrCc, Val, Val)>,
        /// Guest address when taken.
        taken: Addr,
        /// Guest address when not taken.
        fallthrough: Addr,
    },
    /// Indirect branch to a computed guest address.
    BrInd {
        /// The target value.
        target: Val,
    },
    /// Guest exit (`svc #0`).
    Exit,
}

/// The result of lifting one guest instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lifted {
    /// Straight-line IR body.
    pub body: Vec<IrOp>,
    /// Control transfer, if the instruction ends the block.
    pub term: Option<Terminator>,
}

impl Lifted {
    /// A pure straight-line lifting.
    #[must_use]
    pub fn body(body: Vec<IrOp>) -> Lifted {
        Lifted { body, term: None }
    }

    /// A lifting that ends the block.
    #[must_use]
    pub fn terminated(body: Vec<IrOp>, term: Terminator) -> Lifted {
        Lifted {
            body,
            term: Some(term),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ircc_eval_signed_vs_unsigned() {
        assert!(IrCc::Ltu.eval(1, u32::MAX));
        assert!(!IrCc::Lts.eval(1, u32::MAX));
        assert!(IrCc::Lts.eval(u32::MAX, 1)); // -1 < 1 signed
        assert!(IrCc::Geu.eval(5, 5));
        assert!(IrCc::Eq.eval(7, 7));
        assert!(IrCc::Gts.eval(3, u32::MAX));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Tmp(3).to_string(), "t3");
        assert_eq!(Val::Const(255).to_string(), "0xff");
        assert_eq!(Val::Reg(GReg::R2).to_string(), "r2");
        assert_eq!(BinOp::MulhU.to_string(), "mulhu");
        assert_eq!(IrCc::Ges.to_string(), "ges");
    }

    #[test]
    fn dst_as_val() {
        assert_eq!(Dst::Reg(GReg::R1).as_val(), Val::Reg(GReg::R1));
        assert_eq!(Dst::Tmp(Tmp(0)).as_val(), Val::Tmp(Tmp(0)));
    }
}
