//! The guest environment block: the in-host-memory array holding the
//! guest's architectural state, and the block-level register map.
//!
//! QEMU emulates guest registers "through an array in the host memory
//! space" (paper §V-B1); translated code addresses it via `ebp`. Both the
//! QEMU-path and rule-path translators share this layout, which is what
//! lets the runtime count *data transfer* instructions (guest-register
//! loads/stores around each block) identically for both configurations,
//! as Table II does.

use pdbt_isa::Flag;
use pdbt_isa_arm::{FReg, Reg as GReg};
use pdbt_isa_x86::{Mem, Reg as HReg};

/// Byte offset of guest register `r` inside the environment block.
#[must_use]
pub fn reg_offset(r: GReg) -> i32 {
    (r.index() as i32) * 4
}

/// Byte offset of guest flag `f`.
#[must_use]
pub fn flag_offset(f: Flag) -> i32 {
    64 + 4 * match f {
        Flag::N => 0,
        Flag::Z => 1,
        Flag::C => 2,
        Flag::V => 3,
    }
}

/// Byte offset of guest float register `s`.
#[must_use]
pub fn freg_offset(s: FReg) -> i32 {
    80 + (s.index() as i32) * 4
}

/// Byte offset of the retired-instruction counter the block stubs
/// maintain (modelling QEMU's icount bookkeeping).
pub const ICOUNT_OFFSET: i32 = 144;

/// Byte offset of the pending-work word the block stubs poll (modelling
/// QEMU's interrupt/exit-request check).
pub const PENDING_OFFSET: i32 = 148;

/// Byte offset of spill slot `i` (temporaries that do not fit in host
/// registers).
#[must_use]
pub fn spill_offset(i: usize) -> i32 {
    160 + (i as i32) * 4
}

/// Total size of the environment block in bytes (with 16 spill slots).
pub const ENV_SIZE: u32 = 160 + 16 * 4;

/// Host memory operand addressing guest register `r` (via `ebp`).
#[must_use]
pub fn reg_mem(r: GReg) -> Mem {
    Mem::base_disp(HReg::Ebp, reg_offset(r))
}

/// Host memory operand addressing guest flag `f`.
#[must_use]
pub fn flag_mem(f: Flag) -> Mem {
    Mem::base_disp(HReg::Ebp, flag_offset(f))
}

/// Host memory operand addressing guest float register `s`.
#[must_use]
pub fn freg_mem(s: FReg) -> Mem {
    Mem::base_disp(HReg::Ebp, freg_offset(s))
}

/// Host memory operand addressing spill slot `i`.
#[must_use]
pub fn spill_mem(i: usize) -> Mem {
    Mem::base_disp(HReg::Ebp, spill_offset(i))
}

/// Host memory operand addressing the retired-instruction counter.
#[must_use]
pub fn mem_icount() -> Mem {
    Mem::base_disp(HReg::Ebp, ICOUNT_OFFSET)
}

/// Host memory operand addressing the pending-work word.
#[must_use]
pub fn mem_pending() -> Mem {
    Mem::base_disp(HReg::Ebp, PENDING_OFFSET)
}

/// Where a guest register lives during one translated block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// Cached in a host register (loaded by the block prologue).
    Host(HReg),
    /// Accessed in place in the environment block.
    Env,
}

/// The block-level guest-register allocation.
///
/// The host reserves `ebp` (environment pointer), `esp` (host stack) and
/// two scratch registers (`eax`, `edx`) for the translators, leaving four
/// allocatable registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegMap {
    locs: [Loc; 16],
    allocated: Vec<(GReg, HReg)>,
}

/// Host registers available for caching guest registers.
pub const ALLOCATABLE: [HReg; 4] = [HReg::Ecx, HReg::Ebx, HReg::Esi, HReg::Edi];

/// Host scratch registers reserved for translator-generated temporaries.
pub const SCRATCH: [HReg; 2] = [HReg::Eax, HReg::Edx];

impl RegMap {
    /// Allocates the (up to four) most-used guest registers of a block to
    /// host registers; the rest stay in the environment.
    ///
    /// `used` lists the guest registers the block touches, most frequent
    /// first (duplicates allowed and counted by the caller's ordering).
    #[must_use]
    pub fn allocate(used: &[GReg]) -> RegMap {
        let mut locs = [Loc::Env; 16];
        let mut allocated = Vec::new();
        let mut pool = ALLOCATABLE.iter();
        let mut seen = [false; 16];
        for &g in used {
            if g == GReg::Pc || seen[g.index()] {
                continue; // pc is rematerialized, never cached
            }
            seen[g.index()] = true;
            if let Some(&h) = pool.next() {
                locs[g.index()] = Loc::Host(h);
                allocated.push((g, h));
            }
        }
        RegMap { locs, allocated }
    }

    /// A map with no guest registers cached (pure in-environment access).
    #[must_use]
    pub fn all_env() -> RegMap {
        RegMap {
            locs: [Loc::Env; 16],
            allocated: Vec::new(),
        }
    }

    /// Where guest register `g` lives.
    #[must_use]
    pub fn loc(&self, g: GReg) -> Loc {
        self.locs[g.index()]
    }

    /// The `(guest, host)` pairs cached in host registers, in allocation
    /// order (the prologue/epilogue emission order).
    #[must_use]
    pub fn allocated(&self) -> &[(GReg, HReg)] {
        &self.allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_do_not_overlap() {
        let mut seen = std::collections::HashSet::new();
        for r in GReg::ALL {
            assert!(seen.insert(reg_offset(r)));
        }
        for f in Flag::ALL {
            assert!(seen.insert(flag_offset(f)));
        }
        for i in 0..16 {
            assert!(seen.insert(freg_offset(FReg::new(i))));
        }
        assert!(seen.insert(ICOUNT_OFFSET));
        assert!(seen.insert(PENDING_OFFSET));
        for i in 0..16 {
            assert!(seen.insert(spill_offset(i)));
        }
        assert!(seen.iter().all(|&o| (o as u32) < ENV_SIZE));
    }

    #[test]
    fn allocate_caps_at_four_and_skips_pc() {
        let used = [
            GReg::R0,
            GReg::R1,
            GReg::Pc,
            GReg::R2,
            GReg::R3,
            GReg::R4,
            GReg::R0,
        ];
        let map = RegMap::allocate(&used);
        assert_eq!(map.allocated().len(), 4);
        assert_eq!(map.loc(GReg::R0), Loc::Host(HReg::Ecx));
        assert_eq!(map.loc(GReg::R3), Loc::Host(HReg::Edi));
        assert_eq!(map.loc(GReg::R4), Loc::Env);
        assert_eq!(map.loc(GReg::Pc), Loc::Env);
    }

    #[test]
    fn all_env_caches_nothing() {
        let map = RegMap::all_env();
        assert!(map.allocated().is_empty());
        assert_eq!(map.loc(GReg::R5), Loc::Env);
    }
}
