//! `pdbt loadgen` — a client-side load generator for a live daemon.
//!
//! Drives a zipfian request mix (a few hot guest images plus a long
//! tail of cold ones) at a configurable concurrency, measures
//! end-to-end latency client-side, polls `STATS` while the load runs
//! (checking the snapshot sequence stays monotone), and distills the
//! run into the numbers the serving-plane bench tracks: p50/p99
//! latency, sessions per second, and the warm-hit ratio.
//!
//! Determinism discipline: the request→image assignment is drawn
//! *up front* from a seeded `pdbt-rng` stream, so the offered traffic
//! is a pure function of the seed and knobs regardless of how client
//! threads interleave. Latencies are of course wall-clock.

use crate::client::{self, ClientError};
use pdbt_obs::json::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// The daemon to drive.
    pub addr: SocketAddr,
    /// Concurrent client sessions (threads).
    pub sessions: usize,
    /// Total requests to issue.
    pub requests: usize,
    /// Distinct hot guest images (the head of the zipfian mix).
    pub hot: usize,
    /// Distinct cold guest images (the long tail).
    pub tail: usize,
    /// Seed for the request→image assignment.
    pub seed: u64,
    /// `STATS` poll interval while the load runs.
    pub poll_ms: u64,
    /// Per-socket-operation timeout for every client call.
    pub timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 7411)),
            sessions: 4,
            requests: 64,
            hot: 3,
            tail: 13,
            seed: 1,
            poll_ms: 20,
            timeout: Duration::from_secs(120),
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests answered with a RESULT frame.
    pub ok: u64,
    /// Requests that failed (errors, timeouts).
    pub failed: u64,
    /// Exact client-side end-to-end latency quantiles (ns), from the
    /// sorted sample set — the oracle the server's interpolated
    /// histogram quantiles approximate.
    pub p50_ns: u64,
    pub p99_ns: u64,
    /// Completed requests per wall-clock second.
    pub sessions_per_sec: f64,
    /// Warm-hit ratio from the final STATS snapshot (`hits / probes`).
    pub warm_hit_ratio: f64,
    /// STATS polls made while the load ran.
    pub stats_polls: u64,
    /// The final STATS snapshot.
    pub final_stats: Json,
}

impl LoadgenReport {
    /// The `BENCH_serve.json`-shaped document.
    #[must_use]
    pub fn to_json(&self, cfg: &LoadgenConfig) -> Json {
        Json::obj([
            ("bench", Json::str("loadgen")),
            ("requests", Json::from(cfg.requests)),
            ("sessions", Json::from(cfg.sessions)),
            ("hot_images", Json::from(cfg.hot)),
            ("tail_images", Json::from(cfg.tail)),
            ("seed", Json::from(cfg.seed)),
            ("ok", Json::from(self.ok)),
            ("failed", Json::from(self.failed)),
            ("p50_ns", Json::from(self.p50_ns)),
            ("p99_ns", Json::from(self.p99_ns)),
            ("sessions_per_sec", Json::from(self.sessions_per_sec)),
            ("warm_hit_ratio", Json::from(self.warm_hit_ratio)),
            ("stats_polls", Json::from(self.stats_polls)),
            ("final_stats", self.final_stats.clone()),
        ])
    }
}

/// A distinct synthetic guest image: every image computes a different
/// constant, so each gets its own fingerprint (and partition) while
/// staying a few-instruction run.
fn image_program(index: usize) -> String {
    let k = 10 + index as u32;
    format!("mov r0, #{k}\nadd r0, r0, #{}\nsvc #1\nsvc #0\n", index % 7)
}

/// The zipfian request→image assignment: image weights follow 1/rank
/// over `hot + tail` images (hot images are simply the head ranks),
/// drawn per-request from one seeded stream.
fn assignment(cfg: &LoadgenConfig) -> Vec<usize> {
    let images = (cfg.hot + cfg.tail).max(1);
    let weights: Vec<f64> = (0..images).map(|r| 1.0 / (r as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.requests)
        .map(|_| {
            let mut x = rng.gen::<f64>() * total;
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    return i;
                }
                x -= w;
            }
            images - 1
        })
        .collect()
}

/// Drives the daemon at `cfg.addr` and returns the measured report.
///
/// # Errors
///
/// A message when the daemon is unreachable, every request fails, or a
/// STATS poll comes back non-monotone.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let plan = assignment(cfg);
    let programs: Vec<String> = (0..(cfg.hot + cfg.tail).max(1))
        .map(image_program)
        .collect();
    let next = AtomicUsize::new(0);
    let ok = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let samples: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(cfg.requests));
    let done = AtomicBool::new(false);
    let polls = AtomicU64::new(0);
    let poll_error: Mutex<Option<String>> = Mutex::new(None);

    let started = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..cfg.sessions.max(1) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&image) = plan.get(i) else { break };
                let req = Json::obj([
                    ("id", Json::from(i as u64)),
                    ("program", Json::str(&programs[image])),
                ]);
                let t0 = Instant::now();
                match client::submit(cfg.addr, &req, cfg.timeout) {
                    Ok(_) => {
                        ok.fetch_add(1, Ordering::Relaxed);
                        samples.lock().unwrap().push(t0.elapsed().as_nanos() as u64);
                    }
                    Err(_) => {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // The poller: watch STATS while the load runs, assert the
        // snapshot sequence is strictly monotone as seen from this
        // single poller.
        s.spawn(|| {
            let mut last_seq = 0u64;
            while !done.load(Ordering::Relaxed) {
                match client::stats(cfg.addr, cfg.timeout) {
                    Ok(snap) => {
                        polls.fetch_add(1, Ordering::Relaxed);
                        let seq = snap.get("stats_seq").and_then(Json::as_u64).unwrap_or(0);
                        if seq <= last_seq {
                            *poll_error.lock().unwrap() = Some(format!(
                                "STATS sequence went backwards: {seq} after {last_seq}"
                            ));
                            break;
                        }
                        last_seq = seq;
                    }
                    Err(ClientError::Io(_)) => {} // daemon busy accepting; retry
                    Err(e) => {
                        *poll_error.lock().unwrap() = Some(format!("STATS poll failed: {e}"));
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(cfg.poll_ms.max(1)));
            }
        });
        // Scope joins the workers; flip `done` once they all finish by
        // watching the shared counter from this thread.
        while next.load(Ordering::Relaxed) < plan.len() + cfg.sessions {
            std::thread::sleep(Duration::from_millis(2));
            if ok.load(Ordering::Relaxed) + failed.load(Ordering::Relaxed) >= plan.len() as u64 {
                break;
            }
        }
        done.store(true, Ordering::Relaxed);
    });
    let wall = started.elapsed();

    if let Some(e) = poll_error.into_inner().unwrap() {
        return Err(e);
    }
    let ok = ok.into_inner();
    let failed = failed.into_inner();
    if ok == 0 {
        return Err(format!(
            "no request succeeded ({failed} failed) — is the daemon up at {}?",
            cfg.addr
        ));
    }
    let mut samples = samples.into_inner().unwrap();
    samples.sort_unstable();
    let quantile = |p: f64| {
        let rank = ((p * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        samples[rank - 1]
    };
    let final_stats = client::stats(cfg.addr, cfg.timeout)
        .map_err(|e| format!("final STATS fetch failed: {e}"))?;
    let srv = final_stats.get("server");
    let warm_hit_ratio = srv
        .and_then(|s| s.get("hit_rate"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    Ok(LoadgenReport {
        ok,
        failed,
        p50_ns: quantile(0.50),
        p99_ns: quantile(0.99),
        sessions_per_sec: ok as f64 / wall.as_secs_f64().max(1e-9),
        warm_hit_ratio,
        stats_polls: polls.into_inner(),
        final_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_seeded_and_zipf_shaped() {
        let cfg = LoadgenConfig {
            requests: 2000,
            hot: 2,
            tail: 8,
            seed: 7,
            ..LoadgenConfig::default()
        };
        let a = assignment(&cfg);
        let b = assignment(&cfg);
        assert_eq!(a, b, "same seed, same traffic");
        let mut counts = [0usize; 10];
        for &i in &a {
            counts[i] += 1;
        }
        // Rank 0 must dominate rank 9 by roughly its 10x weight ratio.
        assert!(
            counts[0] > counts[9] * 3,
            "zipf head {} vs tail {}",
            counts[0],
            counts[9]
        );
        let other = assignment(&LoadgenConfig { seed: 8, ..cfg });
        assert_ne!(a, other, "different seed, different traffic");
    }

    #[test]
    fn images_are_distinct_programs() {
        let progs: Vec<String> = (0..16).map(image_program).collect();
        for (i, a) in progs.iter().enumerate() {
            for b in progs.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
